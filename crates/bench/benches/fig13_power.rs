//! Figure 13: DRAM power/energy of AMB-prefetching variants.
//!
//! Two views of the same runs:
//!
//! 1. **Normalized dynamic energy** (the paper's operation-count
//!    method): both runs commit the same instruction budget, so the
//!    ratio compares equal work. Expected shape (paper §5.5): solid
//!    savings at the 4-CL default (−29.9% single-core, −14.7%
//!    four-core); 8-CL interleaving on 8 cores can *increase* power
//!    (the +12.7% extreme case); ACT/PRE counts drop while column
//!    counts rise with K.
//! 2. **Absolute energy breakdown** from the end-to-end
//!    [`EnergyReport`](fbd_power::EnergyReport): activation + burst +
//!    refresh dynamic energy stacked on per-mode background and AMB
//!    link/core energy, FBD vs FBD-AP, with the total delta. This is
//!    the stacked-bar view: it shows static background energy
//!    dominating at low utilization, and the prefetcher's dynamic
//!    savings riding on top.

use fbd_bench::*;
use fbd_core::RunResult;
use fbd_power::PowerModel;
use fbd_types::config::Associativity;

fn main() {
    let exp = fbd_bench::experiment();
    banner(
        "Figure 13",
        "DRAM energy: normalized dynamic + absolute breakdown",
        &exp,
    );
    let model = PowerModel::paper_ratio();

    let points: Vec<(String, u32, u32, Associativity)> = vec![
        ("#CL=2".into(), 2, 64, Associativity::Full),
        ("#CL=4".into(), 4, 64, Associativity::Full),
        ("#CL=8".into(), 8, 64, Associativity::Full),
        ("#entry=32".into(), 4, 32, Associativity::Full),
        ("#entry=128".into(), 4, 128, Associativity::Full),
        ("Set=4".into(), 4, 64, Associativity::Ways(4)),
    ];

    let mut rows = vec![{
        let mut h = vec!["config".to_string()];
        h.extend(workload_groups().iter().map(|(g, _)| g.to_string()));
        h
    }];
    let mut table: Vec<Vec<String>> = points.iter().map(|(l, _, _, _)| vec![l.clone()]).collect();
    let mut op_deltas: Vec<String> = Vec::new();
    // label → per-group mean energy breakdown rows, filled as groups run.
    let mut breakdown = vec![vec![
        "group".to_string(),
        "system".to_string(),
        "act µJ".to_string(),
        "burst µJ".to_string(),
        "refresh µJ".to_string(),
        "bkgnd µJ".to_string(),
        "amb µJ".to_string(),
        "total µJ".to_string(),
        "bkgnd %".to_string(),
        "vs FBD".to_string(),
    ]];

    let grouped = run_grouped(
        |cores| {
            let mut configs = vec![("FBD".to_string(), system(Variant::Fbd, cores))];
            configs.extend(
                points
                    .iter()
                    .map(|(label, k, e, a)| (label.clone(), ap_system(cores, *k, *e, *a))),
            );
            configs
        },
        &exp,
    );
    for (group, workloads, results) in grouped {
        let find = |label: &str, w: &fbd_workloads::Workload| {
            results
                .iter()
                .find(|((c, n), _)| c == label && n == w.name())
                .map(|(_, r)| r.clone())
                .expect("run")
        };
        for (i, (label, _, _, _)) in points.iter().enumerate() {
            let ratios: Vec<f64> = workloads
                .iter()
                .map(|w| {
                    let base = find("FBD", w);
                    let ap = find(label, w);
                    model.normalized(&ap.mem.dram_ops, &base.mem.dram_ops)
                })
                .collect();
            table[i].push(f3(mean(&ratios)));
        }
        // Operation-count shifts for the K sweep (paper §5.5 quotes the
        // 4-core numbers).
        for (label, _, _, _) in points.iter().take(3) {
            let act: Vec<f64> = workloads
                .iter()
                .map(|w| {
                    let b = find("FBD", w);
                    let a = find(label, w);
                    a.mem.dram_ops.act_pre as f64 / b.mem.dram_ops.act_pre as f64
                })
                .collect();
            let col: Vec<f64> = workloads
                .iter()
                .map(|w| {
                    let b = find("FBD", w);
                    let a = find(label, w);
                    a.mem.dram_ops.col_total() as f64 / b.mem.dram_ops.col_total() as f64
                })
                .collect();
            op_deltas.push(format!(
                "{group} {label}: ACT/PRE {} | columns {}",
                pct(mean(&act)),
                pct(mean(&col))
            ));
        }
        // Absolute stacked breakdown, FBD vs the paper-default
        // prefetcher (#CL=4), averaged over the group's workloads.
        let mean_energy = |label: &str| {
            let runs: Vec<RunResult> = workloads.iter().map(|w| find(label, w)).collect();
            let avg = |f: &dyn Fn(&RunResult) -> f64| {
                mean(&runs.iter().map(|r| f(r) / 1_000.0).collect::<Vec<_>>())
            };
            (
                avg(&|r| r.energy.activation_nj),
                avg(&|r| r.energy.burst_nj),
                avg(&|r| r.energy.refresh_nj),
                avg(&|r| r.energy.background_nj),
                avg(&|r| r.energy.amb_nj),
                avg(&|r| r.energy.total_nj()),
            )
        };
        let base = mean_energy("FBD");
        for (label, stack) in [("FBD", base), ("#CL=4", mean_energy("#CL=4"))] {
            let (act, burst, refresh, bkgnd, amb, total) = stack;
            breakdown.push(vec![
                group.to_string(),
                label.to_string(),
                f2(act),
                f2(burst),
                f2(refresh),
                f2(bkgnd),
                f2(amb),
                f2(total),
                format!("{:.0}%", bkgnd / (total - amb) * 100.0),
                pct(total / base.5),
            ]);
        }
    }
    rows.extend(table);
    emit_table("fig13_power", &rows);
    println!();
    println!("operation-count shifts vs FBD:");
    for line in op_deltas {
        println!("  {line}");
    }
    println!();
    println!("absolute energy breakdown (group mean, stacked components):");
    emit_table("fig13_power_breakdown", &breakdown);
    println!();
    // Low-utilization anchor: a light integer workload on an
    // overprovisioned four-channel system. The ranks idle most of the
    // run, so static background energy dominates the DRAM total — the
    // regime where the paper's power-saving argument matters least and
    // background/power-down management matters most.
    let mut light = system(Variant::Fbd, 1);
    light.mem.logical_channels = 4;
    let anchor = run_matrix(
        &[("FBD-4ch".to_string(), light)],
        &[fbd_workloads::Workload::new("1C-parser", &["parser"])],
        &exp,
    );
    let e = &anchor[0].1.energy;
    println!(
        "low-utilization anchor (parser, 1 core, 4 channels): background {:.0}% of DRAM energy",
        e.background_fraction() * 100.0
    );
    println!();
    println!("paper: 4-CL saves 29.9% (1-core) / 14.7% (4-core); 8-CL on 8 cores can increase power (+12.7%)");
}
