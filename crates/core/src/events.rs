//! The event queue driving the simulation loop.
//!
//! Two interchangeable implementations sit behind [`EventQueue`]:
//!
//! * [`EventWheel`] — the default: a windowed calendar queue ("event
//!   wheel") with power-of-two time buckets, a two-level occupancy
//!   bitmap for O(1) next-event lookup, and an overflow heap for events
//!   beyond the window. Identical `(time, event)` entries pushed with
//!   `dedup` are collapsed into one slot entry carrying a multiplicity
//!   count, so e.g. a channel is never enqueued twice for the same
//!   instant — the count preserves how many times the handler must run.
//! * a plain `BinaryHeap<Reverse<(Time, T)>>` — the seed implementation,
//!   kept as a differential reference. Select it with the environment
//!   variable `FBD_EVENT_QUEUE=heap`; the golden-parity suite
//!   byte-compares the two.
//!
//! Both pop events in strictly nondecreasing `(Time, T)` order, with
//! same-timestamp events ordered by `T`'s `Ord` — the wheel reproduces
//! the heap's ordering exactly (bucket slots are min-scanned by the
//! full `(Time, T)` key), which is what makes the byte-identity gate
//! possible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fbd_types::time::Time;

/// log2 of the bucket width in picoseconds: 4096 ps ≈ 1.4 DDR2-667
/// clocks, so a bucket rarely holds more than a handful of events.
const SLOT_SHIFT: u32 = 12;
/// Number of buckets in the window (power of two): 1024 × 4096 ps ≈
/// 4.2 µs, wide enough for read completions, refresh and telemetry
/// sampling deadlines; later events overflow to a heap and re-bucket
/// when the window advances.
const SLOTS: usize = 1024;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Occupancy bitmap: one bit per slot, 64 slots per word.
const OCC_WORDS: usize = SLOTS / 64;
/// Initial capacity of each bucket (256 KiB total at 16 B/entry for a
/// `u32`-sized event). A 4096 ps bucket holds at most a couple of
/// clock edges' worth of events per channel, so growth past this is
/// rare — pre-sizing keeps the steady-state hot loop allocation-free
/// (the ring reuses bucket capacity as the window wraps).
const SLOT_CAP: usize = 16;

/// One bucket entry: an event plus how many identical pushes it stands
/// for (always 1 unless pushed with `dedup`).
type Entry<T> = (Time, T, u32);

/// Windowed calendar queue keyed on clock-aligned time buckets.
#[derive(Debug)]
pub struct EventWheel<T> {
    /// Ring of buckets; index = absolute slot & [`SLOT_MASK`].
    slots: Vec<Vec<Entry<T>>>,
    /// Two-level occupancy: bit per slot (ring index order).
    occ: [u64; OCC_WORDS],
    /// First absolute slot of the current window.
    wbase: u64,
    /// Absolute slot scanning resumes from (invariant: every queued
    /// event lives at a slot ≥ `cursor`, because events are never
    /// scheduled in the past).
    cursor: u64,
    /// Entries currently in the ring (not counting `overflow`).
    len: usize,
    /// Events beyond the window; strictly later than everything in the
    /// ring (their absolute slot is ≥ `wbase + SLOTS`).
    overflow: BinaryHeap<Reverse<(Time, T)>>,
}

impl<T: Ord + Copy> Default for EventWheel<T> {
    fn default() -> EventWheel<T> {
        EventWheel::new()
    }
}

impl<T: Ord + Copy> EventWheel<T> {
    /// An empty wheel with its window based at time zero.
    pub fn new() -> EventWheel<T> {
        EventWheel {
            slots: std::iter::repeat_with(|| Vec::with_capacity(SLOT_CAP))
                .take(SLOTS)
                .collect(),
            occ: [0; OCC_WORDS],
            wbase: 0,
            cursor: 0,
            len: 0,
            overflow: BinaryHeap::with_capacity(256),
        }
    }

    fn abs_slot(at: Time) -> u64 {
        at.as_ps() >> SLOT_SHIFT
    }

    /// Queues `ev` at `at`. With `dedup`, an identical `(at, ev)` entry
    /// already in its bucket absorbs the push by incrementing its count
    /// instead of storing a second entry.
    pub fn push(&mut self, at: Time, ev: T, dedup: bool) {
        let abs = Self::abs_slot(at);
        debug_assert!(abs >= self.cursor, "event scheduled before the cursor");
        if abs >= self.wbase + SLOTS as u64 {
            self.overflow.push(Reverse((at, ev)));
            return;
        }
        let idx = (abs & SLOT_MASK) as usize;
        let slot = &mut self.slots[idx];
        if dedup {
            if let Some(e) = slot.iter_mut().find(|e| e.0 == at && e.1 == ev) {
                e.2 += 1;
                return;
            }
        }
        slot.push((at, ev, 1));
        self.len += 1;
        self.occ[idx >> 6] |= 1u64 << (idx & 63);
    }

    /// Removes and returns the minimum `(Time, T)` entry with its
    /// multiplicity count, or `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<Entry<T>> {
        loop {
            if self.len == 0 {
                if self.overflow.is_empty() {
                    return None;
                }
                self.advance_window();
                continue;
            }
            let abs = self.next_occupied().expect("len > 0 implies a set bit");
            let idx = (abs & SLOT_MASK) as usize;
            let slot = &mut self.slots[idx];
            // Min-scan by the full (Time, T) key: several distinct times
            // (and same-time events of different kinds) share a bucket,
            // and the pop order must match the reference heap's.
            let (min_i, _) = slot
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.0, e.1))
                .expect("occupied slot");
            let entry = slot.swap_remove(min_i);
            self.len -= 1;
            if slot.is_empty() {
                self.occ[idx >> 6] &= !(1u64 << (idx & 63));
            }
            self.cursor = abs;
            return Some(entry);
        }
    }

    /// First occupied absolute slot at or after the cursor, found by
    /// scanning the bitmap a word at a time. The ring wraps only at
    /// word boundaries (SLOTS is a multiple of 64), so each word covers
    /// a contiguous absolute-slot range.
    fn next_occupied(&self) -> Option<u64> {
        let end = self.wbase + SLOTS as u64;
        let mut abs = self.cursor.max(self.wbase);
        while abs < end {
            let idx = (abs & SLOT_MASK) as usize;
            let bit = (idx & 63) as u32;
            let word = self.occ[idx >> 6] & (!0u64 << bit);
            if word != 0 {
                return Some(abs + u64::from(word.trailing_zeros() - bit));
            }
            abs += u64::from(64 - bit);
        }
        None
    }

    /// Re-bases the (empty) ring at the earliest overflow event and
    /// moves every overflow event that now fits into the window.
    fn advance_window(&mut self) {
        debug_assert_eq!(self.len, 0);
        let Some(Reverse((first, _))) = self.overflow.peek() else {
            return;
        };
        self.wbase = Self::abs_slot(*first);
        self.cursor = self.wbase;
        let end = self.wbase + SLOTS as u64;
        while let Some(Reverse((at, _))) = self.overflow.peek() {
            if Self::abs_slot(*at) >= end {
                break;
            }
            let Reverse((at, ev)) = self.overflow.pop().expect("peeked");
            // Re-bucket with dedup so duplicates that met in the
            // overflow heap collapse like direct pushes would.
            self.push(at, ev, true);
        }
    }
}

/// The simulation's event queue: the wheel by default, the seed binary
/// heap when `FBD_EVENT_QUEUE=heap` (differential/parity mode).
#[derive(Debug)]
pub enum EventQueue<T> {
    /// The calendar-queue implementation (default).
    Wheel(EventWheel<T>),
    /// The seed `BinaryHeap` implementation (`FBD_EVENT_QUEUE=heap`).
    Heap(BinaryHeap<Reverse<(Time, T)>>),
}

impl<T: Ord + Copy> EventQueue<T> {
    /// Selects the implementation from `FBD_EVENT_QUEUE` (`wheel` is
    /// the default; `heap` selects the seed implementation).
    pub fn from_env() -> EventQueue<T> {
        match std::env::var("FBD_EVENT_QUEUE") {
            Ok(v) if v == "heap" => EventQueue::Heap(BinaryHeap::new()),
            _ => EventQueue::Wheel(EventWheel::new()),
        }
    }

    /// Queues `ev` at `at`; `dedup` lets the wheel collapse identical
    /// same-instant entries into one multiplicity-counted entry (the
    /// heap ignores it and stores duplicates, as the seed did).
    pub fn push(&mut self, at: Time, ev: T, dedup: bool) {
        match self {
            EventQueue::Wheel(w) => w.push(at, ev, dedup),
            EventQueue::Heap(h) => h.push(Reverse((at, ev))),
        }
    }

    /// Pops the minimum `(Time, T)` entry and the number of times its
    /// handler must run (> 1 only for deduped wheel entries).
    pub fn pop(&mut self) -> Option<(Time, T, u32)> {
        match self {
            EventQueue::Wheel(w) => w.pop(),
            EventQueue::Heap(h) => h.pop().map(|Reverse((at, ev))| (at, ev, 1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ps: u64) -> Time {
        Time::from_ps(ps)
    }

    /// Drains `q` into a flat (time, ev) list, expanding counts.
    fn drain(q: &mut EventQueue<u32>) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some((at, ev, n)) = q.pop() {
            for _ in 0..n {
                out.push((at.as_ps(), ev));
            }
        }
        out
    }

    #[test]
    fn wheel_matches_heap_on_scrambled_input() {
        // Deterministic scramble across buckets, bucket collisions,
        // same-timestamp events and window overflow.
        let mut evs: Vec<(u64, u32)> = Vec::new();
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for i in 0..2_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            evs.push((x % 50_000_000, (x >> 32) as u32 % 7));
            if i % 5 == 0 {
                // Exact same-timestamp collisions with distinct events.
                evs.push((evs.last().unwrap().0, 3));
            }
        }
        let mut wheel = EventQueue::Wheel(EventWheel::new());
        let mut heap = EventQueue::<u32>::Heap(BinaryHeap::new());
        for &(ps, ev) in &evs {
            wheel.push(t(ps), ev, false);
            heap.push(t(ps), ev, false);
        }
        assert_eq!(drain(&mut wheel), drain(&mut heap));
    }

    #[test]
    fn same_timestamp_events_pop_in_event_order() {
        // Determinism gate: equal times order by the event's Ord, no
        // matter the push order, in both implementations.
        for queue in [
            &mut EventQueue::Wheel(EventWheel::new()),
            &mut EventQueue::<u32>::Heap(BinaryHeap::new()),
        ] {
            for ev in [4u32, 1, 3, 0, 2] {
                queue.push(t(1000), ev, false);
                queue.push(t(500), ev, false);
            }
            assert_eq!(
                drain(queue),
                vec![
                    (500, 0),
                    (500, 1),
                    (500, 2),
                    (500, 3),
                    (500, 4),
                    (1000, 0),
                    (1000, 1),
                    (1000, 2),
                    (1000, 3),
                    (1000, 4),
                ]
            );
        }
    }

    #[test]
    fn dedup_collapses_identical_entries_preserving_count() {
        let mut w = EventWheel::new();
        for _ in 0..3 {
            w.push(t(777), 5u32, true);
        }
        w.push(t(777), 6, true); // different event: its own entry
        w.push(t(778), 5, true); // different time: its own entry
        assert_eq!(w.pop(), Some((t(777), 5, 3)));
        assert_eq!(w.pop(), Some((t(777), 6, 1)));
        assert_eq!(w.pop(), Some((t(778), 5, 1)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_with_pushes_at_now() {
        // The hot-loop pattern: pop an event, then push new work at the
        // very same instant; the wheel must surface it before anything
        // later, exactly like the heap.
        let mut w = EventWheel::new();
        w.push(t(10_000), 1u32, false);
        w.push(t(20_000), 2, false);
        assert_eq!(w.pop(), Some((t(10_000), 1, 1)));
        w.push(t(10_000), 0, false); // pushed "at now" after the pop
        assert_eq!(w.pop(), Some((t(10_000), 0, 1)));
        assert_eq!(w.pop(), Some((t(20_000), 2, 1)));
    }

    #[test]
    fn window_advances_through_sparse_far_future_events() {
        let mut w = EventWheel::new();
        // Several events each far outside the previous window.
        let times = [1u64, 10_000_000, 400_000_000, 400_000_001, 9_000_000_000];
        for (i, &ps) in times.iter().enumerate() {
            w.push(t(ps), i as u32, false);
        }
        let got: Vec<u64> = std::iter::from_fn(|| w.pop())
            .map(|e| e.0.as_ps())
            .collect();
        assert_eq!(got, times);
    }

    #[test]
    fn duplicates_split_across_window_and_overflow_still_merge() {
        let mut w = EventWheel::new();
        // Both pushes far beyond the initial window -> overflow heap;
        // after the window advances they must merge into one entry.
        w.push(t(100_000_000), 9u32, true);
        w.push(t(100_000_000), 9, true);
        assert_eq!(w.pop(), Some((t(100_000_000), 9, 2)));
        assert_eq!(w.pop(), None);
    }
}
