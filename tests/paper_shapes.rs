//! Shape-regression tests: quick checks that the paper's central claims
//! keep reproducing. These are scaled-down versions of the figure
//! benches (few workloads, small budgets) so `cargo test` guards the
//! reproduction itself, not just the components.

use std::collections::HashMap;

use fbd_core::experiment::{reference_ipcs, smt_speedup, ExperimentConfig};
use fbd_core::{RunResult, RunSpec};
use fbd_types::config::{AmbPrefetchMode, MemoryConfig, SystemConfig};
use fbd_workloads::Workload;

fn exp() -> ExperimentConfig {
    ExperimentConfig {
        seed: 42,
        budget: 80_000,
        ..Default::default()
    }
}

fn run(cfg: SystemConfig, w: &Workload, exp: ExperimentConfig) -> RunResult {
    RunSpec::new(cfg)
        .with_workload(w.clone())
        .experiment(exp)
        .run()
}

fn cfg(mem: MemoryConfig, cores: u32) -> SystemConfig {
    let mut c = SystemConfig::paper_default(cores);
    c.mem = mem;
    c
}

/// A small representative sample: two streaming FP, one irregular
/// integer benchmark.
const SAMPLE: [&str; 3] = ["swim", "facerec", "vortex"];

fn refs() -> HashMap<String, f64> {
    reference_ipcs(&cfg(MemoryConfig::ddr2_default(), 1), &SAMPLE, &exp())
}

fn avg_speedup(mem: MemoryConfig, refs: &HashMap<String, f64>) -> f64 {
    let mut total = 0.0;
    for name in SAMPLE {
        let w = Workload::new(format!("1C-{name}"), &[name]);
        let r = run(cfg(mem, 1), &w, exp());
        total += smt_speedup(&w, &r, refs);
    }
    total / SAMPLE.len() as f64
}

#[test]
fn figure7_shape_ap_beats_fbd_significantly() {
    let refs = refs();
    let fbd = avg_speedup(MemoryConfig::fbdimm_default(), &refs);
    let ap = avg_speedup(MemoryConfig::fbdimm_with_prefetch(), &refs);
    let gain = ap / fbd - 1.0;
    // Paper: +16% average; accept a generous band around it.
    assert!(gain > 0.08, "AP gain {gain:.3} collapsed");
    assert!(gain < 0.60, "AP gain {gain:.3} implausibly large");
}

#[test]
fn figure9_shape_apfl_sits_between() {
    let refs = refs();
    let fbd = avg_speedup(MemoryConfig::fbdimm_default(), &refs);
    let mut apfl_mem = MemoryConfig::fbdimm_with_prefetch();
    apfl_mem.amb.mode = AmbPrefetchMode::FullLatency;
    let apfl = avg_speedup(apfl_mem, &refs);
    let ap = avg_speedup(MemoryConfig::fbdimm_with_prefetch(), &refs);
    assert!(
        apfl > fbd * 1.01,
        "bandwidth-utilization gain missing: {apfl:.3} vs {fbd:.3}"
    );
    assert!(
        ap > apfl * 1.005,
        "latency-reduction gain missing: {ap:.3} vs {apfl:.3}"
    );
}

#[test]
fn figure8_shape_k_trades_coverage_for_efficiency() {
    let w = Workload::new("1C-swim", &["swim"]);
    let mut prev_cov = 0.0;
    let mut prev_eff = 1.0;
    for k in [2u32, 4, 8] {
        let mut mem = MemoryConfig::fbdimm_with_prefetch();
        mem.amb.region_lines = k;
        mem.interleaving = fbd_types::config::Interleaving::MultiCacheline { lines: k };
        let r = run(cfg(mem, 1), &w, exp());
        let cov = r.mem.prefetch_coverage();
        let eff = r.mem.prefetch_efficiency();
        assert!(
            cov > prev_cov,
            "coverage must rise with K (K={k}: {cov:.3})"
        );
        assert!(
            eff < prev_eff,
            "efficiency must fall with K (K={k}: {eff:.3})"
        );
        prev_cov = cov;
        prev_eff = eff;
    }
}

#[test]
fn figure13_shape_default_k_saves_dynamic_energy() {
    let model = fbd_power::PowerModel::paper_ratio();
    let w = Workload::new("1C-mgrid", &["mgrid"]);
    let base = run(cfg(MemoryConfig::fbdimm_default(), 1), &w, exp());
    let ap = run(cfg(MemoryConfig::fbdimm_with_prefetch(), 1), &w, exp());
    let norm = model.normalized(&ap.mem.dram_ops, &base.mem.dram_ops);
    // Paper: ~30% single-core saving at K=4; require at least 10%.
    assert!(norm < 0.90, "dynamic-energy saving collapsed: {norm:.3}");
}

#[test]
fn figure12_shape_ap_and_sp_are_complementary() {
    let name = "swim";
    let w = Workload::new(format!("1C-{name}"), &[name]);
    let ipc_of = |ap: bool, sp: bool| {
        let mut c = cfg(
            if ap {
                MemoryConfig::fbdimm_with_prefetch()
            } else {
                MemoryConfig::fbdimm_default()
            },
            1,
        );
        c.cpu.software_prefetch = sp;
        run(c, &w, exp()).cores[0].ipc()
    };
    let none = ipc_of(false, false);
    let ap = ipc_of(true, false) / none;
    let sp = ipc_of(false, true) / none;
    let both = ipc_of(true, true) / none;
    assert!(ap > 1.02, "AP alone must help swim: {ap:.3}");
    assert!(sp > 1.02, "SP alone must help swim: {sp:.3}");
    assert!(
        both > ap.max(sp),
        "AP+SP ({both:.3}) must beat either alone"
    );
}

#[test]
fn multicore_ap_gain_holds_at_four_cores() {
    let refs = reference_ipcs(
        &cfg(MemoryConfig::ddr2_default(), 1),
        &["wupwise", "swim", "mgrid", "applu"],
        &exp(),
    );
    let w = fbd_workloads::four_core_workloads().remove(0); // 4C-1
    let base = run(cfg(MemoryConfig::fbdimm_default(), 4), &w, exp());
    let ap = run(cfg(MemoryConfig::fbdimm_with_prefetch(), 4), &w, exp());
    let gain = smt_speedup(&w, &ap, &refs) / smt_speedup(&w, &base, &refs) - 1.0;
    assert!(gain > 0.08, "4-core AP gain {gain:.3} collapsed");
}
