//! Experiment helpers: the [`RunSpec`] builder, reference IPCs and the
//! SMT speedup metric (paper §4.2).
//!
//! A run is described by one [`RunSpec`] — system configuration,
//! workload and run-control parameters — built fluently and executed
//! with [`RunSpec::run`]:
//!
//! ```
//! use fbd_core::RunSpec;
//!
//! let result = RunSpec::paper_default(1)
//!     .workload("1C-swim")
//!     .budget(20_000)
//!     .seed(7)
//!     .run();
//! assert!(result.elapsed.as_ns_f64() > 0.0);
//! ```
//!
//! `SMT speedup = Σ IPC_cmp[i] / IPC_single[i]`, where the reference
//! `IPC_single[i]` is the program's IPC alone on a single-core reference
//! system. The bench harness computes one reference set per figure, as
//! the paper does (Figure 4 references single-core DDR2 at the default
//! channel count; Figure 7 references two-channel DDR2).

use std::collections::HashMap;
use std::sync::Arc;

use fbd_telemetry::host::{HostHandle, HostProfiler, Phase};
use fbd_telemetry::{SampleObserver, TelemetryConfig};
use fbd_types::config::{AmbPrefetchConfig, Interleaving, MemoryConfig, SystemConfig};
use fbd_types::substrate::substrates;
use fbd_types::ConfigError;
use fbd_workloads::Workload;

use crate::compose::Composition;
use crate::system::{RunResult, System};

/// Warm-up snapshots computed earlier in this process, keyed by every
/// input `warm_l2` depends on (trace identity and position, L2
/// geometry, software-prefetch replay). Warm-up is a pure function of
/// that key, so restoring a snapshot is byte-identical to replaying
/// it — and sweeps, benches and overhead trials re-warm the same CPU
/// dozens of times otherwise. Bounded: each entry holds an L2 image
/// (~1–4 MiB), and a linear scan over ≤ [`WARM_CACHE_CAP`] entries is
/// cheaper than hashing setup.
static WARM_CACHE: std::sync::Mutex<Vec<(u64, fbd_cpu::WarmState)>> =
    std::sync::Mutex::new(Vec::new());

/// At most this many cached warm-ups; later distinct configurations
/// simply run their warm-up uncached.
const WARM_CACHE_CAP: usize = 8;

fn warm_key(workload: &str, seed: u64, ops: u64, cpu: &fbd_types::config::CpuConfig) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    (
        workload,
        seed,
        ops,
        cpu.l2_bytes,
        cpu.l2_ways,
        cpu.cores,
        cpu.software_prefetch,
    )
        .hash(&mut h);
    h.finish()
}

/// L2 warm-up policy for a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Warmup {
    /// No warm-up (cold caches).
    None,
    /// Fast-forward enough trace operations to fill the shared L2
    /// roughly twice over (split across cores).
    #[default]
    Auto,
    /// Exactly this many operations per core.
    Ops(u64),
}

/// Run-control parameters shared by every experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Seed for the deterministic workload generators.
    pub seed: u64,
    /// Instructions each core must commit (the run stops when the first
    /// core gets there).
    pub budget: u64,
    /// L2 warm-up before measurement.
    pub warmup: Warmup,
}

impl ExperimentConfig {
    /// Defaults: seed 42, automatic L2 warm-up and the instruction
    /// budget from [`default_budget`] (internal; [`RunSpec`]'s
    /// constructors use this).
    fn env_default() -> ExperimentConfig {
        ExperimentConfig {
            budget: default_budget(),
            ..ExperimentConfig::default()
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 42,
            budget: 300_000,
            warmup: Warmup::Auto,
        }
    }
}

/// The per-core instruction budget benches run with.
///
/// The paper simulates 100 M-instruction SimPoints; that is hours of
/// wall-clock across 27 workloads × many configurations, so benches
/// default to 300k instructions (results are stable well before that).
/// Set `FBD_BUDGET=<n>` to override, or `FBD_PAPER_MODE=1` for 2M.
pub fn default_budget() -> u64 {
    if let Ok(v) = std::env::var("FBD_BUDGET") {
        if let Ok(n) = v.parse::<u64>() {
            return n.max(1);
        }
    }
    match std::env::var("FBD_PAPER_MODE") {
        Ok(v) if v == "1" => 2_000_000,
        _ => 300_000,
    }
}

/// Complete specification of one simulation run: the system
/// configuration, the workload, run-control parameters and optional
/// instrumentation, built fluently and executed with [`run`](Self::run).
///
/// Replaces the ad-hoc `(SystemConfig, Workload, ExperimentConfig)`
/// triple that used to travel through `run_workload`.
#[derive(Clone, Debug)]
pub struct RunSpec {
    system: SystemConfig,
    workload: Option<Workload>,
    exp: ExperimentConfig,
    telemetry: Option<TelemetryConfig>,
    capture_trace: bool,
    overrides: CompositionOverrides,
    host: Option<Arc<HostProfiler>>,
    observer: SampleObserver,
}

/// Registry names explicitly selected on a [`RunSpec`], overriding
/// whatever [`Composition::from_config`] would infer from the system
/// configuration. Names are validated when set, so resolution at run
/// time cannot fail.
#[derive(Clone, Debug, Default)]
struct CompositionOverrides {
    substrate: Option<String>,
    scheduler: Option<String>,
}

impl RunSpec {
    /// A spec for an explicit system configuration, with environment
    /// defaults for run control (seed 42, [`default_budget`], automatic
    /// L2 warm-up) and no workload yet.
    pub fn new(system: SystemConfig) -> RunSpec {
        RunSpec {
            system,
            workload: None,
            exp: ExperimentConfig::env_default(),
            telemetry: None,
            capture_trace: false,
            overrides: CompositionOverrides::default(),
            host: None,
            observer: SampleObserver::none(),
        }
    }

    /// The paper's default FB-DIMM system with `cores` cores (see
    /// [`SystemConfig::paper_default`]), environment-default run
    /// control.
    pub fn paper_default(cores: u32) -> RunSpec {
        RunSpec::new(SystemConfig::paper_default(cores))
    }

    /// Selects one of the paper's workloads by name (`1C-swim`, `4C-2`,
    /// …) and adjusts the system's core count to match it.
    ///
    /// # Panics
    ///
    /// Panics on an unknown workload name; use
    /// [`try_workload`](Self::try_workload) for fallible resolution.
    pub fn workload(self, name: &str) -> RunSpec {
        self.try_workload(name)
            .unwrap_or_else(|e| panic!("{e} (see `fbd_workloads::paper_workloads`)"))
    }

    /// Like [`workload`](Self::workload), but returns an error message
    /// instead of panicking on an unknown name (for CLI front-ends).
    ///
    /// # Errors
    ///
    /// Returns a description of the unknown name.
    pub fn try_workload(mut self, name: &str) -> Result<RunSpec, String> {
        let w = fbd_workloads::find(name).ok_or_else(|| format!("unknown workload `{name}`"))?;
        self.system.cpu.cores = w.cores();
        self.workload = Some(w);
        Ok(self)
    }

    /// Uses an explicit [`Workload`]. Unlike [`workload`](Self::workload)
    /// this does *not* touch the system's core count; [`run`](Self::run)
    /// asserts that they match.
    pub fn with_workload(mut self, workload: Workload) -> RunSpec {
        self.workload = Some(workload);
        self
    }

    /// Replaces the system configuration (core count and all). Clears
    /// any substrate selected earlier — the new configuration speaks
    /// for itself.
    pub fn with_system(mut self, system: SystemConfig) -> RunSpec {
        self.system = system;
        self.overrides.substrate = None;
        self
    }

    /// Replaces just the memory subsystem, keeping the processor side.
    /// Clears any substrate selected earlier.
    pub fn memory(mut self, mem: MemoryConfig) -> RunSpec {
        self.system.mem = mem;
        self.overrides.substrate = None;
        self
    }

    /// Selects a registered substrate by name: replaces the memory
    /// configuration with the substrate's preset and records the name
    /// for the run's composition metadata.
    ///
    /// # Panics
    ///
    /// Panics on an unknown name; use
    /// [`try_substrate`](Self::try_substrate) for fallible resolution.
    pub fn substrate(self, name: &str) -> RunSpec {
        self.try_substrate(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`substrate`](Self::substrate), but returns an error
    /// message instead of panicking (for CLI front-ends).
    ///
    /// # Errors
    ///
    /// Returns a description listing the registered names.
    pub fn try_substrate(mut self, name: &str) -> Result<RunSpec, String> {
        let s = substrates().get(name).ok_or_else(|| {
            format!(
                "unknown substrate `{name}` (available: {})",
                substrates().available()
            )
        })?;
        self.system.mem = s.config();
        self.overrides.substrate = Some(name.to_owned());
        Ok(self)
    }

    /// Selects a registered scheduling policy by name for every
    /// channel (overrides the configuration's legacy policy enum).
    ///
    /// # Panics
    ///
    /// Panics on an unknown name; use
    /// [`try_scheduler`](Self::try_scheduler) for fallible resolution.
    pub fn scheduler(self, name: &str) -> RunSpec {
        self.try_scheduler(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`scheduler`](Self::scheduler), but returns an error
    /// message instead of panicking (for CLI front-ends).
    ///
    /// # Errors
    ///
    /// Returns a description listing the registered names.
    pub fn try_scheduler(mut self, name: &str) -> Result<RunSpec, String> {
        if fbd_ctrl::schedulers().get(name).is_none() {
            return Err(format!(
                "unknown scheduler `{name}` (available: {})",
                fbd_ctrl::schedulers().available()
            ));
        }
        self.overrides.scheduler = Some(name.to_owned());
        Ok(self)
    }

    /// The composition this spec would run: inferred from the system
    /// configuration ([`Composition::from_config`]), with any names
    /// selected via [`substrate`](Self::substrate) /
    /// [`scheduler`](Self::scheduler) taking precedence.
    pub fn composition(&self) -> Composition {
        let mut comp = Composition::from_config(&self.system.mem);
        if let Some(s) = &self.overrides.substrate {
            comp.substrate.clone_from(s);
        }
        if let Some(s) = &self.overrides.scheduler {
            comp.scheduler.clone_from(s);
        }
        comp
    }

    /// Turns AMB prefetching on (the paper's default prefetcher with
    /// the matching 4-line interleaving) or off (plain FB-DIMM,
    /// cacheline interleaving) without touching the rest of the memory
    /// configuration.
    pub fn with_prefetch(mut self, enabled: bool) -> RunSpec {
        if enabled {
            self.system.mem.amb = AmbPrefetchConfig::paper_default();
            self.system.mem.interleaving = Interleaving::MultiCacheline { lines: 4 };
        } else {
            self.system.mem.amb = AmbPrefetchConfig::off();
            self.system.mem.interleaving = Interleaving::Cacheline;
        }
        // The modified config may no longer match the selected preset;
        // let from_config re-derive the substrate name by equality.
        self.overrides.substrate = None;
        self
    }

    /// Sets the per-core instruction budget.
    pub fn budget(mut self, budget: u64) -> RunSpec {
        self.exp.budget = budget;
        self
    }

    /// Sets the workload-generator seed.
    pub fn seed(mut self, seed: u64) -> RunSpec {
        self.exp.seed = seed;
        self
    }

    /// Sets the L2 warm-up policy.
    pub fn warmup(mut self, warmup: Warmup) -> RunSpec {
        self.exp.warmup = warmup;
        self
    }

    /// Replaces the whole run-control block (budget, seed, warm-up).
    pub fn experiment(mut self, exp: ExperimentConfig) -> RunSpec {
        self.exp = exp;
        self
    }

    /// Enables telemetry collection (metric registry, optional epoch
    /// sampling and event tracing) for the run.
    pub fn telemetry(mut self, config: TelemetryConfig) -> RunSpec {
        self.telemetry = Some(config);
        self
    }

    /// Records every transaction handed to the memory controller; the
    /// trace comes back in [`RunResult::trace`].
    pub fn capture_trace(mut self) -> RunSpec {
        self.capture_trace = true;
        self
    }

    /// Attaches a host-side profiler: the run marks its wall-clock
    /// phases and hot-loop counters into it and
    /// [`RunResult::host`](crate::RunResult) carries the report.
    /// The profiler is shared so a live dashboard can read it mid-run.
    /// Like telemetry, this observes the run without changing its
    /// simulated result (it is excluded from
    /// [`canonical_key`](Self::canonical_key)).
    pub fn host_profiler(mut self, profiler: Arc<HostProfiler>) -> RunSpec {
        self.host = Some(profiler);
        self
    }

    /// Attaches a [`SampleObserver`] notified with every epoch-sampler
    /// row; only meaningful when [`telemetry`](Self::telemetry) enables
    /// sampling. Excluded from the canonical key like all
    /// instrumentation.
    pub fn sample_observer(mut self, observer: SampleObserver) -> RunSpec {
        self.observer = observer;
        self
    }

    /// The system configuration this spec would run.
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// Mutable access to the system configuration, for knob sweeps that
    /// tweak one field between runs.
    pub fn system_mut(&mut self) -> &mut SystemConfig {
        &mut self.system
    }

    /// The run-control parameters this spec would run with.
    pub fn exp(&self) -> &ExperimentConfig {
        &self.exp
    }

    /// The selected workload, if one has been set.
    pub fn workload_ref(&self) -> Option<&Workload> {
        self.workload.as_ref()
    }

    /// The instrumentation this spec would run with (crate-internal;
    /// the fast fidelity mirrors it onto synthesized results).
    pub(crate) fn telemetry_config(&self) -> Option<&TelemetryConfig> {
        self.telemetry.as_ref()
    }

    /// The attached host profiler, if any (crate-internal; the fast
    /// fidelity charges its model time into it).
    pub(crate) fn host_profiler_ref(&self) -> Option<&Arc<HostProfiler>> {
        self.host.as_ref()
    }

    /// Canonical text serialization of the spec's *semantic* fields —
    /// the system configuration, workload and run control that
    /// determine the simulation result. Instrumentation (telemetry,
    /// trace capture) is excluded: it observes a run without changing
    /// it. Field order is fixed by the type definitions, so two specs
    /// describing the same run serialize identically no matter in
    /// which order their builders were called.
    pub fn canonical_key(&self) -> String {
        use std::fmt::Write as _;
        let mut key = String::with_capacity(1024);
        let _ = write!(key, "system={:?};", self.system);
        match &self.workload {
            Some(w) => {
                let names: Vec<&str> = w.benchmarks().iter().map(|b| b.name).collect();
                let _ = write!(key, "workload={}[{}];", w.name(), names.join(","));
            }
            None => key.push_str("workload=none;"),
        }
        let _ = write!(
            key,
            "seed={};budget={};warmup={:?}",
            self.exp.seed, self.exp.budget, self.exp.warmup
        );
        // Composed policy names are semantic: a different scheduler,
        // mapper or refresh manager is a different run. The substrate
        // label is not — the system configuration above already pins
        // everything a substrate selects.
        let comp = self.composition();
        let _ = write!(
            key,
            ";scheduler={};mapper={};refresh={}",
            comp.scheduler, comp.mapper, comp.refresh
        );
        key
    }

    /// FNV-1a hash of [`canonical_key`](Self::canonical_key) — keys
    /// the calibration cache (and the future result cache): any
    /// semantic field change produces a different hash, while
    /// builder-call order and instrumentation do not.
    pub fn canonical_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0100_0000_01b3;
        let mut h = OFFSET;
        for b in self.canonical_key().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        h
    }

    /// Validates the spec's system configuration (timings, geometry,
    /// prefetch parameters, fault-injection parameters).
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] the configuration trips.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.system.validate()
    }

    /// Like [`run`](Self::run), but returns a diagnostic instead of
    /// panicking on a missing workload, a core-count mismatch or an
    /// invalid configuration — the form CLI front-ends consume.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn try_run(&self) -> Result<RunResult, String> {
        self.validate().map_err(|e| e.to_string())?;
        let workload = self
            .workload
            .as_ref()
            .ok_or("no workload selected; call .workload()/.with_workload() first")?;
        if self.system.cpu.cores != workload.cores() {
            return Err(format!(
                "system has {} cores but workload {} needs {}",
                self.system.cpu.cores,
                workload.name(),
                workload.cores()
            ));
        }
        Ok(self.run())
    }

    /// Runs the L2 warm-up, restoring it from [`WARM_CACHE`] when an
    /// identical warm-up already ran in this process (see the cache's
    /// doc comment for why restoring is byte-identical to replaying).
    fn run_warmup(&self, sys: &mut System, ops: u64, workload: &str) {
        if ops == 0 {
            sys.warm(0);
            return;
        }
        let key = warm_key(workload, self.exp.seed, ops, &self.system.cpu);
        {
            let cache = WARM_CACHE.lock().unwrap();
            if let Some((_, state)) = cache.iter().find(|(k, _)| *k == key) {
                if sys.warm_restore(state) {
                    return;
                }
            }
        }
        sys.warm(ops);
        if let Some(snap) = sys.warm_snapshot() {
            let mut cache = WARM_CACHE.lock().unwrap();
            if cache.len() < WARM_CACHE_CAP && !cache.iter().any(|(k, _)| *k == key) {
                cache.push((key, snap));
            }
        }
    }

    /// Executes the run.
    ///
    /// # Panics
    ///
    /// Panics if no workload was selected, if the system's core count
    /// does not match the workload's, or if the configuration is
    /// invalid.
    pub fn run(&self) -> RunResult {
        let workload = self
            .workload
            .as_ref()
            .expect("RunSpec has no workload; call .workload()/.with_workload() first");
        assert_eq!(
            self.system.cpu.cores,
            workload.cores(),
            "core count must match workload {}",
            workload.name()
        );
        let traces = workload.traces(self.exp.seed);
        let warmup_ops = match self.exp.warmup {
            Warmup::None => 0,
            Warmup::Auto => {
                let l2_lines = u64::from(self.system.cpu.l2_bytes) / fbd_types::CACHE_LINE_BYTES;
                2 * l2_lines / u64::from(self.system.cpu.cores)
            }
            Warmup::Ops(n) => n,
        };
        let comp = self.composition();
        let host = self
            .host
            .as_ref()
            .map_or_else(HostHandle::off, |p| HostHandle::new(Arc::clone(p)));
        let mut sys = System::composed(&self.system, traces, self.exp.budget, &comp)
            .unwrap_or_else(|e| panic!("{e}"));
        host.mark(Phase::Setup);
        self.run_warmup(&mut sys, warmup_ops, workload.name());
        host.mark(Phase::Warmup);
        sys.set_host_profiler(host);
        if let Some(tc) = &self.telemetry {
            sys.enable_telemetry(tc);
        }
        if self.observer.is_attached() {
            sys.set_sample_observer(self.observer.clone());
        }
        if self.capture_trace {
            sys.enable_trace_capture();
        }
        sys.run()
    }
}

/// Computes each benchmark's single-core reference IPC on `ref_cfg`
/// (which must be a 1-core configuration). Returns name → IPC.
///
/// # Panics
///
/// Panics if `ref_cfg` is not single-core.
pub fn reference_ipcs(
    ref_cfg: &SystemConfig,
    benchmarks: &[&str],
    exp: &ExperimentConfig,
) -> HashMap<String, f64> {
    assert_eq!(ref_cfg.cpu.cores, 1, "reference runs are single-core");
    benchmarks
        .iter()
        .map(|name| {
            let w = Workload::new(format!("1C-{name}"), &[name]);
            let result = RunSpec::new(*ref_cfg)
                .with_workload(w)
                .experiment(*exp)
                .run();
            (name.to_string(), result.cores[0].ipc())
        })
        .collect()
}

/// The paper's SMT-speedup metric for one run.
///
/// # Panics
///
/// Panics if a benchmark of the workload has no reference IPC.
pub fn smt_speedup(
    workload: &Workload,
    result: &RunResult,
    references: &HashMap<String, f64>,
) -> f64 {
    workload
        .benchmarks()
        .iter()
        .zip(&result.cores)
        .map(|(bench, stats)| {
            let reference = references
                .get(bench.name)
                .unwrap_or_else(|| panic!("no reference IPC for {}", bench.name));
            stats.ipc() / reference
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_types::stats::{CoreStats, MemStats};
    use fbd_types::time::Dur;

    fn fake_result(ipcs: &[f64]) -> RunResult {
        RunResult {
            elapsed: Dur::from_ns(1_000),
            cores: ipcs
                .iter()
                .map(|&ipc| CoreStats {
                    instructions: (ipc * 1000.0) as u64,
                    cycles: 1000,
                    l2_misses: 0,
                    l2_accesses: 0,
                })
                .collect(),
            mem: MemStats::default(),
            channels: Vec::new(),
            energy: fbd_power::EnergyReport::default(),
            profile: Default::default(),
            faults: None,
            trace: None,
            telemetry: None,
            host: Default::default(),
        }
    }

    #[test]
    fn smt_speedup_sums_per_core_ratios() {
        let w = Workload::new("2C-x", &["swim", "parser"]);
        let refs: HashMap<String, f64> = [("swim".to_string(), 0.5), ("parser".to_string(), 1.0)]
            .into_iter()
            .collect();
        let r = fake_result(&[1.0, 0.5]);
        // 1.0/0.5 + 0.5/1.0 = 2.5.
        let s = smt_speedup(&w, &r, &refs);
        assert!((s - 2.5).abs() < 1e-9, "{s}");
    }

    #[test]
    #[should_panic(expected = "no reference IPC")]
    fn smt_speedup_requires_references() {
        let w = Workload::new("1C-swim", &["swim"]);
        let r = fake_result(&[1.0]);
        let _ = smt_speedup(&w, &r, &HashMap::new());
    }

    #[test]
    #[should_panic(expected = "single-core")]
    fn reference_ipcs_rejects_multicore_config() {
        let cfg = fbd_types::config::SystemConfig::paper_default(2);
        let _ = reference_ipcs(&cfg, &["swim"], &ExperimentConfig::default());
    }

    #[test]
    #[should_panic(expected = "core count must match")]
    fn run_spec_rejects_core_mismatch() {
        let cfg = fbd_types::config::SystemConfig::paper_default(2);
        let w = Workload::new("1C-swim", &["swim"]);
        let _ = RunSpec::new(cfg).with_workload(w).run();
    }

    #[test]
    #[should_panic(expected = "no workload")]
    fn run_spec_requires_a_workload() {
        let _ = RunSpec::paper_default(1).run();
    }

    #[test]
    fn run_spec_workload_syncs_core_count() {
        let spec = RunSpec::paper_default(1).workload("4C-1");
        assert_eq!(spec.system().cpu.cores, 4);
        assert_eq!(spec.workload_ref().unwrap().name(), "4C-1");
        assert!(RunSpec::paper_default(1).try_workload("nope").is_err());
    }

    #[test]
    fn run_spec_prefetch_toggle_mirrors_presets() {
        use fbd_types::config::MemoryConfig;
        let on = RunSpec::paper_default(1).with_prefetch(true);
        assert_eq!(on.system().mem, MemoryConfig::fbdimm_with_prefetch());
        let off = on.with_prefetch(false);
        assert_eq!(off.system().mem, MemoryConfig::fbdimm_default());
    }

    #[test]
    fn try_run_reports_problems_instead_of_panicking() {
        let err = RunSpec::paper_default(1).try_run().unwrap_err();
        assert!(err.contains("no workload"), "{err}");
        let cfg = fbd_types::config::SystemConfig::paper_default(2);
        let w = Workload::new("1C-swim", &["swim"]);
        let err = RunSpec::new(cfg).with_workload(w).try_run().unwrap_err();
        assert!(err.contains("cores"), "{err}");
        let mut spec = RunSpec::paper_default(1).workload("1C-swim");
        spec.system_mut().mem.faults.ber = 2.0;
        let err = spec.try_run().unwrap_err();
        assert!(err.contains("faults.ber"), "{err}");
        assert!(spec.validate().is_err());
    }

    #[test]
    fn budget_env_parsing() {
        // No env manipulation (tests run in parallel): just check the
        // default path returns something positive.
        assert!(default_budget() >= 1);
    }
}
