//! SPEC2000-like synthetic workloads and the paper's Table 3 mixes.
//!
//! The paper drives its simulator with SimPoint samples of twelve
//! memory-intensive SPEC2000 programs. This crate substitutes
//! deterministic synthetic equivalents (see DESIGN.md §4): each program
//! is a parameterized access-pattern generator preserving the properties
//! the AMB prefetcher interacts with — spatial locality, access-stream
//! concurrency, memory intensity, store share and software-prefetch
//! coverage.
//!
//! # Examples
//!
//! Build the paper's `2C-1` mix (wupwise + swim) and pull a few ops:
//!
//! ```
//! use fbd_workloads::mixes::two_core_workloads;
//!
//! let w = &two_core_workloads()[0];
//! assert_eq!(w.name(), "2C-1");
//! let mut traces = w.traces(42);
//! let op = traces[0].next_op().unwrap();
//! assert!(op.gap >= 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod generator;
pub mod mixes;
pub mod profile;

pub use generator::SyntheticTrace;
pub use mixes::{
    eight_core_workloads, find, four_core_workloads, paper_workloads, single_core_workloads,
    two_core_workloads, Workload,
};
pub use profile::{by_name, BenchmarkProfile, PROFILES};
