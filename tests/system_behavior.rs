//! End-to-end behaviour of the simulated systems on real workloads.

use fbd_core::experiment::ExperimentConfig;
use fbd_core::{RunResult, RunSpec};
use fbd_types::config::{AmbPrefetchMode, MemoryConfig, SystemConfig};
use fbd_workloads::{four_core_workloads, Workload};

fn exp(budget: u64) -> ExperimentConfig {
    ExperimentConfig {
        seed: 42,
        budget,
        ..Default::default()
    }
}

fn run(cfg: SystemConfig, w: &Workload, exp: ExperimentConfig) -> RunResult {
    RunSpec::new(cfg)
        .with_workload(w.clone())
        .experiment(exp)
        .run()
}

fn fbd(cores: u32) -> SystemConfig {
    SystemConfig::paper_default(cores)
}

fn fbd_ap(cores: u32) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(cores);
    cfg.mem = MemoryConfig::fbdimm_with_prefetch();
    cfg
}

#[test]
fn runs_are_deterministic() {
    let w = Workload::new("1C-equake", &["equake"]);
    let a = run(fbd(1), &w, exp(50_000));
    let b = run(fbd(1), &w, exp(50_000));
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.cores[0].instructions, b.cores[0].instructions);
    assert_eq!(a.mem.demand_reads, b.mem.demand_reads);
    assert_eq!(a.mem.dram_ops, b.mem.dram_ops);
}

#[test]
fn amb_prefetching_speeds_up_streaming_workloads() {
    let w = Workload::new("1C-swim", &["swim"]);
    let base = run(fbd(1), &w, exp(100_000));
    let ap = run(fbd_ap(1), &w, exp(100_000));
    let speedup = ap.cores[0].ipc() / base.cores[0].ipc();
    assert!(speedup > 1.05, "swim speedup {speedup:.3} too small");
    // The gain comes with shorter average latency and higher bandwidth.
    assert!(ap.avg_read_latency_ns() < base.avg_read_latency_ns());
    assert!(ap.bandwidth_gbps() > base.bandwidth_gbps());
}

#[test]
fn amb_prefetching_never_slows_down_irregular_workloads_much() {
    // The paper reports no workload with negative speedup.
    let w = Workload::new("1C-parser", &["parser"]);
    let base = run(fbd(1), &w, exp(100_000));
    let ap = run(fbd_ap(1), &w, exp(100_000));
    let speedup = ap.cores[0].ipc() / base.cores[0].ipc();
    assert!(speedup > 0.99, "parser speedup {speedup:.3} went negative");
}

#[test]
fn coverage_respects_region_upper_bound() {
    for (k, bound) in [(2u32, 0.5), (4, 0.75), (8, 0.875)] {
        let mut cfg = fbd_ap(1);
        cfg.mem.amb.region_lines = k;
        cfg.mem.interleaving = fbd_types::config::Interleaving::MultiCacheline { lines: k };
        let w = Workload::new("1C-swim", &["swim"]);
        let r = run(cfg, &w, exp(60_000));
        let cov = r.mem.prefetch_coverage();
        assert!(
            cov <= bound + 1e-9,
            "K={k}: coverage {cov:.3} above bound {bound}"
        );
        assert!(
            cov > 0.2,
            "K={k}: coverage {cov:.3} implausibly low for swim"
        );
    }
}

#[test]
fn group_fetch_trades_activates_for_columns() {
    // The power-saving mechanism: fewer ACT/PRE pairs, more column
    // accesses, per §5.5.
    let w = Workload::new("1C-mgrid", &["mgrid"]);
    let base = run(fbd(1), &w, exp(60_000));
    let ap = run(fbd_ap(1), &w, exp(60_000));
    let per_read_act_base = base.mem.dram_ops.act_pre as f64 / base.mem.total_reads() as f64;
    let per_read_act_ap = ap.mem.dram_ops.act_pre as f64 / ap.mem.total_reads() as f64;
    assert!(
        per_read_act_ap < per_read_act_base,
        "activations per read must drop"
    );
    let per_read_col_base = base.mem.dram_ops.col_reads as f64 / base.mem.total_reads() as f64;
    let per_read_col_ap = ap.mem.dram_ops.col_reads as f64 / ap.mem.total_reads() as f64;
    assert!(
        per_read_col_ap > per_read_col_base,
        "column reads per read must rise"
    );
}

#[test]
fn full_latency_ablation_sits_between_base_and_ap() {
    let w = Workload::new("1C-applu", &["applu"]);
    let base = run(fbd(1), &w, exp(80_000));
    let mut apfl_cfg = fbd_ap(1);
    apfl_cfg.mem.amb.mode = AmbPrefetchMode::FullLatency;
    let apfl = run(apfl_cfg, &w, exp(80_000));
    let ap = run(fbd_ap(1), &w, exp(80_000));
    let (b, f, a) = (base.cores[0].ipc(), apfl.cores[0].ipc(), ap.cores[0].ipc());
    assert!(f >= b * 0.99, "APFL ({f:.3}) must not lose to FBD ({b:.3})");
    assert!(a >= f * 0.99, "AP ({a:.3}) must not lose to APFL ({f:.3})");
    assert!(a > b, "AP must beat FBD on a streaming workload");
}

#[test]
fn multicore_run_uses_all_cores() {
    let w = four_core_workloads().remove(0); // 4C-1: all streaming
    let r = run(fbd(4), &w, exp(40_000));
    assert_eq!(r.cores.len(), 4);
    // All cores made progress; at least one hit the budget.
    assert!(r.cores.iter().all(|c| c.instructions > 10_000));
    assert!(r.cores.iter().any(|c| c.instructions == 40_000));
    // Multiprogramming pushed bandwidth well above single-core levels.
    assert!(
        r.bandwidth_gbps() > 8.0,
        "got {:.2} GB/s",
        r.bandwidth_gbps()
    );
}

#[test]
fn bandwidth_saturates_below_peak() {
    let w = four_core_workloads().remove(0);
    let cfg = fbd(4);
    let r = run(cfg, &w, exp(40_000));
    let peak = cfg.mem.peak_total_bandwidth_gbps();
    assert!(
        r.bandwidth_gbps() < peak,
        "utilized {:.2} ≥ peak {:.2}",
        r.bandwidth_gbps(),
        peak
    );
}

#[test]
fn software_prefetching_helps_streaming_code() {
    let w = Workload::new("1C-swim", &["swim"]);
    let mut no_sp = fbd(1);
    no_sp.cpu.software_prefetch = false;
    let without = run(no_sp, &w, exp(80_000));
    let with = run(fbd(1), &w, exp(80_000));
    assert!(
        with.cores[0].ipc() > without.cores[0].ipc() * 1.02,
        "SP must help swim: {:.3} vs {:.3}",
        with.cores[0].ipc(),
        without.cores[0].ipc()
    );
}

#[test]
fn queueing_raises_latency_above_idle() {
    let w = Workload::new("1C-swim", &["swim"]);
    let r = run(fbd(1), &w, exp(60_000));
    assert!(
        r.avg_read_latency_ns() > 63.0,
        "queueing must add to the 63 ns idle latency"
    );
    assert!(
        r.avg_read_latency_ns() < 200.0,
        "single-core latency implausibly high"
    );
}
