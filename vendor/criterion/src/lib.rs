//! Offline stand-in for `criterion`: a minimal wall-clock timing
//! harness with the same surface as the subset this workspace uses
//! (`bench_function`, `benchmark_group`, `Bencher::iter`, `black_box`,
//! `criterion_group!`, `criterion_main!`).
//!
//! Methodology: each benchmark runs a calibration pass to pick an
//! iteration count targeting ~`measurement_ms` of work, then reports
//! the mean ns/iter over `sample_size` samples along with the min and
//! max sample. No statistical analysis, outlier rejection, or HTML
//! reports. Honors `--bench` (ignored) and a final name filter
//! argument like the real harness, so `cargo bench <filter>` works.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level harness handle passed to every benchmark function.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    measurement_ms: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Skip flags (--bench, --exact, ...); the last bare argument is
        // a substring filter, matching the real CLI closely enough.
        let filter = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .next_back();
        Criterion {
            filter,
            sample_size: 20,
            measurement_ms: 200,
        }
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark (unless filtered out).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.filter.as_deref(), self.sample_size, self.measurement_ms, f);
        self
    }

    /// Starts a named group; benchmarks in it are reported as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs `f` as `group/name` (unless filtered out).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        run_one(&full, self.parent.filter.as_deref(), samples, self.parent.measurement_ms, f);
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Timer handle handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(name: &str, filter: Option<&str>, samples: usize, measurement_ms: u64, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }

    // Calibrate: grow the iteration count until one sample takes ~1/10
    // of the measurement budget, so short routines are timed in bulk.
    let mut iters = 1u64;
    let per_sample = Duration::from_millis(measurement_ms / 10).max(Duration::from_micros(100));
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= per_sample || iters >= 1 << 40 {
            break;
        }
        // Aim straight at the budget, with headroom for noise.
        let scale = per_sample.as_secs_f64() / b.elapsed.as_secs_f64().max(1e-9);
        iters = (iters as f64 * scale.clamp(2.0, 100.0)) as u64;
    }

    let samples = samples.max(1);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64 * 1e9);
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    println!("{name:<40} {mean:>12.1} ns/iter (min {min:.1}, max {max:.1}, {samples} samples x {iters} iters)");
}

/// Collects benchmark functions into a runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the listed groups, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion {
            filter: None,
            sample_size: 2,
            measurement_ms: 1,
        };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("other".into()),
            sample_size: 2,
            measurement_ms: 1,
        };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 0);
    }

    #[test]
    fn group_applies_prefix_and_sample_size() {
        let mut c = Criterion {
            filter: Some("grp/inner".into()),
            sample_size: 2,
            measurement_ms: 1,
        };
        let mut calls = 0u64;
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("inner", |b| b.iter(|| calls += 1));
        g.finish();
        assert!(calls > 0);
    }
}
