//! Cycle-level event tracer emitting Chrome Trace Event Format JSON.
//!
//! Events collect in memory during the run and export as a
//! `{"traceEvents": [...]}` document loadable by Perfetto or
//! `chrome://tracing`. Tracks follow the convention used throughout the
//! simulator: `pid` is the FB-DIMM channel (or [`PID_SYSTEM`] for
//! system-wide tracks), `tid` selects the lane within it — southbound
//! frames, northbound frames, per-DIMM DRAM commands, power modes —
//! named via metadata events so the viewer shows
//! `chan0 / southbound` instead of raw ids.
//!
//! Chrome traces use **microsecond** timestamps; simulated picoseconds
//! divide by 10^6 at export, keeping full `u64` precision in memory.

use fbd_types::time::{Dur, Time};

use crate::json::Json;

/// `pid` for tracks that span the whole system rather than one channel.
pub const PID_SYSTEM: u32 = 1000;

/// `tid` of the southbound-frame track within a channel.
pub const TID_SOUTH: u32 = 0;
/// `tid` of the northbound-frame track within a channel.
pub const TID_NORTH: u32 = 1;
/// `tid` of the DRAM command track for DIMM `d` within a channel.
pub fn tid_dimm(dimm: usize) -> u32 {
    10 + dimm as u32
}
/// `tid` of the power-mode track for DIMM `d` within a channel.
pub fn tid_power(dimm: usize) -> u32 {
    100 + dimm as u32
}
/// `tid` of the DRAM command track for `bank` of DIMM `dimm` within a
/// channel. Bank tracks start at 10 000 so they sort below the
/// per-DIMM and power tracks; 100 tids are reserved per DIMM.
pub fn tid_bank(dimm: usize, bank: usize) -> u32 {
    10_000 + dimm as u32 * 100 + bank as u32
}

/// One trace event argument: a key plus a JSON-able value.
pub type Arg = (&'static str, Json);

#[derive(Clone, Debug)]
enum Phase {
    /// `ph:"X"` — a span with a duration.
    Complete { dur: Dur },
    /// `ph:"i"` — a point-in-time marker.
    Instant,
    /// `ph:"C"` — a counter series rendered as an area chart.
    Counter,
}

#[derive(Clone, Debug)]
struct TraceEvent {
    name: String,
    cat: &'static str,
    phase: Phase,
    ts: Time,
    pid: u32,
    tid: u32,
    args: Vec<Arg>,
}

/// In-memory event collector; one per traced run.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    events: Vec<TraceEvent>,
    /// (pid, tid, name) metadata registered via the track helpers.
    tracks: Vec<(u32, u32, String)>,
    /// (pid, name) metadata registered via [`Tracer::name_process`].
    processes: Vec<(u32, String)>,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Names the process-level track `pid` (e.g. `chan0`).
    pub fn name_process(&mut self, pid: u32, name: &str) {
        if !self.processes.iter().any(|(p, _)| *p == pid) {
            self.processes.push((pid, name.to_string()));
        }
    }

    /// Names the thread-level track `(pid, tid)` (e.g. `southbound`).
    pub fn name_track(&mut self, pid: u32, tid: u32, name: &str) {
        if !self.tracks.iter().any(|(p, t, _)| *p == pid && *t == tid) {
            self.tracks.push((pid, tid, name.to_string()));
        }
    }

    /// Records a span of `dur` starting at `start`.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        pid: u32,
        tid: u32,
        start: Time,
        dur: Dur,
        args: Vec<Arg>,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            cat,
            phase: Phase::Complete { dur },
            ts: start,
            pid,
            tid,
            args,
        });
    }

    /// Records a point event at `at`.
    pub fn instant(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        pid: u32,
        tid: u32,
        at: Time,
        args: Vec<Arg>,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            cat,
            phase: Phase::Instant,
            ts: at,
            pid,
            tid,
            args,
        });
    }

    /// Records a counter reading at `at`; the viewer draws the series
    /// named `name` on track `(pid, tid)` as a stacked area chart.
    pub fn counter(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        pid: u32,
        tid: u32,
        at: Time,
        value: f64,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            cat,
            phase: Phase::Counter,
            ts: at,
            pid,
            tid,
            args: vec![("value", Json::Num(value))],
        });
    }

    /// Number of events recorded so far (excluding track metadata).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Exports the Chrome Trace Event Format document. Events are
    /// ordered by track and then by non-decreasing timestamp, with all
    /// metadata events first.
    pub fn to_chrome_trace(&self) -> Json {
        let mut out: Vec<Json> =
            Vec::with_capacity(self.events.len() + self.tracks.len() + self.processes.len());
        for (pid, name) in &self.processes {
            out.push(metadata("process_name", *pid, None, name));
        }
        for (pid, tid, name) in &self.tracks {
            out.push(metadata("thread_name", *pid, Some(*tid), name));
        }

        let mut order: Vec<usize> = (0..self.events.len()).collect();
        // Stable sort: same-track same-ts events keep emission order.
        order.sort_by_key(|&i| {
            let e = &self.events[i];
            (e.pid, e.tid, e.ts)
        });
        for i in order {
            out.push(self.events[i].to_json());
        }
        Json::Obj(vec![
            ("traceEvents".into(), Json::Arr(out)),
            ("displayTimeUnit".into(), Json::from("ns")),
        ])
    }
}

fn metadata(kind: &str, pid: u32, tid: Option<u32>, name: &str) -> Json {
    let mut fields = vec![
        ("name".into(), Json::from(kind)),
        ("ph".into(), Json::from("M")),
        ("pid".into(), Json::from(pid)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".into(), Json::from(tid)));
    }
    fields.push((
        "args".into(),
        Json::Obj(vec![("name".into(), Json::from(name))]),
    ));
    Json::Obj(fields)
}

/// Picoseconds to the microsecond floats Chrome traces expect.
fn ps_to_us(ps: u64) -> f64 {
    ps as f64 / 1e6
}

impl TraceEvent {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".into(), Json::from(self.name.as_str())),
            ("cat".into(), Json::from(self.cat)),
            (
                "ph".into(),
                Json::from(match self.phase {
                    Phase::Complete { .. } => "X",
                    Phase::Instant => "i",
                    Phase::Counter => "C",
                }),
            ),
            ("ts".into(), Json::Num(ps_to_us(self.ts.as_ps()))),
            ("pid".into(), Json::from(self.pid)),
            ("tid".into(), Json::from(self.tid)),
        ];
        if let Phase::Complete { dur } = self.phase {
            fields.push(("dur".into(), Json::Num(ps_to_us(dur.as_ps()))));
        }
        if let Phase::Instant = self.phase {
            // Thread-scoped instants render as small arrows on the track.
            fields.push(("s".into(), Json::from("t")));
        }
        if !self.args.is_empty() {
            fields.push((
                "args".into(),
                Json::Obj(
                    self.args
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), v.clone()))
                        .collect(),
                ),
            ));
        }
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn export_orders_by_track_then_time() {
        let mut t = Tracer::new();
        t.complete(
            "RD",
            "dram",
            0,
            tid_dimm(0),
            Time::from_ns(30),
            Dur::from_ns(15),
            vec![],
        );
        t.complete(
            "frame",
            "link",
            0,
            TID_SOUTH,
            Time::from_ns(12),
            Dur::from_ns(6),
            vec![],
        );
        t.complete(
            "ACT",
            "dram",
            0,
            tid_dimm(0),
            Time::from_ns(10),
            Dur::from_ns(12),
            vec![],
        );
        t.instant("hit", "amb", 0, TID_SOUTH, Time::from_ns(40), vec![]);

        let doc = t.to_chrome_trace();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let mut last: Option<(f64, f64, f64)> = None;
        for e in events {
            if e.get("ph").unwrap().as_str() == Some("M") {
                continue;
            }
            let key = (
                e.get("pid").unwrap().as_f64().unwrap(),
                e.get("tid").unwrap().as_f64().unwrap(),
                e.get("ts").unwrap().as_f64().unwrap(),
            );
            if let Some(prev) = last {
                assert!(key >= prev, "events out of order: {prev:?} then {key:?}");
            }
            last = Some(key);
        }
    }

    #[test]
    fn timestamps_are_microseconds() {
        let mut t = Tracer::new();
        t.complete(
            "x",
            "c",
            1,
            2,
            Time::from_ns(2500),
            Dur::from_ns(500),
            vec![],
        );
        let doc = t.to_chrome_trace();
        let e = &doc.get("traceEvents").unwrap().as_array().unwrap()[0];
        assert_eq!(e.get("ts").unwrap().as_f64(), Some(2.5));
        assert_eq!(e.get("dur").unwrap().as_f64(), Some(0.5));
    }

    #[test]
    fn metadata_names_tracks_once() {
        let mut t = Tracer::new();
        t.name_process(0, "chan0");
        t.name_process(0, "chan0");
        t.name_track(0, TID_SOUTH, "southbound");
        t.name_track(0, TID_SOUTH, "southbound");
        let doc = t.to_chrome_trace();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2);
        assert_eq!(
            metas[1].get("args").unwrap().get("name").unwrap().as_str(),
            Some("southbound")
        );
    }

    #[test]
    fn export_round_trips_through_parser() {
        let mut t = Tracer::new();
        t.name_process(0, "chan0");
        t.counter("queue_depth", "ctrl", PID_SYSTEM, 0, Time::from_ns(10), 3.0);
        t.complete(
            "ACT",
            "dram",
            0,
            tid_dimm(1),
            Time::from_ns(10),
            Dur::from_ns(12),
            vec![("bank", Json::from(5u32))],
        );
        let text = t.to_chrome_trace().to_json_pretty(1);
        let back = json::parse(&text).expect("exporter must emit valid JSON");
        assert_eq!(
            back.get("traceEvents").unwrap().as_array().unwrap().len(),
            3
        );
    }
}
