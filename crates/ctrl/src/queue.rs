//! The memory controller's transaction queue (Table 1: "memory buffer,
//! 64 entries").
//!
//! Requests wait here until the scheduler picks them. The queue is the
//! back-pressure point of the whole system: when it fills, cores stall on
//! `try_push` until earlier transactions issue.

use fbd_types::request::{AccessKind, MemRequest};
use fbd_types::time::{Dur, Time};
use fbd_types::RequestId;

use crate::mapping::MappedAddr;

/// A queued transaction: the request plus its decoded location and an
/// arrival sequence number for age-based tie-breaking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueEntry {
    /// The transaction.
    pub req: MemRequest,
    /// Decoded {channel, DIMM, bank, row, column}.
    pub mapped: MappedAddr,
    /// Arrival order (smaller = older).
    pub seq: u64,
}

impl QueueEntry {
    /// How long the transaction has been queued as of `at` (zero if
    /// `at` precedes its arrival) — the controller-queueing stage of
    /// the latency profile.
    pub fn queue_wait(&self, at: Time) -> Dur {
        at.saturating_since(self.req.arrival)
    }
}

/// Bounded transaction queue with age ordering.
#[derive(Clone, Debug)]
pub struct TransactionQueue {
    entries: Vec<QueueEntry>,
    capacity: usize,
    next_seq: u64,
}

impl TransactionQueue {
    /// Creates an empty queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> TransactionQueue {
        assert!(capacity > 0, "queue capacity must be non-zero");
        TransactionQueue {
            entries: Vec::with_capacity(capacity),
            capacity,
            next_seq: 0,
        }
    }

    /// Attempts to enqueue a transaction. Returns `false` (and leaves the
    /// queue unchanged) when full — the caller must retry later.
    pub fn try_push(&mut self, req: MemRequest, mapped: MappedAddr) -> bool {
        if self.entries.len() == self.capacity {
            return false;
        }
        self.entries.push(QueueEntry {
            req,
            mapped,
            seq: self.next_seq,
        });
        self.next_seq += 1;
        true
    }

    /// Removes and returns the entry with the given id.
    pub fn remove(&mut self, id: RequestId) -> Option<QueueEntry> {
        let pos = self.entries.iter().position(|e| e.req.id == id)?;
        Some(self.entries.swap_remove(pos))
    }

    /// Puts back an entry previously taken with [`remove`](Self::remove),
    /// keeping its original age.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full (the slot freed by `remove` must not
    /// have been reused).
    pub fn restore(&mut self, entry: QueueEntry) {
        assert!(
            self.entries.len() < self.capacity,
            "restore into a full queue"
        );
        self.entries.push(entry);
    }

    /// All queued entries, unordered.
    pub fn iter(&self) -> impl Iterator<Item = &QueueEntry> {
        self.entries.iter()
    }

    /// Number of queued transactions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no more transactions fit.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Pending writes (for the read-priority threshold).
    pub fn write_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.req.kind == AccessKind::Write)
            .count()
    }

    /// Pending reads.
    pub fn read_count(&self) -> usize {
        self.entries.len() - self.write_count()
    }

    /// Transactions queued for logical channel `ch` (a queue-depth gauge
    /// for telemetry sampling).
    pub fn channel_depth(&self, ch: u32) -> usize {
        self.entries
            .iter()
            .filter(|e| e.mapped.channel == ch)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_types::request::{AccessKind, CoreId};
    use fbd_types::time::Time;
    use fbd_types::LineAddr;

    fn req(id: u64, kind: AccessKind) -> MemRequest {
        MemRequest::new(
            RequestId(id),
            CoreId(0),
            kind,
            LineAddr::new(id),
            Time::ZERO,
        )
    }

    fn mapped() -> MappedAddr {
        MappedAddr {
            channel: 0,
            dimm: 0,
            rank: 0,
            bank: 0,
            row: 0,
            col_line: 0,
        }
    }

    #[test]
    fn channel_depth_counts_only_that_channel() {
        let mut q = TransactionQueue::new(4);
        let on_ch = |ch: u32| MappedAddr {
            channel: ch,
            ..mapped()
        };
        q.try_push(req(1, AccessKind::DemandRead), on_ch(0));
        q.try_push(req(2, AccessKind::Write), on_ch(1));
        q.try_push(req(3, AccessKind::DemandRead), on_ch(1));
        assert_eq!(q.channel_depth(0), 1);
        assert_eq!(q.channel_depth(1), 2);
        assert_eq!(q.channel_depth(2), 0);
    }

    #[test]
    fn push_until_full_then_reject() {
        let mut q = TransactionQueue::new(2);
        assert!(q.try_push(req(1, AccessKind::DemandRead), mapped()));
        assert!(q.try_push(req(2, AccessKind::Write), mapped()));
        assert!(q.is_full());
        assert!(!q.try_push(req(3, AccessKind::DemandRead), mapped()));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn remove_frees_space_and_returns_entry() {
        let mut q = TransactionQueue::new(2);
        q.try_push(req(1, AccessKind::DemandRead), mapped());
        q.try_push(req(2, AccessKind::Write), mapped());
        let e = q.remove(RequestId(1)).unwrap();
        assert_eq!(e.req.id, RequestId(1));
        assert!(!q.is_full());
        assert!(q.remove(RequestId(1)).is_none());
    }

    #[test]
    fn sequence_numbers_record_age() {
        let mut q = TransactionQueue::new(4);
        q.try_push(req(10, AccessKind::DemandRead), mapped());
        q.try_push(req(11, AccessKind::DemandRead), mapped());
        let seqs: Vec<u64> = q.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
        // Rejected pushes must not burn sequence numbers.
        let mut q = TransactionQueue::new(1);
        q.try_push(req(1, AccessKind::DemandRead), mapped());
        assert!(!q.try_push(req(2, AccessKind::DemandRead), mapped()));
        q.remove(RequestId(1));
        q.try_push(req(3, AccessKind::DemandRead), mapped());
        assert_eq!(q.iter().next().unwrap().seq, 1);
    }

    #[test]
    fn read_write_counts() {
        let mut q = TransactionQueue::new(8);
        q.try_push(req(1, AccessKind::DemandRead), mapped());
        q.try_push(req(2, AccessKind::Write), mapped());
        q.try_push(req(3, AccessKind::Write), mapped());
        q.try_push(req(4, AccessKind::SoftwarePrefetch), mapped());
        assert_eq!(q.write_count(), 2);
        assert_eq!(q.read_count(), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = TransactionQueue::new(0);
    }
}
