//! The shared L2 cache (Table 1: 4 MB, 4-way, 64 B lines).
//!
//! Write-back, write-allocate, true-LRU. The cache filters the cores'
//! access streams; only misses (and dirty evictions) reach the memory
//! controller. Fill timing is handled by the CPU complex — this module
//! is the content/replacement model.

use fbd_types::LineAddr;

/// Result of an L2 access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum L2Outcome {
    /// Line present.
    Hit,
    /// Line absent; it has been allocated, evicting a dirty line that
    /// must be written back if `writeback` is set.
    Miss {
        /// Dirty victim that must be written to memory.
        writeback: Option<LineAddr>,
    },
}

impl L2Outcome {
    /// True for hits.
    pub fn is_hit(&self) -> bool {
        matches!(self, L2Outcome::Hit)
    }
}

#[derive(Clone, Copy, Debug)]
struct L2Entry {
    line: LineAddr,
    dirty: bool,
    /// Monotonic recency stamp (larger = more recent).
    lru: u64,
}

/// A set-associative, write-back, write-allocate cache.
#[derive(Clone, Debug)]
pub struct L2Cache {
    sets: Vec<Vec<L2Entry>>,
    ways: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl L2Cache {
    /// Creates a cache of `bytes` capacity and `ways` associativity with
    /// 64-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible
    /// into `ways`-way sets of 64-byte lines, or fewer than one set).
    pub fn new(bytes: u64, ways: usize) -> L2Cache {
        let line = fbd_types::CACHE_LINE_BYTES;
        assert!(ways > 0, "associativity must be non-zero");
        assert!(
            bytes.is_multiple_of(ways as u64 * line) && bytes >= ways as u64 * line,
            "capacity must be a positive multiple of ways * line size"
        );
        let num_sets = (bytes / line / ways as u64) as usize;
        L2Cache {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.as_u64() % self.sets.len() as u64) as usize
    }

    /// Accesses `line`, allocating it on a miss. `write` marks the line
    /// dirty (stores and write-allocate fills).
    pub fn access(&mut self, line: LineAddr, write: bool) -> L2Outcome {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.ways;
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(e) = set.iter_mut().find(|e| e.line == line) {
            e.lru = tick;
            e.dirty |= write;
            self.hits += 1;
            return L2Outcome::Hit;
        }
        self.misses += 1;
        let mut writeback = None;
        if set.len() == ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("non-empty set");
            let evicted = set.swap_remove(victim);
            if evicted.dirty {
                writeback = Some(evicted.line);
            }
        }
        set.push(L2Entry {
            line,
            dirty: write,
            lru: tick,
        });
        L2Outcome::Miss { writeback }
    }

    /// Pure presence check (no LRU update).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.sets[self.set_index(line)]
            .iter()
            .any(|e| e.line == line)
    }

    /// Removes `line` if present *and clean*; returns whether it was
    /// removed. Used when a fill is dropped after allocation (corrupted
    /// prefetch data under fault injection): the allocated frame holds
    /// no valid data, but a line dirtied by an intervening store must
    /// not lose its data and stays.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|e| e.line == line && !e.dirty) {
            set.swap_remove(pos);
            return true;
        }
        false
    }

    /// (hits, misses) so far.
    pub fn hit_miss_counts(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Zeroes the hit/miss counters (content is kept). Called after a
    /// warm-up phase so statistics cover only the measured region.
    pub fn reset_counts(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> L2Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        L2Cache::new(512, 2)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert_eq!(
            c.access(LineAddr::new(1), false),
            L2Outcome::Miss { writeback: None }
        );
        assert_eq!(c.access(LineAddr::new(1), false), L2Outcome::Hit);
        assert_eq!(c.hit_miss_counts(), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Lines 0, 4, 8 collide in set 0 of a 4-set cache.
        c.access(LineAddr::new(0), false);
        c.access(LineAddr::new(4), false);
        c.access(LineAddr::new(0), false); // touch 0: now 4 is LRU
        c.access(LineAddr::new(8), false); // evicts 4
        assert!(c.contains(LineAddr::new(0)));
        assert!(!c.contains(LineAddr::new(4)));
        assert!(c.contains(LineAddr::new(8)));
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = small();
        c.access(LineAddr::new(0), true); // dirty
        c.access(LineAddr::new(4), false);
        let out = c.access(LineAddr::new(8), false); // evicts 0 (LRU, dirty)
        assert_eq!(
            out,
            L2Outcome::Miss {
                writeback: Some(LineAddr::new(0))
            }
        );
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut c = small();
        c.access(LineAddr::new(0), false);
        c.access(LineAddr::new(4), false);
        let out = c.access(LineAddr::new(8), false);
        assert_eq!(out, L2Outcome::Miss { writeback: None });
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = small();
        c.access(LineAddr::new(0), false);
        c.access(LineAddr::new(0), true); // store hit dirties the line
        c.access(LineAddr::new(4), false);
        let out = c.access(LineAddr::new(8), false);
        assert_eq!(
            out,
            L2Outcome::Miss {
                writeback: Some(LineAddr::new(0))
            }
        );
    }

    #[test]
    fn invalidate_removes_clean_lines_only() {
        let mut c = small();
        c.access(LineAddr::new(0), false); // clean
        c.access(LineAddr::new(4), true); // dirty
        assert!(c.invalidate(LineAddr::new(0)));
        assert!(!c.contains(LineAddr::new(0)));
        // Dirty lines keep their data; absent lines are a no-op.
        assert!(!c.invalidate(LineAddr::new(4)));
        assert!(c.contains(LineAddr::new(4)));
        assert!(!c.invalidate(LineAddr::new(8)));
    }

    #[test]
    fn table1_geometry_constructs() {
        let c = L2Cache::new(4 << 20, 4);
        // 4 MB / 64 B / 4 ways = 16384 sets.
        assert_eq!(c.sets.len(), 16_384);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn bad_geometry_rejected() {
        let _ = L2Cache::new(100, 3);
    }
}
