//! Minimal JSON value, writer, and parser.
//!
//! The exporters need to *emit* JSON and the test suite needs to *read
//! back* what was emitted to prove it is well formed; this module
//! provides exactly that, with no external dependencies. It is not a
//! general-purpose JSON library: numbers are `f64`, object key order is
//! preserved (and duplicate keys are not rejected), and input size is
//! expected to be test-scale.

use std::fmt::{self, Write as _};

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this node is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this node is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this node is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a compact string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with newlines and `indent`-space nesting.
    pub fn to_json_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !fields.is_empty() {
                    newline(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            // Integral values print without a fraction or exponent.
            let _ = write!(out, "{}", n as i64);
        } else {
            let _ = write!(out, "{n}");
        }
    } else {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`parse`], with a byte offset into the input.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    pub at: usize,
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &'static str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs are not needed by our own
                            // output (we never escape above U+001F).
                            out.push(char::from_u32(code).ok_or_else(|| self.err("bad escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b < 0xE0 => 2,
                        b if b < 0xF0 => 3,
                        _ => 4,
                    };
                    out.push_str(std::str::from_utf8(&rest[..len]).unwrap());
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self.peek().ok_or_else(|| self.err("bad \\u escape"))?;
            let v = (d as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad \\u escape"))?;
            code = code * 16 + v;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compound_values() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::from("chan0.dimm1")),
            ("ok".into(), Json::Bool(true)),
            ("n".into(), Json::Num(42.0)),
            ("frac".into(), Json::Num(0.125)),
            (
                "items".into(),
                Json::Arr(vec![Json::Null, Json::Num(-3.0), Json::from("a\"b\\c\n")]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let text = doc.to_json();
        assert_eq!(parse(&text).unwrap(), doc);
        let pretty = doc.to_json_pretty(2);
        assert_eq!(parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn integral_numbers_have_no_fraction() {
        assert_eq!(Json::Num(42.0).to_json(), "42");
        assert_eq!(Json::Num(-7.0).to_json(), "-7");
        assert_eq!(Json::Num(0.5).to_json(), "0.5");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_json(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn get_and_accessors() {
        let doc = parse(r#"{"a": [1, 2], "b": "x"}"#).unwrap();
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            doc.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(doc.get("missing"), None);
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[0].as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_escape_parses() {
        let doc = parse(r#""a\u0041\u00e9""#).unwrap();
        assert_eq!(doc.as_str(), Some("aAé"));
    }
}
