//! First-come-first-served scheduling — the registry's extension proof.
//!
//! FCFS is the classic baseline the paper compares hit-first against:
//! requests are served strictly in arrival order, ignoring row-buffer
//! and AMB-cache state. It is implemented *outside* the core policy as
//! a wrapper that feeds [`HitFirstScheduler`] a constant classification,
//! which collapses the hit-first ordering key `(class, seq)` to plain
//! age while keeping the read/write phase machinery (write drain still
//! applies — a real FCFS controller still batches writes).
//!
//! Nothing in the controller or memory system knows this policy exists;
//! it is reachable only through the [`crate::schedulers`] registry. Use
//! it as the template for new policies: one file plus one `register`
//! call.

use fbd_types::config::{MemoryConfig, MemoryTech};
use fbd_types::RequestId;

use crate::queue::QueueEntry;
use crate::sched::{HitFirstScheduler, SchedClass, SchedulerPolicy, SchedulerSpec};

/// Strict arrival-order policy (oldest schedulable request first).
#[derive(Clone, Copy, Debug)]
pub struct FcfsScheduler {
    inner: HitFirstScheduler,
}

impl FcfsScheduler {
    /// Creates the policy; the parameters configure the write-drain
    /// behaviour exactly as for [`HitFirstScheduler::new`].
    ///
    /// # Panics
    ///
    /// Panics if `write_drain_threshold` is zero.
    pub fn new(write_drain_threshold: usize, hysteresis: bool) -> FcfsScheduler {
        FcfsScheduler {
            inner: HitFirstScheduler::new(write_drain_threshold, hysteresis),
        }
    }
}

impl SchedulerPolicy for FcfsScheduler {
    fn pick(
        &mut self,
        candidates: &[QueueEntry],
        _classify: &mut dyn FnMut(&QueueEntry) -> SchedClass,
    ) -> Option<RequestId> {
        // A constant class makes (class, seq) order pure arrival order.
        self.inner.pick(candidates, |_| SchedClass::Ready)
    }
}

/// Registry entry for the FCFS baseline.
#[derive(Debug)]
pub struct FcfsSpec;

impl SchedulerSpec for FcfsSpec {
    fn name(&self) -> &'static str {
        "fcfs"
    }
    fn description(&self) -> &'static str {
        "first-come-first-served in arrival order (ignores row/AMB state)"
    }
    fn build(&self, cfg: &MemoryConfig) -> Box<dyn SchedulerPolicy> {
        Box::new(FcfsScheduler::new(
            cfg.write_drain_threshold as usize,
            cfg.tech == MemoryTech::Ddr2,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappedAddr;
    use fbd_types::request::{AccessKind, CoreId, MemRequest};
    use fbd_types::time::Time;
    use fbd_types::LineAddr;

    fn entry(id: u64, kind: AccessKind, seq: u64, bank: u32) -> QueueEntry {
        QueueEntry {
            req: MemRequest::new(
                RequestId(id),
                CoreId(0),
                kind,
                LineAddr::new(id),
                Time::ZERO,
            ),
            mapped: MappedAddr {
                channel: 0,
                dimm: 0,
                rank: 0,
                bank,
                row: 0,
                col_line: 0,
            },
            seq,
        }
    }

    #[test]
    fn fcfs_ignores_hit_classification() {
        // An AMB/row hit arriving later must NOT jump the queue.
        let entries = [
            entry(1, AccessKind::DemandRead, 0, 0),
            entry(2, AccessKind::DemandRead, 1, 1),
        ];
        let mut classify = |e: &QueueEntry| {
            if e.mapped.bank == 1 {
                SchedClass::Hit
            } else {
                SchedClass::NotReady
            }
        };
        let mut s = FcfsScheduler::new(4, false);
        assert_eq!(s.pick(&entries, &mut classify), Some(RequestId(1)));
    }

    #[test]
    fn fcfs_still_prioritises_reads_until_writes_drain() {
        // Same phase machinery as hit-first: one write does not block
        // a younger read on FB-DIMM (independent write path).
        let entries = [
            entry(1, AccessKind::Write, 0, 0),
            entry(2, AccessKind::DemandRead, 1, 0),
        ];
        let mut classify = |_: &QueueEntry| SchedClass::Ready;
        let mut s = FcfsScheduler::new(4, false);
        assert_eq!(s.pick(&entries, &mut classify), Some(RequestId(2)));
    }

    #[test]
    fn spec_builds_from_config() {
        let cfg = MemoryConfig::fbdimm_default();
        let mut policy = FcfsSpec.build(&cfg);
        let empty: Vec<QueueEntry> = Vec::new();
        assert_eq!(policy.pick(&empty, &mut |_| SchedClass::Ready), None);
    }
}
