//! Quickstart: simulate one memory-intensive program on FB-DIMM with and
//! without AMB prefetching and print the headline comparison.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p fbd-core --example quickstart
//! ```

use fbd_core::experiment::{run_workload, ExperimentConfig};
use fbd_types::config::{MemoryConfig, SystemConfig};
use fbd_workloads::Workload;

fn main() {
    // A deterministic run: seed 42, 200k instructions.
    let exp = ExperimentConfig {
        seed: 42,
        budget: 200_000,
        ..Default::default()
    };

    // `swim` is the most bandwidth-hungry of the paper's twelve
    // SPEC2000-like profiles — an ideal showcase for DRAM-level
    // prefetching.
    let workload = Workload::new("1C-swim", &["swim"]);

    // Baseline: the paper's default FB-DIMM system (Table 1): 4 GHz core,
    // 4 MB shared L2, two logical FB-DIMM channels at 667 MT/s, close
    // page, cacheline interleaving.
    let baseline_cfg = SystemConfig::paper_default(1);
    let baseline = run_workload(&baseline_cfg, &workload, &exp);

    // The paper's proposal: region-based AMB prefetching — every demand
    // miss fetches its 4-line region into the AMB's 4 KB prefetch buffer
    // with a single DRAM activation (multi-cacheline interleaving).
    let mut ap_cfg = baseline_cfg;
    ap_cfg.mem = MemoryConfig::fbdimm_with_prefetch();
    let with_ap = run_workload(&ap_cfg, &workload, &exp);

    println!("swim on FB-DIMM, {} instructions:", exp.budget);
    println!();
    println!("                         FBD     FBD-AP");
    println!(
        "  IPC                  {:>6.3}     {:>6.3}",
        baseline.cores[0].ipc(),
        with_ap.cores[0].ipc()
    );
    println!(
        "  avg read latency     {:>5.1}ns    {:>5.1}ns",
        baseline.avg_read_latency_ns(),
        with_ap.avg_read_latency_ns()
    );
    println!(
        "  utilized bandwidth   {:>5.2}GB/s  {:>5.2}GB/s",
        baseline.bandwidth_gbps(),
        with_ap.bandwidth_gbps()
    );
    println!(
        "  DRAM ACT/PRE pairs   {:>7}    {:>7}",
        baseline.mem.dram_ops.act_pre, with_ap.mem.dram_ops.act_pre
    );
    println!();
    println!(
        "  prefetch coverage  {:.1}%   efficiency {:.1}%",
        with_ap.mem.prefetch_coverage() * 100.0,
        with_ap.mem.prefetch_efficiency() * 100.0
    );
    let speedup = with_ap.cores[0].ipc() / baseline.cores[0].ipc();
    println!(
        "  speedup from AMB prefetching: {:+.1}%",
        (speedup - 1.0) * 100.0
    );
}
