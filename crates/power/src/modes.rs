//! Power-mode residency tracking (CKE power-down modelling).
//!
//! The dynamic-energy model in the crate root counts operations; this
//! module reconstructs *when* each rank was busy and what low-power
//! state it occupied in between. The model is the standard DDR idle
//! timeout: after a rank has been idle for `powerdown_after`, the
//! controller drops CKE and the rank enters precharge power-down until
//! the next command. Shorter gaps stay in precharge standby.
//!
//! [`PowerModeTracker`] is fed busy windows (`note_busy`) in any order
//! — the simulator discovers them as accesses are planned, not in time
//! order — and produces a merged, gap-classified span list plus
//! per-mode residency totals. The spans feed the telemetry tracer's
//! power tracks; the residency feeds [`StandbyPower`]-style static
//! energy accounting.
//!
//! [`StandbyPower`]: crate::StandbyPower

use fbd_types::time::{Dur, Time};

/// The power state of one rank over a span of time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PowerMode {
    /// Executing or holding a row open for an access (IDD3N-class).
    Active,
    /// Idle with CKE high, ready to accept a command (IDD2N-class).
    Standby,
    /// Idle with CKE low after the idle timeout (IDD2P-class).
    PowerDown,
}

impl PowerMode {
    /// Short stable label for traces and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            PowerMode::Active => "active",
            PowerMode::Standby => "standby",
            PowerMode::PowerDown => "powerdown",
        }
    }
}

/// One contiguous interval spent in a single power mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModeSpan {
    /// Span start (inclusive).
    pub start: Time,
    /// Span end (exclusive).
    pub end: Time,
    /// Mode held throughout the span.
    pub mode: PowerMode,
}

impl ModeSpan {
    /// Length of the span.
    pub fn dur(&self) -> Dur {
        self.end - self.start
    }
}

/// Time spent in each power mode over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModeResidency {
    /// Total active time.
    pub active: Dur,
    /// Total precharge-standby time.
    pub standby: Dur,
    /// Total precharge-power-down time.
    pub powerdown: Dur,
}

impl ModeResidency {
    /// `active + standby + powerdown` — equals the run length.
    pub fn total(&self) -> Dur {
        self.active + self.standby + self.powerdown
    }
}

/// Merged spans to pre-reserve per tracker. Busy windows overwhelmingly
/// extend or append after the newest span, so the merged set stays
/// small; reserving up front keeps `note_busy` off the allocator in the
/// hot loop (the steady-state allocation gate in `fig_throughput`). A
/// run that somehow accumulates more distinct idle gaps just grows the
/// vector normally.
const MERGED_CAP: usize = 1024;

/// Reconstructs one rank's power-mode timeline from its busy windows.
#[derive(Clone, Debug)]
pub struct PowerModeTracker {
    powerdown_after: Dur,
    /// Busy windows merged as they arrive: sorted by start, pairwise
    /// disjoint and non-touching. Interval union is order-independent,
    /// so this holds exactly what sort-then-merge over the raw windows
    /// would produce, without storing one entry per `note_busy` call.
    busy: Vec<(Time, Time)>,
    /// Raw (non-empty) windows noted, for diagnostics.
    noted: u64,
}

impl PowerModeTracker {
    /// Creates a tracker with the given idle timeout: a gap longer than
    /// `powerdown_after` spends the excess in power-down.
    ///
    /// # Panics
    ///
    /// Panics if the timeout is zero (every gap would power down
    /// instantly, which no controller does — disable tracking instead).
    pub fn new(powerdown_after: Dur) -> PowerModeTracker {
        assert!(
            powerdown_after > Dur::ZERO,
            "power-down timeout must be non-zero"
        );
        PowerModeTracker {
            powerdown_after,
            busy: Vec::with_capacity(MERGED_CAP),
            noted: 0,
        }
    }

    /// Records that the rank was busy over `[start, end)`. Windows may
    /// arrive out of order and may overlap; empty windows are ignored.
    pub fn note_busy(&mut self, start: Time, end: Time) {
        if end <= start {
            return;
        }
        self.noted += 1;
        // Merge into the sorted disjoint set. Touching counts as
        // overlapping (`[0,10)` + `[10,20)` is one active span), same
        // as the `s <= last_end` rule the batch merge used.
        if let Some(&mut (last_start, ref mut last_end)) = self.busy.last_mut() {
            // Hot path: windows almost always land at or after the
            // newest span (accesses are planned roughly in time order).
            if start >= last_start {
                if start <= *last_end {
                    *last_end = (*last_end).max(end);
                } else {
                    self.busy.push((start, end));
                }
                return;
            }
        } else {
            self.busy.push((start, end));
            return;
        }
        // Out-of-order window: splice it into place. `lo` is the first
        // span that could overlap (its end reaches back to `start`).
        let lo = self.busy.partition_point(|&(_, e)| e < start);
        if lo == self.busy.len() || self.busy[lo].0 > end {
            // Fits entirely in a gap (or before the first span).
            self.busy.insert(lo, (start, end));
            return;
        }
        // Overlaps spans `lo..hi`: collapse them into one.
        let hi = self.busy.partition_point(|&(s, _)| s <= end);
        let merged = (start.min(self.busy[lo].0), end.max(self.busy[hi - 1].1));
        self.busy[lo] = merged;
        self.busy.drain(lo + 1..hi);
    }

    /// Number of busy windows noted so far (pre-merge).
    pub fn noted(&self) -> usize {
        self.noted as usize
    }

    /// Busy windows merged into disjoint, time-ordered intervals.
    fn merged(&self) -> &[(Time, Time)] {
        &self.busy
    }

    /// The full mode timeline from `Time::ZERO` to `run_end`: active
    /// spans are the merged busy windows; each idle gap is standby for
    /// up to the timeout, then power-down. Spans are contiguous,
    /// time-ordered, and never empty. The leading gap before the first
    /// access is classified like any other idle period.
    pub fn spans(&self, run_end: Time) -> Vec<ModeSpan> {
        let mut out = Vec::new();
        let mut cursor = Time::ZERO;
        let push_idle = |out: &mut Vec<ModeSpan>, from: Time, to: Time| {
            if to <= from {
                return;
            }
            let standby_end = to.min(from + self.powerdown_after);
            out.push(ModeSpan {
                start: from,
                end: standby_end,
                mode: PowerMode::Standby,
            });
            if to > standby_end {
                out.push(ModeSpan {
                    start: standby_end,
                    end: to,
                    mode: PowerMode::PowerDown,
                });
            }
        };
        for &(s, e) in self.merged() {
            if s >= run_end {
                break;
            }
            push_idle(&mut out, cursor, s);
            out.push(ModeSpan {
                start: s,
                end: e.min(run_end),
                mode: PowerMode::Active,
            });
            cursor = e;
            if cursor >= run_end {
                break;
            }
        }
        push_idle(&mut out, cursor, run_end);
        out
    }

    /// Per-mode totals over `[0, run_end)`; always sums to `run_end`.
    pub fn residency(&self, run_end: Time) -> ModeResidency {
        let mut r = ModeResidency::default();
        for span in self.spans(run_end) {
            match span.mode {
                PowerMode::Active => r.active += span.dur(),
                PowerMode::Standby => r.standby += span.dur(),
                PowerMode::PowerDown => r.powerdown += span.dur(),
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> Time {
        Time::from_ns(ns)
    }

    #[test]
    fn idle_rank_is_standby_then_powerdown() {
        let tracker = PowerModeTracker::new(Dur::from_ns(30));
        let spans = tracker.spans(t(100));
        assert_eq!(
            spans,
            vec![
                ModeSpan {
                    start: t(0),
                    end: t(30),
                    mode: PowerMode::Standby
                },
                ModeSpan {
                    start: t(30),
                    end: t(100),
                    mode: PowerMode::PowerDown
                },
            ]
        );
        let r = tracker.residency(t(100));
        assert_eq!(r.standby, Dur::from_ns(30));
        assert_eq!(r.powerdown, Dur::from_ns(70));
        assert_eq!(r.total(), Dur::from_ns(100));
    }

    #[test]
    fn short_gaps_stay_in_standby() {
        let mut tracker = PowerModeTracker::new(Dur::from_ns(30));
        tracker.note_busy(t(0), t(10));
        tracker.note_busy(t(20), t(40)); // 10 ns gap < timeout
        let spans = tracker.spans(t(40));
        assert_eq!(
            spans,
            vec![
                ModeSpan {
                    start: t(0),
                    end: t(10),
                    mode: PowerMode::Active
                },
                ModeSpan {
                    start: t(10),
                    end: t(20),
                    mode: PowerMode::Standby
                },
                ModeSpan {
                    start: t(20),
                    end: t(40),
                    mode: PowerMode::Active
                },
            ]
        );
    }

    #[test]
    fn overlapping_out_of_order_windows_merge() {
        let mut tracker = PowerModeTracker::new(Dur::from_ns(30));
        tracker.note_busy(t(50), t(70));
        tracker.note_busy(t(10), t(30));
        tracker.note_busy(t(25), t(55)); // bridges both
        tracker.note_busy(t(60), t(60)); // empty: ignored
        assert_eq!(tracker.noted(), 3);
        let spans = tracker.spans(t(70));
        assert_eq!(
            spans,
            vec![
                ModeSpan {
                    start: t(0),
                    end: t(10),
                    mode: PowerMode::Standby
                },
                ModeSpan {
                    start: t(10),
                    end: t(70),
                    mode: PowerMode::Active
                },
            ]
        );
    }

    #[test]
    fn long_gap_splits_at_the_timeout() {
        let mut tracker = PowerModeTracker::new(Dur::from_ns(30));
        tracker.note_busy(t(0), t(10));
        tracker.note_busy(t(100), t(110));
        let r = tracker.residency(t(110));
        assert_eq!(r.active, Dur::from_ns(20));
        assert_eq!(r.standby, Dur::from_ns(30));
        assert_eq!(r.powerdown, Dur::from_ns(60));
        // Spans are contiguous and ordered.
        let spans = tracker.spans(t(110));
        for pair in spans.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert_eq!(spans.first().unwrap().start, t(0));
        assert_eq!(spans.last().unwrap().end, t(110));
    }

    #[test]
    fn busy_past_run_end_is_clamped() {
        let mut tracker = PowerModeTracker::new(Dur::from_ns(30));
        tracker.note_busy(t(90), t(150));
        let spans = tracker.spans(t(100));
        assert_eq!(spans.last().unwrap().end, t(100));
        assert_eq!(tracker.residency(t(100)).total(), Dur::from_ns(100));
        // A window entirely past the end contributes nothing.
        let mut tracker = PowerModeTracker::new(Dur::from_ns(30));
        tracker.note_busy(t(200), t(250));
        assert_eq!(tracker.residency(t(100)).active, Dur::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_timeout_rejected() {
        let _ = PowerModeTracker::new(Dur::ZERO);
    }

    /// The incremental union in `note_busy` must reproduce what
    /// sort-then-merge over the raw windows produces, for any arrival
    /// order — that identity is what lets the tracker avoid storing one
    /// entry per window.
    #[test]
    fn incremental_union_matches_batch_merge() {
        // Deterministic pseudo-random windows (LCG), heavy on overlaps,
        // touches and out-of-order arrivals.
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mut tracker = PowerModeTracker::new(Dur::from_ns(30));
        let mut raw = Vec::new();
        for i in 0..2000 {
            // A mostly-forward cursor with occasional far jumps back,
            // mimicking command-ahead scheduling vs. late write drains.
            let base = i * 7 + next(40);
            let back = if next(10) == 0 { next(200) } else { next(12) };
            let start = base.saturating_sub(back);
            let end = start + 1 + next(25);
            tracker.note_busy(t(start), t(end));
            raw.push((t(start), t(end)));
        }
        // Reference: the old batch algorithm.
        raw.sort();
        let mut merged: Vec<(Time, Time)> = Vec::new();
        for (s, e) in raw {
            match merged.last_mut() {
                Some((_, last_end)) if s <= *last_end => *last_end = (*last_end).max(e),
                _ => merged.push((s, e)),
            }
        }
        assert_eq!(tracker.merged(), merged.as_slice());
        assert_eq!(tracker.noted(), 2000);
        let end = t(2000 * 7 + 100);
        assert_eq!(tracker.residency(end).total(), end - Time::ZERO);
    }
}
