//! Figure 13: DRAM dynamic power/energy of AMB-prefetching variants,
//! normalized to FB-DIMM without prefetching.
//!
//! Both runs commit the same instruction budget, so the normalized
//! dynamic energy compares equal work, as the paper's operation-count
//! method does. Expected shape (paper §5.5): solid savings at the 4-CL
//! default (−29.9% single-core, −14.7% four-core); 8-CL interleaving on
//! 8 cores can *increase* power (the +12.7% extreme case); ACT/PRE
//! counts drop while column counts rise with K.

use fbd_bench::*;
use fbd_core::experiment::ExperimentConfig;
use fbd_power::PowerModel;
use fbd_types::config::Associativity;

fn main() {
    let exp = ExperimentConfig::from_env();
    banner("Figure 13", "normalized DRAM dynamic energy", &exp);
    let model = PowerModel::paper_ratio();

    let points: Vec<(String, u32, u32, Associativity)> = vec![
        ("#CL=2".into(), 2, 64, Associativity::Full),
        ("#CL=4".into(), 4, 64, Associativity::Full),
        ("#CL=8".into(), 8, 64, Associativity::Full),
        ("#entry=32".into(), 4, 32, Associativity::Full),
        ("#entry=128".into(), 4, 128, Associativity::Full),
        ("Set=4".into(), 4, 64, Associativity::Ways(4)),
    ];

    let mut rows = vec![{
        let mut h = vec!["config".to_string()];
        h.extend(workload_groups().iter().map(|(g, _)| g.to_string()));
        h
    }];
    let mut table: Vec<Vec<String>> = points.iter().map(|(l, _, _, _)| vec![l.clone()]).collect();
    let mut op_deltas: Vec<String> = Vec::new();

    for (group, workloads) in workload_groups() {
        let cores = workloads[0].cores();
        let mut configs = vec![("FBD".to_string(), system(Variant::Fbd, cores))];
        configs.extend(
            points
                .iter()
                .map(|(label, k, e, a)| (label.clone(), ap_system(cores, *k, *e, *a))),
        );
        let results = run_matrix(&configs, &workloads, &exp);
        let find = |label: &str, w: &fbd_workloads::Workload| {
            results
                .iter()
                .find(|((c, n), _)| c == label && n == w.name())
                .map(|(_, r)| r.clone())
                .expect("run")
        };
        for (i, (label, _, _, _)) in points.iter().enumerate() {
            let ratios: Vec<f64> = workloads
                .iter()
                .map(|w| {
                    let base = find("FBD", w);
                    let ap = find(label, w);
                    model.normalized(&ap.mem.dram_ops, &base.mem.dram_ops)
                })
                .collect();
            table[i].push(f3(mean(&ratios)));
        }
        // Operation-count shifts for the K sweep (paper §5.5 quotes the
        // 4-core numbers).
        for (label, _, _, _) in points.iter().take(3) {
            let act: Vec<f64> = workloads
                .iter()
                .map(|w| {
                    let b = find("FBD", w);
                    let a = find(label, w);
                    a.mem.dram_ops.act_pre as f64 / b.mem.dram_ops.act_pre as f64
                })
                .collect();
            let col: Vec<f64> = workloads
                .iter()
                .map(|w| {
                    let b = find("FBD", w);
                    let a = find(label, w);
                    a.mem.dram_ops.col_total() as f64 / b.mem.dram_ops.col_total() as f64
                })
                .collect();
            op_deltas.push(format!(
                "{group} {label}: ACT/PRE {} | columns {}",
                pct(mean(&act)),
                pct(mean(&col))
            ));
        }
    }
    rows.extend(table);
    emit_table("fig13_power", &rows);
    println!();
    println!("operation-count shifts vs FBD:");
    for line in op_deltas {
        println!("  {line}");
    }
    println!();
    println!("paper: 4-CL saves 29.9% (1-core) / 14.7% (4-core); 8-CL on 8 cores can increase power (+12.7%)");
}
