//! The Advanced Memory Buffer engine: the logic on each DIMM that turns
//! channel commands into DDR2 device operations.
//!
//! One [`AmbDimm`] owns the DRAM devices of one logical DIMM (a ganged
//! pair of physical DIMMs operating in lockstep): its banks and its
//! private DDR2 data bus. It executes three operations on behalf of the
//! memory controller:
//!
//! * [`read_line`](AmbDimm::read_line) — a normal single-line read;
//! * [`fetch_group`](AmbDimm::fetch_group) — the paper's group fetch:
//!   one activation followed by K pipelined column reads, the demanded
//!   line first (paper §3.2);
//! * [`write_line`](AmbDimm::write_line) — a line write.
//!
//! Data timing is *cut-through*: the AMB forwards beats to the
//! northbound link as the DRAM produces them, so a read's data is ready
//! for the channel at the DRAM burst start.

use fbd_dram::{BankArray, ColKind, ColumnOp, DataBus};
use fbd_types::config::DramTimings;
use fbd_types::stats::DramOpCounts;
use fbd_types::time::{Dur, Time};

/// Outcome of a single-line read at the DRAM devices.
///
/// Beyond the timing-critical `data_ready`, the outcome carries the
/// command instants and the data window so event tracers can draw the
/// access (ACT span, column command, burst) without re-planning it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Instant the first data beats exist at the AMB (northbound
    /// forwarding may start here).
    pub data_ready: Time,
    /// True if the read hit an open row (open-page mode only).
    pub row_hit: bool,
    /// Activate command time, when the row had to be opened.
    pub act_at: Option<Time>,
    /// Column (read) command time.
    pub cmd_at: Time,
    /// End of the data burst on the DIMM's DDR2 bus.
    pub data_end: Time,
}

impl ReadOutcome {
    /// Instant the bank started serving this access: the activate when
    /// the row had to be opened, otherwise the column command. Time
    /// before this is bank-availability wait, attributed to the DRAM
    /// wait stage by the latency profiler.
    pub fn service_start(&self) -> Time {
        self.act_at.unwrap_or(self.cmd_at)
    }
}

/// Outcome of a K-line group fetch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupFetchOutcome {
    /// Instant the *demanded* line's data is ready at the AMB (it is
    /// fetched with the first column access).
    pub demanded_ready: Time,
    /// Instant the last prefetched line finishes on the DIMM's DDR2 bus.
    pub fill_done: Time,
    /// Lines actually fetched (K, or fewer if the region is truncated).
    pub lines_fetched: u32,
    /// The group's single activate time, when the row had to be opened.
    pub act_at: Option<Time>,
    /// The demanded line's column command time.
    pub first_cmd_at: Time,
}

impl GroupFetchOutcome {
    /// Instant the bank started serving the group: the shared activate
    /// when the row had to be opened, otherwise the demanded line's
    /// column command. See [`ReadOutcome::service_start`].
    pub fn service_start(&self) -> Time {
        self.act_at.unwrap_or(self.first_cmd_at)
    }
}

/// Outcome of a line write at the DRAM devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Activate command time, when the row had to be opened.
    pub act_at: Option<Time>,
    /// Column (write) command time.
    pub cmd_at: Time,
    /// First beat of write data on the DIMM's DDR2 bus.
    pub data_start: Time,
    /// Instant the write data finishes on the DIMM's DDR2 bus.
    pub data_end: Time,
}

impl WriteOutcome {
    /// First visible drain command at the devices (the ACT, or the
    /// write command on an open row). Time before this is the AMB
    /// buffering the posted write until its bank can take the drain,
    /// attributed to the AMB stage by the latency profiler.
    pub fn service_start(&self) -> Time {
        self.act_at.unwrap_or(self.cmd_at)
    }
}

/// One logical DIMM: its AMB engine plus the DRAM devices behind it.
///
/// A DIMM may carry multiple ranks; each rank is an independent timing
/// domain (its own tRRD/tWTR windows) but all ranks share the DIMM's
/// DDR2 data bus — only one rank transfers at a time (paper §3.2).
#[derive(Clone, Debug)]
pub struct AmbDimm {
    ranks: Vec<BankArray>,
    bus: DataBus,
    burst: Dur,
    close_page: bool,
}

impl AmbDimm {
    /// Creates a single-rank DIMM with `banks` logical banks.
    ///
    /// `burst` is the DDR2-bus time for one 64-byte line on this (ganged)
    /// DIMM; `close_page` selects auto-precharge on the final column
    /// access of every operation.
    pub fn new(
        banks: usize,
        timings: DramTimings,
        clock: Dur,
        burst: Dur,
        close_page: bool,
    ) -> AmbDimm {
        AmbDimm::with_ranks(1, banks, timings, clock, burst, close_page)
    }

    /// Creates a DIMM with `ranks` ranks of `banks` logical banks each.
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is zero.
    pub fn with_ranks(
        ranks: usize,
        banks: usize,
        timings: DramTimings,
        clock: Dur,
        burst: Dur,
        close_page: bool,
    ) -> AmbDimm {
        assert!(ranks > 0, "a DIMM must have at least one rank");
        AmbDimm {
            ranks: (0..ranks)
                .map(|_| BankArray::new(banks, timings, clock))
                .collect(),
            bus: DataBus::new(clock),
            burst,
            close_page,
        }
    }

    fn rank(&self, rank: usize) -> &BankArray {
        &self.ranks[rank]
    }

    /// True if `row` is open in `(rank, bank)` (for hit-first
    /// scheduling).
    pub fn is_row_open_at(&self, rank: usize, bank: usize, row: u32) -> bool {
        self.rank(rank).is_row_open(bank, row)
    }

    /// Single-rank convenience for [`is_row_open_at`](Self::is_row_open_at).
    pub fn is_row_open(&self, bank: usize, row: u32) -> bool {
        self.is_row_open_at(0, bank, row)
    }

    /// Earliest instant `(rank, bank)` could accept an activate (for
    /// bank-readiness-aware scheduling).
    pub fn earliest_act_at(&self, rank: usize, bank: usize) -> Time {
        self.rank(rank).earliest_act(bank)
    }

    /// Earliest read command on `rank` given tWTR (for scheduling).
    pub fn read_turnaround_until(&self, rank: usize) -> Time {
        self.rank(rank).read_turnaround_until()
    }

    /// Single-rank convenience for [`earliest_act_at`](Self::earliest_act_at).
    pub fn earliest_act(&self, bank: usize) -> Time {
        self.earliest_act_at(0, bank)
    }

    /// Performs a single-line read on `(rank, bank)`; commands may not
    /// issue before `not_before` (the command's arrival at this AMB).
    pub fn read_line_at(
        &mut self,
        rank: usize,
        bank: usize,
        row: u32,
        not_before: Time,
    ) -> ReadOutcome {
        let op = ColumnOp {
            kind: ColKind::Read,
            auto_precharge: self.close_page,
            burst: self.burst,
        };
        let plan = self.ranks[rank].plan(bank, row, op, not_before, &self.bus);
        let row_hit = !plan.is_row_miss();
        self.ranks[rank].commit(&plan, &mut self.bus);
        ReadOutcome {
            data_ready: plan.data_start,
            row_hit,
            act_at: plan.act_at,
            cmd_at: plan.cmd_at,
            data_end: plan.data_end,
        }
    }

    /// Single-rank convenience for [`read_line_at`](Self::read_line_at).
    pub fn read_line(&mut self, bank: usize, row: u32, not_before: Time) -> ReadOutcome {
        self.read_line_at(0, bank, row, not_before)
    }

    /// Performs the group fetch: one activation (if needed) plus
    /// `lines` pipelined column reads on one row, demanded line first.
    /// Close-page mode auto-precharges with the final column access, so
    /// the whole group costs a single ACT/PRE pair.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero.
    pub fn fetch_group(
        &mut self,
        bank: usize,
        row: u32,
        lines: u32,
        not_before: Time,
    ) -> GroupFetchOutcome {
        self.fetch_group_at(0, bank, row, lines, not_before)
    }

    /// [`fetch_group`](Self::fetch_group) on a specific rank.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero.
    pub fn fetch_group_at(
        &mut self,
        rank: usize,
        bank: usize,
        row: u32,
        lines: u32,
        not_before: Time,
    ) -> GroupFetchOutcome {
        assert!(lines > 0, "group fetch needs at least one line");
        let mut demanded_ready = Time::ZERO;
        let mut fill_done = Time::ZERO;
        let mut act_at = None;
        let mut first_cmd_at = Time::ZERO;
        for i in 0..lines {
            let op = ColumnOp {
                kind: ColKind::Read,
                auto_precharge: self.close_page && i == lines - 1,
                burst: self.burst,
            };
            let plan = self.ranks[rank].plan(bank, row, op, not_before, &self.bus);
            self.ranks[rank].commit(&plan, &mut self.bus);
            if i == 0 {
                demanded_ready = plan.data_start;
                act_at = plan.act_at;
                first_cmd_at = plan.cmd_at;
            }
            fill_done = plan.data_end;
        }
        GroupFetchOutcome {
            demanded_ready,
            fill_done,
            lines_fetched: lines,
            act_at,
            first_cmd_at,
        }
    }

    /// Performs a line write; the outcome's `data_end` is the instant
    /// the write data finishes on the DIMM's DDR2 bus.
    pub fn write_line(&mut self, bank: usize, row: u32, not_before: Time) -> WriteOutcome {
        self.write_line_at(0, bank, row, not_before)
    }

    /// [`write_line`](Self::write_line) on a specific rank.
    pub fn write_line_at(
        &mut self,
        rank: usize,
        bank: usize,
        row: u32,
        not_before: Time,
    ) -> WriteOutcome {
        let op = ColumnOp {
            kind: ColKind::Write,
            auto_precharge: self.close_page,
            burst: self.burst,
        };
        let plan = self.ranks[rank].plan(bank, row, op, not_before, &self.bus);
        self.ranks[rank].commit(&plan, &mut self.bus);
        WriteOutcome {
            act_at: plan.act_at,
            cmd_at: plan.cmd_at,
            data_start: plan.data_start,
            data_end: plan.data_end,
        }
    }

    /// Performs an all-bank auto-refresh of every rank requested at
    /// `at`; returns when the banks become usable again.
    pub fn refresh(&mut self, at: Time, t_rfc: Dur) -> Time {
        self.ranks
            .iter_mut()
            .map(|r| r.refresh_all(at, t_rfc))
            .max()
            .expect("at least one rank")
    }

    /// Number of ranks on this DIMM.
    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }

    /// DRAM operation counters of one rank (per-rank power-model
    /// inputs).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn rank_ops(&self, rank: usize) -> &DramOpCounts {
        self.ranks[rank].ops()
    }

    /// DRAM operation counters (power-model inputs), summed over ranks.
    pub fn ops(&self) -> DramOpCounts {
        let mut total = DramOpCounts::default();
        for r in &self.ranks {
            total.merge(r.ops());
        }
        total
    }

    /// Time the DIMM's DDR2 data bus has carried data.
    pub fn bus_busy(&self) -> Dur {
        self.bus.busy_time()
    }

    /// Total rank-active time summed over this DIMM's ranks (for
    /// static-power accounting).
    pub fn active_time(&self) -> Dur {
        self.ranks.iter().map(BankArray::active_time).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLK: Dur = Dur::from_ns(3);
    const BURST: Dur = Dur::from_ns(6);

    fn dimm() -> AmbDimm {
        AmbDimm::new(4, DramTimings::ddr2_table2(), CLK, BURST, true)
    }

    #[test]
    fn single_read_data_ready_after_rcd_plus_cl() {
        let mut d = dimm();
        let out = d.read_line(0, 5, Time::from_ns(15));
        // ACT@15, RD@30, data@45 — the DRAM part of the 63 ns budget.
        assert_eq!(out.data_ready, Time::from_ns(45));
        assert!(!out.row_hit);
        assert_eq!(out.act_at, Some(Time::from_ns(15)));
        assert_eq!(out.cmd_at, Time::from_ns(30));
        assert_eq!(out.data_end, Time::from_ns(51));
        assert_eq!(d.ops().act_pre, 1);
        assert_eq!(d.ops().col_reads, 1);
    }

    #[test]
    fn group_fetch_single_activation_k_columns() {
        let mut d = dimm();
        let out = d.fetch_group(0, 5, 4, Time::from_ns(15));
        assert_eq!(out.demanded_ready, Time::from_ns(45));
        assert_eq!(out.act_at, Some(Time::from_ns(15)));
        assert_eq!(out.first_cmd_at, Time::from_ns(30));
        // Demanded line is not delayed by the prefetch columns.
        let mut d2 = dimm();
        let single = d2.read_line(0, 5, Time::from_ns(15));
        assert_eq!(out.demanded_ready, single.data_ready);
        // 4 bursts of 6 ns pipelined back-to-back.
        assert_eq!(out.fill_done, Time::from_ns(45 + 24));
        assert_eq!(d.ops().act_pre, 1);
        assert_eq!(d.ops().col_reads, 4);
        assert_eq!(out.lines_fetched, 4);
    }

    #[test]
    fn group_fetch_delays_next_access_to_same_bank() {
        let mut d = dimm();
        d.fetch_group(0, 5, 8, Time::ZERO);
        let out = d.read_line(0, 6, Time::ZERO);
        // The bank reopens only after the group's auto-precharge.
        let mut d2 = dimm();
        d2.read_line(0, 5, Time::ZERO);
        let after_single = d2.read_line(0, 6, Time::ZERO);
        assert!(out.data_ready > after_single.data_ready);
    }

    #[test]
    fn open_page_second_read_is_row_hit() {
        let mut d = AmbDimm::new(4, DramTimings::ddr2_table2(), CLK, BURST, false);
        let first = d.read_line(0, 5, Time::ZERO);
        assert!(!first.row_hit);
        assert!(d.is_row_open(0, 5));
        let second = d.read_line(0, 5, Time::ZERO);
        assert!(second.row_hit);
        assert_eq!(second.act_at, None);
        assert_eq!(d.ops().act_pre, 1);
    }

    #[test]
    fn write_then_read_separated_by_turnaround() {
        let mut d = dimm();
        let wr = d.write_line(0, 1, Time::ZERO);
        // ACT@0, WR@15, data 27..33.
        assert_eq!(wr.act_at, Some(Time::ZERO));
        assert_eq!(wr.cmd_at, Time::from_ns(15));
        assert_eq!(wr.data_start, Time::from_ns(27));
        assert_eq!(wr.data_end, Time::from_ns(33));
        let rd = d.read_line(1, 1, Time::ZERO);
        // RD cmd ≥ 33 + tWTR(9) = 42, data at 57.
        assert_eq!(rd.data_ready, Time::from_ns(57));
        assert_eq!(d.ops().col_writes, 1);
    }

    #[test]
    fn bus_busy_accumulates_bursts() {
        let mut d = dimm();
        d.fetch_group(0, 5, 4, Time::ZERO);
        assert_eq!(d.bus_busy(), Dur::from_ns(24));
    }

    #[test]
    fn ranks_are_independent_timing_domains() {
        let mut d = AmbDimm::with_ranks(2, 4, DramTimings::ddr2_table2(), CLK, BURST, true);
        // Same bank index on two different ranks: no tRC between them.
        let a = d.read_line_at(0, 0, 5, Time::ZERO);
        let b = d.read_line_at(1, 0, 5, Time::ZERO);
        // Rank 1's activate is not held back by rank 0's tRC; only the
        // shared data bus orders the bursts.
        assert!(
            b.data_ready < Time::from_ns(54 + 30),
            "rank 1 delayed by rank 0's tRC"
        );
        assert!(
            b.data_ready >= a.data_ready + Dur::from_ns(6),
            "bus must serialize bursts"
        );
        // Ops are summed over ranks.
        assert_eq!(d.ops().act_pre, 2);
    }

    #[test]
    fn same_rank_same_bank_still_pays_trc() {
        let mut d = AmbDimm::with_ranks(2, 4, DramTimings::ddr2_table2(), CLK, BURST, true);
        d.read_line_at(0, 0, 5, Time::ZERO);
        let b = d.read_line_at(0, 0, 6, Time::ZERO);
        assert!(
            b.data_ready >= Time::from_ns(54 + 30),
            "tRC must apply within a rank"
        );
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = AmbDimm::with_ranks(0, 4, DramTimings::ddr2_table2(), CLK, BURST, true);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn empty_group_rejected() {
        let mut d = dimm();
        d.fetch_group(0, 5, 0, Time::ZERO);
    }
}
