//! Host-throughput trajectory bench: how fast the simulator itself
//! runs, per paper system and workload intensity, with the host
//! profiler's evidence that its own overhead is within budget.
//!
//! Method: run the four paper systems (DDR2, FBD, FBD-AP, FBD-APFL)
//! against three single-core workloads of increasing memory intensity
//! (`1C-parser` low, `1C-equake` medium, `1C-swim` high), each with an
//! enabled [`HostProfiler`], and record wall time, simulated-cycles/sec,
//! instructions/sec and the per-phase wall-time breakdown. Rows run
//! sequentially so each row's wall clock is unshared.
//!
//! The overhead section then certifies the profiler cost claims: a run
//! with an attached-but-disabled profiler must be within 2% of a run
//! with no profiler at all, and an *enabled* profiler within 10% (min
//! of 5 trials each) — stride-sampled marks keep the enabled hot path
//! off the monotonic clock on most iterations.
//!
//! When built with `--features alloc-count`, a final section counts
//! heap allocations across the steady-state window of the hot loop
//! (after the first 1000 retired requests, until the budget is
//! exhausted) and asserts the count is exactly zero.
//!
//! Output: `BENCH_throughput.json` in `$FBD_OUT_DIR` (or the working
//! directory). CI runs this on a small budget, checks every row has a
//! finite positive cycles/sec and a phase-fraction sum ≥ 0.95, and
//! compares the geomean cycles/sec against a committed baseline.

use std::sync::Arc;
use std::time::Instant;

use fbd_bench::*;
use fbd_core::experiment::default_budget;
use fbd_core::{RunResult, RunSpec};
use fbd_telemetry::host::HostProfiler;
use fbd_telemetry::Json;

/// Count every heap allocation so the steady-state section below can
/// certify the hot loop allocates nothing per retired request.
#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: fbd_telemetry::host::alloc::CountingAlloc = fbd_telemetry::host::alloc::CountingAlloc;

/// Workloads by rising memory intensity (ops per 1000 instructions:
/// parser 10, equake 18, swim 30).
const WORKLOADS: [(&str, &str); 3] = [
    ("1C-parser", "low"),
    ("1C-equake", "medium"),
    ("1C-swim", "high"),
];

const VARIANTS: [Variant; 4] = [
    Variant::Ddr2,
    Variant::Fbd,
    Variant::FbdAp,
    Variant::FbdApfl,
];

/// Overhead trials per configuration; the minimum is reported (least
/// scheduler noise).
const OVERHEAD_TRIALS: usize = 5;

fn throughput_row(variant: Variant, workload: &str, intensity: &str) -> (Json, f64) {
    let spec = RunSpec::new(system(variant, 1))
        .workload(workload)
        .experiment(experiment())
        .host_profiler(Arc::new(HostProfiler::enabled()));
    let r: RunResult = spec.run();
    let h = &r.host;
    let cps = h.cycles_per_sec();
    let frac_sum = h.phase_fraction_sum();
    // Self-check the acceptance invariants where the number is made,
    // so a regression fails loudly even outside CI.
    assert!(
        cps.is_finite() && cps > 0.0,
        "{} on {workload}: cycles/sec must be finite and positive, got {cps}",
        variant.label()
    );
    assert!(
        frac_sum >= 0.95,
        "{} on {workload}: phase fractions explain only {frac_sum:.3} of wall time",
        variant.label()
    );
    println!(
        "  {:<9} {workload:<10} {intensity:<7} {:>9.3}s wall  {:>12.0} cyc/s  {:>12.0} instr/s",
        variant.label(),
        h.wall.as_secs_f64(),
        cps,
        h.instr_per_sec()
    );
    let phases: Vec<(String, Json)> = h
        .phases
        .iter()
        .map(|(label, d)| {
            let frac = if h.wall.as_secs_f64() > 0.0 {
                d.as_secs_f64() / h.wall.as_secs_f64()
            } else {
                0.0
            };
            ((*label).to_string(), Json::from(frac))
        })
        .collect();
    let counters: Vec<(String, Json)> = h
        .counters
        .iter()
        .map(|(label, n)| ((*label).to_string(), Json::from(*n)))
        .collect();
    let row = Json::Obj(vec![
        ("system".into(), Json::from(variant.label())),
        ("workload".into(), Json::from(workload)),
        ("intensity".into(), Json::from(intensity)),
        ("wall_s".into(), Json::from(h.wall.as_secs_f64())),
        ("sim_cycles".into(), Json::from(h.sim_cycles)),
        ("instructions".into(), Json::from(h.instructions)),
        ("cycles_per_sec".into(), Json::from(cps)),
        ("instr_per_sec".into(), Json::from(h.instr_per_sec())),
        ("phase_fraction_sum".into(), Json::from(frac_sum)),
        ("phase_fractions".into(), Json::Obj(phases)),
        ("counters".into(), Json::Obj(counters)),
    ]);
    (row, cps)
}

/// One timed run of `spec`.
fn wall_s(spec: &RunSpec) -> f64 {
    let t = Instant::now();
    let r = spec.run();
    // Keep the result alive past the clock read so drop cost is
    // excluded from every arm equally.
    let elapsed = t.elapsed().as_secs_f64();
    drop(r);
    elapsed
}

/// Per-arm minimum wall time over [`OVERHEAD_TRIALS`] rounds, with the
/// arms interleaved round-robin inside each round: host-machine speed
/// drifts on the scale of seconds, so back-to-back blocks of one arm
/// would attribute that drift to the profiler. Interleaving exposes
/// every arm to the same drift.
fn min_walls(specs: &[&RunSpec]) -> Vec<f64> {
    let mut mins = vec![f64::INFINITY; specs.len()];
    for _ in 0..OVERHEAD_TRIALS {
        for (min, spec) in mins.iter_mut().zip(specs) {
            *min = min.min(wall_s(spec));
        }
    }
    mins
}

fn overhead_section() -> Json {
    // Big enough that a 2% difference is above timer noise.
    let exp = fbd_core::experiment::ExperimentConfig {
        budget: default_budget().max(100_000),
        ..experiment()
    };
    let base = RunSpec::new(system(Variant::FbdAp, 1))
        .workload("1C-swim")
        .experiment(exp);
    // One untimed warm-up run so page faults and lazy init are paid
    // before any arm is measured.
    drop(base.run());
    let disabled = base
        .clone()
        .host_profiler(Arc::new(HostProfiler::disabled()));
    let enabled = base
        .clone()
        .host_profiler(Arc::new(HostProfiler::enabled()));
    let mins = min_walls(&[&base, &disabled, &enabled]);
    let (none_s, disabled_s, enabled_s) = (mins[0], mins[1], mins[2]);
    let disabled_ratio = disabled_s / none_s;
    let enabled_ratio = enabled_s / none_s;
    println!(
        "overhead (min of {OVERHEAD_TRIALS}, {} instr): none {none_s:.3}s, \
         disabled profiler {disabled_s:.3}s ({:+.2}%), enabled {enabled_s:.3}s ({:+.2}%)",
        exp.budget,
        (disabled_ratio - 1.0) * 100.0,
        (enabled_ratio - 1.0) * 100.0
    );
    // The zero-cost gate: an attached-but-disabled profiler must be
    // free. A 2ms absolute floor keeps sub-millisecond smoke budgets
    // from tripping on scheduler jitter alone.
    assert!(
        disabled_s <= none_s * 1.02 + 0.002,
        "disabled host profiler costs {:.2}% (> 2% budget)",
        (disabled_ratio - 1.0) * 100.0
    );
    // The enabled profiler is allowed real cost, but stride-sampled
    // marks must keep it under 10% (the pre-sampling hot path cost
    // ≈40%). Same absolute floor as above for tiny budgets.
    assert!(
        enabled_s <= none_s * 1.10 + 0.002,
        "enabled host profiler costs {:.2}% (> 10% budget)",
        (enabled_ratio - 1.0) * 100.0
    );
    Json::Obj(vec![
        ("trials".into(), Json::from(OVERHEAD_TRIALS)),
        ("budget".into(), Json::from(exp.budget)),
        ("none_s".into(), Json::from(none_s)),
        ("disabled_s".into(), Json::from(disabled_s)),
        ("enabled_s".into(), Json::from(enabled_s)),
        ("disabled_ratio".into(), Json::from(disabled_ratio)),
        ("enabled_ratio".into(), Json::from(enabled_ratio)),
    ])
}

/// Runs the hot loop under the counting allocator and returns the
/// allocation count across its steady-state window (started after 1000
/// retired requests, closed when the loop exits), asserting it is
/// exactly zero. Requires `--features alloc-count`; without it the
/// section reports `null` and gates nothing.
fn steady_alloc_section() -> Json {
    // Big enough to retire well over the 1000 requests that open the
    // steady-state window (1C-swim ≈ 30 memory ops / 1000 instr).
    let exp = fbd_core::experiment::ExperimentConfig {
        budget: default_budget().max(100_000),
        ..experiment()
    };
    let spec = RunSpec::new(system(Variant::FbdAp, 1))
        .workload("1C-swim")
        .experiment(exp)
        .host_profiler(Arc::new(HostProfiler::enabled()));
    let r: RunResult = spec.run();
    let steady = r.host.steady_allocations;
    match steady {
        Some(n) => {
            println!("steady-state allocations (after first 1000 retired requests): {n}");
            assert_eq!(
                n, 0,
                "the hot loop allocated {n} times in steady state (must be allocation-free)"
            );
            Json::Obj(vec![
                ("budget".into(), Json::from(exp.budget)),
                ("steady_allocations".into(), Json::from(n)),
            ])
        }
        None => {
            println!("steady-state allocations: not measured (build with --features alloc-count)");
            Json::Obj(vec![
                ("budget".into(), Json::from(exp.budget)),
                ("steady_allocations".into(), Json::Null),
            ])
        }
    }
}

fn main() {
    let exp = fbd_bench::experiment();
    banner(
        "Throughput",
        "host simulation throughput per system and workload intensity",
        &exp,
    );

    let mut rows = Vec::new();
    let mut cps_all = Vec::new();
    for (workload, intensity) in WORKLOADS {
        for variant in VARIANTS {
            let (row, cps) = throughput_row(variant, workload, intensity);
            rows.push(row);
            cps_all.push(cps);
        }
    }
    let geomean = (cps_all.iter().map(|c| c.ln()).sum::<f64>() / cps_all.len() as f64).exp();
    println!(
        "geomean {geomean:.0} simulated cycles per host second over {} rows",
        rows.len()
    );

    let overhead = overhead_section();
    let steady = steady_alloc_section();

    let doc = Json::Obj(vec![
        ("budget".into(), Json::from(exp.budget)),
        ("geomean_cycles_per_sec".into(), Json::from(geomean)),
        ("build".into(), fbd_core::build_info().to_json()),
        ("rows".into(), Json::Arr(rows)),
        ("overhead".into(), overhead),
        ("steady".into(), steady),
    ]);
    let dir = std::env::var("FBD_OUT_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join("BENCH_throughput.json");
    std::fs::write(&path, doc.to_json_pretty(2)).expect("write BENCH_throughput.json");
    println!("wrote {}", path.display());
}
