//! The multiprogrammed workload mixes of the paper's Table 3, plus the
//! twelve single-program workloads.
//!
//! Workload names follow the paper: `2C-1` … `2C-6`, `4C-1` … `4C-6`,
//! `8C-1` … `8C-3`; single-program workloads are named after their
//! benchmark (e.g. `1C-swim`).

use fbd_cpu::TraceSource;

use crate::generator::SyntheticTrace;
use crate::profile::{by_name, BenchmarkProfile};

/// Cores' working sets are spaced this many lines apart (512 MB) so
/// programs never share data.
const CORE_SPACING_LINES: u64 = (512 << 20) / 64;

/// One named workload: a set of benchmarks, one per core.
#[derive(Clone, Debug)]
pub struct Workload {
    name: String,
    benchmarks: Vec<&'static BenchmarkProfile>,
}

impl Workload {
    /// Builds a workload from benchmark names.
    ///
    /// # Panics
    ///
    /// Panics if a name is not one of the twelve profiles.
    pub fn new(name: impl Into<String>, benchmarks: &[&str]) -> Workload {
        Workload {
            name: name.into(),
            benchmarks: benchmarks
                .iter()
                .map(|n| by_name(n).unwrap_or_else(|| panic!("unknown benchmark {n}")))
                .collect(),
        }
    }

    /// Workload name (`2C-1`, `1C-swim`, ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cores this workload occupies.
    pub fn cores(&self) -> u32 {
        self.benchmarks.len() as u32
    }

    /// The benchmark profiles, in core order.
    pub fn benchmarks(&self) -> &[&'static BenchmarkProfile] {
        &self.benchmarks
    }

    /// Builds one deterministic trace per core for run `seed`.
    pub fn traces(&self, seed: u64) -> Vec<Box<dyn TraceSource>> {
        self.benchmarks
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let base = i as u64 * CORE_SPACING_LINES;
                Box::new(SyntheticTrace::new(
                    p,
                    base,
                    seed.wrapping_add(i as u64 * 0x9e37_79b9),
                )) as Box<dyn TraceSource>
            })
            .collect()
    }
}

/// The twelve single-program workloads (`1C-<name>`).
pub fn single_core_workloads() -> Vec<Workload> {
    crate::profile::PROFILES
        .iter()
        .map(|p| Workload::new(format!("1C-{}", p.name), &[p.name]))
        .collect()
}

/// Table 3's two-core mixes.
pub fn two_core_workloads() -> Vec<Workload> {
    vec![
        Workload::new("2C-1", &["wupwise", "swim"]),
        Workload::new("2C-2", &["mgrid", "applu"]),
        Workload::new("2C-3", &["vpr", "equake"]),
        Workload::new("2C-4", &["facerec", "lucas"]),
        Workload::new("2C-5", &["fma3d", "parser"]),
        Workload::new("2C-6", &["gap", "vortex"]),
    ]
}

/// Table 3's four-core mixes.
pub fn four_core_workloads() -> Vec<Workload> {
    vec![
        Workload::new("4C-1", &["wupwise", "swim", "mgrid", "applu"]),
        Workload::new("4C-2", &["vpr", "equake", "facerec", "lucas"]),
        Workload::new("4C-3", &["fma3d", "parser", "gap", "vortex"]),
        Workload::new("4C-4", &["wupwise", "mgrid", "vpr", "facerec"]),
        Workload::new("4C-5", &["fma3d", "gap", "swim", "applu"]),
        Workload::new("4C-6", &["equake", "lucas", "parser", "vortex"]),
    ]
}

/// Table 3's eight-core mixes.
pub fn eight_core_workloads() -> Vec<Workload> {
    vec![
        Workload::new(
            "8C-1",
            &[
                "wupwise", "swim", "mgrid", "applu", "vpr", "equake", "facerec", "lucas",
            ],
        ),
        Workload::new(
            "8C-2",
            &[
                "wupwise", "swim", "mgrid", "applu", "fma3d", "parser", "gap", "vortex",
            ],
        ),
        Workload::new(
            "8C-3",
            &[
                "vpr", "equake", "facerec", "lucas", "fma3d", "parser", "gap", "vortex",
            ],
        ),
    ]
}

/// Every workload of the paper's evaluation, grouped as
/// (single, dual, four, eight).
pub fn paper_workloads() -> (Vec<Workload>, Vec<Workload>, Vec<Workload>, Vec<Workload>) {
    (
        single_core_workloads(),
        two_core_workloads(),
        four_core_workloads(),
        eight_core_workloads(),
    )
}

/// Resolves one of the paper's workloads by name (`1C-swim`, `4C-2`,
/// `8C-3`, …). Returns `None` for an unknown name.
pub fn find(name: &str) -> Option<Workload> {
    let (c1, c2, c4, c8) = paper_workloads();
    c1.into_iter()
        .chain(c2)
        .chain(c4)
        .chain(c8)
        .find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_mix_composition() {
        let two = two_core_workloads();
        assert_eq!(two.len(), 6);
        assert_eq!(two[0].benchmarks()[0].name, "wupwise");
        assert_eq!(two[0].benchmarks()[1].name, "swim");
        assert_eq!(two[5].benchmarks()[1].name, "vortex");

        let four = four_core_workloads();
        assert_eq!(four.len(), 6);
        assert_eq!(
            four[4]
                .benchmarks()
                .iter()
                .map(|b| b.name)
                .collect::<Vec<_>>(),
            vec!["fma3d", "gap", "swim", "applu"]
        );

        let eight = eight_core_workloads();
        assert_eq!(eight.len(), 3);
        assert!(eight.iter().all(|w| w.cores() == 8));
    }

    #[test]
    fn single_core_covers_all_benchmarks() {
        let singles = single_core_workloads();
        assert_eq!(singles.len(), 12);
        assert!(singles.iter().all(|w| w.cores() == 1));
        assert_eq!(singles[1].name(), "1C-swim");
    }

    #[test]
    fn traces_match_core_count_and_are_disjoint() {
        let w = four_core_workloads().remove(0);
        let mut traces = w.traces(99);
        assert_eq!(traces.len(), 4);
        // Cores' address regions must not overlap.
        let mut ranges = Vec::new();
        for (i, t) in traces.iter_mut().enumerate() {
            let mut lo = u64::MAX;
            let mut hi = 0;
            for _ in 0..500 {
                let op = t.next_op().unwrap();
                lo = lo.min(op.line.as_u64());
                hi = hi.max(op.line.as_u64());
            }
            ranges.push((i, lo, hi));
        }
        for (i, lo1, hi1) in &ranges {
            for (j, lo2, hi2) in &ranges {
                if i != j {
                    assert!(hi1 < lo2 || hi2 < lo1, "cores {i} and {j} overlap");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_rejected() {
        let _ = Workload::new("bad", &["mcf"]);
    }
}
