//! Latency-attribution invariants (ISSUE 3 + ISSUE 4 acceptance
//! criteria).
//!
//! For deterministic seeds, every completed read's and write's stage
//! durations must sum exactly to its end-to-end latency on every system
//! variant, AMB-hit reads must record zero DRAM-bank time, AMB-buffered
//! writes must record zero DRAM-wait time (buffering is charged to the
//! AMB stage until the drain), and enabling AMB prefetching must
//! visibly shift demand-read time out of the DRAM-bank stage. Write
//! traffic must also conserve across counter levels: channel writes
//! equal the summed per-DIMM column writes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fbd_core::{Issued, MemorySystem, RunResult, RunSpec};
use fbd_telemetry::{LogHistogram, MetricValue, TelemetryConfig};
use fbd_types::request::{AccessKind, CoreId, MemRequest, ReqClass, Stage, REQ_CLASSES, STAGES};
use fbd_types::substrate::substrates;
use fbd_types::time::{Dur, Time};
use fbd_types::{LineAddr, RequestId};

const BUDGET: u64 = 40_000;
const SEED: u64 = 42;

fn run(system: &str, workload: &str) -> RunResult {
    let mem = substrates().get(system).expect("known system").config();
    RunSpec::paper_default(fbd_workloads::find(workload).expect("workload").cores())
        .workload(workload)
        .memory(mem)
        .budget(BUDGET)
        .seed(SEED)
        .run()
}

#[test]
fn stage_sums_equal_end_to_end_latency_on_every_system() {
    for system in ["ddr2", "fbd", "fbd-ap", "fbd-apfl"] {
        let r = run(system, "1C-swim");
        let p = &r.profile;
        assert_eq!(
            p.mismatches(),
            0,
            "{system}: some reads' stage durations did not sum to their latency"
        );
        let total_reads = r.mem.demand_reads + r.mem.sw_prefetch_reads + r.mem.hw_prefetch_reads;
        assert_eq!(
            p.reads(),
            total_reads,
            "{system}: profile must cover every completed read"
        );
        assert!(p.reads() > 0, "{system}: workload must issue reads");
        // The same identity holds on the write path: every retired
        // write is stamped, and its stage durations sum to its
        // accept-to-drain latency.
        assert_eq!(
            p.write_mismatches(),
            0,
            "{system}: some writes' stage durations did not sum to their latency"
        );
        assert_eq!(
            p.writes(),
            r.mem.writes,
            "{system}: profile must cover every retired write"
        );
        assert!(p.writes() > 0, "{system}: workload must issue writebacks");
        // Per class, every stage histogram carries one sample per read.
        for class in REQ_CLASSES {
            let n = p.end_to_end(class).count();
            for stage in STAGES {
                assert_eq!(
                    p.stage(class, stage).count(),
                    n,
                    "{system}: {}/{} sample count",
                    class.label(),
                    stage.label()
                );
            }
        }
    }
}

#[test]
fn amb_hits_record_zero_dram_bank_time() {
    let r = run("fbd-ap", "1C-swim");
    let p = &r.profile;
    assert_eq!(
        p.end_to_end(ReqClass::AmbHit).count(),
        r.mem.amb_hits,
        "every AMB hit lands in the AmbHit class"
    );
    assert!(r.mem.amb_hits > 0, "swim must hit the AMB prefetch buffer");
    for stage in STAGES.iter().filter(|s| s.is_dram()) {
        let h = p.stage(ReqClass::AmbHit, *stage);
        assert_eq!(
            h.max(),
            Dur::ZERO,
            "AMB hits must spend zero time in {}",
            stage.label()
        );
    }
    assert_eq!(p.dram_bank(ReqClass::AmbHit).max(), Dur::ZERO);
    // The full-latency ablation also bypasses the bank: its charge goes
    // to AMB processing, not to the DRAM stages.
    let fl = run("fbd-apfl", "1C-swim");
    let hits = fl.profile.stage(ReqClass::AmbHit, Stage::AmbProc);
    assert!(fl.mem.amb_hits > 0);
    assert!(
        hits.mean_ns() > 0.0,
        "FBD-APFL charges tRCD+tCL as AMB processing time"
    );
    assert_eq!(fl.profile.dram_bank(ReqClass::AmbHit).max(), Dur::ZERO);
}

#[test]
fn amb_prefetch_shifts_demand_p50_out_of_the_dram_stage() {
    // Paper-default FB-DIMM, 1C-swim: without prefetching the typical
    // demand read pays the DRAM bank pipeline; with AMB prefetching the
    // typical demand-class read (demand + AMB hit) pays none of it.
    let base = run("fbd", "1C-swim");
    let ap = run("fbd-ap", "1C-swim");

    let base_p50 = base.profile.dram_bank(ReqClass::Demand).percentile(0.50);
    assert!(
        base_p50 > Dur::ZERO,
        "without prefetching the median demand read must touch the bank"
    );

    let mut ap_demand = LogHistogram::new();
    ap_demand.merge(ap.profile.dram_bank(ReqClass::Demand));
    ap_demand.merge(ap.profile.dram_bank(ReqClass::AmbHit));
    let ap_p50 = ap_demand.percentile(0.50);
    assert!(
        ap_p50 < base_p50,
        "AMB prefetching must shift p50 demand-read DRAM-bank time down \
         (base {:.1} ns vs ap {:.1} ns)",
        base_p50.as_ns_f64(),
        ap_p50.as_ns_f64()
    );
    // And the shift shows up end-to-end, not only in the decomposition.
    assert!(ap.mem.amb_hits > 0);
    let base_e2e = base.profile.end_to_end(ReqClass::Demand).mean_ns();
    let mut ap_e2e = LogHistogram::new();
    ap_e2e.merge(ap.profile.end_to_end(ReqClass::Demand));
    ap_e2e.merge(ap.profile.end_to_end(ReqClass::AmbHit));
    assert!(
        ap_e2e.mean_ns() < base_e2e,
        "prefetching must lower mean demand latency ({:.1} vs {:.1} ns)",
        base_e2e,
        ap_e2e.mean_ns()
    );
}

#[test]
fn amb_buffered_writes_record_zero_dram_wait_until_drain() {
    // On FB-DIMM systems the AMB buffers the posted write until its
    // bank can take the drain: bank-availability wait is charged to the
    // AMB stage, so writes record zero DRAM-wait time, and (writes being
    // posted) zero northbound time.
    for system in ["fbd", "fbd-ap", "fbd-apfl"] {
        let r = run(system, "1C-swim");
        let p = &r.profile;
        assert!(p.writes() > 0, "{system}: workload must issue writebacks");
        for stage in [Stage::DramWait, Stage::NorthQueue, Stage::NorthLink] {
            assert_eq!(
                p.stage(ReqClass::Write, stage).max(),
                Dur::ZERO,
                "{system}: buffered writes must spend zero time in {}",
                stage.label()
            );
        }
    }
    // The DDR2 baseline has no AMB: a write into a busy bank does pay a
    // DRAM-wait (precharge/turnaround) window on the shared bus.
    let ddr2 = run("ddr2", "1C-swim");
    assert!(ddr2.profile.writes() > 0);
}

#[test]
fn channel_writes_equal_summed_dimm_col_writes() {
    // Write-counter conservation on a write-only stream: the channel
    // write counters must agree with the per-DIMM column-write counters
    // on every system — including the DDR2 batch-drain path, which this
    // stream trips (all-write queue, drain threshold exceeded).
    for system in ["ddr2", "fbd", "fbd-ap", "fbd-apfl"] {
        let cfg = substrates().get(system).expect("known system").config();
        let mut mem = MemorySystem::new(&cfg);
        mem.enable_telemetry(&TelemetryConfig::default());

        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
        enum Ev {
            Done(u32),
            Decide(u32),
        }
        let mut events: BinaryHeap<Reverse<(Time, Ev)>> = BinaryHeap::new();
        let total: u64 = 300;
        for i in 0..total {
            // Strided lines spread the stream over channels, DIMMs and
            // banks; the tight arrival pitch keeps the queue deep enough
            // to engage the DDR2 write-drain batch.
            let req = MemRequest::new(
                RequestId(i),
                CoreId(0),
                AccessKind::Write,
                LineAddr::new(i * 7),
                Time::from_ns(i * 4),
            );
            let (ch, ready) = mem.submit(req);
            events.push(Reverse((ready, Ev::Decide(ch))));
        }
        while let Some(Reverse((t, ev))) = events.pop() {
            match ev {
                Ev::Decide(ch) => {
                    let result = mem.decide(ch, t);
                    for issued in result.issued {
                        let done = match issued {
                            Issued::Read { resp } => resp.completion,
                            Issued::Write { done } => done,
                        };
                        events.push(Reverse((done.max(t), Ev::Done(ch))));
                    }
                    if let Some(next) = result.next_decision {
                        events.push(Reverse((next.max(t), Ev::Decide(ch))));
                    }
                }
                Ev::Done(ch) => {
                    mem.complete(ch);
                    if mem.has_work(ch) {
                        events.push(Reverse((t, Ev::Decide(ch))));
                    }
                }
            }
        }

        let reg = &mem.telemetry().expect("telemetry enabled").registry;
        let counter = |path: &str| -> u64 {
            let id = reg
                .lookup(path)
                .unwrap_or_else(|| panic!("{path} registered"));
            match reg.value(id) {
                MetricValue::Counter(n) => n,
                other => panic!("{path} is not a counter: {other:?}"),
            }
        };
        let mut chan_total = 0;
        for c in 0..cfg.logical_channels {
            let chan_writes = counter(&format!("chan{c}.writes"));
            let dimm_sum: u64 = (0..cfg.dimms_per_channel)
                .map(|d| counter(&format!("chan{c}.dimm{d}.col_writes")))
                .sum();
            assert_eq!(
                chan_writes, dimm_sum,
                "{system}: chan{c}.writes must equal its summed per-DIMM col_writes"
            );
            chan_total += chan_writes;
        }
        assert_eq!(
            chan_total, total,
            "{system}: every submitted write must retire exactly once"
        );
        // The always-on counters and the stats roll-up agree too.
        let counted: u64 = mem.channel_counters().iter().map(|c| c.writes).sum();
        assert_eq!(counted, total);
        assert_eq!(mem.stats().dram_ops.col_writes, total);
        assert_eq!(mem.stats().misrouted_writes, 0);
        // And the profile stamped every one of them consistently.
        assert_eq!(mem.latency_profile().writes(), total);
        assert_eq!(mem.latency_profile().write_mismatches(), 0);
    }
}

#[test]
fn profile_is_deterministic_and_folded_export_is_well_formed() {
    let a = run("fbd-ap", "1C-swim");
    let b = run("fbd-ap", "1C-swim");
    assert_eq!(a.profile.to_folded(), b.profile.to_folded());
    assert_eq!(a.profile.reads(), b.profile.reads());
    assert_eq!(a.profile.writes(), b.profile.writes());

    let folded = a.profile.to_folded();
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("frame + weight");
        let frames: Vec<&str> = stack.split(';').collect();
        assert_eq!(frames.len(), 3, "<root>;<class>;<stage>: {line}");
        assert!(
            frames[0] == "read" || frames[0] == "write",
            "bad root frame: {line}"
        );
        assert!(weight.parse::<u64>().expect("integer weight") > 0);
    }
    // AMB hits never produce DRAM frames.
    assert!(!folded.contains("amb_hit;dram"));
    assert!(folded.contains("read;amb_hit;north"));
    // Write frames are present and carry the write root.
    assert!(
        folded.contains("write;write;"),
        "write frames missing:\n{folded}"
    );
}
