//! Metric registry: named counters, gauges, and latency accumulators.
//!
//! Metrics live under hierarchical dot-separated paths mirroring the
//! simulated topology, e.g. `chan0.dimm2.bank5.act_count` or
//! `amb.prefetch.hits`. Registration returns a dense [`MetricId`]
//! handle; updates through a handle are an array index away, so code
//! that holds its ids pays no hashing on the hot path. Ids are
//! append-only and never invalidated, which the epoch sampler relies
//! on to keep its rows position-aligned.

use std::collections::HashMap;
use std::fmt;

use fbd_types::stats::LatencyStat;
use fbd_types::time::Dur;

use crate::json::Json;

/// Dense handle to a registered metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MetricId(u32);

/// What a metric accumulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing event count.
    Counter,
    /// Last-written instantaneous value (queue depth, occupancy).
    Gauge,
    /// Latency accumulator (count / mean / max).
    Latency,
}

#[derive(Clone, Debug)]
enum Slot {
    Counter(u64),
    Gauge(f64),
    Latency(LatencyStat),
}

/// A point-in-time reading of one metric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    /// Count, mean, and max of the recorded latencies.
    Latency {
        count: u64,
        mean: Option<Dur>,
        max: Option<Dur>,
    },
}

impl MetricValue {
    /// The reading as a plain number for tabular export: counters and
    /// gauges verbatim, latency accumulators as mean nanoseconds.
    pub fn as_f64(&self) -> f64 {
        match self {
            MetricValue::Counter(n) => *n as f64,
            MetricValue::Gauge(v) => *v,
            MetricValue::Latency { mean, .. } => mean.map_or(0.0, Dur::as_ns_f64),
        }
    }
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricValue::Counter(n) => write!(f, "{n}"),
            MetricValue::Gauge(v) => write!(f, "{v}"),
            MetricValue::Latency { count, mean, max } => write!(
                f,
                "n={count} mean={:.1}ns max={:.1}ns",
                mean.map_or(0.0, Dur::as_ns_f64),
                max.map_or(0.0, Dur::as_ns_f64),
            ),
        }
    }
}

/// The metric store. One per simulation run.
#[derive(Clone, Debug, Default)]
pub struct MetricRegistry {
    slots: Vec<Slot>,
    paths: Vec<String>,
    index: HashMap<String, MetricId>,
}

impl MetricRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricRegistry {
        MetricRegistry::default()
    }

    /// Registers (or re-resolves) a counter at `path`.
    ///
    /// # Panics
    ///
    /// Panics if `path` is already registered with a different kind.
    pub fn counter(&mut self, path: &str) -> MetricId {
        self.register(path, MetricKind::Counter)
    }

    /// Registers (or re-resolves) a gauge at `path`.
    ///
    /// # Panics
    ///
    /// Panics if `path` is already registered with a different kind.
    pub fn gauge(&mut self, path: &str) -> MetricId {
        self.register(path, MetricKind::Gauge)
    }

    /// Registers (or re-resolves) a latency accumulator at `path`.
    ///
    /// # Panics
    ///
    /// Panics if `path` is already registered with a different kind.
    pub fn latency(&mut self, path: &str) -> MetricId {
        self.register(path, MetricKind::Latency)
    }

    fn register(&mut self, path: &str, kind: MetricKind) -> MetricId {
        if let Some(&id) = self.index.get(path) {
            assert_eq!(
                self.kind(id),
                kind,
                "metric {path:?} already registered as {:?}",
                self.kind(id)
            );
            return id;
        }
        let id = MetricId(u32::try_from(self.slots.len()).expect("too many metrics"));
        self.slots.push(match kind {
            MetricKind::Counter => Slot::Counter(0),
            MetricKind::Gauge => Slot::Gauge(0.0),
            MetricKind::Latency => Slot::Latency(LatencyStat::default()),
        });
        self.paths.push(path.to_string());
        self.index.insert(path.to_string(), id);
        id
    }

    /// Adds `delta` events to a counter.
    #[inline]
    pub fn add(&mut self, id: MetricId, delta: u64) {
        match &mut self.slots[id.0 as usize] {
            Slot::Counter(n) => *n += delta,
            other => panic!("add on non-counter metric {:?}", kind_of(other)),
        }
    }

    /// Sets a gauge to `value`.
    #[inline]
    pub fn set(&mut self, id: MetricId, value: f64) {
        match &mut self.slots[id.0 as usize] {
            Slot::Gauge(v) => *v = value,
            other => panic!("set on non-gauge metric {:?}", kind_of(other)),
        }
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, id: MetricId, sample: Dur) {
        match &mut self.slots[id.0 as usize] {
            Slot::Latency(stat) => stat.record(sample),
            other => panic!("record on non-latency metric {:?}", kind_of(other)),
        }
    }

    /// The kind registered for `id`.
    pub fn kind(&self, id: MetricId) -> MetricKind {
        kind_of(&self.slots[id.0 as usize])
    }

    /// The path registered for `id`.
    pub fn path(&self, id: MetricId) -> &str {
        &self.paths[id.0 as usize]
    }

    /// Resolves a path to its id, if registered.
    pub fn lookup(&self, path: &str) -> Option<MetricId> {
        self.index.get(path).copied()
    }

    /// Current reading of one metric.
    pub fn value(&self, id: MetricId) -> MetricValue {
        match &self.slots[id.0 as usize] {
            Slot::Counter(n) => MetricValue::Counter(*n),
            Slot::Gauge(v) => MetricValue::Gauge(*v),
            Slot::Latency(stat) => MetricValue::Latency {
                count: stat.count(),
                mean: stat.mean(),
                max: stat.max(),
            },
        }
    }

    /// Number of registered metrics. Ids `0..len` are all valid.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// All metrics in registration order as `(path, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, MetricValue)> + '_ {
        self.paths
            .iter()
            .enumerate()
            .map(|(i, p)| (p.as_str(), self.value(MetricId(i as u32))))
    }

    /// All metrics as a JSON object, paths sorted for stable output.
    /// Latency accumulators expand into `.count` / `.mean_ns` / `.max_ns`
    /// leaves so consumers never need to parse a compound value.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = Vec::with_capacity(self.len());
        for (path, value) in self.iter() {
            match value {
                MetricValue::Counter(n) => fields.push((path.to_string(), Json::from(n))),
                MetricValue::Gauge(v) => fields.push((path.to_string(), Json::Num(v))),
                MetricValue::Latency { count, mean, max } => {
                    fields.push((format!("{path}.count"), Json::from(count)));
                    fields.push((
                        format!("{path}.mean_ns"),
                        Json::Num(mean.map_or(0.0, Dur::as_ns_f64)),
                    ));
                    fields.push((
                        format!("{path}.max_ns"),
                        Json::Num(max.map_or(0.0, Dur::as_ns_f64)),
                    ));
                }
            }
        }
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Obj(fields)
    }
}

/// Reconstructs the id for a dense index in `0..registry.len()`.
pub(crate) fn metric_id_from_index(i: usize) -> MetricId {
    MetricId(u32::try_from(i).expect("too many metrics"))
}

fn kind_of(slot: &Slot) -> MetricKind {
    match slot {
        Slot::Counter(_) => MetricKind::Counter,
        Slot::Gauge(_) => MetricKind::Gauge,
        Slot::Latency(_) => MetricKind::Latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_update_read_back() {
        let mut reg = MetricRegistry::new();
        let acts = reg.counter("chan0.dimm0.bank0.act_count");
        let depth = reg.gauge("ctrl.queue.depth");
        let lat = reg.latency("mem.read_latency");

        reg.add(acts, 3);
        reg.add(acts, 2);
        reg.set(depth, 7.0);
        reg.record(lat, Dur::from_ns(40));
        reg.record(lat, Dur::from_ns(60));

        assert_eq!(reg.value(acts), MetricValue::Counter(5));
        assert_eq!(reg.value(depth), MetricValue::Gauge(7.0));
        assert_eq!(
            reg.value(lat),
            MetricValue::Latency {
                count: 2,
                mean: Some(Dur::from_ns(50)),
                max: Some(Dur::from_ns(60)),
            }
        );
    }

    #[test]
    fn reregistration_returns_same_id() {
        let mut reg = MetricRegistry::new();
        let a = reg.counter("amb.prefetch.hits");
        let b = reg.counter("amb.prefetch.hits");
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.lookup("amb.prefetch.hits"), Some(a));
        assert_eq!(reg.path(a), "amb.prefetch.hits");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let mut reg = MetricRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn json_export_is_sorted_and_expands_latency() {
        let mut reg = MetricRegistry::new();
        let lat = reg.latency("z.lat");
        reg.counter("a.count");
        reg.record(lat, Dur::from_ns(10));
        let json = reg.to_json();
        let Json::Obj(fields) = &json else {
            panic!("expected object")
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            ["a.count", "z.lat.count", "z.lat.max_ns", "z.lat.mean_ns"]
        );
        assert_eq!(json.get("z.lat.mean_ns").unwrap().as_f64(), Some(10.0));
    }
}
