//! DRAM power estimation (paper §5.5).
//!
//! The paper counts row and column accesses in simulation and feeds them
//! to the Micron DDR2 system-power calculator, arriving at a ≈4:1 ratio
//! of energy between one activate/precharge pair and one column access
//! (DDR2-667, close page, 70 % bandwidth utilization). This crate
//! reproduces both routes:
//!
//! * [`PowerModel::from_params`] computes per-operation energies from
//!   IDD-style datasheet currents, the same way the Micron calculator
//!   does;
//! * [`PowerModel::paper_ratio`] uses the paper's calibrated 4:1 weights
//!   directly.
//!
//! Only the dynamic energy of the memory devices is modelled; static
//! power (≈17.5 % of total in the paper's configuration) and channel/AMB
//! power are excluded, as in the paper.
//!
//! # Examples
//!
//! The defining trade-off of AMB prefetching: fewer activations, more
//! column accesses. With 4:1 weights, trading one ACT/PRE for up to four
//! column accesses breaks even:
//!
//! ```
//! use fbd_power::PowerModel;
//! use fbd_types::stats::DramOpCounts;
//!
//! let model = PowerModel::paper_ratio();
//! let baseline = DramOpCounts { act_pre: 100, col_reads: 100, col_writes: 0, refreshes: 0 };
//! // K=4 group fetches with 50% coverage: 50 fewer ACTs, 100 extra columns.
//! let with_ap = DramOpCounts { act_pre: 50, col_reads: 200, col_writes: 0, refreshes: 0 };
//! let ratio = model.normalized(&with_ap, &baseline);
//! assert!(ratio < 1.0, "net saving expected, got {ratio}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod modes;

pub use modes::{ModeResidency, ModeSpan, PowerMode, PowerModeTracker};

use fbd_types::stats::DramOpCounts;
use fbd_types::time::Dur;

/// Datasheet-style current/voltage parameters for one DDR2 device
/// generation, as consumed by the Micron power calculator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramPowerParams {
    /// Activate-precharge cycling current (one bank, back-to-back tRC).
    pub idd0_ma: f64,
    /// Active standby current (all banks open, no I/O).
    pub idd3n_ma: f64,
    /// Burst read current.
    pub idd4r_ma: f64,
    /// Burst write current.
    pub idd4w_ma: f64,
    /// Refresh burst current.
    pub idd5_ma: f64,
    /// Supply voltage.
    pub vdd_v: f64,
    /// ACT-to-ACT minimum (energy window of one ACT/PRE pair).
    pub t_rc: Dur,
    /// Data-bus time of one column access's burst.
    pub burst: Dur,
    /// Refresh cycle time (energy window of one all-bank refresh).
    pub t_rfc: Dur,
}

impl DramPowerParams {
    /// Representative DDR2-667 datasheet values (Micron 1 Gb parts),
    /// which yield close to the paper's 4:1 ACT-PRE:column ratio.
    pub fn micron_ddr2_667() -> DramPowerParams {
        DramPowerParams {
            idd0_ma: 90.0,
            idd3n_ma: 35.0,
            idd4r_ma: 145.0,
            idd4w_ma: 155.0,
            idd5_ma: 235.0,
            vdd_v: 1.8,
            t_rc: Dur::from_ns(54),
            burst: Dur::from_ns(6),
            t_rfc: Dur::from_ns(128),
        }
    }
}

/// Per-operation dynamic-energy weights for the memory devices.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerModel {
    e_act_pre_nj: f64,
    e_col_read_nj: f64,
    e_col_write_nj: f64,
    e_refresh_nj: f64,
}

/// Static power share of total device power in the paper's configuration
/// (reported for context; not part of the dynamic normalization).
pub const STATIC_POWER_FRACTION: f64 = 0.175;

/// Standby powers of one rank's devices, for state-residency static
/// energy (extension beyond the paper, which models dynamic energy
/// only).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StandbyPower {
    /// Active standby (row open / transferring): IDD3N-class.
    pub active_mw: f64,
    /// Precharge standby (idle, clock running): IDD2N-class.
    pub idle_mw: f64,
    /// Precharge power-down (CKE low): IDD2P-class.
    pub powerdown_mw: f64,
}

impl StandbyPower {
    /// Representative DDR2-667 values per rank (IDD3N 35 mA, IDD2N
    /// 30 mA, IDD2P 7 mA at 1.8 V).
    pub fn micron_ddr2_667() -> StandbyPower {
        StandbyPower {
            active_mw: 63.0,
            idle_mw: 54.0,
            powerdown_mw: 12.6,
        }
    }

    /// Static energy (nJ) of one rank that was active for `active` out
    /// of `elapsed`, with idle periods either in precharge standby or
    /// (when `powerdown` is set) in precharge power-down.
    ///
    /// # Panics
    ///
    /// Panics if `active` exceeds `elapsed`.
    pub fn static_energy(&self, active: Dur, elapsed: Dur, powerdown: bool) -> f64 {
        assert!(active <= elapsed, "active time cannot exceed elapsed time");
        let idle = elapsed - active;
        let idle_mw = if powerdown {
            self.powerdown_mw
        } else {
            self.idle_mw
        };
        // mW × ns = pJ; divide by 1000 for nJ.
        (self.active_mw * active.as_ns_f64() + idle_mw * idle.as_ns_f64()) / 1_000.0
    }
}

impl PowerModel {
    /// Derives per-operation energies from datasheet currents, Micron
    /// calculator style: the incremental current over active standby,
    /// integrated over the operation's window.
    pub fn from_params(p: &DramPowerParams) -> PowerModel {
        let act_pre = (p.idd0_ma - p.idd3n_ma) * p.vdd_v * p.t_rc.as_ns_f64() * 1e-3;
        let col_rd = (p.idd4r_ma - p.idd3n_ma) * p.vdd_v * p.burst.as_ns_f64() * 1e-3;
        let col_wr = (p.idd4w_ma - p.idd3n_ma) * p.vdd_v * p.burst.as_ns_f64() * 1e-3;
        let refresh = (p.idd5_ma - p.idd3n_ma) * p.vdd_v * p.t_rfc.as_ns_f64() * 1e-3;
        PowerModel {
            e_act_pre_nj: act_pre,
            e_col_read_nj: col_rd,
            e_col_write_nj: col_wr,
            e_refresh_nj: refresh,
        }
    }

    /// The paper's calibrated weights: one ACT/PRE pair costs four column
    /// accesses.
    pub fn paper_ratio() -> PowerModel {
        PowerModel {
            e_act_pre_nj: 4.0,
            e_col_read_nj: 1.0,
            e_col_write_nj: 1.0,
            // One all-bank refresh costs roughly two ACT/PRE pairs of a
            // single bank at the calibrated scale (4 banks refreshed,
            // amortized window).
            e_refresh_nj: 8.0,
        }
    }

    /// Ratio of ACT/PRE energy to (read) column energy.
    pub fn act_to_col_ratio(&self) -> f64 {
        self.e_act_pre_nj / self.e_col_read_nj
    }

    /// Total dynamic energy for a set of operation counts, in the
    /// model's energy units (nJ for [`from_params`](Self::from_params)).
    pub fn dynamic_energy(&self, ops: &DramOpCounts) -> f64 {
        ops.act_pre as f64 * self.e_act_pre_nj
            + ops.col_reads as f64 * self.e_col_read_nj
            + ops.col_writes as f64 * self.e_col_write_nj
            + ops.refreshes as f64 * self.e_refresh_nj
    }

    /// Dynamic energy of `ops` normalized to `baseline` (the paper's
    /// Figure 13 metric). Returns 1.0 when the baseline is empty.
    pub fn normalized(&self, ops: &DramOpCounts, baseline: &DramOpCounts) -> f64 {
        let base = self.dynamic_energy(baseline);
        if base == 0.0 {
            1.0
        } else {
            self.dynamic_energy(ops) / base
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::paper_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micron_params_give_roughly_four_to_one() {
        let model = PowerModel::from_params(&DramPowerParams::micron_ddr2_667());
        let ratio = model.act_to_col_ratio();
        assert!((3.5..5.0).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn paper_ratio_is_exactly_four() {
        assert_eq!(PowerModel::paper_ratio().act_to_col_ratio(), 4.0);
    }

    #[test]
    fn dynamic_energy_weighs_ops() {
        let m = PowerModel::paper_ratio();
        let ops = DramOpCounts {
            act_pre: 10,
            col_reads: 8,
            col_writes: 2,
            refreshes: 0,
        };
        assert_eq!(m.dynamic_energy(&ops), 50.0);
    }

    #[test]
    fn normalized_against_baseline() {
        let m = PowerModel::paper_ratio();
        let base = DramOpCounts {
            act_pre: 100,
            col_reads: 100,
            col_writes: 0,
            refreshes: 0,
        };
        let same = m.normalized(&base, &base);
        assert!((same - 1.0).abs() < 1e-12);
        let empty = DramOpCounts::default();
        assert_eq!(m.normalized(&base, &empty), 1.0);
    }

    #[test]
    fn paper_section55_four_core_example_saves_power() {
        // §5.5: for four-core workloads with 4-line interleaving the
        // ACT/PRE count drops ~33% while column accesses rise ~41%.
        let m = PowerModel::paper_ratio();
        let base = DramOpCounts {
            act_pre: 1000,
            col_reads: 1000,
            col_writes: 0,
            refreshes: 0,
        };
        let ap = DramOpCounts {
            act_pre: 667,
            col_reads: 1412,
            col_writes: 0,
            refreshes: 0,
        };
        let norm = m.normalized(&ap, &base);
        assert!(norm < 0.90, "expected >10% saving, got {norm:.3}");
    }

    #[test]
    fn excessive_column_overhead_can_cost_power() {
        // §5.5 extreme case: 8-line interleaving on 8 cores *increases*
        // power when extra columns outweigh saved activations.
        let m = PowerModel::paper_ratio();
        let base = DramOpCounts {
            act_pre: 1000,
            col_reads: 1000,
            col_writes: 0,
            refreshes: 0,
        };
        let ap = DramOpCounts {
            act_pre: 900,
            col_reads: 2000,
            col_writes: 0,
            refreshes: 0,
        };
        assert!(m.normalized(&ap, &base) > 1.0);
    }

    #[test]
    fn static_energy_accounts_residency_and_powerdown() {
        use fbd_types::time::Dur;
        let sp = StandbyPower::micron_ddr2_667();
        // Fully active for 1 µs: 63 mW × 1000 ns = 63 nJ.
        let e = sp.static_energy(Dur::from_ns(1_000), Dur::from_ns(1_000), false);
        assert!((e - 63.0).abs() < 1e-9);
        // Half active, no power-down: 31.5 + 27 = 58.5 nJ.
        let e = sp.static_energy(Dur::from_ns(500), Dur::from_ns(1_000), false);
        assert!((e - 58.5).abs() < 1e-9);
        // Half active with power-down idle: 31.5 + 6.3 = 37.8 nJ.
        let e = sp.static_energy(Dur::from_ns(500), Dur::from_ns(1_000), true);
        assert!((e - 37.8).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn static_energy_rejects_bad_residency() {
        use fbd_types::time::Dur;
        let sp = StandbyPower::micron_ddr2_667();
        let _ = sp.static_energy(Dur::from_ns(2), Dur::from_ns(1), false);
    }

    #[test]
    fn write_energy_slightly_above_read() {
        let m = PowerModel::from_params(&DramPowerParams::micron_ddr2_667());
        let rd_only = DramOpCounts {
            act_pre: 0,
            col_reads: 1,
            col_writes: 0,
            refreshes: 0,
        };
        let wr_only = DramOpCounts {
            act_pre: 0,
            col_reads: 0,
            col_writes: 1,
            refreshes: 0,
        };
        assert!(m.dynamic_energy(&wr_only) > m.dynamic_energy(&rd_only));
    }
}
