//! Integration tests for the two-fidelity path: calibration caching,
//! the fast model's `RunResult` surface, and (ignored, slow) the
//! held-out accuracy bound the fast fidelity is judged on.

use std::sync::Arc;

use fbd_core::fidelity::pareto_frontier;
use fbd_core::{calibrate, RunSpec, CALIBRATION_FIT_POINTS, CALIBRATION_HOLDOUT_POINTS};

/// Small budget: calibration still runs 14 cycle-accurate points, so
/// keep each one cheap. Accuracy at this budget is sanity-checked
/// loosely; the strict bound runs at the paper budget under `--ignored`.
const QUICK_BUDGET: u64 = 60_000;

fn quick_spec() -> RunSpec {
    RunSpec::paper_default(1)
        .workload("1C-swim")
        .budget(QUICK_BUDGET)
}

#[test]
fn calibration_reports_finite_bounds_and_is_cached() {
    let spec = quick_spec();
    let cal = calibrate(&spec).unwrap();
    let rep = &cal.report;
    assert!(rep.all_finite(), "non-finite calibration report: {rep:?}");
    assert_eq!(rep.fit_points, CALIBRATION_FIT_POINTS);
    assert_eq!(rep.holdout_points, CALIBRATION_HOLDOUT_POINTS);
    assert!(rep.params.service_inflation > 0.0);
    assert!((0.0..=1.5).contains(&rep.params.hit_scaling));
    // Even a quick calibration must stay in the right ballpark; the
    // strict paper-budget bound lives in `holdout_accuracy_bound`.
    assert!(
        rep.ipc.mean_rel < 0.35,
        "quick-budget holdout IPC error {:.3}",
        rep.ipc.mean_rel
    );

    // Same workload + run control: served from the cache (same Arc),
    // which is what lets one sweep pay the accurate runs exactly once.
    let again = calibrate(&quick_spec()).unwrap();
    assert!(Arc::ptr_eq(&cal, &again));

    // A different budget is a different calibration key.
    let other = calibrate(&quick_spec().budget(QUICK_BUDGET + 1)).unwrap();
    assert!(!Arc::ptr_eq(&cal, &other));
}

#[test]
fn fast_run_produces_the_full_result_surface() {
    let spec = quick_spec();
    let cal = calibrate(&spec).unwrap();
    let r = spec.try_run_fast(&cal).unwrap();

    assert_eq!(r.cores.len(), 1);
    assert_eq!(r.cores[0].instructions, QUICK_BUDGET);
    assert!(r.cores[0].cycles > 0);
    let ipc: f64 = r.ipcs().iter().sum();
    assert!(ipc > 0.0 && ipc.is_finite());
    assert!(r.elapsed.as_ps() > 0);
    assert!(r.avg_read_latency_ns() > 0.0);
    assert!(r.bandwidth_gbps() > 0.0);
    assert!(r.energy.total_nj() > 0.0);
    assert_eq!(
        r.channels.len(),
        spec.system().mem.logical_channels as usize
    );
    // The synthesized profile carries per-stage means like a real run.
    assert!(r.mem.demand_reads > 0);
    assert!(r.mem.writes > 0);

    // The model is deterministic: same spec, same calibration, same
    // result.
    let r2 = spec.try_run_fast(&cal).unwrap();
    assert_eq!(r.ipcs(), r2.ipcs());
    assert_eq!(r.energy.total_nj(), r2.energy.total_nj());
}

#[test]
fn fast_run_rejects_core_mismatch() {
    let spec = quick_spec();
    let cal = calibrate(&spec).unwrap();
    let bad = RunSpec::paper_default(2).with_workload(fbd_workloads::find("1C-swim").unwrap());
    assert!(bad.try_run_fast(&cal).is_err());
}

#[test]
fn fast_model_orders_channel_counts_correctly() {
    // The model must reproduce the paper's first-order trend: more
    // channels, more throughput (same workload, same calibration).
    let spec = quick_spec();
    let cal = calibrate(&spec).unwrap();
    let one = spec.try_run_fast(&cal).unwrap();
    let mut sys = *spec.system();
    sys.mem.logical_channels = 4;
    let four = RunSpec::new(sys)
        .with_workload(fbd_workloads::find("1C-swim").unwrap())
        .budget(QUICK_BUDGET)
        .try_run_fast(&cal)
        .unwrap();
    let ipc1: f64 = one.ipcs().iter().sum();
    let ipc4: f64 = four.ipcs().iter().sum();
    assert!(
        ipc4 >= ipc1,
        "4-channel IPC {ipc4:.3} below 1-channel {ipc1:.3}"
    );
}

#[test]
fn pareto_frontier_marks_rerun_candidates() {
    // The auto-fidelity contract: frontier points (max IPC, min
    // energy) are exactly the ones re-run accurately.
    let pts = [(1.0, 100.0), (2.0, 200.0), (1.5, 300.0), (0.5, 50.0)];
    let f = pareto_frontier(&pts);
    assert!(f.contains(&0) && f.contains(&1) && f.contains(&3));
    assert!(!f.contains(&2), "dominated point must not be re-run");
}

/// The acceptance bound: at the paper budget, the calibrated model's
/// mean relative IPC error on held-out configurations stays within
/// 10%. Slow (14 cycle-accurate runs + the fit), so `--ignored`; CI
/// exercises it through the fidelity smoke step and `fig_fidelity`.
#[test]
#[ignore]
fn holdout_accuracy_bound() {
    let spec = RunSpec::paper_default(1)
        .workload("1C-swim")
        .budget(200_000);
    let cal = calibrate(&spec).unwrap();
    let rep = &cal.report;
    assert!(rep.all_finite());
    assert!(
        rep.ipc.mean_rel <= 0.10,
        "held-out mean IPC error {:.1}% exceeds the 10% bound (params {:?})",
        rep.ipc.mean_rel * 100.0,
        rep.params
    );
}
