//! Golden-file test for the Chrome-trace exporter.
//!
//! Builds a fixed event sequence (deliberately emitted out of time
//! order, across several tracks), exports it, and checks three things:
//!
//! 1. the output is byte-identical to the committed golden file, so any
//!    format change is a conscious diff;
//! 2. the output parses as valid JSON with the `traceEvents` shape
//!    Perfetto expects;
//! 3. within every `(pid, tid)` track, timestamps are monotonically
//!    non-decreasing — the property the viewer relies on.
//!
//! To regenerate after an intentional format change:
//! `BLESS=1 cargo test -p fbd-telemetry --test golden_trace`.

use fbd_telemetry::json::{self, Json};
use fbd_telemetry::{tid_dimm, tid_power, Tracer, PID_SYSTEM, TID_NORTH, TID_SOUTH};
use fbd_types::time::{Dur, Time};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace.json");

fn fixture() -> Tracer {
    let mut t = Tracer::new();
    t.name_process(0, "chan0");
    t.name_process(PID_SYSTEM, "system");
    t.name_track(0, TID_SOUTH, "southbound");
    t.name_track(0, TID_NORTH, "northbound");
    t.name_track(0, tid_dimm(1), "dimm1.cmds");
    t.name_track(0, tid_power(1), "dimm1.power");

    // Emitted out of order on purpose: the exporter must sort per track.
    t.complete(
        "RD",
        "dram",
        0,
        tid_dimm(1),
        Time::from_ns(45),
        Dur::from_ns(15),
        vec![("bank", Json::from(5u32)), ("row_hit", Json::from(false))],
    );
    t.complete(
        "cmd",
        "link",
        0,
        TID_SOUTH,
        Time::from_ns(12),
        Dur::from_ns(6),
        vec![],
    );
    t.complete(
        "ACT",
        "dram",
        0,
        tid_dimm(1),
        Time::from_ns(30),
        Dur::from_ns(12),
        vec![("bank", Json::from(5u32))],
    );
    t.complete(
        "data",
        "link",
        0,
        TID_NORTH,
        Time::from_ns(72),
        Dur::from_ns(12),
        vec![],
    );
    t.instant(
        "amb_hit",
        "amb",
        0,
        TID_SOUTH,
        Time::from_ns(24),
        vec![("dimm", Json::from(1u32))],
    );
    t.complete(
        "active",
        "power",
        0,
        tid_power(1),
        Time::from_ns(30),
        Dur::from_ns(57),
        vec![],
    );
    t.counter("queue_depth", "ctrl", PID_SYSTEM, 0, Time::from_ns(12), 3.0);
    t.counter("queue_depth", "ctrl", PID_SYSTEM, 0, Time::from_ns(84), 2.0);
    t
}

#[test]
fn golden_trace_matches_and_is_valid() {
    let rendered = fixture().to_chrome_trace().to_json_pretty(1);

    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN, &rendered).expect("write golden file");
    }
    let golden = std::fs::read_to_string(GOLDEN).expect("golden file present");
    assert_eq!(
        rendered, golden,
        "exporter output diverged from tests/golden/trace.json; \
         rerun with BLESS=1 if the change is intentional"
    );

    let doc = json::parse(&rendered).expect("exporter must emit valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Per-track monotonicity over the non-metadata events.
    let mut per_track: std::collections::HashMap<(u64, u64), f64> = Default::default();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph field");
        if ph == "M" {
            continue;
        }
        let pid = e.get("pid").and_then(Json::as_f64).expect("pid") as u64;
        let tid = e.get("tid").and_then(Json::as_f64).expect("tid") as u64;
        let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
        if let Some(prev) = per_track.insert((pid, tid), ts) {
            assert!(
                ts >= prev,
                "track ({pid},{tid}) went backwards: {prev} then {ts}"
            );
        }
    }
    assert!(per_track.len() >= 5, "expected several distinct tracks");
}
