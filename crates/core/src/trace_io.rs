//! Memory-trace capture and replay.
//!
//! A [`MemoryTrace`] is the stream of transactions the processor complex
//! handed to the memory controller during a run: arrival time, kind,
//! cacheline, issuing core. Traces serialize to a simple CSV so they can
//! be archived, inspected, or produced by external tools, and can be
//! *replayed* against any memory configuration with
//! [`replay`] — the classic trace-driven mode of DRAM simulators.
//!
//! Caveat (inherent to trace-driven evaluation): a replayed trace does
//! not model CPU feedback — arrival times are frozen at their recorded
//! values, so a faster memory system shows lower latency but cannot pull
//! requests in earlier. Use full-system runs for performance claims and
//! replay for memory-subsystem analysis.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{self, BufRead, Write};

use fbd_faults::FaultReport;
use fbd_telemetry::StageProfile;
use fbd_types::config::MemoryConfig;
use fbd_types::request::{AccessKind, CoreId, MemRequest};
use fbd_types::stats::MemStats;
use fbd_types::time::{Dur, Time};
use fbd_types::{LineAddr, RequestId};

use crate::memsys::{ChannelCounters, Issued, MemorySystem};

/// One recorded memory transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Arrival at the memory controller.
    pub arrival: Time,
    /// Transaction kind.
    pub kind: AccessKind,
    /// Target cacheline.
    pub line: LineAddr,
    /// Issuing core.
    pub core: CoreId,
}

/// A captured stream of memory transactions, in arrival order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemoryTrace {
    records: Vec<TraceRecord>,
}

/// Error from parsing a trace CSV.
#[derive(Debug)]
pub struct ParseTraceError {
    line: usize,
    reason: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

fn kind_code(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::DemandRead => "R",
        AccessKind::SoftwarePrefetch => "P",
        AccessKind::HardwarePrefetch => "H",
        AccessKind::Write => "W",
    }
}

fn kind_from_code(code: &str) -> Option<AccessKind> {
    Some(match code {
        "R" => AccessKind::DemandRead,
        "P" => AccessKind::SoftwarePrefetch,
        "H" => AccessKind::HardwarePrefetch,
        "W" => AccessKind::Write,
        _ => return None,
    })
}

impl MemoryTrace {
    /// An empty trace.
    pub fn new() -> MemoryTrace {
        MemoryTrace::default()
    }

    /// Appends a record (records must arrive in non-decreasing time).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `arrival` goes backwards.
    pub fn push(&mut self, record: TraceRecord) {
        debug_assert!(
            self.records
                .last()
                .is_none_or(|r| r.arrival <= record.arrival),
            "trace records must be time-ordered"
        );
        self.records.push(record);
    }

    /// The recorded transactions.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Writes the trace as CSV: `arrival_ps,kind,line,core`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn to_csv<W: Write>(&self, out: &mut W) -> io::Result<()> {
        writeln!(out, "arrival_ps,kind,line,core")?;
        for r in &self.records {
            writeln!(
                out,
                "{},{},{},{}",
                r.arrival.as_ps(),
                kind_code(r.kind),
                r.line.as_u64(),
                r.core.0
            )?;
        }
        Ok(())
    }

    /// Parses a trace from the CSV produced by [`to_csv`](Self::to_csv).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseTraceError`] naming the offending line on any
    /// malformed row, and propagates I/O errors as parse errors.
    pub fn from_csv<R: BufRead>(input: R) -> Result<MemoryTrace, ParseTraceError> {
        let mut trace = MemoryTrace::new();
        for (i, line) in input.lines().enumerate() {
            let line = line.map_err(|e| ParseTraceError {
                line: i + 1,
                reason: e.to_string(),
            })?;
            if i == 0 && line.starts_with("arrival_ps") {
                continue; // header
            }
            if line.trim().is_empty() {
                continue;
            }
            let mut fields = line.split(',');
            let err = |reason: &str| ParseTraceError {
                line: i + 1,
                reason: reason.to_string(),
            };
            let arrival: u64 = fields
                .next()
                .and_then(|f| f.trim().parse().ok())
                .ok_or_else(|| err("bad arrival"))?;
            let kind = fields
                .next()
                .and_then(|f| kind_from_code(f.trim()))
                .ok_or_else(|| err("bad kind"))?;
            let line_addr: u64 = fields
                .next()
                .and_then(|f| f.trim().parse().ok())
                .ok_or_else(|| err("bad line"))?;
            let core: u32 = fields
                .next()
                .and_then(|f| f.trim().parse().ok())
                .ok_or_else(|| err("bad core"))?;
            trace.push(TraceRecord {
                arrival: Time::from_ps(arrival),
                kind,
                line: LineAddr::new(line_addr),
                core: CoreId(core),
            });
        }
        Ok(trace)
    }
}

/// Result of replaying a trace against a memory configuration.
#[derive(Clone, Debug)]
pub struct ReplayResult {
    /// Memory statistics of the replay.
    pub mem: MemStats,
    /// Energy breakdown of the replay (the report names the IDD
    /// current set matching the substrate).
    pub energy: fbd_power::EnergyReport,
    /// Instant the last transaction completed.
    pub finished: Time,
    /// Stage × request-class latency attribution over the replayed
    /// reads and writes.
    pub profile: StageProfile,
    /// Always-on per-channel traffic counters, indexed by channel.
    pub channels: Vec<ChannelCounters>,
    /// Error/recovery summary when the configuration enabled fault
    /// injection (`None` on a no-fault replay).
    pub faults: Option<FaultReport>,
}

impl ReplayResult {
    /// Utilized bandwidth over the replay.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.mem
            .utilized_bandwidth_gbps(self.finished.saturating_since(Time::ZERO))
    }
}

/// Replays `trace` against a fresh memory subsystem built from `cfg`,
/// keeping the recorded arrival times (open-loop).
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn replay(cfg: &MemoryConfig, trace: &MemoryTrace) -> ReplayResult {
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum Ev {
        Done(u32),
        Decide(u32),
    }
    let mut mem = MemorySystem::new(cfg);
    let mut events: BinaryHeap<Reverse<(Time, Ev)>> = BinaryHeap::new();
    for (i, r) in trace.records().iter().enumerate() {
        let req = MemRequest::new(RequestId(i as u64), r.core, r.kind, r.line, r.arrival);
        let (ch, ready) = mem.submit(req);
        events.push(Reverse((ready, Ev::Decide(ch))));
    }
    let mut finished = Time::ZERO;
    while let Some(Reverse((t, ev))) = events.pop() {
        match ev {
            Ev::Decide(ch) => {
                let result = mem.decide(ch, t);
                for issued in result.issued {
                    let done = match issued {
                        Issued::Read { resp } => resp.completion,
                        Issued::Write { done } => done,
                    };
                    finished = finished.max(done);
                    events.push(Reverse((done.max(t), Ev::Done(ch))));
                }
                if let Some(next) = result.next_decision {
                    events.push(Reverse((next.max(t), Ev::Decide(ch))));
                }
            }
            Ev::Done(ch) => {
                mem.complete(ch);
                if mem.has_work(ch) {
                    events.push(Reverse((t, Ev::Decide(ch))));
                }
            }
        }
    }
    ReplayResult {
        energy: mem.energy_report(finished),
        finished,
        profile: mem.latency_profile().clone(),
        channels: mem.channel_counters().to_vec(),
        faults: mem.fault_report(finished),
        mem: mem.finish_stats(),
    }
}

/// Dur helper for the replay result (re-exported convenience).
pub fn elapsed(result: &ReplayResult) -> Dur {
    result.finished.saturating_since(Time::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MemoryTrace {
        let mut t = MemoryTrace::new();
        for i in 0..20u64 {
            t.push(TraceRecord {
                arrival: Time::from_ns(i * 50),
                kind: if i % 5 == 4 {
                    AccessKind::Write
                } else {
                    AccessKind::DemandRead
                },
                line: LineAddr::new(i * 7),
                core: CoreId((i % 2) as u32),
            });
        }
        t
    }

    #[test]
    fn csv_round_trips() {
        let t = sample();
        let mut buf = Vec::new();
        t.to_csv(&mut buf).unwrap();
        let back = MemoryTrace::from_csv(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn malformed_csv_reports_line() {
        let bad = "arrival_ps,kind,line,core\n123,X,4,0\n";
        let err = MemoryTrace::from_csv(bad.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"));
        assert!(err.to_string().contains("bad kind"));
    }

    #[test]
    fn truncated_row_reports_line_not_panics() {
        // A row cut off mid-record (e.g. a truncated download) must
        // surface as a parse error naming the offset, never a panic.
        let bad = "arrival_ps,kind,line,core\n100,R,7,0\n200,W";
        let err = MemoryTrace::from_csv(bad.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        assert!(err.to_string().contains("bad line"), "{err}");
        // Missing only the core field.
        let bad = "arrival_ps,kind,line,core\n100,R,7\n";
        let err = MemoryTrace::from_csv(bad.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.to_string().contains("bad core"), "{err}");
        // Binary garbage on the first data row.
        let mut bytes = b"arrival_ps,kind,line,core\n".to_vec();
        bytes.extend_from_slice(&[0xff, 0xfe, 0x00, b'\n']);
        let err = MemoryTrace::from_csv(&bytes[..]).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn replay_reports_faults_only_when_injecting() {
        let t = sample();
        let clean = replay(&MemoryConfig::fbdimm_default(), &t);
        assert!(clean.faults.is_none());
        let mut cfg = MemoryConfig::fbdimm_default();
        cfg.faults.ber = 1e-4;
        let faulted = replay(&cfg, &t);
        let report = faulted.faults.expect("fault injection was on");
        assert!(report.counters.injected > 0, "{report:?}");
        assert_eq!(report.counters.detected, report.counters.injected);
    }

    #[test]
    fn replay_serves_every_transaction() {
        let t = sample();
        let result = replay(&MemoryConfig::fbdimm_default(), &t);
        assert_eq!(result.mem.demand_reads, 16);
        assert_eq!(result.mem.writes, 4);
        assert!(result.finished > Time::from_ns(950));
        assert!(result.bandwidth_gbps() > 0.0);
    }

    #[test]
    fn replay_is_deterministic_and_config_sensitive() {
        let t = sample();
        let a = replay(&MemoryConfig::fbdimm_default(), &t);
        let b = replay(&MemoryConfig::fbdimm_default(), &t);
        assert_eq!(a.finished, b.finished);
        // Prefetching changes the DRAM operation mix on the same trace.
        let ap = replay(&MemoryConfig::fbdimm_with_prefetch(), &t);
        assert!(ap.mem.lines_prefetched > 0);
    }
}
