//! Analytic queue model of the FB-DIMM memory system — the *fast*
//! fidelity.
//!
//! The cycle-stepped core in `fbd-core` is the reference ("accurate")
//! fidelity; thousand-point design-space grids are prohibitively slow
//! there. This crate models each logical channel as a small open
//! queueing network — southbound command/write-data link, per-DIMM AMB
//! prefetch buffer, DRAM bank pool with demand and prefetch request
//! classes accounted separately, northbound return link — with M/D/1
//! waiting times, and closes the loop between offered load and achieved
//! IPC by fixed-point iteration (DESIGN.md §13).
//!
//! The model has exactly three free parameters ([`ModelParams`]):
//! a service-time inflation `α`, an AMB-hit scaling `β` and a link/bank
//! contention factor `γ`. [`Calibrator`] fits them by least squares
//! against a small Latin-hypercube sample of cycle-accurate runs and
//! reports held-out per-metric error bounds ([`CalibrationReport`]) so
//! no approximate number is ever presented without its error bar.
//!
//! # Examples
//!
//! ```
//! use fbd_model::{predict, ModelParams};
//! use fbd_types::config::SystemConfig;
//! use fbd_workloads::mixes::find;
//!
//! let w = find("1C-swim").unwrap();
//! let p = predict(
//!     &SystemConfig::paper_default(1),
//!     &w,
//!     100_000,
//!     &ModelParams::default(),
//! );
//! assert!(p.ipc_sum() > 0.0);
//! assert!(!p.elapsed.is_zero());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calibrate;
pub mod predict;
pub mod queue;

pub use calibrate::{
    calibration_configs, latin_hypercube, CalibrationReport, Calibrator, MetricError, Observation,
    ObservedPoint,
};
pub use predict::{
    predict, ChannelPrediction, CorePrediction, ModelParams, Prediction, Utilization,
};
pub use queue::md1_wait;
