//! Offline stand-in for the `proptest` crate.
//!
//! This container has no network access, so the real `proptest` cannot be
//! resolved from the registry. This crate implements the subset of its API
//! that the workspace's property tests use — `proptest!`, integer-range /
//! tuple / `any::<bool>()` / `collection::vec` strategies, `prop_map`, and
//! the `prop_assert*` / `prop_assume!` macros — with a deterministic
//! SplitMix64 case generator instead of proptest's adaptive runner.
//!
//! Differences from the real crate, by design:
//!
//! * no shrinking — a failing case panics with the generated inputs' case
//!   index so it can be replayed (`PROPTEST_CASES`, fixed seed);
//! * the number of cases comes from `PROPTEST_CASES` (default 64);
//! * only the strategy combinators used by this workspace exist.

/// Deterministic generator driving each test case (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Generator for case `case` of a run; fixed seed so failures replay.
    pub fn for_case(case: u64) -> TestRng {
        // Finalize the case index through the output mix: seeding with a
        // raw golden-ratio multiple would make case k+1's stream equal
        // case k's stream advanced by one step (the multiplier is also
        // the generator's increment), so cases would share values.
        let mut z = case.wrapping_add(0x5851_F42D_4C95_7F2D);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        TestRng(z ^ (z >> 31))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "empty range");
        // Multiply-shift range reduction; bias is irrelevant for tests.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// Number of cases each property runs (env `PROPTEST_CASES`, default 64).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }
}

pub mod strategy {
    //! Value-generation strategies (the used subset of proptest's).

    use crate::TestRng;

    /// Generates values of an associated type from a [`TestRng`].
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                    self.start + u * (self.end - self.start)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    // 53-bit mantissa draw in [0, 1]; the closed upper
                    // bound is reachable (u == 1.0 maps to `hi`).
                    let u = (rng.next_u64() >> 11) as $t
                        * (1.0 / ((1u64 << 53) - 1) as $t);
                    lo + u * (hi - lo)
                }
            }
        )+};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Types with a canonical full-domain strategy (see [`crate::prelude::any`]).
    pub trait Arbitrary {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The full-domain strategy of an [`Arbitrary`] type.
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Strategy for `Vec`s whose length lies in a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// Generates vectors of `elem`-generated values with a length drawn
    /// from `len`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{TestCaseError, TestRng};

    /// The canonical strategy for all values of `T`.
    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any::default()
    }
}

/// Declares property tests (the used subset of proptest's macro).
///
/// Each named argument is drawn from its strategy once per case; the body
/// runs with `prop_assert*`/`prop_assume!` available. Failures panic with
/// the case index (fixed seed, so failures replay deterministically).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategies = ($(&$strat,)+);
                for case in 0..$crate::cases() {
                    let mut rng = $crate::TestRng::for_case(case);
                    #[allow(non_snake_case)]
                    let ($($arg,)+) = {
                        let ($($arg,)+) = &strategies;
                        ($($crate::strategy::Strategy::sample(*$arg, &mut rng),)+)
                    };
                    let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) | Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed on case {case}: {msg}", stringify!($name));
                        }
                    }
                }
            }
        )+
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_case(3);
        let mut b = TestRng::for_case(3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case(4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..200 {
            let v = Strategy::sample(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::sample(&(1u64..=4), &mut rng);
            assert!((1..=4).contains(&w));
            let s = Strategy::sample(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::for_case(2);
        let s = crate::collection::vec(0u8..4, 1..10);
        for _ in 0..100 {
            let v = Strategy::sample(&s, &mut rng);
            assert!((1..10).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        /// The macro itself: tuples, prop_map, assume and asserts.
        #[test]
        fn macro_end_to_end(
            pair in (0u32..10, 0u32..10).prop_map(|(a, b)| (a, a + b)),
            flag in any::<bool>(),
        ) {
            prop_assume!(pair.1 < 100);
            prop_assert!(pair.0 <= pair.1, "{} > {}", pair.0, pair.1);
            prop_assert_eq!(flag || !flag, true);
            prop_assert_ne!(pair.1 + 1, pair.0);
        }
    }
}
