//! Calibration of the analytic model against the cycle-accurate core.
//!
//! A seeded Latin-hypercube sample of configurations
//! ([`calibration_configs`]) is run through the reference simulator;
//! [`Calibrator::fit`] then searches the three-parameter space of
//! [`ModelParams`] (coarse-to-fine grid, least squares on relative
//! errors — fully deterministic) and [`Calibrator::report`] measures
//! the fitted model on *held-out* points, producing the per-metric
//! mean/max relative errors that accompany every fast-fidelity output.

use fbd_types::config::{AmbPrefetchConfig, Interleaving, MemoryConfig, SystemConfig};
use fbd_types::time::DataRate;
use fbd_workloads::mixes::Workload;

use crate::predict::{predict, ModelParams, Prediction};

/// The reference metrics one cycle-accurate run yields.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Observation {
    /// Sum of per-core IPCs.
    pub ipc_sum: f64,
    /// Mean demand-read latency in ns.
    pub read_latency_ns: f64,
    /// Utilized bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Total energy in nJ.
    pub energy_nj: f64,
    /// Demand reads per committed instruction.
    pub demand_per_instr: f64,
    /// Software-prefetch reads per committed instruction.
    pub swpf_per_instr: f64,
    /// Writebacks per committed instruction.
    pub write_per_instr: f64,
}

impl Observation {
    fn from_prediction(p: &Prediction) -> Observation {
        let instr: u64 = p.cores.iter().map(|c| c.instructions).sum();
        let per = |n: u64| {
            if instr == 0 {
                0.0
            } else {
                n as f64 / instr as f64
            }
        };
        Observation {
            ipc_sum: p.ipc_sum(),
            read_latency_ns: p.demand_latency.as_ns_f64(),
            bandwidth_gbps: p.bandwidth_gbps(),
            energy_nj: p.energy.total_nj(),
            demand_per_instr: per(p.demand_reads),
            swpf_per_instr: per(p.sw_prefetch_reads),
            write_per_instr: per(p.writes),
        }
    }
}

/// A configuration paired with its cycle-accurate observation.
#[derive(Clone, Debug)]
pub struct ObservedPoint {
    /// The sampled system configuration.
    pub system: SystemConfig,
    /// What the reference simulator measured for it.
    pub observation: Observation,
}

/// Mean and max relative error of one metric over the holdout set.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MetricError {
    /// Mean of `|model − reference| / reference`.
    pub mean_rel: f64,
    /// Maximum of the same.
    pub max_rel: f64,
}

impl MetricError {
    fn from_errors(errs: &[f64]) -> MetricError {
        if errs.is_empty() {
            return MetricError::default();
        }
        MetricError {
            mean_rel: errs.iter().sum::<f64>() / errs.len() as f64,
            max_rel: errs.iter().cloned().fold(0.0, f64::max),
        }
    }

    fn is_finite(&self) -> bool {
        self.mean_rel.is_finite() && self.max_rel.is_finite()
    }
}

/// The error bound that travels with every fast-fidelity result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CalibrationReport {
    /// The fitted parameters.
    pub params: ModelParams,
    /// Registry name of the substrate the calibration was requested
    /// for (`custom` when the config matched no registered preset).
    /// A `&'static str` so the report stays `Copy`; registry names
    /// have static lifetime by construction.
    pub substrate: &'static str,
    /// Number of configurations used for fitting.
    pub fit_points: usize,
    /// Number of held-out configurations used for the error bounds.
    pub holdout_points: usize,
    /// IPC-sum error over the holdout set.
    pub ipc: MetricError,
    /// Mean-read-latency error over the holdout set.
    pub latency: MetricError,
    /// Bandwidth error over the holdout set.
    pub bandwidth: MetricError,
    /// Total-energy error over the holdout set.
    pub energy: MetricError,
}

impl CalibrationReport {
    /// True when every error bound is a finite number — the condition
    /// CI asserts before trusting fast-fidelity output.
    pub fn all_finite(&self) -> bool {
        self.ipc.is_finite()
            && self.latency.is_finite()
            && self.bandwidth.is_finite()
            && self.energy.is_finite()
            && self.params.service_inflation.is_finite()
            && self.params.hit_scaling.is_finite()
            && self.params.contention.is_finite()
    }
}

/// Deterministic SplitMix64 — the same tiny generator the fault model
/// uses; keeps this crate free of external dependencies.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded Latin-hypercube sample: `n` points in `[0,1)^dims` where
/// every dimension is stratified into `n` equal slices, each hit
/// exactly once.
///
/// # Examples
///
/// ```
/// let pts = fbd_model::latin_hypercube(42, 8, 3);
/// assert_eq!(pts.len(), 8);
/// assert!(pts.iter().all(|p| p.len() == 3));
/// // Stratification: dimension 0 hits every 1/8-wide slice once.
/// let mut hit = vec![false; 8];
/// for p in &pts {
///     hit[(p[0] * 8.0) as usize] = true;
/// }
/// assert!(hit.iter().all(|&h| h));
/// ```
pub fn latin_hypercube(seed: u64, n: usize, dims: usize) -> Vec<Vec<f64>> {
    let mut state = seed ^ 0x5851_f42d_4c95_7f2d;
    let mut points = vec![vec![0.0; dims]; n];
    for d in 0..dims {
        // Fisher–Yates over the strata of this dimension.
        let mut strata: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            strata.swap(i, j);
        }
        for (i, point) in points.iter_mut().enumerate() {
            let jitter = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            point[d] = (strata[i] as f64 + jitter) / n as f64;
        }
    }
    points
}

fn pick<T: Copy>(choices: &[T], u: f64) -> T {
    let idx = ((u * choices.len() as f64) as usize).min(choices.len() - 1);
    choices[idx]
}

/// Samples `n` valid system configurations around `base` by Latin
/// hypercube over the design axes the paper sweeps: memory variant
/// (DDR2 / FBD / FBD-AP with region 2–8), logical channel count, data
/// rate, AMB buffer capacity, and DIMMs per channel.
///
/// Every returned configuration keeps `base`'s CPU side and validates.
pub fn calibration_configs(base: &SystemConfig, seed: u64, n: usize) -> Vec<SystemConfig> {
    #[derive(Clone, Copy)]
    enum Variant {
        Ddr2,
        FbdOff,
        FbdAp(u32),
    }
    const VARIANTS: [Variant; 5] = [
        Variant::Ddr2,
        Variant::FbdOff,
        Variant::FbdAp(2),
        Variant::FbdAp(4),
        Variant::FbdAp(8),
    ];
    const CHANNELS: [u32; 3] = [1, 2, 4];
    const RATES: [DataRate; 3] = [DataRate::MTS533, DataRate::MTS667, DataRate::MTS800];
    const ENTRIES: [u32; 3] = [32, 64, 128];
    const DIMMS: [u32; 3] = [2, 4, 8];

    latin_hypercube(seed, n, 5)
        .into_iter()
        .map(|u| {
            let mut mem = match pick(&VARIANTS, u[0]) {
                Variant::Ddr2 => MemoryConfig::ddr2_default(),
                Variant::FbdOff => MemoryConfig::fbdimm_default(),
                Variant::FbdAp(k) => {
                    let mut m = MemoryConfig::fbdimm_with_prefetch();
                    m.amb = AmbPrefetchConfig {
                        region_lines: k,
                        cache_lines: pick(&ENTRIES, u[3]).max(k),
                        ..AmbPrefetchConfig::paper_default()
                    };
                    m.interleaving = Interleaving::MultiCacheline { lines: k };
                    m
                }
            };
            mem.logical_channels = pick(&CHANNELS, u[1]);
            mem.data_rate = pick(&RATES, u[2]);
            mem.dimms_per_channel = pick(&DIMMS, u[4]);
            let mut sys = *base;
            sys.mem = mem;
            sys.validate().expect("sampled configuration must validate");
            sys
        })
        .collect()
}

/// Fits [`ModelParams`] to observed points and reports held-out errors.
#[derive(Clone, Debug)]
pub struct Calibrator<'a> {
    workload: &'a Workload,
    budget: u64,
    substrate: &'static str,
}

/// Parameter search ranges (log-uniform): α, β, γ.
const RANGES: [(f64, f64); 3] = [(0.5, 2.5), (0.8, 1.15), (0.1, 8.0)];
const GRID_STEPS: usize = 9;
const REFINEMENTS: usize = 5;

impl<'a> Calibrator<'a> {
    /// A calibrator for `workload` at `budget` instructions per core —
    /// the same workload and budget the fast-path queries will use.
    pub fn new(workload: &'a Workload, budget: u64) -> Calibrator<'a> {
        Calibrator {
            workload,
            budget,
            substrate: "custom",
        }
    }

    /// Labels the calibration with the registry name of the substrate
    /// it was requested for (recorded in the report; defaults to
    /// `custom`).
    #[must_use]
    pub fn substrate(mut self, name: &'static str) -> Calibrator<'a> {
        self.substrate = name;
        self
    }

    fn rel(model: f64, reference: f64) -> f64 {
        if reference.abs() < 1e-12 {
            if model.abs() < 1e-12 {
                0.0
            } else {
                1.0
            }
        } else {
            (model - reference).abs() / reference.abs()
        }
    }

    /// Mean observed/structural ratio per traffic class over `points`.
    fn traffic_scales(&self, points: &[ObservedPoint]) -> (f64, f64, f64) {
        let Some(first) = points.first() else {
            return (1.0, 1.0, 1.0);
        };
        let (d0, s0, w0) = crate::predict::structural_traffic(&first.system, self.workload);
        let mean = |obs: &dyn Fn(&Observation) -> f64, structural: f64| -> f64 {
            if structural <= 0.0 {
                return 1.0;
            }
            let sum: f64 = points.iter().map(|p| obs(&p.observation)).sum();
            (sum / points.len() as f64 / structural).max(0.0)
        };
        (
            mean(&|o| o.demand_per_instr, d0),
            mean(&|o| o.swpf_per_instr, s0),
            mean(&|o| o.write_per_instr, w0),
        )
    }

    /// Mean squared relative error of `params` over `points`, or `None`
    /// as soon as the running mean reaches `cutoff`.
    ///
    /// The per-point terms are non-negative and division by the (fixed,
    /// positive) point count is monotone, so a partial mean at or above
    /// the incumbent proves the total cannot beat it — abandoning early
    /// selects exactly the same argmin the exhaustive sum would (a
    /// candidate tying the incumbent is discarded either way). This
    /// branch-and-bound prunes most of the 5·9³ grid-search candidates
    /// after one or two of their points, which is what keeps the
    /// one-time calibration cost small next to its accurate runs.
    fn objective_below(
        &self,
        params: &ModelParams,
        points: &[ObservedPoint],
        cutoff: f64,
    ) -> Option<f64> {
        let len = points.len().max(1) as f64;
        let mut sum = 0.0;
        for p in points {
            let pred = predict(&p.system, self.workload, self.budget, params);
            let m = Observation::from_prediction(&pred);
            let o = &p.observation;
            let e_ipc = Self::rel(m.ipc_sum, o.ipc_sum);
            let e_lat = Self::rel(m.read_latency_ns, o.read_latency_ns);
            let e_bw = Self::rel(m.bandwidth_gbps, o.bandwidth_gbps);
            // IPC is the headline metric the fast fidelity is judged
            // on; latency and bandwidth enter lightly as regularizers
            // so the fit cannot trade a grossly wrong latency for a
            // marginal IPC gain.
            sum += e_ipc * e_ipc + 0.1 * e_lat * e_lat + 0.1 * e_bw * e_bw;
            if sum / len >= cutoff {
                return None;
            }
        }
        Some(sum / len)
    }

    /// Least-squares fit by deterministic coarse-to-fine grid search
    /// over the three parameters (log-spaced axes, three refinement
    /// passes around the incumbent).
    pub fn fit(&self, points: &[ObservedPoint]) -> ModelParams {
        // Traffic scales are measured, not searched: the mean ratio of
        // observed to structural per-instruction rates. They are a
        // property of the trace (config-independent), so one average
        // over the fit set pins them exactly.
        let (demand_scale, swpf_scale, write_scale) = self.traffic_scales(points);
        let mut center: [f64; 3] = [1.0, 1.0, 1.0];
        let mut spans: [f64; 3] = RANGES.map(|(lo, hi)| (hi / lo).sqrt());
        // First pass covers the full range around its geometric mean.
        for (c, (lo, hi)) in center.iter_mut().zip(RANGES) {
            *c = (lo * hi).sqrt();
        }
        let mut best = ModelParams::default();
        let mut best_obj = f64::INFINITY;
        for _ in 0..REFINEMENTS {
            for ia in 0..GRID_STEPS {
                for ib in 0..GRID_STEPS {
                    for ig in 0..GRID_STEPS {
                        let axis = |c: f64, span: f64, i: usize, (lo, hi): (f64, f64)| -> f64 {
                            let frac = i as f64 / (GRID_STEPS - 1) as f64 * 2.0 - 1.0;
                            (c * span.powf(frac)).clamp(lo, hi)
                        };
                        let p = ModelParams {
                            service_inflation: axis(center[0], spans[0], ia, RANGES[0]),
                            hit_scaling: axis(center[1], spans[1], ib, RANGES[1]),
                            contention: axis(center[2], spans[2], ig, RANGES[2]),
                            demand_scale,
                            swpf_scale,
                            write_scale,
                        };
                        if let Some(obj) = self.objective_below(&p, points, best_obj) {
                            best_obj = obj;
                            best = p;
                        }
                    }
                }
            }
            center = [best.service_inflation, best.hit_scaling, best.contention];
            for s in &mut spans {
                *s = s.powf(0.5);
            }
        }
        best
    }

    /// Measures `params` on held-out points and packages the error
    /// bounds with the parameters.
    pub fn report(
        &self,
        params: ModelParams,
        fit_points: usize,
        holdout: &[ObservedPoint],
    ) -> CalibrationReport {
        let mut e_ipc = Vec::new();
        let mut e_lat = Vec::new();
        let mut e_bw = Vec::new();
        let mut e_en = Vec::new();
        for p in holdout {
            let pred = predict(&p.system, self.workload, self.budget, &params);
            let m = Observation::from_prediction(&pred);
            let o = &p.observation;
            e_ipc.push(Self::rel(m.ipc_sum, o.ipc_sum));
            e_lat.push(Self::rel(m.read_latency_ns, o.read_latency_ns));
            e_bw.push(Self::rel(m.bandwidth_gbps, o.bandwidth_gbps));
            e_en.push(Self::rel(m.energy_nj, o.energy_nj));
        }
        CalibrationReport {
            params,
            substrate: self.substrate,
            fit_points,
            holdout_points: holdout.len(),
            ipc: MetricError::from_errors(&e_ipc),
            latency: MetricError::from_errors(&e_lat),
            bandwidth: MetricError::from_errors(&e_bw),
            energy: MetricError::from_errors(&e_en),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_workloads::mixes::find;

    #[test]
    fn hypercube_is_seeded_and_stratified() {
        let a = latin_hypercube(7, 10, 4);
        let b = latin_hypercube(7, 10, 4);
        let c = latin_hypercube(8, 10, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        for d in 0..4 {
            let mut hit = [false; 10];
            for p in &a {
                assert!((0.0..1.0).contains(&p[d]));
                hit[(p[d] * 10.0) as usize] = true;
            }
            assert!(hit.iter().all(|&h| h), "dimension {d} not stratified");
        }
    }

    #[test]
    fn sampled_configs_validate_and_vary() {
        let base = SystemConfig::paper_default(2);
        let configs = calibration_configs(&base, 42, 12);
        assert_eq!(configs.len(), 12);
        let distinct: std::collections::HashSet<String> =
            configs.iter().map(|c| format!("{:?}", c.mem)).collect();
        assert!(
            distinct.len() >= 8,
            "only {} distinct configs",
            distinct.len()
        );
        // Both technologies appear.
        assert!(configs.iter().any(|c| c.mem.tech.is_fbdimm()));
        assert!(configs.iter().any(|c| !c.mem.tech.is_fbdimm()));
    }

    #[test]
    fn fit_recovers_self_generated_observations() {
        // Observations produced by the model itself with known
        // parameters must be fit with near-zero residual error.
        let w = find("2C-1").unwrap();
        let truth = ModelParams {
            service_inflation: 1.4,
            hit_scaling: 0.8,
            contention: 2.0,
            ..ModelParams::default()
        };
        let base = SystemConfig::paper_default(2);
        let points: Vec<ObservedPoint> = calibration_configs(&base, 1, 8)
            .into_iter()
            .map(|system| {
                let p = predict(&system, &w, 50_000, &truth);
                ObservedPoint {
                    observation: Observation::from_prediction(&p),
                    system,
                }
            })
            .collect();
        let cal = Calibrator::new(&w, 50_000);
        let fitted = cal.fit(&points);
        let holdout: Vec<ObservedPoint> = calibration_configs(&base, 2, 4)
            .into_iter()
            .map(|system| {
                let p = predict(&system, &w, 50_000, &truth);
                ObservedPoint {
                    observation: Observation::from_prediction(&p),
                    system,
                }
            })
            .collect();
        let report = cal.report(fitted, points.len(), &holdout);
        assert!(report.all_finite());
        assert!(
            report.ipc.mean_rel < 0.05,
            "self-fit ipc error {}",
            report.ipc.mean_rel
        );
    }
}
