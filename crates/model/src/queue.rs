//! M/D/1 waiting-time primitives.
//!
//! Every shared resource in the fast model (bank pool, southbound link,
//! northbound link, DDR2 data bus) is approximated as an M/D/1 queue:
//! Poisson arrivals, deterministic service. The Pollaczek–Khinchine
//! formula for deterministic service gives the mean wait
//! `W = ρ·S / (2·(1−ρ))`.

/// Utilizations are clamped here before the P-K formula so an offered
/// load beyond saturation produces a large-but-finite wait; the IPC
/// fixed point then throttles the arrival rate instead of diverging.
pub const MAX_UTILIZATION: f64 = 0.97;

/// Mean M/D/1 waiting time (same unit as `service`) at utilization
/// `rho`, clamped to [`MAX_UTILIZATION`].
///
/// # Examples
///
/// ```
/// // At ρ = 0.5 the mean wait is half the service time.
/// assert!((fbd_model::md1_wait(0.5, 10.0) - 5.0).abs() < 1e-12);
/// // Zero load waits nothing.
/// assert_eq!(fbd_model::md1_wait(0.0, 10.0), 0.0);
/// ```
pub fn md1_wait(rho: f64, service: f64) -> f64 {
    let rho = rho.clamp(0.0, MAX_UTILIZATION);
    rho * service / (2.0 * (1.0 - rho))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_grows_monotonically_with_load() {
        let mut last = -1.0;
        for i in 0..=100 {
            let w = md1_wait(i as f64 / 100.0, 30.0);
            assert!(w >= last, "wait decreased at rho={}", i as f64 / 100.0);
            last = w;
        }
    }

    #[test]
    fn overload_is_finite() {
        let w = md1_wait(5.0, 30.0);
        assert!(w.is_finite());
        assert_eq!(w, md1_wait(1.0, 30.0));
    }
}
