//! Address mapping: how cacheline addresses are laid out onto channels,
//! DIMMs, banks, rows and columns (paper §3.2, Figure 2).
//!
//! All three interleaving schemes share one formula parameterized by the
//! *group size* G: consecutive G-line groups round-robin over
//! {channel → DIMM → bank}; within one bank, `lines_per_page / G` groups
//! pack into each DRAM row.
//!
//! * cacheline interleaving: G = 1;
//! * multi-cacheline interleaving (required by AMB prefetching): G = K;
//! * page interleaving: G = lines per page.

use fbd_types::config::MemoryConfig;
use fbd_types::LineAddr;

#[cfg(test)]
use fbd_types::config::Interleaving;

/// A cacheline's location in the memory subsystem.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MappedAddr {
    /// Logical channel index.
    pub channel: u32,
    /// Logical DIMM index within the channel.
    pub dimm: u32,
    /// Rank within the DIMM.
    pub rank: u32,
    /// Logical bank index within the rank.
    pub bank: u32,
    /// Row within the bank.
    pub row: u32,
    /// Column, expressed in cachelines within the row.
    pub col_line: u32,
}

/// Decodes cacheline addresses into memory-subsystem coordinates and
/// back — the pluggable mapping interface ([`crate::MapperSpec`]
/// publishes implementations by name).
///
/// `unmap` must invert `map` for every address within
/// [`capacity_lines`](Self::capacity_lines), for *any* validated
/// geometry — including non-power-of-two DIMM counts.
pub trait AddressMapper: Send + Sync + std::fmt::Debug {
    /// Maps a cacheline address onto {channel, DIMM, rank, bank, row,
    /// column}. Addresses beyond the capacity wrap around.
    fn map(&self, line: LineAddr) -> MappedAddr;
    /// Inverse of [`map`](Self::map) for addresses within capacity.
    fn unmap(&self, m: MappedAddr) -> LineAddr;
    /// The interleaving group size in cachelines.
    fn group_lines(&self) -> u32;
    /// Total mappable lines before addresses wrap.
    fn capacity_lines(&self) -> u64;
}

/// The workspace's standard mapper: G-line groups round-robin over
/// {channel → DIMM → rank → bank}, with optional XOR bank permutation.
#[derive(Clone, Copy, Debug)]
pub struct InterleavedMapper {
    channels: u64,
    dimms: u64,
    ranks: u64,
    banks: u64,
    rows: u64,
    lines_per_page: u64,
    group_lines: u64,
    /// XOR the bank index with the row's low bits (permutation-based
    /// interleaving, Zhang–Zhu–Zhang). Self-inverse, so `unmap` applies
    /// the same XOR.
    permute: bool,
}

impl InterleavedMapper {
    /// Builds the mapper for a memory configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (validate it first).
    pub fn new(cfg: &MemoryConfig) -> InterleavedMapper {
        cfg.validate().expect("invalid memory configuration");
        let lines_per_page = u64::from(cfg.lines_per_page());
        let group_lines = u64::from(cfg.interleaving.group_lines(cfg.lines_per_page()));
        InterleavedMapper {
            channels: u64::from(cfg.logical_channels),
            dimms: u64::from(cfg.dimms_per_channel),
            ranks: u64::from(cfg.ranks_per_dimm),
            banks: u64::from(cfg.banks_per_dimm),
            rows: u64::from(cfg.rows_per_bank),
            lines_per_page,
            group_lines,
            permute: cfg.xor_permutation,
        }
    }
}

impl AddressMapper for InterleavedMapper {
    /// The interleaving group size in cachelines.
    fn group_lines(&self) -> u32 {
        self.group_lines as u32
    }

    /// Total mappable lines before addresses wrap.
    fn capacity_lines(&self) -> u64 {
        self.channels * self.dimms * self.ranks * self.banks * self.rows * self.lines_per_page
    }

    /// Maps a cacheline address onto {channel, DIMM, bank, row, column}.
    ///
    /// Addresses beyond the capacity wrap around (row index is taken
    /// modulo the row count), mirroring physical-address aliasing.
    fn map(&self, line: LineAddr) -> MappedAddr {
        let line = line.as_u64();
        let group = line / self.group_lines;
        let offset = line % self.group_lines;
        let groups_per_row = self.lines_per_page / self.group_lines;

        let channel = group % self.channels;
        let rest = group / self.channels;
        let dimm = rest % self.dimms;
        let rest = rest / self.dimms;
        let rank = rest % self.ranks;
        let rest = rest / self.ranks;
        let mut bank = rest % self.banks;
        let rest = rest / self.banks;
        let slot = rest % groups_per_row;
        let row = (rest / groups_per_row) % self.rows;
        if self.permute {
            bank ^= row % self.banks;
        }

        MappedAddr {
            channel: channel as u32,
            dimm: dimm as u32,
            rank: rank as u32,
            bank: bank as u32,
            row: row as u32,
            col_line: (slot * self.group_lines + offset) as u32,
        }
    }

    /// Inverse of [`map`](Self::map) for addresses within capacity.
    fn unmap(&self, m: MappedAddr) -> LineAddr {
        let groups_per_row = self.lines_per_page / self.group_lines;
        let slot = u64::from(m.col_line) / self.group_lines;
        let offset = u64::from(m.col_line) % self.group_lines;
        let bank = if self.permute {
            u64::from(m.bank) ^ (u64::from(m.row) % self.banks)
        } else {
            u64::from(m.bank)
        };
        let group = (((u64::from(m.row) * groups_per_row + slot) * self.banks + bank) * self.ranks
            + u64::from(m.rank))
            * self.dimms
            * self.channels
            + u64::from(m.dimm) * self.channels
            + u64::from(m.channel);
        LineAddr::new(group * self.group_lines + offset)
    }
}

/// A named, registerable [`AddressMapper`] factory (see
/// [`crate::mappers`] for the registry).
pub trait MapperSpec: Send + Sync + std::fmt::Debug {
    /// Stable registry name (e.g. `interleaved`).
    fn name(&self) -> &'static str;
    /// One-line human description for listings.
    fn description(&self) -> &'static str;
    /// Builds the mapper for a validated configuration.
    fn build(&self, cfg: &MemoryConfig) -> Box<dyn AddressMapper>;
}

/// Registry entry for [`InterleavedMapper`].
#[derive(Debug)]
pub struct InterleavedSpec;

impl MapperSpec for InterleavedSpec {
    fn name(&self) -> &'static str {
        "interleaved"
    }
    fn description(&self) -> &'static str {
        "group round-robin over channel/DIMM/rank/bank (paper Figure 2)"
    }
    fn build(&self, cfg: &MemoryConfig) -> Box<dyn AddressMapper> {
        Box::new(InterleavedMapper::new(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_types::config::MemoryConfig;

    fn mapper(interleaving: Interleaving) -> InterleavedMapper {
        let mut cfg = MemoryConfig::fbdimm_default();
        cfg.interleaving = interleaving;
        if let Interleaving::Page = interleaving {
            cfg.page_policy = fbd_types::config::PagePolicy::OpenPage;
        }
        InterleavedMapper::new(&cfg)
    }

    #[test]
    fn figure2_four_line_groups_share_a_row() {
        // Paper Figure 2: blocks 4..=7 form one group on one bank row;
        // block 6's neighbours 4, 5, 7 are in the same row.
        let m = mapper(Interleaving::MultiCacheline { lines: 4 });
        let six = m.map(LineAddr::new(6));
        for other in [4u64, 5, 7] {
            let o = m.map(LineAddr::new(other));
            assert_eq!(
                (o.channel, o.dimm, o.bank, o.row),
                (six.channel, six.dimm, six.bank, six.row)
            );
        }
        // The next group lands on a different channel (round-robin).
        let eight = m.map(LineAddr::new(8));
        assert_ne!(eight.channel, six.channel);
    }

    #[test]
    fn cacheline_interleaving_spreads_consecutive_lines() {
        let m = mapper(Interleaving::Cacheline);
        let a = m.map(LineAddr::new(0));
        let b = m.map(LineAddr::new(1));
        assert_ne!(a.channel, b.channel);
        // Lines 0 and 2 are on the same channel but different DIMMs.
        let c = m.map(LineAddr::new(2));
        assert_eq!(a.channel, c.channel);
        assert_ne!(a.dimm, c.dimm);
    }

    #[test]
    fn page_interleaving_keeps_whole_page_on_one_bank() {
        let m = mapper(Interleaving::Page);
        let base = m.map(LineAddr::new(0));
        for l in 1..128u64 {
            let x = m.map(LineAddr::new(l));
            assert_eq!(
                (x.channel, x.dimm, x.bank, x.row),
                (base.channel, base.dimm, base.bank, base.row)
            );
            assert_eq!(x.col_line, l as u32);
        }
        let next = m.map(LineAddr::new(128));
        assert_ne!(next.channel, base.channel);
    }

    #[test]
    fn consecutive_groups_cycle_channels_then_dimms_then_banks() {
        let m = mapper(Interleaving::MultiCacheline { lines: 4 });
        // 2 channels × 4 dimms × 4 banks = 32 groups before reuse.
        let mut seen = std::collections::HashSet::new();
        for g in 0..32u64 {
            let x = m.map(LineAddr::new(g * 4));
            assert!(
                seen.insert((x.channel, x.dimm, x.bank)),
                "bank reused early at group {g}"
            );
        }
        // Group 32 returns to the first bank, next row slot.
        let x = m.map(LineAddr::new(32 * 4));
        let first = m.map(LineAddr::new(0));
        assert_eq!(
            (x.channel, x.dimm, x.bank, x.row),
            (first.channel, first.dimm, first.bank, first.row)
        );
        assert_eq!(x.col_line, 4);
    }

    #[test]
    fn unmap_round_trips_within_capacity() {
        for interleaving in [
            Interleaving::Cacheline,
            Interleaving::MultiCacheline { lines: 4 },
            Interleaving::MultiCacheline { lines: 8 },
            Interleaving::Page,
        ] {
            let m = mapper(interleaving);
            for l in (0..100_000u64).step_by(97) {
                let line = LineAddr::new(l);
                assert_eq!(m.unmap(m.map(line)), line, "{interleaving:?} line {l}");
            }
        }
    }

    #[test]
    fn capacity_counts_all_coordinates() {
        let m = mapper(Interleaving::Cacheline);
        // 2 ch × 4 dimms × 4 banks × 16384 rows × 128 lines.
        assert_eq!(m.capacity_lines(), 2 * 4 * 4 * 16_384 * 128);
    }

    #[test]
    fn permutation_round_trips_and_spreads_conflicts() {
        let mut cfg = MemoryConfig::fbdimm_default();
        cfg.page_policy = fbd_types::config::PagePolicy::OpenPage;
        cfg.interleaving = Interleaving::Page;
        cfg.xor_permutation = true;
        let m = InterleavedMapper::new(&cfg);
        // Bijection still holds.
        for l in (0..200_000u64).step_by(73) {
            assert_eq!(m.unmap(m.map(LineAddr::new(l))), LineAddr::new(l));
        }
        // Pages that collide on one bank WITHOUT permutation (stride =
        // one full bank rotation) spread across banks WITH it.
        let stride = 32 * 128; // channels*dimms*banks pages of 128 lines
        let banks: std::collections::HashSet<u32> = (0..8u64)
            .map(|i| m.map(LineAddr::new(i * stride)).bank)
            .collect();
        assert!(
            banks.len() > 1,
            "permutation must spread row-conflict hotspots"
        );

        cfg.xor_permutation = false;
        let plain = InterleavedMapper::new(&cfg);
        let same: std::collections::HashSet<u32> = (0..8u64)
            .map(|i| plain.map(LineAddr::new(i * stride)).bank)
            .collect();
        assert_eq!(
            same.len(),
            1,
            "without permutation the stride hammers one bank"
        );
    }

    #[test]
    fn permutation_keeps_regions_on_one_row() {
        // AMB prefetching integrity: a region's lines still share a bank
        // row under permutation.
        let mut cfg = MemoryConfig::fbdimm_with_prefetch();
        cfg.xor_permutation = true;
        let m = InterleavedMapper::new(&cfg);
        for base in (0..4_000u64).step_by(4) {
            let first = m.map(LineAddr::new(base));
            for off in 1..4 {
                let x = m.map(LineAddr::new(base + off));
                assert_eq!(
                    (x.channel, x.dimm, x.bank, x.row),
                    (first.channel, first.dimm, first.bank, first.row)
                );
            }
        }
    }

    #[test]
    fn multi_rank_round_trips_and_extends_capacity() {
        let mut cfg = MemoryConfig::fbdimm_default();
        cfg.ranks_per_dimm = 2;
        let m = InterleavedMapper::new(&cfg);
        assert_eq!(m.capacity_lines(), 2 * 4 * 2 * 4 * 16_384 * 128);
        for l in (0..300_000u64).step_by(61) {
            let x = m.map(LineAddr::new(l));
            assert!(x.rank < 2);
            assert_eq!(m.unmap(x), LineAddr::new(l));
        }
        // Both ranks actually get used.
        let ranks: std::collections::HashSet<u32> =
            (0..64u64).map(|l| m.map(LineAddr::new(l)).rank).collect();
        assert_eq!(ranks.len(), 2);
    }

    #[test]
    fn unmap_round_trips_at_non_pow2_dimm_counts() {
        // The hole this closes: `validate()` used to require a
        // power-of-two DIMM count, so the round-trip was never
        // exercised off the pow2 grid. The mapper is modular
        // arithmetic, so 3-, 5-, 6- and 7-DIMM channels must decode
        // exactly too (with and without the bank-permutation XOR).
        for dimms in [3u32, 5, 6, 7] {
            for permute in [false, true] {
                let mut cfg = MemoryConfig::fbdimm_default();
                cfg.dimms_per_channel = dimms;
                cfg.xor_permutation = permute;
                cfg.validate().expect("non-pow2 DIMM counts are valid");
                let m = InterleavedMapper::new(&cfg);
                assert_eq!(m.capacity_lines(), 2 * u64::from(dimms) * 4 * 16_384 * 128);
                let mut dimms_seen = std::collections::HashSet::new();
                for l in (0..500_000u64).step_by(131) {
                    let x = m.map(LineAddr::new(l));
                    assert!(x.dimm < dimms, "dimm {} out of range", x.dimm);
                    dimms_seen.insert(x.dimm);
                    assert_eq!(
                        m.unmap(x),
                        LineAddr::new(l),
                        "{dimms} dimms, permute={permute}, line {l}"
                    );
                }
                assert_eq!(dimms_seen.len() as u32, dimms, "every DIMM used");
            }
        }
    }

    #[test]
    fn addresses_beyond_capacity_wrap() {
        let m = mapper(Interleaving::Cacheline);
        let cap = m.capacity_lines();
        let a = m.map(LineAddr::new(5));
        let b = m.map(LineAddr::new(cap + 5));
        assert_eq!(a, b);
    }
}
