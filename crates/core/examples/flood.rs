//! Diagnostic: issue a dense read/write flood straight into the memory
//! system and measure achieved bandwidth against the theoretical peak.

use fbd_core::memsys::{Issued, MemorySystem};
use fbd_types::config::MemoryConfig;
use fbd_types::request::{AccessKind, CoreId, MemRequest};
use fbd_types::time::Time;
use fbd_types::{LineAddr, RequestId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy)]
enum Ev {
    Done(u32),
    Decide(u32),
}

fn run(label: &str, cfg: MemoryConfig, stride: u64, write_every: u64) {
    let mut mem = MemorySystem::new(&cfg);
    let n = 20_000u64;
    let mut ev: BinaryHeap<Reverse<(Time, Ev)>> = BinaryHeap::new();
    for i in 0..n {
        let kind = if write_every > 0 && i % write_every == write_every - 1 {
            AccessKind::Write
        } else {
            AccessKind::DemandRead
        };
        let r = MemRequest::new(
            RequestId(i),
            CoreId(0),
            kind,
            LineAddr::new(i * stride),
            Time::from_ns(i / 4),
        );
        let (ch, ready) = mem.submit(r);
        ev.push(Reverse((ready, Ev::Decide(ch))));
    }
    let mut last = Time::ZERO;
    while let Some(Reverse((t, e))) = ev.pop() {
        match e {
            Ev::Decide(ch) => {
                let res = mem.decide(ch, t);
                for issued in res.issued {
                    let done = match issued {
                        Issued::Read { resp } => resp.completion,
                        Issued::Write { done } => done,
                    };
                    last = last.max(done);
                    ev.push(Reverse((done.max(t), Ev::Done(ch))));
                }
                if let Some(next) = res.next_decision {
                    ev.push(Reverse((next.max(t), Ev::Decide(ch))));
                }
            }
            Ev::Done(ch) => {
                mem.complete(ch);
                if mem.has_work(ch) {
                    ev.push(Reverse((t, Ev::Decide(ch))));
                }
            }
        }
    }
    let bytes = n * 64;
    let secs = (last - Time::ZERO).as_secs_f64();
    println!(
        "{label}: {:.2} GB/s ({} reqs in {:.1} us)",
        bytes as f64 / secs / 1e9,
        n,
        secs * 1e6
    );
}

fn main() {
    for (label, stride, we) in [
        ("sequential reads", 1u64, 0u64),
        ("random-ish reads (stride 97)", 97, 0),
        ("reads + 25% writes (stride 97)", 97, 4),
    ] {
        for rate in [
            fbd_types::time::DataRate::MTS667,
            fbd_types::time::DataRate::MTS800,
        ] {
            let mut d = MemoryConfig::ddr2_default();
            d.logical_channels = 1;
            d.data_rate = rate;
            run(&format!("DDR2 1ch {rate} {label}"), d, stride, we);
            let mut f = MemoryConfig::fbdimm_default();
            f.logical_channels = 1;
            f.data_rate = rate;
            run(&format!("FBD  1ch {rate} {label}"), f, stride, we);
        }
    }
}
