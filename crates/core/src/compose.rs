//! The composition of one memory system: which registered substrate,
//! scheduler, mapper and refresh manager it is built from.
//!
//! A [`Composition`] is the string-level description of a memory
//! system. [`MemorySystem::compose`](crate::MemorySystem::compose)
//! resolves each name against its registry and builds the system;
//! [`Composition::from_config`] goes the other way, recovering the
//! names from a plain [`MemoryConfig`] so the legacy enum-driven path
//! and the registry path describe (and build) the exact same machine.

use fbd_types::config::{MemoryConfig, SchedPolicy};
use fbd_types::substrate::substrates;

/// Registry names selecting each pluggable part of a memory system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Composition {
    /// Substrate (timing + channel preset) name, or `custom` when the
    /// config matches no registered preset.
    pub substrate: String,
    /// Scheduling policy name (`hit-first`, `fcfs`, …).
    pub scheduler: String,
    /// Address mapper name (`interleaved`).
    pub mapper: String,
    /// Refresh manager name (`staggered`, `none`).
    pub refresh: String,
}

impl Composition {
    /// Recovers the composition a plain config describes: the substrate
    /// by preset equality (`custom` if none matches), the scheduler
    /// from the legacy policy enum, and the refresh manager from the
    /// config's master switch.
    pub fn from_config(cfg: &MemoryConfig) -> Composition {
        let substrate = substrates()
            .iter()
            .find(|(_, s)| s.config() == *cfg)
            .map_or("custom", |(name, _)| name);
        let scheduler = match cfg.sched_policy {
            SchedPolicy::HitFirst => "hit-first",
            SchedPolicy::Fcfs => "fcfs",
        };
        let refresh = if cfg.refresh.enabled {
            "staggered"
        } else {
            "none"
        };
        Composition {
            substrate: substrate.to_owned(),
            scheduler: scheduler.to_owned(),
            mapper: "interleaved".to_owned(),
            refresh: refresh.to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_round_trip_to_their_registry_names() {
        for name in ["ddr2", "fbd", "fbd-ap", "fbd-apfl", "fbd-ddr3"] {
            let cfg = substrates().get(name).expect("registered").config();
            let c = Composition::from_config(&cfg);
            assert_eq!(c.substrate, name);
            assert_eq!(c.scheduler, "hit-first");
            assert_eq!(c.mapper, "interleaved");
            assert_eq!(c.refresh, "none", "the paper runs without refresh");
        }
    }

    #[test]
    fn unrecognised_configs_are_custom() {
        let mut cfg = MemoryConfig::fbdimm_default();
        cfg.queue_capacity += 1;
        let c = Composition::from_config(&cfg);
        assert_eq!(c.substrate, "custom");
    }

    #[test]
    fn enum_policy_and_refresh_switch_are_reflected() {
        let mut cfg = MemoryConfig::fbdimm_default();
        cfg.sched_policy = SchedPolicy::Fcfs;
        cfg.refresh = fbd_types::config::RefreshConfig::ddr2_1gb();
        let c = Composition::from_config(&cfg);
        assert_eq!(c.scheduler, "fcfs");
        assert_eq!(c.refresh, "staggered");
    }
}
