//! Shared vocabulary types for the `fbdimm` simulator workspace.
//!
//! This crate defines the time base, addresses, memory transactions,
//! configuration structures (the paper's Tables 1 and 2) and statistics
//! primitives used by every other crate in the workspace. It has no
//! dependencies and no simulation logic of its own.
//!
//! # Examples
//!
//! Build the paper's default system configuration and inspect it:
//!
//! ```
//! use fbd_types::config::SystemConfig;
//!
//! let cfg = SystemConfig::paper_default(4);
//! cfg.validate()?;
//! assert_eq!(cfg.cpu.cores, 4);
//! assert_eq!(cfg.mem.total_banks(), 32);
//! # Ok::<(), fbd_types::error::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod address;
pub mod config;
pub mod ddr3_1066;
pub mod error;
pub mod registry;
pub mod request;
pub mod stats;
pub mod substrate;
pub mod time;

pub use address::{LineAddr, PhysAddr, RegionId, CACHE_LINE_BYTES};
pub use config::{
    AmbPrefetchConfig, AmbPrefetchMode, Associativity, CpuConfig, DramTimings, FaultConfig,
    FaultMode, HwPrefetchConfig, Interleaving, MemoryConfig, MemoryTech, PagePolicy, Replacement,
    SchedPolicy, SystemConfig,
};
pub use error::ConfigError;
pub use registry::Registry;
pub use request::{
    AccessKind, CoreId, MemRequest, MemResponse, ReqClass, RequestId, ServiceKind, Stage,
    StageBreakdown, StageStamper, REQ_CLASSES, STAGES,
};
pub use stats::{CoreStats, DramOpCounts, EpochSeries, LatencyHistogram, LatencyStat, MemStats};
pub use time::{DataRate, Dur, Time};
