//! Quickstart: simulate one memory-intensive program on FB-DIMM with and
//! without AMB prefetching and print the headline comparison.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p fbd-core --example quickstart
//! ```

use fbd_core::RunSpec;

fn main() {
    // A deterministic run: seed 42, 200k instructions. `swim` is the
    // most bandwidth-hungry of the paper's twelve SPEC2000-like
    // profiles — an ideal showcase for DRAM-level prefetching. The
    // base spec is the paper's default system (Table 1): 4 GHz core,
    // 4 MB shared L2, two logical FB-DIMM channels at 667 MT/s, close
    // page.
    let base = RunSpec::paper_default(1)
        .workload("1C-swim")
        .seed(42)
        .budget(200_000);

    // Baseline: FB-DIMM without prefetching (cacheline interleaving).
    let baseline = base.clone().with_prefetch(false).run();

    // The paper's proposal: region-based AMB prefetching — every demand
    // miss fetches its 4-line region into the AMB's 4 KB prefetch buffer
    // with a single DRAM activation (multi-cacheline interleaving).
    let with_ap = base.clone().with_prefetch(true).run();

    println!("swim on FB-DIMM, {} instructions:", base.exp().budget);
    println!();
    println!("                         FBD     FBD-AP");
    println!(
        "  IPC                  {:>6.3}     {:>6.3}",
        baseline.cores[0].ipc(),
        with_ap.cores[0].ipc()
    );
    println!(
        "  avg read latency     {:>5.1}ns    {:>5.1}ns",
        baseline.avg_read_latency_ns(),
        with_ap.avg_read_latency_ns()
    );
    println!(
        "  utilized bandwidth   {:>5.2}GB/s  {:>5.2}GB/s",
        baseline.bandwidth_gbps(),
        with_ap.bandwidth_gbps()
    );
    println!(
        "  DRAM ACT/PRE pairs   {:>7}    {:>7}",
        baseline.mem.dram_ops.act_pre, with_ap.mem.dram_ops.act_pre
    );
    println!();
    println!(
        "  prefetch coverage  {:.1}%   efficiency {:.1}%",
        with_ap.mem.prefetch_coverage() * 100.0,
        with_ap.mem.prefetch_efficiency() * 100.0
    );
    let speedup = with_ap.cores[0].ipc() / baseline.cores[0].ipc();
    println!(
        "  speedup from AMB prefetching: {:+.1}%",
        (speedup - 1.0) * 100.0
    );
    println!(
        "  memory energy        {:>6.1}µJ   {:>6.1}µJ  ({:.2} W vs {:.2} W avg)",
        baseline.energy.total_nj() / 1_000.0,
        with_ap.energy.total_nj() / 1_000.0,
        baseline.energy.avg_power_w(),
        with_ap.energy.avg_power_w()
    );
}
