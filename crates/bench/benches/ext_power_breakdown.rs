//! Extension experiment: total DRAM energy breakdown — dynamic + static,
//! with and without precharge power-down.
//!
//! The paper's Figure 13 covers dynamic energy only and notes that
//! static power is ≈17.5 % of the total in its configuration, and that
//! AP's performance gain "also reduces processor execution time and
//! energy consumption." This bench completes that picture: state-
//! residency static energy per rank (active standby vs precharge
//! standby vs power-down), showing that FBD-AP's shorter runtimes save
//! static energy on top of Figure 13's dynamic savings.

use fbd_bench::*;
use fbd_power::{PowerModel, StandbyPower};

fn main() {
    let exp = fbd_bench::experiment();
    banner(
        "Extension",
        "total DRAM energy: dynamic + static (+ power-down)",
        &exp,
    );
    let dynamic = PowerModel::paper_ratio();
    let standby = StandbyPower::micron_ddr2_667();

    let mut rows = vec![vec![
        "group".to_string(),
        "dyn ratio".to_string(),
        "static ratio".to_string(),
        "static+PD ratio".to_string(),
        "active residency".to_string(),
    ]];
    let grouped = run_grouped(
        |cores| {
            vec![
                ("FBD".to_string(), system(Variant::Fbd, cores)),
                ("FBD-AP".to_string(), system(Variant::FbdAp, cores)),
            ]
        },
        &exp,
    );
    for (group, workloads, results) in grouped {
        let ranks = {
            let m = system(Variant::Fbd, workloads[0].cores()).mem;
            u64::from(m.logical_channels * m.dimms_per_channel * m.ranks_per_dimm)
        };
        let (mut dyn_r, mut st_r, mut pd_r, mut resid) = (vec![], vec![], vec![], vec![]);
        for w in &workloads {
            let base = &results
                .iter()
                .find(|((c, n), _)| c == "FBD" && n == w.name())
                .expect("run")
                .1;
            let ap = &results
                .iter()
                .find(|((c, n), _)| c == "FBD-AP" && n == w.name())
                .expect("run")
                .1;
            dyn_r.push(
                dynamic.dynamic_energy(&ap.mem.dram_ops)
                    / dynamic.dynamic_energy(&base.mem.dram_ops),
            );
            // Static energy: per-rank residency over each run's own
            // elapsed time (AP finishing sooner is the point).
            let static_of = |r: &fbd_core::RunResult, pd: bool| {
                let per_rank_active = r.mem.dram_active_time / ranks;
                standby.static_energy(per_rank_active.min(r.elapsed), r.elapsed, pd) * ranks as f64
            };
            st_r.push(static_of(ap, false) / static_of(base, false));
            pd_r.push(static_of(ap, true) / static_of(base, true));
            resid.push((ap.mem.dram_active_time / ranks).as_ns_f64() / ap.elapsed.as_ns_f64());
        }
        rows.push(vec![
            group.to_string(),
            f3(mean(&dyn_r)),
            f3(mean(&st_r)),
            f3(mean(&pd_r)),
            format!("{:.1}%", mean(&resid) * 100.0),
        ]);
    }
    emit_table("ext_power_breakdown", &rows);
    println!();
    println!("ratios are FBD-AP / FBD; < 1.0 = AP saves energy. Static savings come from");
    println!("shorter runtimes; power-down amplifies them by making idle time cheaper.");
}
