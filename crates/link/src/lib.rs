//! Channel interconnect models: the FB-DIMM southbound/northbound links
//! with their AMB daisy chain, and the conventional shared-bus DDR2
//! channel used as the paper's baseline.
//!
//! Everything here is built on a single primitive, [`timeline::Timeline`]
//! — a clock-aligned, gap-filling reservation calendar for a
//! one-thing-at-a-time resource.
//!
//! # Examples
//!
//! Reproduce the channel part of the paper's 63 ns idle-latency
//! decomposition (3 ns command + 6 ns data + 12 ns AMB chain):
//!
//! ```
//! use fbd_link::FbdChannel;
//! use fbd_types::config::MemoryConfig;
//! use fbd_types::time::Time;
//!
//! let mut ch = FbdChannel::new(&MemoryConfig::fbdimm_default());
//! let cmd = ch.send_command(Time::from_ns(12)); // after controller overhead
//! assert_eq!(cmd.done, Time::from_ns(15));
//! // DRAM produces data 30 ns later (tRCD + tCL); the line then needs
//! // one 6 ns northbound frame plus the 12 ns daisy chain:
//! let data = ch.return_read_data(0, Time::from_ns(45));
//! assert_eq!(data.done, Time::from_ns(63));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ddr2;
pub mod fbdimm;
pub mod timeline;

pub use ddr2::Ddr2CommandBus;
pub use fbdimm::{DaisyChain, FbdChannel, LinkSlot, LinkXfer};
pub use timeline::Timeline;

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use fbd_types::time::{Dur, Time};
    use proptest::prelude::*;

    proptest! {
        /// Reservations never overlap and never precede their request
        /// time, for arbitrary request patterns.
        #[test]
        fn timeline_reservations_are_disjoint(
            reqs in proptest::collection::vec((0u64..2_000, 1u64..10), 1..80)
        ) {
            let clock = Dur::from_ns(3);
            let mut tl = Timeline::new(clock);
            let mut windows = Vec::new();
            for (nb_ns, dur_clocks) in reqs {
                let not_before = Time::from_ns(nb_ns);
                let dur = clock * dur_clocks;
                let start = tl.reserve(not_before, dur);
                prop_assert!(start >= not_before);
                prop_assert_eq!(start.as_ps() % clock.as_ps(), 0);
                windows.push((start, start + dur));
            }
            windows.sort();
            for w in windows.windows(2) {
                prop_assert!(w[1].0 >= w[0].1, "overlap: {:?} then {:?}", w[0], w[1]);
            }
        }

        /// The northbound link keeps full utilization under saturation:
        /// n back-to-back line returns take exactly n frames.
        #[test]
        fn northbound_saturates_without_bubbles(n in 1u64..50) {
            let mut ch = FbdChannel::new(&fbd_types::config::MemoryConfig::fbdimm_default());
            let mut last = Time::ZERO;
            for _ in 0..n {
                last = ch.return_read_data(0, Time::ZERO).done;
            }
            // Each line: one 6 ns frame; chain delay (12 ns) is latency,
            // not occupancy.
            assert_eq!(last, Time::from_ns(6 * n + 12));
        }
    }
}
