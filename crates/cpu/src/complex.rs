//! The processor complex: cores, the shared L2, and miss handling.
//!
//! This is the boundary the memory subsystem sees. The complex pulls
//! operations from each core's trace, runs them through the shared L2,
//! merges same-line misses (MSHR semantics), bounds per-core and global
//! miss concurrency, turns dirty evictions into writebacks, and converts
//! software prefetch instructions into non-blocking prefetch reads
//! (dropped when software prefetching is disabled).

use std::collections::HashMap;

use fbd_types::config::CpuConfig;
use fbd_types::request::{AccessKind, CoreId, MemRequest};
use fbd_types::stats::CoreStats;
use fbd_types::time::{Dur, Time};
use fbd_types::{LineAddr, RequestId};

use crate::cache::{L2Cache, L2Outcome};
use crate::core::OooCore;
use crate::hw_prefetch::StreamPrefetcher;
use crate::trace::{OpKind, TraceOp, TraceSource};

/// Result of advancing the complex to an instant.
#[derive(Debug, Default)]
pub struct Advance {
    /// Memory requests that became ready to issue.
    pub requests: Vec<MemRequest>,
    /// Earliest future instant at which a core can make progress without
    /// any memory response (ROB-stall expiry or projected finish).
    pub next_wake: Option<Time>,
}

struct CoreRunner {
    core: OooCore,
    trace: Box<dyn TraceSource>,
    /// The next operation, peeked but not yet admitted to the ROB, with
    /// its absolute instruction index.
    pending: Option<(u64, TraceOp)>,
    fetched_idx: u64,
    outstanding: u32,
    trace_done: bool,
    stats: CoreStats,
}

/// Post-warm-up snapshot of the state [`CpuComplex::warm_l2`] mutates:
/// the shared L2 and every core's trace position (including its RNG and
/// reuse history). Produced by [`CpuComplex::warm_snapshot`], consumed
/// by [`CpuComplex::warm_restore`].
pub struct WarmState {
    l2: L2Cache,
    traces: Vec<(Box<dyn TraceSource>, bool)>,
}

impl std::fmt::Debug for WarmState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarmState")
            .field("cores", &self.traces.len())
            .finish_non_exhaustive()
    }
}

/// Book-keeping for one in-flight line fill.
#[derive(Debug, Default)]
struct InFlightEntry {
    /// Core indices holding an MSHR slot on this line (issuer + merged
    /// loads), released on fill.
    slots: Vec<usize>,
    /// Core indices with a *blocking load* waiting on this line.
    waiters: Vec<usize>,
}

impl std::fmt::Debug for CoreRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreRunner")
            .field("core", &self.core)
            .field("trace", &self.trace.name())
            .field("fetched_idx", &self.fetched_idx)
            .field("outstanding", &self.outstanding)
            .finish_non_exhaustive()
    }
}

/// Cores + shared L2 + MSHRs.
#[derive(Debug)]
pub struct CpuComplex {
    cores: Vec<CoreRunner>,
    l2: L2Cache,
    /// In-flight lines and who waits on them.
    in_flight: HashMap<LineAddr, InFlightEntry>,
    /// Retired [`InFlightEntry`]s kept for reuse so the steady-state
    /// miss path never allocates (their `slots`/`waiters` capacity
    /// survives the round trip; the pool is bounded by the L2 MSHR
    /// count).
    entry_pool: Vec<InFlightEntry>,
    next_req_id: u64,
    data_mshrs: u32,
    l2_mshrs: usize,
    software_prefetch: bool,
    hw_prefetcher: Option<StreamPrefetcher>,
    fill_latency: Dur,
    clock: Dur,
}

impl CpuComplex {
    /// Builds the complex from a validated configuration and one trace
    /// per core; every core runs until it commits `budget` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len() != cfg.cores as usize`, if the
    /// configuration is invalid, or if `budget` is zero.
    pub fn new(cfg: &CpuConfig, traces: Vec<Box<dyn TraceSource>>, budget: u64) -> CpuComplex {
        cfg.validate().expect("invalid CPU configuration");
        assert_eq!(
            traces.len(),
            cfg.cores as usize,
            "one trace per core required"
        );
        let cores = traces
            .into_iter()
            .enumerate()
            .map(|(i, trace)| CoreRunner {
                core: OooCore::new(
                    CoreId(i as u32),
                    trace.time_per_instr(),
                    u64::from(cfg.rob_entries),
                    budget,
                ),
                trace,
                pending: None,
                fetched_idx: 0,
                outstanding: 0,
                trace_done: false,
                stats: CoreStats::default(),
            })
            .collect();
        CpuComplex {
            cores,
            l2: L2Cache::new(u64::from(cfg.l2_bytes), cfg.l2_ways as usize),
            // The map never holds more than `l2_mshrs` lines, and every
            // entry is recycled through the pool; seeding both with
            // that bound (and each entry's index lists with room for
            // every core) keeps the miss path off the allocator once
            // the run reaches steady state.
            in_flight: HashMap::with_capacity(cfg.l2_mshrs as usize + 1),
            entry_pool: (0..cfg.l2_mshrs as usize + 1)
                .map(|_| InFlightEntry {
                    slots: Vec::with_capacity(cfg.cores as usize * 4),
                    waiters: Vec::with_capacity(cfg.cores as usize * 4),
                })
                .collect(),
            next_req_id: 0,
            data_mshrs: cfg.data_mshrs,
            l2_mshrs: cfg.l2_mshrs as usize,
            software_prefetch: cfg.software_prefetch,
            hw_prefetcher: cfg
                .hw_prefetch
                .enabled
                .then(|| StreamPrefetcher::new(&cfg.hw_prefetch)),
            fill_latency: cfg.clock * u64::from(cfg.l2_hit_cycles),
            clock: cfg.clock,
        }
    }

    /// Delay between a line completing at the memory controller and the
    /// waiting load being usable at the core (L2 fill/forward).
    pub fn fill_latency(&self) -> Dur {
        self.fill_latency
    }

    /// Fast-forwards every core's trace through the L2 (no timing, no
    /// memory requests) to populate the cache before measurement — the
    /// standard warm-up that makes capacity evictions (and therefore
    /// writeback traffic) present from the first measured instruction.
    pub fn warm_l2(&mut self, ops_per_core: u64) {
        let n = self.cores.len();
        for _ in 0..ops_per_core {
            for i in 0..n {
                let runner = &mut self.cores[i];
                if runner.trace_done {
                    continue;
                }
                let Some(op) = runner.trace.next_op() else {
                    runner.trace_done = true;
                    continue;
                };
                if op.kind == OpKind::Prefetch && !self.software_prefetch {
                    continue;
                }
                self.l2.access(op.line, op.kind == OpKind::Store);
            }
        }
        self.l2.reset_counts();
    }

    /// Snapshots everything [`warm_l2`](Self::warm_l2) mutates — the
    /// shared L2 and each core's trace state — so a runner can reuse
    /// one warm-up across runs with identical warm inputs. Returns
    /// `None` if any trace source cannot clone itself.
    pub fn warm_snapshot(&self) -> Option<WarmState> {
        let mut traces = Vec::with_capacity(self.cores.len());
        for r in &self.cores {
            traces.push((r.trace.clone_box()?, r.trace_done));
        }
        Some(WarmState {
            l2: self.l2.clone(),
            traces,
        })
    }

    /// Restores a [`warm_snapshot`](Self::warm_snapshot) into this
    /// complex, replacing the L2 contents and trace positions with the
    /// snapshotted ones — byte-identical to having replayed the same
    /// warm-up. Returns `false` (leaving `self` untouched) on a shape
    /// mismatch or an uncloneable source.
    pub fn warm_restore(&mut self, state: &WarmState) -> bool {
        if state.traces.len() != self.cores.len() {
            return false;
        }
        let mut cloned = Vec::with_capacity(state.traces.len());
        for (trace, done) in &state.traces {
            match trace.clone_box() {
                Some(t) => cloned.push((t, *done)),
                None => return false,
            }
        }
        self.l2 = state.l2.clone();
        for (runner, (trace, done)) in self.cores.iter_mut().zip(cloned) {
            runner.trace = trace;
            runner.trace_done = done;
        }
        true
    }

    fn fresh_id(&mut self) -> RequestId {
        let id = RequestId(self.next_req_id);
        self.next_req_id += 1;
        id
    }

    /// Advances every core to `now`, collecting memory requests that
    /// become ready and the earliest self-wake time.
    pub fn advance(&mut self, now: Time) -> Advance {
        let mut requests = Vec::new();
        let next_wake = self.advance_into(now, &mut requests);
        Advance {
            requests,
            next_wake,
        }
    }

    /// [`advance`](Self::advance) into a caller-owned request buffer
    /// (not cleared first), so the event loop can reuse one scratch
    /// `Vec` instead of allocating an [`Advance`] per event. Returns
    /// the earliest self-wake time.
    pub fn advance_into(&mut self, now: Time, requests: &mut Vec<MemRequest>) -> Option<Time> {
        for i in 0..self.cores.len() {
            self.advance_core(i, now, requests);
        }
        self.next_wake(now)
    }

    fn advance_core(&mut self, i: usize, now: Time, requests: &mut Vec<MemRequest>) {
        self.cores[i].core.settle(now);
        loop {
            if self.cores[i].pending.is_none() {
                let runner = &mut self.cores[i];
                match runner.trace.next_op() {
                    Some(op) => {
                        let idx = runner.fetched_idx + op.gap;
                        runner.pending = Some((idx, op));
                    }
                    None => {
                        runner.trace_done = true;
                        runner.core.set_fetch_barrier(None);
                        return;
                    }
                }
            }
            let (idx, op) = self.cores[i].pending.expect("just filled");
            if !self.cores[i].core.can_fetch(idx, now) {
                // ROB full; a timed or response-driven wake follows. The
                // unfetched op also bars commit from passing it.
                self.cores[i].core.set_fetch_barrier(Some(idx));
                return;
            }
            if !self.execute_op(i, idx, op, now, requests) {
                // MSHR pressure; retried on the next response. Commit
                // must not run past the stalled, unfetched operation.
                self.cores[i].core.set_fetch_barrier(Some(idx));
                return;
            }
            let runner = &mut self.cores[i];
            runner.pending = None;
            runner.fetched_idx = idx + 1;
            runner.core.set_fetch_barrier(None);
        }
    }

    /// Runs one operation through the L2; returns false when it must
    /// wait for MSHR capacity.
    fn execute_op(
        &mut self,
        i: usize,
        idx: u64,
        op: TraceOp,
        now: Time,
        requests: &mut Vec<MemRequest>,
    ) -> bool {
        if op.kind == OpKind::Prefetch && !self.software_prefetch {
            return true; // executed as a no-op instruction
        }
        let present = self.l2.contains(op.line);
        let inflight = self.in_flight.contains_key(&op.line);
        let needs_request = !present && !inflight;
        let needs_slot = needs_request || (inflight && op.kind == OpKind::Load);
        let mshrs_full = (needs_slot && self.cores[i].outstanding >= self.data_mshrs)
            || (needs_request && self.in_flight.len() >= self.l2_mshrs);
        if mshrs_full {
            // A software prefetch never stalls the pipeline: hardware
            // drops it when no MSHR is available.
            return op.kind == OpKind::Prefetch;
        }

        self.cores[i].stats.l2_accesses += 1;
        if op.kind == OpKind::Prefetch && (present || inflight) {
            return true; // useless prefetch: drop
        }

        // Allocate-at-issue: the access installs the line; the fill
        // arrives later via `complete`.
        let outcome = self.l2.access(op.line, op.kind == OpKind::Store);
        match (outcome, inflight) {
            (L2Outcome::Hit, false) => {
                // Genuine hit; absorbed by the base commit rate.
            }
            (L2Outcome::Hit, true) => {
                // The line is still being fetched (e.g. by a prefetch):
                // a load must wait for it — this is prefetch timeliness.
                if op.kind == OpKind::Load {
                    self.cores[i].core.push_blocking_load(idx, op.line);
                    let entry = self.in_flight.get_mut(&op.line).expect("checked in flight");
                    entry.slots.push(i);
                    entry.waiters.push(i);
                    self.cores[i].outstanding += 1;
                }
            }
            (L2Outcome::Miss { writeback }, _) => {
                debug_assert!(!inflight, "in-flight lines are present in L2");
                self.cores[i].stats.l2_misses += 1;
                self.cores[i].outstanding += 1;
                let kind = match op.kind {
                    OpKind::Load | OpKind::Store => AccessKind::DemandRead,
                    OpKind::Prefetch => AccessKind::SoftwarePrefetch,
                };
                let id = self.fresh_id();
                requests.push(MemRequest::new(id, CoreId(i as u32), kind, op.line, now));
                let mut entry = self.entry_pool.pop().unwrap_or_default();
                entry.slots.push(i);
                if op.kind == OpKind::Load {
                    self.cores[i].core.push_blocking_load(idx, op.line);
                    entry.waiters.push(i);
                }
                self.in_flight.insert(op.line, entry);
                if let Some(victim) = writeback {
                    let id = self.fresh_id();
                    requests.push(MemRequest::new(
                        id,
                        CoreId(i as u32),
                        AccessKind::Write,
                        victim,
                        now,
                    ));
                }
                // Train the optional hardware stream prefetcher on the
                // demand-miss stream and issue its suggestions.
                if op.kind != OpKind::Prefetch {
                    self.run_hw_prefetcher(i, op.line, now, requests);
                }
            }
        }
        true
    }

    /// Feeds a demand miss to the hardware prefetcher and issues the
    /// suggested lines (bounded by L2 MSHR capacity; suggestions are
    /// dropped, never stalled on).
    fn run_hw_prefetcher(
        &mut self,
        i: usize,
        miss: fbd_types::LineAddr,
        now: Time,
        requests: &mut Vec<MemRequest>,
    ) {
        let Some(pf) = self.hw_prefetcher.as_mut() else {
            return;
        };
        for line in pf.on_demand_miss(miss) {
            if self.l2.contains(line)
                || self.in_flight.contains_key(&line)
                || self.in_flight.len() >= self.l2_mshrs
            {
                continue;
            }
            // Allocate-at-issue, like every other fill. Evictions from
            // prefetch allocations write back as usual.
            let outcome = self.l2.access(line, false);
            let id = self.fresh_id();
            requests.push(MemRequest::new(
                id,
                CoreId(i as u32),
                AccessKind::HardwarePrefetch,
                line,
                now,
            ));
            let entry = self.entry_pool.pop().unwrap_or_default();
            self.in_flight.insert(line, entry);
            if let L2Outcome::Miss {
                writeback: Some(victim),
            } = outcome
            {
                let id = self.fresh_id();
                requests.push(MemRequest::new(
                    id,
                    CoreId(i as u32),
                    AccessKind::Write,
                    victim,
                    now,
                ));
            }
        }
    }

    /// Delivers a completed line fill. `now` must already include the
    /// L2 fill latency (schedule the delivery at
    /// `completion + fill_latency()`).
    pub fn complete(&mut self, line: LineAddr, now: Time) {
        if let Some(mut entry) = self.in_flight.remove(&line) {
            for &i in &entry.slots {
                self.cores[i].outstanding = self.cores[i].outstanding.saturating_sub(1);
            }
            for &i in &entry.waiters {
                self.cores[i].core.complete_line(line, now);
            }
            entry.slots.clear();
            entry.waiters.clear();
            self.entry_pool.push(entry);
        }
    }

    /// Retires a fill whose data never arrived (a corrupted prefetch
    /// transfer dropped under fault injection). MSHR slots are freed
    /// and waiters woken exactly like [`complete`](Self::complete) —
    /// a real controller would re-issue demand accesses that merged
    /// into the dead prefetch; waking them at drop time is the modeling
    /// grace for that — but the L2 frame allocated at issue is
    /// invalidated, so the next access to the line misses again.
    pub fn complete_dropped(&mut self, line: LineAddr, now: Time) {
        self.complete(line, now);
        self.l2.invalidate(line);
    }

    fn next_wake(&self, now: Time) -> Option<Time> {
        let mut wake: Option<Time> = None;
        let mut push = |t: Time| {
            wake = Some(wake.map_or(t, |w| w.min(t)));
        };
        for runner in &self.cores {
            if let Some((idx, _)) = runner.pending {
                if let Some(t) = runner.core.fetch_ready_time(idx) {
                    if t > now {
                        push(t);
                    }
                }
            }
            if let Some(t) = runner.core.projected_done_time(now) {
                push(t.max(now + self.clock));
            }
        }
        wake
    }

    /// True once any core has committed its budget (the paper's stop
    /// condition: "the simulation stops when one processor core commits
    /// 100 million instructions").
    pub fn any_done(&self, now: Time) -> bool {
        self.cores.iter().any(|r| r.core.done(now))
    }

    /// Final per-core statistics at the end instant.
    pub fn finish(&mut self, end: Time) -> Vec<CoreStats> {
        self.cores
            .iter_mut()
            .map(|r| {
                r.core.settle(end);
                r.stats.instructions = r.core.commit_idx(end);
                r.stats.cycles = (end - Time::ZERO) / self.clock;
                r.stats
            })
            .collect()
    }

    /// (hits, misses) observed at the shared L2.
    pub fn l2_counts(&self) -> (u64, u64) {
        self.l2.hit_miss_counts()
    }

    /// Instantaneous miss-handling occupancy: (distinct in-flight lines
    /// holding L2 MSHRs, per-core MSHR slots in use summed over cores).
    /// Telemetry gauges; sampling this has no timing effect.
    pub fn occupancy(&self) -> (usize, u64) {
        (
            self.in_flight.len(),
            self.cores.iter().map(|r| u64::from(r.outstanding)).sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::StridedTrace;
    use fbd_types::config::CpuConfig;

    fn cfg(cores: u32) -> CpuConfig {
        CpuConfig::paper_default(cores)
    }

    fn strided(count: u64, stride: u64, gap: u64) -> Box<dyn TraceSource> {
        Box::new(StridedTrace::new(count, stride, gap, Dur::from_ps(125)))
    }

    #[test]
    fn misses_produce_demand_reads() {
        let mut cpx = CpuComplex::new(&cfg(1), vec![strided(4, 1000, 10)], 1_000_000);
        let adv = cpx.advance(Time::ZERO);
        assert_eq!(adv.requests.len(), 4);
        assert!(adv
            .requests
            .iter()
            .all(|r| r.kind == AccessKind::DemandRead));
        // Distinct ids, distinct lines.
        let ids: std::collections::HashSet<_> = adv.requests.iter().map(|r| r.id).collect();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn repeated_line_hits_after_fill() {
        let mut cpx = CpuComplex::new(&cfg(1), vec![strided(3, 0, 10)], 1_000_000);
        let adv = cpx.advance(Time::ZERO);
        // First access misses; the rest wait on the same line (merged).
        assert_eq!(adv.requests.len(), 1);
        cpx.complete(LineAddr::new(0), Time::from_ns(60));
        let adv2 = cpx.advance(Time::from_ns(60));
        assert!(adv2.requests.is_empty());
        let (hits, misses) = cpx.l2_counts();
        assert_eq!((hits, misses), (2, 1));
    }

    #[test]
    fn dropped_fill_uncaches_the_line_but_frees_the_mshr() {
        // Two accesses to the same line, far enough apart in the
        // instruction stream that the second only reaches the L2 after
        // the first's fill resolves (ROB-blocked, like
        // `rob_limits_outstanding_run_ahead`).
        let requests_after = |dropped: bool| -> Vec<LineAddr> {
            let mut cpx = CpuComplex::new(&cfg(1), vec![strided(2, 0, 100)], 1_000_000);
            let adv = cpx.advance(Time::ZERO);
            assert_eq!(adv.requests.len(), 1);
            let line = adv.requests[0].line;
            if dropped {
                cpx.complete_dropped(line, Time::from_ns(60));
            } else {
                cpx.complete(line, Time::from_ns(60));
            }
            // Either way the MSHR is free and the stalled core resumed.
            assert_eq!(cpx.occupancy(), (0, 0));
            let mut out = Vec::new();
            let mut at = Time::from_ns(60);
            for _ in 0..5 {
                let adv = cpx.advance(at);
                out.extend(adv.requests.iter().map(|r| r.line));
                let Some(wake) = adv.next_wake else { break };
                at = wake;
            }
            out
        };
        // A delivered fill leaves the line cached: the second access hits.
        assert!(requests_after(false).is_empty());
        // A dropped fill leaves it uncached: the second access misses
        // and re-requests it (the fault-injection hit-rate shift).
        assert_eq!(requests_after(true), [LineAddr::new(0)]);
    }

    #[test]
    fn rob_limits_outstanding_run_ahead() {
        // Gap 100: ops sit at instruction indices 100, 201, 302, ...
        let mut cpx = CpuComplex::new(&cfg(1), vec![strided(100, 1000, 100)], 1_000_000);
        let adv = cpx.advance(Time::ZERO);
        // At t=0 commit is at 0; only idx 100 < 196 fits the ROB.
        assert_eq!(adv.requests.len(), 1);
        // The op at 201 fits once commit reaches 6 — a timed wake.
        let wake = adv.next_wake.expect("ROB stall expires by time");
        assert_eq!(wake, Time::from_ps(6 * 125));
        let adv2 = cpx.advance(wake);
        assert_eq!(adv2.requests.len(), 1);
        // The op at 302 needs commit ≥ 107, but commit is capped at the
        // outstanding miss (idx 100): only a fill can unblock it.
        let adv3 = cpx.advance(Time::from_ns(50));
        assert!(adv3.requests.is_empty());
        assert_eq!(adv3.next_wake, None, "blocked on a miss, not on time");
        let line = adv.requests[0].line;
        cpx.complete(line, Time::from_ns(60));
        // Commit resumes at 101 and reaches 107 six instructions later;
        // only then does idx 302 fit the window.
        let adv4 = cpx.advance(Time::from_ns(60));
        assert!(adv4.requests.is_empty());
        let wake = adv4.next_wake.expect("timed ROB wake after fill");
        let adv5 = cpx.advance(wake);
        assert_eq!(adv5.requests.len(), 1);
    }

    #[test]
    fn mshr_limit_bounds_outstanding_misses() {
        // Gap 0: unbounded run-ahead except for MSHRs (32).
        let mut cpx = CpuComplex::new(&cfg(1), vec![strided(100, 1000, 0)], 1_000_000);
        let adv = cpx.advance(Time::ZERO);
        assert_eq!(adv.requests.len(), 32);
    }

    #[test]
    fn writebacks_emitted_for_dirty_victims() {
        // Tiny L2 to force evictions quickly.
        let mut cfg = cfg(1);
        cfg.l2_bytes = 4 * 64; // 1 set... 4 ways × 64 B
        cfg.l2_ways = 4;
        struct StoreTrace(u64);
        impl TraceSource for StoreTrace {
            fn next_op(&mut self) -> Option<TraceOp> {
                if self.0 == 0 {
                    return None;
                }
                self.0 -= 1;
                Some(TraceOp {
                    gap: 1,
                    kind: OpKind::Store,
                    line: LineAddr::new(self.0 * 17),
                })
            }
            fn time_per_instr(&self) -> Dur {
                Dur::from_ps(125)
            }
            fn name(&self) -> &str {
                "stores"
            }
        }
        let mut cpx = CpuComplex::new(&cfg, vec![Box::new(StoreTrace(10))], 1_000_000);
        let adv = cpx.advance(Time::ZERO);
        let writes = adv
            .requests
            .iter()
            .filter(|r| r.kind == AccessKind::Write)
            .count();
        assert!(writes >= 5, "dirty evictions must write back, got {writes}");
    }

    #[test]
    fn software_prefetch_issues_and_merges() {
        struct PfThenLoad(u8);
        impl TraceSource for PfThenLoad {
            fn next_op(&mut self) -> Option<TraceOp> {
                self.0 += 1;
                match self.0 {
                    1 => Some(TraceOp {
                        gap: 0,
                        kind: OpKind::Prefetch,
                        line: LineAddr::new(42),
                    }),
                    2 => Some(TraceOp {
                        gap: 50,
                        kind: OpKind::Load,
                        line: LineAddr::new(42),
                    }),
                    _ => None,
                }
            }
            fn time_per_instr(&self) -> Dur {
                Dur::from_ps(125)
            }
            fn name(&self) -> &str {
                "pf-then-load"
            }
        }
        let mut cpx = CpuComplex::new(&cfg(1), vec![Box::new(PfThenLoad(0))], 1_000_000);
        let adv = cpx.advance(Time::ZERO);
        // One prefetch request; the load merges onto it.
        assert_eq!(adv.requests.len(), 1);
        assert_eq!(adv.requests[0].kind, AccessKind::SoftwarePrefetch);
        // Before the fill, commit is blocked at the load.
        assert_eq!(cpx.cores[0].core.blocking_loads(), 1);
        cpx.complete(LineAddr::new(42), Time::from_ns(30));
        assert_eq!(cpx.cores[0].core.blocking_loads(), 0);

        // With software prefetching off, the prefetch disappears and the
        // load itself misses.
        let mut cfg_off = cfg(1);
        cfg_off.software_prefetch = false;
        let mut cpx = CpuComplex::new(&cfg_off, vec![Box::new(PfThenLoad(0))], 1_000_000);
        let adv = cpx.advance(Time::ZERO);
        assert_eq!(adv.requests.len(), 1);
        assert_eq!(adv.requests[0].kind, AccessKind::DemandRead);
    }

    #[test]
    fn next_wake_projects_finish_when_idle() {
        let mut cpx = CpuComplex::new(&cfg(1), vec![strided(1, 1, 5)], 100);
        let adv = cpx.advance(Time::ZERO);
        assert_eq!(adv.requests.len(), 1);
        cpx.complete(LineAddr::new(0), Time::from_ns(63));
        let adv = cpx.advance(Time::from_ns(63));
        // Trace done, nothing blocking: finish is projectable.
        assert!(adv.next_wake.is_some());
        let stats = cpx.finish(adv.next_wake.unwrap());
        assert_eq!(stats[0].instructions, 100);
        assert!(stats[0].cycles > 0);
        assert!(cpx.any_done(adv.next_wake.unwrap()));
    }

    #[test]
    #[should_panic(expected = "one trace per core")]
    fn trace_count_must_match_cores() {
        let _ = CpuComplex::new(&cfg(2), vec![strided(1, 1, 1)], 100);
    }

    #[test]
    fn hardware_prefetcher_issues_ahead_of_streams() {
        let mut c = cfg(1);
        c.hw_prefetch = fbd_types::config::HwPrefetchConfig::typical();
        // Unit-stride loads: after two misses the prefetcher should run
        // ahead.
        let mut cpx = CpuComplex::new(&c, vec![strided(4, 1, 10)], 1_000_000);
        let adv = cpx.advance(Time::ZERO);
        let hw = adv
            .requests
            .iter()
            .filter(|r| r.kind == AccessKind::HardwarePrefetch)
            .count();
        assert!(hw >= 4, "expected stream prefetches, got {hw}");
        // Later demand to a prefetched line merges instead of re-missing.
        let demand = adv
            .requests
            .iter()
            .filter(|r| r.kind == AccessKind::DemandRead)
            .count();
        assert!(demand < 4, "prefetched lines must absorb later demands");
    }

    #[test]
    fn occupancy_tracks_in_flight_lines_and_slots() {
        let mut cpx = CpuComplex::new(&cfg(1), vec![strided(4, 1000, 10)], 1_000_000);
        assert_eq!(cpx.occupancy(), (0, 0));
        let adv = cpx.advance(Time::ZERO);
        assert_eq!(adv.requests.len(), 4);
        assert_eq!(cpx.occupancy(), (4, 4));
        cpx.complete(adv.requests[0].line, Time::from_ns(60));
        assert_eq!(cpx.occupancy(), (3, 3));
    }

    #[test]
    fn hardware_prefetcher_off_by_default() {
        let mut cpx = CpuComplex::new(&cfg(1), vec![strided(4, 1, 10)], 1_000_000);
        let adv = cpx.advance(Time::ZERO);
        assert!(adv
            .requests
            .iter()
            .all(|r| r.kind != AccessKind::HardwarePrefetch));
    }
}
