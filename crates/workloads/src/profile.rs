//! Per-benchmark behavioural profiles.
//!
//! The paper runs twelve memory-intensive SPEC2000 programs (Table 3).
//! We cannot run the Alpha binaries, so each benchmark is modelled by a
//! parameter set capturing the qualitative character the AMB prefetcher
//! responds to: memory intensity, spatial locality (streaming vs
//! irregular), concurrency of access streams, working-set size, store
//! share, and how well the compiler's software prefetching covers the
//! access pattern. The values are chosen from the programs' published
//! characterizations (floating-point streaming codes like *swim*,
//! *mgrid*, *applu* are bandwidth-hungry and highly spatial; integer
//! codes like *parser* and *vortex* are irregular and latency-bound).

use fbd_types::time::Dur;

/// Parameters describing one benchmark's memory behaviour.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name (SPEC2000 program).
    pub name: &'static str,
    /// Commit IPC when no L2 miss stalls the core (folds in L1 and ILP).
    pub base_ipc: f64,
    /// Memory operations reaching the L2 per 1000 committed
    /// instructions (approximately the L1 miss rate plus prefetches).
    pub ops_per_kilo: u32,
    /// Fraction of those operations that are stores.
    pub store_fraction: f64,
    /// Concurrent sequential access streams.
    pub streams: u32,
    /// Fraction of accesses that follow a stream (the rest are
    /// irregular: uniform over the working set or short-reuse).
    pub stream_fraction: f64,
    /// Stream stride in cachelines (1 = unit stride).
    pub stream_stride: u64,
    /// Fraction of irregular accesses that re-reference a recent line
    /// (temporal locality surviving the L1).
    pub reuse_fraction: f64,
    /// Working set in cachelines (64 B each).
    pub footprint_lines: u64,
    /// Probability that a stream access carries a compiler-inserted
    /// software prefetch for a future iteration.
    pub sw_prefetch_coverage: f64,
    /// Prefetch distance in future stream iterations.
    pub sw_prefetch_distance: u64,
}

impl BenchmarkProfile {
    /// Base commit time per instruction at a 4 GHz core clock.
    pub fn time_per_instr(&self) -> Dur {
        Dur::from_ps((250.0 / self.base_ipc).round() as u64)
    }

    /// Mean instructions between memory operations.
    pub fn mean_gap(&self) -> u64 {
        (1000 / self.ops_per_kilo as u64).max(1)
    }
}

const MB: u64 = (1 << 20) / 64; // lines per megabyte

/// The twelve profiles, in the paper's Table 3 order.
pub const PROFILES: [BenchmarkProfile; 12] = [
    BenchmarkProfile {
        name: "wupwise",
        base_ipc: 2.2,
        ops_per_kilo: 14,
        store_fraction: 0.30,
        streams: 4,
        stream_fraction: 0.85,
        stream_stride: 1,
        reuse_fraction: 0.30,
        footprint_lines: 176 * MB,
        sw_prefetch_coverage: 0.80,
        sw_prefetch_distance: 24,
    },
    BenchmarkProfile {
        name: "swim",
        base_ipc: 1.8,
        ops_per_kilo: 30,
        store_fraction: 0.35,
        streams: 6,
        stream_fraction: 0.95,
        stream_stride: 1,
        reuse_fraction: 0.20,
        footprint_lines: 191 * MB,
        sw_prefetch_coverage: 0.90,
        sw_prefetch_distance: 24,
    },
    BenchmarkProfile {
        name: "mgrid",
        base_ipc: 2.0,
        ops_per_kilo: 24,
        store_fraction: 0.25,
        streams: 8,
        stream_fraction: 0.90,
        stream_stride: 1,
        reuse_fraction: 0.30,
        footprint_lines: 56 * MB,
        sw_prefetch_coverage: 0.85,
        sw_prefetch_distance: 24,
    },
    BenchmarkProfile {
        name: "applu",
        base_ipc: 1.9,
        ops_per_kilo: 22,
        store_fraction: 0.30,
        streams: 6,
        stream_fraction: 0.90,
        stream_stride: 1,
        reuse_fraction: 0.25,
        footprint_lines: 180 * MB,
        sw_prefetch_coverage: 0.85,
        sw_prefetch_distance: 24,
    },
    BenchmarkProfile {
        name: "vpr",
        base_ipc: 1.6,
        ops_per_kilo: 12,
        store_fraction: 0.30,
        streams: 2,
        stream_fraction: 0.35,
        stream_stride: 1,
        reuse_fraction: 0.45,
        footprint_lines: 48 * MB,
        sw_prefetch_coverage: 0.25,
        sw_prefetch_distance: 8,
    },
    BenchmarkProfile {
        name: "equake",
        base_ipc: 1.7,
        ops_per_kilo: 18,
        store_fraction: 0.25,
        streams: 3,
        stream_fraction: 0.60,
        stream_stride: 1,
        reuse_fraction: 0.35,
        footprint_lines: 49 * MB,
        sw_prefetch_coverage: 0.55,
        sw_prefetch_distance: 16,
    },
    BenchmarkProfile {
        name: "facerec",
        base_ipc: 2.0,
        ops_per_kilo: 16,
        store_fraction: 0.20,
        streams: 4,
        stream_fraction: 0.85,
        stream_stride: 1,
        reuse_fraction: 0.30,
        footprint_lines: 16 * MB,
        sw_prefetch_coverage: 0.80,
        sw_prefetch_distance: 24,
    },
    BenchmarkProfile {
        name: "lucas",
        base_ipc: 1.8,
        ops_per_kilo: 20,
        store_fraction: 0.30,
        streams: 4,
        stream_fraction: 0.80,
        stream_stride: 2,
        reuse_fraction: 0.20,
        footprint_lines: 142 * MB,
        sw_prefetch_coverage: 0.70,
        sw_prefetch_distance: 16,
    },
    BenchmarkProfile {
        name: "fma3d",
        base_ipc: 1.8,
        ops_per_kilo: 14,
        store_fraction: 0.30,
        streams: 3,
        stream_fraction: 0.65,
        stream_stride: 1,
        reuse_fraction: 0.35,
        footprint_lines: 103 * MB,
        sw_prefetch_coverage: 0.60,
        sw_prefetch_distance: 16,
    },
    BenchmarkProfile {
        name: "parser",
        base_ipc: 1.4,
        ops_per_kilo: 10,
        store_fraction: 0.30,
        streams: 1,
        stream_fraction: 0.25,
        stream_stride: 1,
        reuse_fraction: 0.50,
        footprint_lines: 37 * MB,
        sw_prefetch_coverage: 0.15,
        sw_prefetch_distance: 8,
    },
    BenchmarkProfile {
        name: "gap",
        base_ipc: 1.5,
        ops_per_kilo: 12,
        store_fraction: 0.25,
        streams: 2,
        stream_fraction: 0.45,
        stream_stride: 1,
        reuse_fraction: 0.40,
        footprint_lines: 193 * MB,
        sw_prefetch_coverage: 0.35,
        sw_prefetch_distance: 8,
    },
    BenchmarkProfile {
        name: "vortex",
        base_ipc: 1.7,
        ops_per_kilo: 9,
        store_fraction: 0.35,
        streams: 2,
        stream_fraction: 0.40,
        stream_stride: 1,
        reuse_fraction: 0.45,
        footprint_lines: 72 * MB,
        sw_prefetch_coverage: 0.30,
        sw_prefetch_distance: 8,
    },
];

/// Looks up a profile by benchmark name.
///
/// # Examples
///
/// ```
/// let p = fbd_workloads::profile::by_name("swim").unwrap();
/// assert!(p.stream_fraction > 0.9);
/// ```
pub fn by_name(name: &str) -> Option<&'static BenchmarkProfile> {
    PROFILES.iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_twelve_paper_benchmarks_present() {
        let expected = [
            "wupwise", "swim", "mgrid", "applu", "vpr", "equake", "facerec", "lucas", "fma3d",
            "parser", "gap", "vortex",
        ];
        for name in expected {
            assert!(by_name(name).is_some(), "missing profile for {name}");
        }
        assert_eq!(PROFILES.len(), 12);
    }

    #[test]
    fn excluded_benchmarks_absent() {
        // The paper excludes art and mcf (§4.2).
        assert!(by_name("art").is_none());
        assert!(by_name("mcf").is_none());
    }

    #[test]
    fn profiles_are_sane() {
        for p in &PROFILES {
            assert!(p.base_ipc > 0.5 && p.base_ipc <= 8.0, "{}", p.name);
            assert!(p.ops_per_kilo > 0 && p.ops_per_kilo < 100, "{}", p.name);
            assert!((0.0..=1.0).contains(&p.store_fraction), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.stream_fraction), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.reuse_fraction), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.sw_prefetch_coverage), "{}", p.name);
            assert!(p.streams > 0 && p.stream_stride > 0, "{}", p.name);
            // Working sets far exceed the 4 MB L2 (memory-intensive).
            assert!(p.footprint_lines * 64 > (4 << 20), "{}", p.name);
            assert!(!p.time_per_instr().is_zero());
            assert!(p.mean_gap() >= 1);
        }
    }

    #[test]
    fn streaming_fp_codes_more_spatial_than_integer_codes() {
        let swim = by_name("swim").unwrap();
        let parser = by_name("parser").unwrap();
        assert!(swim.stream_fraction > parser.stream_fraction);
        assert!(swim.sw_prefetch_coverage > parser.sw_prefetch_coverage);
        assert!(swim.ops_per_kilo > parser.ops_per_kilo);
    }
}
