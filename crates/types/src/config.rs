//! System configuration: the contents of the paper's Table 1 (pipeline and
//! memory subsystem) and Table 2 (DRAM timing parameters), plus the AMB
//! prefetching knobs varied in the sensitivity studies (Figures 8, 11, 13).
//!
//! The paper's default setting is available via
//! [`SystemConfig::paper_default`]; every experiment of the evaluation
//! section is a small perturbation of it.

use crate::error::ConfigError;
use crate::time::{DataRate, Dur};

/// DRAM timing parameters (Table 2 of the paper, DDR2 at 667 MT/s).
///
/// All values are absolute durations; the simulator quantizes command
/// issue to DRAM clock edges, so with the paper's parameters (integer
/// multiples of 3 ns at 667 MT/s) no rounding occurs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramTimings {
    /// PRE to ACT to the same bank.
    pub t_rp: Dur,
    /// ACT command to RD command to the same bank.
    pub t_rcd: Dur,
    /// RD command to first read data beat (CAS latency).
    pub t_cl: Dur,
    /// ACT command to ACT command to the same bank.
    pub t_rc: Dur,
    /// ACT to ACT (or PRE to PRE) to *different* banks.
    pub t_rrd: Dur,
    /// RD command to PRE command to the same bank.
    pub t_rpd: Dur,
    /// End of write data to RD command (write-to-read turnaround).
    pub t_wtr: Dur,
    /// ACT command to PRE command (row-access minimum) for reads.
    pub t_ras: Dur,
    /// WR command to first write data beat (write latency).
    pub t_wl: Dur,
    /// WR command to PRE command to the same bank.
    pub t_wpd: Dur,
    /// Four-activate window: at most four ACTs to one rank within this
    /// span (zero disables; Table 2 omits it, so the paper's preset
    /// enables the JEDEC DDR2 value).
    pub t_faw: Dur,
}

impl DramTimings {
    /// The paper's Table 2 values.
    pub const fn ddr2_table2() -> DramTimings {
        DramTimings {
            t_rp: Dur::from_ns(15),
            t_rcd: Dur::from_ns(15),
            t_cl: Dur::from_ns(15),
            t_rc: Dur::from_ns(54),
            t_rrd: Dur::from_ns(9),
            t_rpd: Dur::from_ns(9),
            t_wtr: Dur::from_ns(9),
            t_ras: Dur::from_ns(39),
            t_wl: Dur::from_ns(12),
            t_wpd: Dur::from_ns(36),
            t_faw: Dur::from_ps(37_500),
        }
    }

    /// Representative DDR3-1333 timings (CL9 parts, 1.5 ns clock): the
    /// paper's footnote 1 anticipates FB-DIMM carrying DDR3, so the
    /// simulator provides the substrate as an extension.
    pub const fn ddr3_1333() -> DramTimings {
        DramTimings {
            t_rp: Dur::from_ps(13_500),
            t_rcd: Dur::from_ps(13_500),
            t_cl: Dur::from_ps(13_500),
            t_rc: Dur::from_ps(49_500),
            t_rrd: Dur::from_ps(6_000),
            t_rpd: Dur::from_ps(7_500),
            t_wtr: Dur::from_ps(7_500),
            t_ras: Dur::from_ps(36_000),
            t_wl: Dur::from_ps(12_000),
            t_wpd: Dur::from_ps(31_500),
            t_faw: Dur::from_ps(30_000),
        }
    }

    /// Checks internal consistency of the timing set.
    ///
    /// # Errors
    ///
    /// Returns an error if any timing is zero, or if derived constraints
    /// are inconsistent (`tRC < tRAS + tRP`, `tRAS < tRCD`).
    pub fn validate(&self) -> Result<(), ConfigError> {
        let fields: [(&'static str, Dur); 10] = [
            ("t_rp", self.t_rp),
            ("t_rcd", self.t_rcd),
            ("t_cl", self.t_cl),
            ("t_rc", self.t_rc),
            ("t_rrd", self.t_rrd),
            ("t_rpd", self.t_rpd),
            ("t_wtr", self.t_wtr),
            ("t_ras", self.t_ras),
            ("t_wl", self.t_wl),
            ("t_wpd", self.t_wpd),
        ];
        for (name, value) in fields {
            if value.is_zero() {
                return Err(ConfigError::new(name, "must be non-zero"));
            }
        }
        // t_faw may be zero (disabled) but must exceed tRRD when set.
        if !self.t_faw.is_zero() && self.t_faw < self.t_rrd {
            return Err(ConfigError::new(
                "t_faw",
                "must be at least t_rrd when enabled",
            ));
        }
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(ConfigError::new("t_rc", "must be at least t_ras + t_rp"));
        }
        if self.t_ras < self.t_rcd {
            return Err(ConfigError::new("t_ras", "must be at least t_rcd"));
        }
        if self.t_cl > self.t_rc {
            return Err(ConfigError::new("t_cl", "must not exceed t_rc"));
        }
        if self.t_rc < self.t_rcd + self.t_cl {
            return Err(ConfigError::new(
                "t_rc",
                "must be at least t_rcd + t_cl (the read pipeline must fit \
                 in one row cycle)",
            ));
        }
        Ok(())
    }
}

impl Default for DramTimings {
    fn default() -> Self {
        DramTimings::ddr2_table2()
    }
}

/// Row-buffer management policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PagePolicy {
    /// Auto-precharge after every column access (the paper's default;
    /// required by cacheline and multi-cacheline interleaving).
    #[default]
    ClosePage,
    /// Leave the row open after access (used with page interleaving).
    OpenPage,
}

/// How the physical address space is laid out across channels, DIMMs and
/// banks (paper §3.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Interleaving {
    /// Consecutive cachelines round-robin over {channel, DIMM, bank}.
    #[default]
    Cacheline,
    /// Groups of `lines` consecutive cachelines stay in one DRAM row;
    /// groups round-robin over {channel, DIMM, bank}. Required by AMB
    /// prefetching so a region is one row's worth of column accesses.
    MultiCacheline {
        /// Group size in cachelines (the paper's K, 2–8).
        lines: u32,
    },
    /// Whole DRAM pages round-robin over {channel, DIMM, bank}.
    Page,
}

impl Interleaving {
    /// The contiguity granularity in cachelines: how many consecutive
    /// lines map to the same DRAM row before moving to the next bank.
    pub fn group_lines(self, lines_per_page: u32) -> u32 {
        match self {
            Interleaving::Cacheline => 1,
            Interleaving::MultiCacheline { lines } => lines,
            Interleaving::Page => lines_per_page,
        }
    }
}

/// Associativity of the AMB prefetch buffer's tag structure (held at the
/// memory controller; paper §5.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Associativity {
    /// Direct-mapped.
    Direct,
    /// N-way set associative.
    Ways(u32),
    /// Fully associative (the paper's default).
    Full,
}

impl Associativity {
    /// Number of ways given a total entry count.
    pub fn ways(self, entries: u32) -> u32 {
        match self {
            Associativity::Direct => 1,
            Associativity::Ways(n) => n,
            Associativity::Full => entries,
        }
    }
}

/// Replacement policy of the AMB cache.
///
/// The paper uses FIFO: "LRU is not suitable for AMB cache because a hit
/// block may be cached in the processor and will not be accessed soon."
/// LRU is provided for the ablation study.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Replacement {
    /// First-in first-out (the paper's choice).
    #[default]
    Fifo,
    /// Least-recently-used (ablation only).
    Lru,
}

/// Operating mode of the AMB prefetcher.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AmbPrefetchMode {
    /// No prefetching: plain FB-DIMM (the paper's "FBD").
    #[default]
    Off,
    /// Region-based AMB prefetching (the paper's "FBD-AP").
    Normal,
    /// AMB Prefetching with Full Latency: hits skip the DRAM bank work
    /// but are charged the full miss idle latency. Isolates the
    /// bandwidth-utilization gain (the paper's "FBD-APFL", Figure 9).
    FullLatency,
}

/// Configuration of the region-based AMB prefetcher (paper §3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AmbPrefetchConfig {
    /// Operating mode.
    pub mode: AmbPrefetchMode,
    /// Region size K in cachelines (2–8 in the paper's experiments).
    pub region_lines: u32,
    /// AMB cache capacity per AMB, in 64-byte blocks (default 64 = 4 KB).
    pub cache_lines: u32,
    /// Tag-structure associativity.
    pub associativity: Associativity,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl AmbPrefetchConfig {
    /// Prefetching disabled (plain FB-DIMM).
    pub const fn off() -> AmbPrefetchConfig {
        AmbPrefetchConfig {
            mode: AmbPrefetchMode::Off,
            region_lines: 4,
            cache_lines: 64,
            associativity: Associativity::Full,
            replacement: Replacement::Fifo,
        }
    }

    /// The paper's default: K=4, 64 blocks (4 KB), fully associative,
    /// FIFO replacement.
    pub const fn paper_default() -> AmbPrefetchConfig {
        AmbPrefetchConfig {
            mode: AmbPrefetchMode::Normal,
            region_lines: 4,
            cache_lines: 64,
            associativity: Associativity::Full,
            replacement: Replacement::Fifo,
        }
    }

    /// True when any prefetching variant is active.
    pub const fn is_enabled(&self) -> bool {
        !matches!(self.mode, AmbPrefetchMode::Off)
    }

    /// Checks the prefetcher parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if the region size or cache size is zero or not a
    /// power of two, if the cache cannot hold one region, or if the
    /// associativity does not divide the entry count.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.region_lines.is_power_of_two() {
            return Err(ConfigError::new("region_lines", "must be a power of two"));
        }
        if !self.cache_lines.is_power_of_two() {
            return Err(ConfigError::new("cache_lines", "must be a power of two"));
        }
        if self.is_enabled() && self.cache_lines < self.region_lines {
            return Err(ConfigError::new(
                "cache_lines",
                "AMB cache must hold at least one region",
            ));
        }
        let ways = self.associativity.ways(self.cache_lines);
        if ways == 0 || ways > self.cache_lines || !self.cache_lines.is_multiple_of(ways) {
            return Err(ConfigError::new(
                "associativity",
                format!("{ways} ways must divide {} entries", self.cache_lines),
            ));
        }
        Ok(())
    }
}

impl Default for AmbPrefetchConfig {
    fn default() -> Self {
        AmbPrefetchConfig::off()
    }
}

/// DRAM refresh parameters.
///
/// The paper (like most academic studies of its era) ignores refresh;
/// a production memory controller cannot. When enabled, every DIMM
/// receives an all-bank auto-refresh every `t_refi` on average, during
/// which its banks are unavailable for `t_rfc`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RefreshConfig {
    /// Master switch (off to match the paper).
    pub enabled: bool,
    /// Average refresh interval (DDR2: 7.8 µs).
    pub t_refi: Dur,
    /// Refresh cycle time — banks blocked this long (DDR2 1 Gb: 127.5 ns,
    /// rounded to a clock multiple here).
    pub t_rfc: Dur,
}

impl RefreshConfig {
    /// Refresh disabled (the paper's setting).
    pub const fn off() -> RefreshConfig {
        RefreshConfig {
            enabled: false,
            t_refi: Dur::from_ns(7_800),
            t_rfc: Dur::from_ns(128),
        }
    }

    /// JEDEC DDR2 values for 1 Gb devices.
    pub const fn ddr2_1gb() -> RefreshConfig {
        RefreshConfig {
            enabled: true,
            t_refi: Dur::from_ns(7_800),
            t_rfc: Dur::from_ns(128),
        }
    }

    /// Checks the refresh parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if enabled with a zero interval, or if the
    /// refresh cycle does not fit in the interval.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.enabled {
            if self.t_refi.is_zero() {
                return Err(ConfigError::new("refresh.t_refi", "must be non-zero"));
            }
            if self.t_rfc.is_zero() || self.t_rfc >= self.t_refi {
                return Err(ConfigError::new(
                    "refresh.t_rfc",
                    "must be non-zero and shorter than t_refi",
                ));
            }
        }
        Ok(())
    }
}

impl Default for RefreshConfig {
    fn default() -> Self {
        RefreshConfig::off()
    }
}

/// Shape of the injected bit-error process on the FB-DIMM links.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FaultMode {
    /// Independent per-frame corruption at the configured bit-error
    /// rate (the memoryless baseline model).
    #[default]
    Ber,
    /// Correlated errors: each triggered corruption also corrupts the
    /// next few frames on the same link direction (electrical transients
    /// spanning several frame times).
    Burst,
    /// A persistent lane defect: the first triggered corruption leaves
    /// the link direction corrupting *every* frame until the controller
    /// escalates to lane fail-over.
    StuckLane,
}

impl FaultMode {
    /// Resolves a fault mode by its stable CLI name: `ber`, `burst` or
    /// `stuck-lane`. Returns `None` for an unknown name.
    pub fn by_name(name: &str) -> Option<FaultMode> {
        match name {
            "ber" => Some(FaultMode::Ber),
            "burst" => Some(FaultMode::Burst),
            "stuck-lane" => Some(FaultMode::StuckLane),
            _ => None,
        }
    }

    /// The stable CLI name of this mode.
    pub const fn name(self) -> &'static str {
        match self {
            FaultMode::Ber => "ber",
            FaultMode::Burst => "burst",
            FaultMode::StuckLane => "stuck-lane",
        }
    }
}

/// Patrol-scrubbing policy selector. Mirrors the
/// `fbd_ctrl::scrub_policies` registry entries, the way
/// [`SchedPolicy`] mirrors the scheduler registry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ScrubPolicyKind {
    /// No background scrubbing (the default; zero-cost off path).
    #[default]
    None,
    /// Rate-limited patrol sweeps over the observed line footprint:
    /// background read-verify passes in idle scheduler slots, with a
    /// rewrite when the verify finds a latent corrupted line.
    Patrol,
}

impl ScrubPolicyKind {
    /// Resolves a scrub policy by its stable CLI/registry name:
    /// `none` or `patrol`. Returns `None` for an unknown name.
    pub fn by_name(name: &str) -> Option<ScrubPolicyKind> {
        match name {
            "none" => Some(ScrubPolicyKind::None),
            "patrol" => Some(ScrubPolicyKind::Patrol),
            _ => None,
        }
    }

    /// The stable CLI/registry name of this policy.
    pub const fn name(self) -> &'static str {
        match self {
            ScrubPolicyKind::None => "none",
            ScrubPolicyKind::Patrol => "patrol",
        }
    }
}

/// Fault-injection configuration for the FB-DIMM channel links.
///
/// When active (`ber > 0`), every southbound/northbound frame is
/// subjected to a deterministic seeded bit-error process; the
/// controller detects corrupted frames via the frame CRC and recovers
/// by bounded replay with exponential backoff, escalating to per-lane
/// fail-over (degraded frame width) when retries are exhausted.
/// Ignored by the DDR2 baseline, which has no frame CRC.
///
/// The recovery-side knobs close the lifecycle loop: `crc_bits`
/// models imperfect detection (silent corruption), `scrub` converts
/// latent corrupted lines back to clean, `failback_quiet_ns` lets a
/// degraded lane probe its way back to full width, and
/// `reissue_budget` re-fetches prefetch lines whose northbound
/// returns were dropped. All four default off, so the default config
/// is byte-identical to the pre-recovery model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Raw bit-error rate per transferred bit (0 disables injection;
    /// real FB-DIMM channels target < 1e-12, interesting simulation
    /// regimes are 1e-8 .. 1e-4).
    pub ber: f64,
    /// Seed of the deterministic error process. Streams are derived per
    /// (seed, channel, link direction), so runs are bit-reproducible
    /// regardless of sweep ordering.
    pub seed: u64,
    /// Shape of the error process.
    pub mode: FaultMode,
    /// Replay attempts per frame before the controller declares the
    /// lane dead and fails over to degraded width.
    pub max_retries: u32,
    /// Frames corrupted per trigger in [`FaultMode::Burst`] (including
    /// the triggering frame).
    pub burst_frames: u32,
    /// Effective CRC strength in check bits: a corrupted frame escapes
    /// detection with probability ~2^-crc_bits (scaled by the
    /// multi-bit-error fraction in [`FaultMode::Ber`] mode, since a
    /// single-bit error never aliases a CRC). 0 models the ideal CRC
    /// of the original fault model: every corruption is detected.
    pub crc_bits: u32,
    /// Background patrol-scrub policy ([`ScrubPolicyKind::None`] off).
    pub scrub: ScrubPolicyKind,
    /// Minimum gap between two scrub reads on one channel, in ns
    /// (the patrol rate limit).
    pub scrub_interval_ns: u64,
    /// Quiet period before a failed-over lane direction is first
    /// re-probed, in ns; later probes back off exponentially
    /// (`fbd-faults`' bounded probe schedule). 0 disables fail-back:
    /// a degraded lane stays degraded for the rest of the run.
    pub failback_quiet_ns: u64,
    /// Probe attempts per degradation episode before the lane is left
    /// degraded for good.
    pub failback_max_probes: u32,
    /// Successful fail-backs allowed before a flapping lane is pinned
    /// degraded (the fail-back hysteresis).
    pub failback_max_flaps: u32,
    /// Dropped prefetch returns the controller remembers per channel
    /// and re-issues in idle scheduler slots. 0 disables re-issue.
    pub reissue_budget: u32,
}

impl FaultConfig {
    /// Injection disabled (the default; matches the paper's perfect
    /// channel).
    pub const fn off() -> FaultConfig {
        FaultConfig {
            ber: 0.0,
            seed: 1,
            mode: FaultMode::Ber,
            max_retries: 4,
            burst_frames: 4,
            crc_bits: 0,
            scrub: ScrubPolicyKind::None,
            scrub_interval_ns: 600,
            failback_quiet_ns: 0,
            failback_max_probes: 6,
            failback_max_flaps: 3,
            reissue_budget: 0,
        }
    }

    /// True when the error process is live (non-zero BER).
    pub fn is_active(&self) -> bool {
        self.ber > 0.0
    }

    /// True when any recovery-side policy needs controller state even
    /// if the error process itself is off (patrol scrubbing costs
    /// bandwidth on a clean channel too).
    pub fn recovery_active(&self) -> bool {
        self.scrub != ScrubPolicyKind::None
            || (self.is_active() && (self.reissue_budget > 0 || self.crc_bits > 0))
    }

    /// True when fail-back probing is enabled.
    pub fn failback_enabled(&self) -> bool {
        self.failback_quiet_ns > 0
    }

    /// Checks the fault parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if the BER is not a probability, or if the
    /// retry/burst/recovery bounds are inconsistent.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.ber.is_finite() || !(0.0..=1.0).contains(&self.ber) {
            return Err(ConfigError::new(
                "faults.ber",
                "must be a probability in [0, 1]",
            ));
        }
        if self.is_active() {
            if self.max_retries == 0 {
                return Err(ConfigError::new(
                    "faults.max_retries",
                    "must be non-zero when injection is active",
                ));
            }
            if self.burst_frames == 0 {
                return Err(ConfigError::new(
                    "faults.burst_frames",
                    "must be non-zero when injection is active",
                ));
            }
        }
        if self.crc_bits > 64 {
            return Err(ConfigError::new("faults.crc_bits", "must be at most 64"));
        }
        if self.scrub != ScrubPolicyKind::None && self.scrub_interval_ns == 0 {
            return Err(ConfigError::new(
                "faults.scrub_interval_ns",
                "must be non-zero when scrubbing is active",
            ));
        }
        if self.failback_enabled()
            && (self.failback_max_probes == 0 || self.failback_max_flaps == 0)
        {
            return Err(ConfigError::new(
                "faults.failback",
                "probe and flap bounds must be non-zero when fail-back is active",
            ));
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::off()
    }
}

/// Request-reordering policy at the memory controller.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedPolicy {
    /// Hit-first with read priority (the paper's policy, after Rixner
    /// et al.): row-buffer/AMB-cache hits and ready banks first.
    #[default]
    HitFirst,
    /// First-come first-served within the read/write phases (ablation
    /// baseline: no locality- or readiness-aware reordering).
    Fcfs,
}

/// Which memory technology the channel uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemoryTech {
    /// Conventional DDR2 channel: shared command bus and shared
    /// bidirectional data bus (the paper's baseline).
    Ddr2,
    /// Fully-Buffered DIMM: southbound/northbound links, AMB per DIMM.
    FbDimm {
        /// Variable Read Latency: when true, a DIMM's link latency
        /// depends on its daisy-chain position; when false, every DIMM is
        /// charged the latency of the farthest one (the paper's default).
        vrl: bool,
    },
}

impl MemoryTech {
    /// FB-DIMM without variable read latency (the paper's default).
    pub const FBDIMM: MemoryTech = MemoryTech::FbDimm { vrl: false };

    /// True for the FB-DIMM variants.
    pub const fn is_fbdimm(self) -> bool {
        matches!(self, MemoryTech::FbDimm { .. })
    }
}

impl Default for MemoryTech {
    fn default() -> Self {
        MemoryTech::FBDIMM
    }
}

/// Memory subsystem configuration (Table 1, memory rows).
///
/// Geometry note: the paper gangs two *physical* channels into one
/// *logical* channel — a 64-byte line is split 32 B + 32 B across the
/// pair, which transfer in lockstep. The simulator models logical
/// channels whose per-line transfer time is that of half a line on one
/// physical channel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryConfig {
    /// Channel technology (DDR2 baseline or FB-DIMM).
    pub tech: MemoryTech,
    /// Per-physical-channel data rate.
    pub data_rate: DataRate,
    /// Number of logical channels (paper default: 2).
    pub logical_channels: u32,
    /// Physical channels ganged per logical channel (paper default: 2).
    pub phys_per_logical: u32,
    /// DIMMs per physical channel (paper default: 4).
    pub dimms_per_channel: u32,
    /// Ranks per DIMM (paper's Figure 2 example uses one; multi-rank
    /// DIMMs add bank-level parallelism behind one AMB).
    pub ranks_per_dimm: u32,
    /// Logical DRAM banks per rank (paper default: 4 per DIMM).
    pub banks_per_dimm: u32,
    /// Rows per bank (sets the simulated capacity).
    pub rows_per_bank: u32,
    /// Logical DRAM page (row) size in bytes: chip page size times chips
    /// per rank. 8 KB here, i.e. 128 cachelines per row.
    pub page_bytes: u32,
    /// DRAM timing parameters (Table 2).
    pub timings: DramTimings,
    /// Row-buffer policy.
    pub page_policy: PagePolicy,
    /// Address interleaving scheme.
    pub interleaving: Interleaving,
    /// Permutation-based bank indexing (XOR the bank index with low row
    /// bits), after Zhang, Zhu and Zhang (the paper's reference 26) —
    /// spreads row-conflict
    /// hotspots across banks under open-page policies. Off in every
    /// paper experiment.
    pub xor_permutation: bool,
    /// AMB prefetcher configuration (FB-DIMM only).
    pub amb: AmbPrefetchConfig,
    /// Fixed scheduling/queueing overhead at the controller (12 ns).
    pub controller_overhead: Dur,
    /// Per-AMB daisy-chain forwarding delay (3 ns).
    pub amb_hop_delay: Dur,
    /// Transaction queue capacity (Table 1: memory buffer, 64 entries).
    pub queue_capacity: u32,
    /// Reads are scheduled before writes unless this many writes are
    /// pending (hit-first + read-priority policy, paper §4.1).
    pub write_drain_threshold: u32,
    /// Request-reordering policy (hit-first by default).
    pub sched_policy: SchedPolicy,
    /// DRAM refresh (off to match the paper).
    pub refresh: RefreshConfig,
    /// Link fault injection (off by default; FB-DIMM only).
    pub faults: FaultConfig,
}

impl MemoryConfig {
    /// The paper's default FB-DIMM memory subsystem: 2 logical channels
    /// (4 physical at 667 MT/s, ganged in pairs), 4 DIMMs per channel,
    /// 4 banks per DIMM, close page, cacheline interleaving, prefetching
    /// off.
    pub fn fbdimm_default() -> MemoryConfig {
        MemoryConfig {
            tech: MemoryTech::FBDIMM,
            data_rate: DataRate::MTS667,
            logical_channels: 2,
            phys_per_logical: 2,
            dimms_per_channel: 4,
            ranks_per_dimm: 1,
            banks_per_dimm: 4,
            rows_per_bank: 16_384,
            page_bytes: 8_192,
            timings: DramTimings::ddr2_table2(),
            page_policy: PagePolicy::ClosePage,
            interleaving: Interleaving::Cacheline,
            xor_permutation: false,
            amb: AmbPrefetchConfig::off(),
            controller_overhead: Dur::from_ns(12),
            amb_hop_delay: Dur::from_ns(3),
            queue_capacity: 64,
            write_drain_threshold: 16,
            sched_policy: SchedPolicy::HitFirst,
            refresh: RefreshConfig::off(),
            faults: FaultConfig::off(),
        }
    }

    /// The paper's DDR2 baseline: identical geometry, conventional
    /// shared-bus channels (no AMBs).
    pub fn ddr2_default() -> MemoryConfig {
        MemoryConfig {
            tech: MemoryTech::Ddr2,
            ..MemoryConfig::fbdimm_default()
        }
    }

    /// FB-DIMM with the paper's default AMB prefetcher (K=4, 4 KB, fully
    /// associative, FIFO) and the matching 4-cacheline interleaving.
    pub fn fbdimm_with_prefetch() -> MemoryConfig {
        let mut cfg = MemoryConfig::fbdimm_default();
        cfg.amb = AmbPrefetchConfig::paper_default();
        cfg.interleaving = Interleaving::MultiCacheline { lines: 4 };
        cfg
    }

    /// Resolves a memory subsystem preset by its stable CLI/bench name.
    /// Deprecated shim: forwards to the substrate registry
    /// ([`crate::substrate::substrates`]), which also knows the
    /// extension presets (`fbd-ddr3`, `ddr3-1066`). Returns `None` for
    /// an unknown name, and warns (once per process) on first use.
    #[deprecated(
        since = "0.1.0",
        note = "select a substrate via fbd_types::substrate::substrates().get(name)"
    )]
    pub fn by_name(name: &str) -> Option<MemoryConfig> {
        crate::substrate::warn_by_name_deprecated();
        crate::substrate::substrates().get(name).map(|s| s.config())
    }

    /// FB-DIMM carrying DDR3-1333 devices (extension; the paper's
    /// footnote 1 anticipates this generation).
    pub fn fbdimm_ddr3() -> MemoryConfig {
        MemoryConfig {
            data_rate: crate::time::DataRate::MTS1333,
            timings: DramTimings::ddr3_1333(),
            ..MemoryConfig::fbdimm_default()
        }
    }

    /// Total logical DRAM banks across the whole subsystem.
    pub fn total_banks(&self) -> u32 {
        self.logical_channels * self.dimms_per_channel * self.ranks_per_dimm * self.banks_per_dimm
    }

    /// Cachelines per DRAM row.
    pub fn lines_per_page(&self) -> u32 {
        self.page_bytes / crate::address::CACHE_LINE_BYTES as u32
    }

    /// Total simulated capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.logical_channels)
            * u64::from(self.phys_per_logical)
            * u64::from(self.dimms_per_channel)
            * u64::from(self.ranks_per_dimm)
            * u64::from(self.banks_per_dimm)
            * u64::from(self.rows_per_bank)
            * u64::from(self.page_bytes)
            / u64::from(self.phys_per_logical) // ganged pair stores one line jointly
    }

    /// Peak read bandwidth in GB/s: per-physical-channel DDR2 bandwidth
    /// times physical channel count (the FB-DIMM northbound link is
    /// provisioned to match one DDR2 channel).
    pub fn peak_read_bandwidth_gbps(&self) -> f64 {
        self.data_rate.channel_bandwidth_gbps()
            * f64::from(self.logical_channels * self.phys_per_logical)
    }

    /// Peak total bandwidth in GB/s. For FB-DIMM the southbound write
    /// path adds half a channel's bandwidth on top of the read path
    /// (paper §2); DDR2 shares one bus for reads and writes.
    pub fn peak_total_bandwidth_gbps(&self) -> f64 {
        match self.tech {
            MemoryTech::Ddr2 => self.peak_read_bandwidth_gbps(),
            MemoryTech::FbDimm { .. } => self.peak_read_bandwidth_gbps() * 1.5,
        }
    }

    /// Checks geometry, timing and prefetcher parameters.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: power-of-two geometry
    /// fields, non-zero capacities, prefetcher consistency (the region
    /// size must match multi-cacheline interleaving when prefetching is
    /// on), and page-policy/interleaving pairing.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.timings.validate()?;
        self.amb.validate()?;
        self.refresh.validate()?;
        self.faults.validate()?;
        let pow2_fields = [
            ("logical_channels", self.logical_channels),
            ("phys_per_logical", self.phys_per_logical),
            ("ranks_per_dimm", self.ranks_per_dimm),
            ("banks_per_dimm", self.banks_per_dimm),
            ("rows_per_bank", self.rows_per_bank),
            ("page_bytes", self.page_bytes),
        ];
        for (name, value) in pow2_fields {
            if !value.is_power_of_two() {
                return Err(ConfigError::new(name, "must be a power of two"));
            }
        }
        // DIMM counts need not be a power of two: the address mapper
        // round-robins groups by modular arithmetic, not bit slicing,
        // so 3- or 6-DIMM channels decode exactly (the bank-permutation
        // XOR touches only the bank index, which stays a power of two).
        if self.dimms_per_channel == 0 {
            return Err(ConfigError::new("dimms_per_channel", "must be non-zero"));
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::new("queue_capacity", "must be non-zero"));
        }
        if self.write_drain_threshold == 0 {
            return Err(ConfigError::new(
                "write_drain_threshold",
                "must be non-zero",
            ));
        }
        if self.lines_per_page() == 0 {
            return Err(ConfigError::new(
                "page_bytes",
                "must hold at least one line",
            ));
        }
        if let Interleaving::MultiCacheline { lines } = self.interleaving {
            if !lines.is_power_of_two() {
                return Err(ConfigError::new(
                    "interleaving",
                    "multi-cacheline group must be a power of two",
                ));
            }
            if lines > self.lines_per_page() {
                return Err(ConfigError::new(
                    "interleaving",
                    "multi-cacheline group cannot exceed a DRAM page",
                ));
            }
        }
        if self.amb.is_enabled() {
            if !self.tech.is_fbdimm() {
                return Err(ConfigError::new(
                    "amb",
                    "AMB prefetching requires FB-DIMM channels",
                ));
            }
            match self.interleaving {
                Interleaving::MultiCacheline { lines } if lines == self.amb.region_lines => {}
                Interleaving::Page => {}
                _ => {
                    return Err(ConfigError::new(
                        "interleaving",
                        "AMB prefetching requires multi-cacheline interleaving with \
                         group size equal to the prefetch region, or page interleaving",
                    ));
                }
            }
        }
        match (self.page_policy, self.interleaving) {
            (PagePolicy::OpenPage, Interleaving::Cacheline)
            | (PagePolicy::OpenPage, Interleaving::MultiCacheline { .. }) => {
                return Err(ConfigError::new(
                    "page_policy",
                    "open page mode should be used with page interleaving (paper §3.2)",
                ));
            }
            _ => {}
        }
        Ok(())
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig::fbdimm_default()
    }
}

/// Configuration of the optional hardware stream prefetcher at the
/// shared L2 (an extension beyond the paper — §5.4 predicts AMB
/// prefetching composes with hardware prefetching the way it composes
/// with software prefetching).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HwPrefetchConfig {
    /// Master switch (off in every paper experiment).
    pub enabled: bool,
    /// Tracked concurrent streams.
    pub streams: u32,
    /// Lines fetched ahead once a stream is confirmed.
    pub degree: u32,
}

impl HwPrefetchConfig {
    /// Disabled (the paper's setting).
    pub const fn off() -> HwPrefetchConfig {
        HwPrefetchConfig {
            enabled: false,
            streams: 8,
            degree: 4,
        }
    }

    /// A typical stream prefetcher: 8 streams, 4 lines ahead.
    pub const fn typical() -> HwPrefetchConfig {
        HwPrefetchConfig {
            enabled: true,
            streams: 8,
            degree: 4,
        }
    }

    /// Checks the prefetcher parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if the stream count or degree is zero while
    /// enabled.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.enabled {
            if self.streams == 0 {
                return Err(ConfigError::new("hw_prefetch.streams", "must be non-zero"));
            }
            if self.degree == 0 {
                return Err(ConfigError::new("hw_prefetch.degree", "must be non-zero"));
            }
        }
        Ok(())
    }
}

impl Default for HwPrefetchConfig {
    fn default() -> Self {
        HwPrefetchConfig::off()
    }
}

/// Processor configuration (Table 1, pipeline rows).
///
/// The simulator's core model is a first-order out-of-order timing model
/// (see `fbd-cpu`); the fields here bound its reorder window, miss
/// concurrency and commit bandwidth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuConfig {
    /// Number of cores (1/2/4/8 in the paper).
    pub cores: u32,
    /// Core clock period (4 GHz → 250 ps).
    pub clock: Dur,
    /// Maximum commit/issue width in instructions per cycle.
    pub issue_width: u32,
    /// Reorder buffer capacity in instructions.
    pub rob_entries: u32,
    /// Outstanding data-miss capacity per core (L1D MSHRs).
    pub data_mshrs: u32,
    /// Shared L2 capacity in bytes.
    pub l2_bytes: u32,
    /// Shared L2 associativity.
    pub l2_ways: u32,
    /// Shared L2 hit latency in core cycles.
    pub l2_hit_cycles: u32,
    /// Shared L2 MSHR count (bounds total outstanding misses).
    pub l2_mshrs: u32,
    /// Execute software prefetch instructions (the paper's default: on).
    pub software_prefetch: bool,
    /// Optional hardware stream prefetcher at the L2 (extension; off in
    /// every paper experiment).
    pub hw_prefetch: HwPrefetchConfig,
}

impl CpuConfig {
    /// The paper's Table 1 processor with `cores` cores: 4 GHz, 8-issue,
    /// 196-entry ROB, 32 data MSHRs, shared 4 MB 4-way L2 with 15-cycle
    /// hit latency and 64 L2 MSHRs, software prefetching on.
    pub fn paper_default(cores: u32) -> CpuConfig {
        CpuConfig {
            cores,
            clock: Dur::from_ps(250),
            issue_width: 8,
            rob_entries: 196,
            data_mshrs: 32,
            l2_bytes: 4 << 20,
            l2_ways: 4,
            l2_hit_cycles: 15,
            l2_mshrs: 64,
            software_prefetch: true,
            hw_prefetch: HwPrefetchConfig::off(),
        }
    }

    /// Checks processor parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if any capacity is zero or the L2 geometry is
    /// inconsistent (ways must divide the set count evenly).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::new("cores", "must be non-zero"));
        }
        if self.clock.is_zero() {
            return Err(ConfigError::new("clock", "must be non-zero"));
        }
        for (name, v) in [
            ("issue_width", self.issue_width),
            ("rob_entries", self.rob_entries),
            ("data_mshrs", self.data_mshrs),
            ("l2_ways", self.l2_ways),
            ("l2_hit_cycles", self.l2_hit_cycles),
            ("l2_mshrs", self.l2_mshrs),
        ] {
            if v == 0 {
                return Err(ConfigError::new(name, "must be non-zero"));
            }
        }
        let line = crate::address::CACHE_LINE_BYTES as u32;
        if self.l2_bytes == 0 || !self.l2_bytes.is_multiple_of(self.l2_ways * line) {
            return Err(ConfigError::new(
                "l2_bytes",
                "must be a non-zero multiple of ways * line size",
            ));
        }
        self.hw_prefetch.validate()
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig::paper_default(1)
    }
}

/// Full system configuration: processor plus memory subsystem.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SystemConfig {
    /// Processor side.
    pub cpu: CpuConfig,
    /// Memory side.
    pub mem: MemoryConfig,
}

impl SystemConfig {
    /// The paper's default FB-DIMM system with `cores` cores.
    pub fn paper_default(cores: u32) -> SystemConfig {
        SystemConfig {
            cpu: CpuConfig::paper_default(cores),
            mem: MemoryConfig::fbdimm_default(),
        }
    }

    /// Validates both halves.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`CpuConfig::validate`] or
    /// [`MemoryConfig::validate`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.cpu.validate()?;
        self.mem.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_timings_validate() {
        let t = DramTimings::ddr2_table2();
        t.validate().unwrap();
        assert_eq!(t.t_rc, Dur::from_ns(54));
        assert_eq!(t.t_ras + t.t_rp, Dur::from_ns(54));
    }

    #[test]
    fn inconsistent_timings_rejected() {
        let mut t = DramTimings::ddr2_table2();
        t.t_rc = Dur::from_ns(40);
        assert_eq!(t.validate().unwrap_err().field(), "t_rc");
        let mut t = DramTimings::ddr2_table2();
        t.t_ras = Dur::from_ns(10);
        assert_eq!(t.validate().unwrap_err().field(), "t_ras");
        let mut t = DramTimings::ddr2_table2();
        t.t_cl = Dur::ZERO;
        assert_eq!(t.validate().unwrap_err().field(), "t_cl");
        // CAS latency exceeding the whole row cycle is nonsense.
        let mut t = DramTimings::ddr2_table2();
        t.t_cl = Dur::from_ns(60);
        assert_eq!(t.validate().unwrap_err().field(), "t_cl");
        // The read pipeline (ACT→RD→data) must fit in one row cycle.
        let mut t = DramTimings::ddr2_table2();
        t.t_rcd = Dur::from_ns(15);
        t.t_cl = Dur::from_ns(45);
        t.t_rc = Dur::from_ns(54);
        assert_eq!(t.validate().unwrap_err().field(), "t_rc");
        let mut t = DramTimings::ddr2_table2();
        t.t_faw = Dur::from_ns(1);
        assert_eq!(t.validate().unwrap_err().field(), "t_faw");
    }

    #[test]
    fn fault_config_validation() {
        let off = FaultConfig::off();
        assert!(!off.is_active());
        off.validate().unwrap();

        let mut f = FaultConfig::off();
        f.ber = 1e-6;
        assert!(f.is_active());
        f.validate().unwrap();

        f.ber = 1.5;
        assert_eq!(f.validate().unwrap_err().field(), "faults.ber");
        f.ber = f64::NAN;
        assert_eq!(f.validate().unwrap_err().field(), "faults.ber");
        f.ber = -0.1;
        assert_eq!(f.validate().unwrap_err().field(), "faults.ber");

        let mut f = FaultConfig::off();
        f.ber = 1e-6;
        f.max_retries = 0;
        assert_eq!(f.validate().unwrap_err().field(), "faults.max_retries");

        let mut f = FaultConfig::off();
        f.ber = 1e-6;
        f.mode = FaultMode::Burst;
        f.burst_frames = 0;
        assert_eq!(f.validate().unwrap_err().field(), "faults.burst_frames");
        // The same zero bound is harmless while injection is off.
        f.ber = 0.0;
        f.validate().unwrap();

        // A bad fault block fails the whole memory config.
        let mut m = MemoryConfig::fbdimm_default();
        m.faults.ber = 2.0;
        assert_eq!(m.validate().unwrap_err().field(), "faults.ber");
    }

    #[test]
    fn recovery_config_validation() {
        // All recovery knobs default off and validate.
        let off = FaultConfig::off();
        assert!(!off.recovery_active());
        assert!(!off.failback_enabled());

        let mut f = FaultConfig::off();
        f.crc_bits = 65;
        assert_eq!(f.validate().unwrap_err().field(), "faults.crc_bits");
        // crc_bits alone (no BER) needs no controller state.
        f.crc_bits = 8;
        f.validate().unwrap();
        assert!(!f.recovery_active());
        f.ber = 1e-5;
        assert!(f.recovery_active());

        let mut f = FaultConfig::off();
        f.scrub = ScrubPolicyKind::Patrol;
        assert!(f.recovery_active(), "scrubbing costs bandwidth even clean");
        f.scrub_interval_ns = 0;
        assert_eq!(
            f.validate().unwrap_err().field(),
            "faults.scrub_interval_ns"
        );

        let mut f = FaultConfig::off();
        f.failback_quiet_ns = 2_000;
        assert!(f.failback_enabled());
        f.validate().unwrap();
        f.failback_max_probes = 0;
        assert_eq!(f.validate().unwrap_err().field(), "faults.failback");
        f.failback_max_probes = 6;
        f.failback_max_flaps = 0;
        assert_eq!(f.validate().unwrap_err().field(), "faults.failback");

        let mut f = FaultConfig::off();
        f.ber = 1e-5;
        f.reissue_budget = 8;
        assert!(f.recovery_active());
        f.validate().unwrap();
    }

    #[test]
    fn fault_mode_names_round_trip() {
        for mode in [FaultMode::Ber, FaultMode::Burst, FaultMode::StuckLane] {
            assert_eq!(FaultMode::by_name(mode.name()), Some(mode));
        }
        assert_eq!(FaultMode::by_name("bogus"), None);
    }

    #[test]
    fn scrub_policy_names_round_trip() {
        for kind in [ScrubPolicyKind::None, ScrubPolicyKind::Patrol] {
            assert_eq!(ScrubPolicyKind::by_name(kind.name()), Some(kind));
        }
        assert_eq!(ScrubPolicyKind::by_name("bogus"), None);
    }

    #[test]
    fn ddr3_timings_validate_and_scale() {
        let t = DramTimings::ddr3_1333();
        t.validate().unwrap();
        // Every DDR3 latency is at or below its DDR2 counterpart.
        let d2 = DramTimings::ddr2_table2();
        assert!(t.t_cl <= d2.t_cl);
        assert!(t.t_rc <= d2.t_rc);
        // And all are multiples of the 1.5 ns DDR3-1333 clock.
        use crate::time::DataRate;
        let clk = DataRate::MTS1333.clock_period().as_ps();
        for v in [t.t_rp, t.t_rcd, t.t_cl, t.t_rc, t.t_rrd, t.t_ras, t.t_wl] {
            assert_eq!(v.as_ps() % clk, 0, "{v} not clock-aligned");
        }
        MemoryConfig::fbdimm_ddr3().validate().unwrap();
    }

    #[test]
    fn paper_defaults_validate() {
        for cores in [1, 2, 4, 8] {
            SystemConfig::paper_default(cores).validate().unwrap();
        }
        MemoryConfig::ddr2_default().validate().unwrap();
        MemoryConfig::fbdimm_with_prefetch().validate().unwrap();
    }

    #[test]
    fn default_geometry_matches_table1() {
        let m = MemoryConfig::fbdimm_default();
        assert_eq!(m.logical_channels, 2);
        assert_eq!(m.phys_per_logical, 2);
        assert_eq!(m.dimms_per_channel, 4);
        assert_eq!(m.banks_per_dimm, 4);
        assert_eq!(m.queue_capacity, 64);
        assert_eq!(m.controller_overhead, Dur::from_ns(12));
        assert_eq!(m.amb_hop_delay, Dur::from_ns(3));
        assert_eq!(m.lines_per_page(), 128);
        assert_eq!(m.total_banks(), 32);
    }

    #[test]
    fn bandwidth_matches_paper_section2() {
        // Paper §3.1 example at 800 MT/s: one DDR2 channel is 6.4 GB/s.
        let mut m = MemoryConfig::fbdimm_default();
        m.data_rate = DataRate::MTS800;
        m.logical_channels = 1;
        m.phys_per_logical = 1;
        assert!((m.peak_read_bandwidth_gbps() - 6.4).abs() < 1e-9);
        // FB-DIMM total adds the half-rate southbound path: 9.6 GB/s.
        assert!((m.peak_total_bandwidth_gbps() - 9.6).abs() < 1e-9);
        m.tech = MemoryTech::Ddr2;
        assert!((m.peak_total_bandwidth_gbps() - 6.4).abs() < 1e-9);
    }

    #[test]
    fn prefetch_requires_fbdimm_and_matching_interleaving() {
        let mut m = MemoryConfig::fbdimm_with_prefetch();
        m.tech = MemoryTech::Ddr2;
        assert_eq!(m.validate().unwrap_err().field(), "amb");

        let mut m = MemoryConfig::fbdimm_with_prefetch();
        m.interleaving = Interleaving::Cacheline;
        assert_eq!(m.validate().unwrap_err().field(), "interleaving");

        let mut m = MemoryConfig::fbdimm_with_prefetch();
        m.interleaving = Interleaving::MultiCacheline { lines: 8 };
        assert_eq!(m.validate().unwrap_err().field(), "interleaving");

        // Page interleaving with open page is an allowed prefetch pairing.
        let mut m = MemoryConfig::fbdimm_with_prefetch();
        m.interleaving = Interleaving::Page;
        m.page_policy = PagePolicy::OpenPage;
        m.validate().unwrap();
    }

    #[test]
    fn open_page_with_cacheline_interleaving_rejected() {
        let mut m = MemoryConfig::fbdimm_default();
        m.page_policy = PagePolicy::OpenPage;
        assert_eq!(m.validate().unwrap_err().field(), "page_policy");
    }

    #[test]
    fn amb_config_validation() {
        let mut a = AmbPrefetchConfig::paper_default();
        a.validate().unwrap();
        a.region_lines = 3;
        assert_eq!(a.validate().unwrap_err().field(), "region_lines");
        let mut a = AmbPrefetchConfig::paper_default();
        a.cache_lines = 2;
        assert_eq!(a.validate().unwrap_err().field(), "cache_lines");
        let mut a = AmbPrefetchConfig::paper_default();
        a.associativity = Associativity::Ways(3);
        assert_eq!(a.validate().unwrap_err().field(), "associativity");
    }

    #[test]
    fn associativity_way_counts() {
        assert_eq!(Associativity::Direct.ways(64), 1);
        assert_eq!(Associativity::Ways(4).ways(64), 4);
        assert_eq!(Associativity::Full.ways(64), 64);
    }

    #[test]
    fn interleaving_group_lines() {
        assert_eq!(Interleaving::Cacheline.group_lines(128), 1);
        assert_eq!(
            Interleaving::MultiCacheline { lines: 4 }.group_lines(128),
            4
        );
        assert_eq!(Interleaving::Page.group_lines(128), 128);
    }

    #[test]
    fn cpu_validation_rejects_bad_l2_geometry() {
        let mut c = CpuConfig::paper_default(4);
        c.l2_bytes = 100;
        assert_eq!(c.validate().unwrap_err().field(), "l2_bytes");
        let mut c = CpuConfig::paper_default(4);
        c.cores = 0;
        assert_eq!(c.validate().unwrap_err().field(), "cores");
    }

    #[test]
    fn capacity_is_positive_and_pow2_scaled() {
        let m = MemoryConfig::fbdimm_default();
        // 2 logical ch * 4 dimms * 4 banks * 16384 rows * 8 KB = 4 GiB.
        assert_eq!(m.capacity_bytes(), 4 << 30);
    }
}
