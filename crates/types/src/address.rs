//! Physical addresses, cacheline addresses and prefetch regions.
//!
//! The memory hierarchy works at three granularities:
//!
//! * byte-granular [`PhysAddr`] — what the CPU model produces;
//! * line-granular [`LineAddr`] — one 64-byte L2 cache block, the unit
//!   the memory subsystem transfers;
//! * [`RegionId`] — a group of `K` consecutive lines, the unit the AMB
//!   prefetcher fetches (paper §3.2).
//!
//! # Examples
//!
//! ```
//! use fbd_types::address::{LineAddr, PhysAddr, CACHE_LINE_BYTES};
//!
//! let addr = PhysAddr::new(0x1_0040);
//! let line = addr.line();
//! assert_eq!(line, LineAddr::new(0x1_0040 / CACHE_LINE_BYTES));
//! // Block 6 of the paper's Figure 2 example: its 4-line region holds 4..=7.
//! let region = LineAddr::new(6).region(4);
//! assert_eq!(region.lines(4).collect::<Vec<_>>(),
//!            (4..8).map(LineAddr::new).collect::<Vec<_>>());
//! ```

use core::fmt;

/// Size of an L2 cache block / memory transfer unit, in bytes (Table 1).
pub const CACHE_LINE_BYTES: u64 = 64;

/// A byte-granular physical memory address.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw byte address.
    #[inline]
    pub const fn new(addr: u64) -> PhysAddr {
        PhysAddr(addr)
    }

    /// Raw byte address.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The cacheline this byte falls in.
    #[inline]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / CACHE_LINE_BYTES)
    }

    /// Byte offset within the cacheline.
    #[inline]
    pub const fn line_offset(self) -> u64 {
        self.0 % CACHE_LINE_BYTES
    }
}

impl From<LineAddr> for PhysAddr {
    /// The first byte of the line.
    #[inline]
    fn from(line: LineAddr) -> PhysAddr {
        PhysAddr(line.0 * CACHE_LINE_BYTES)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A cacheline-granular address (byte address divided by 64).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a line number.
    #[inline]
    pub const fn new(line: u64) -> LineAddr {
        LineAddr(line)
    }

    /// Raw line number.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The prefetch region this line falls in, for regions of
    /// `region_lines` cachelines.
    ///
    /// # Panics
    ///
    /// Panics if `region_lines` is zero.
    #[inline]
    pub fn region(self, region_lines: u64) -> RegionId {
        assert!(region_lines > 0, "region size must be non-zero");
        RegionId(self.0 / region_lines)
    }

    /// Index of this line within its region.
    #[inline]
    pub fn region_offset(self, region_lines: u64) -> u64 {
        assert!(region_lines > 0, "region size must be non-zero");
        self.0 % region_lines
    }

    /// The line `delta` lines after this one.
    #[inline]
    pub const fn offset(self, delta: u64) -> LineAddr {
        LineAddr(self.0 + delta)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

/// Identifier of a `K`-line prefetch region (paper §3.2).
///
/// Region `r` of size `K` covers lines `r*K .. (r+1)*K`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(u64);

impl RegionId {
    /// Creates a region id directly.
    #[inline]
    pub const fn new(region: u64) -> RegionId {
        RegionId(region)
    }

    /// Raw region number.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// First line of the region.
    #[inline]
    pub const fn base_line(self, region_lines: u64) -> LineAddr {
        LineAddr(self.0 * region_lines)
    }

    /// Iterator over all lines in the region, demanded-line order not
    /// applied (callers reorder so the demanded line goes first).
    pub fn lines(self, region_lines: u64) -> impl Iterator<Item = LineAddr> {
        let base = self.0 * region_lines;
        (base..base + region_lines).map(LineAddr)
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_to_line_truncates() {
        assert_eq!(PhysAddr::new(0).line(), LineAddr::new(0));
        assert_eq!(PhysAddr::new(63).line(), LineAddr::new(0));
        assert_eq!(PhysAddr::new(64).line(), LineAddr::new(1));
        assert_eq!(PhysAddr::new(130).line_offset(), 2);
    }

    #[test]
    fn line_to_phys_is_line_base() {
        let line = LineAddr::new(3);
        assert_eq!(PhysAddr::from(line), PhysAddr::new(192));
        assert_eq!(PhysAddr::from(line).line(), line);
    }

    #[test]
    fn region_math_matches_paper_figure2() {
        // Paper Figure 2: with 4-line regions, demanded block 6 prefetches
        // blocks 4, 5 and 7 (the rest of region 1).
        let demanded = LineAddr::new(6);
        let region = demanded.region(4);
        assert_eq!(region, RegionId::new(1));
        assert_eq!(demanded.region_offset(4), 2);
        let rest: Vec<u64> = region
            .lines(4)
            .filter(|l| *l != demanded)
            .map(LineAddr::as_u64)
            .collect();
        assert_eq!(rest, vec![4, 5, 7]);
    }

    #[test]
    fn region_base_line_round_trips() {
        for k in [2u64, 4, 8] {
            for line in 0..64u64 {
                let l = LineAddr::new(line);
                let r = l.region(k);
                let base = r.base_line(k);
                assert!(base <= l);
                assert!(l.as_u64() < base.as_u64() + k);
                assert_eq!(base.as_u64() + l.region_offset(k), l.as_u64());
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_region_size_rejected() {
        let _ = LineAddr::new(1).region(0);
    }

    #[test]
    fn displays_are_nonempty() {
        assert_eq!(format!("{}", PhysAddr::new(0x40)), "0x40");
        assert_eq!(format!("{}", LineAddr::new(1)), "line:0x1");
        assert_eq!(format!("{}", RegionId::new(2)), "region:0x2");
    }
}
