//! Latency-attribution invariants (ISSUE 3 acceptance criteria).
//!
//! For deterministic seeds, every completed read's stage durations must
//! sum exactly to its end-to-end latency on every system variant,
//! AMB-hit reads must record zero DRAM-bank time, and enabling AMB
//! prefetching must visibly shift demand-read time out of the DRAM-bank
//! stage.

use fbd_core::{RunResult, RunSpec};
use fbd_telemetry::LogHistogram;
use fbd_types::config::MemoryConfig;
use fbd_types::request::{ReqClass, Stage, REQ_CLASSES, STAGES};
use fbd_types::time::Dur;

const BUDGET: u64 = 40_000;
const SEED: u64 = 42;

fn run(system: &str, workload: &str) -> RunResult {
    let mem = MemoryConfig::by_name(system).expect("known system");
    RunSpec::paper_default(fbd_workloads::find(workload).expect("workload").cores())
        .workload(workload)
        .memory(mem)
        .budget(BUDGET)
        .seed(SEED)
        .run()
}

#[test]
fn stage_sums_equal_end_to_end_latency_on_every_system() {
    for system in ["ddr2", "fbd", "fbd-ap", "fbd-apfl"] {
        let r = run(system, "1C-swim");
        let p = &r.profile;
        assert_eq!(
            p.mismatches(),
            0,
            "{system}: some reads' stage durations did not sum to their latency"
        );
        let total_reads = r.mem.demand_reads + r.mem.sw_prefetch_reads + r.mem.hw_prefetch_reads;
        assert_eq!(
            p.reads(),
            total_reads,
            "{system}: profile must cover every completed read"
        );
        assert!(p.reads() > 0, "{system}: workload must issue reads");
        // Per class, every stage histogram carries one sample per read.
        for class in REQ_CLASSES {
            let n = p.end_to_end(class).count();
            for stage in STAGES {
                assert_eq!(
                    p.stage(class, stage).count(),
                    n,
                    "{system}: {}/{} sample count",
                    class.label(),
                    stage.label()
                );
            }
        }
    }
}

#[test]
fn amb_hits_record_zero_dram_bank_time() {
    let r = run("fbd-ap", "1C-swim");
    let p = &r.profile;
    assert_eq!(
        p.end_to_end(ReqClass::AmbHit).count(),
        r.mem.amb_hits,
        "every AMB hit lands in the AmbHit class"
    );
    assert!(r.mem.amb_hits > 0, "swim must hit the AMB prefetch buffer");
    for stage in STAGES.iter().filter(|s| s.is_dram()) {
        let h = p.stage(ReqClass::AmbHit, *stage);
        assert_eq!(
            h.max(),
            Dur::ZERO,
            "AMB hits must spend zero time in {}",
            stage.label()
        );
    }
    assert_eq!(p.dram_bank(ReqClass::AmbHit).max(), Dur::ZERO);
    // The full-latency ablation also bypasses the bank: its charge goes
    // to AMB processing, not to the DRAM stages.
    let fl = run("fbd-apfl", "1C-swim");
    let hits = fl.profile.stage(ReqClass::AmbHit, Stage::AmbProc);
    assert!(fl.mem.amb_hits > 0);
    assert!(
        hits.mean_ns() > 0.0,
        "FBD-APFL charges tRCD+tCL as AMB processing time"
    );
    assert_eq!(fl.profile.dram_bank(ReqClass::AmbHit).max(), Dur::ZERO);
}

#[test]
fn amb_prefetch_shifts_demand_p50_out_of_the_dram_stage() {
    // Paper-default FB-DIMM, 1C-swim: without prefetching the typical
    // demand read pays the DRAM bank pipeline; with AMB prefetching the
    // typical demand-class read (demand + AMB hit) pays none of it.
    let base = run("fbd", "1C-swim");
    let ap = run("fbd-ap", "1C-swim");

    let base_p50 = base.profile.dram_bank(ReqClass::Demand).percentile(0.50);
    assert!(
        base_p50 > Dur::ZERO,
        "without prefetching the median demand read must touch the bank"
    );

    let mut ap_demand = LogHistogram::new();
    ap_demand.merge(ap.profile.dram_bank(ReqClass::Demand));
    ap_demand.merge(ap.profile.dram_bank(ReqClass::AmbHit));
    let ap_p50 = ap_demand.percentile(0.50);
    assert!(
        ap_p50 < base_p50,
        "AMB prefetching must shift p50 demand-read DRAM-bank time down \
         (base {:.1} ns vs ap {:.1} ns)",
        base_p50.as_ns_f64(),
        ap_p50.as_ns_f64()
    );
    // And the shift shows up end-to-end, not only in the decomposition.
    assert!(ap.mem.amb_hits > 0);
    let base_e2e = base.profile.end_to_end(ReqClass::Demand).mean_ns();
    let mut ap_e2e = LogHistogram::new();
    ap_e2e.merge(ap.profile.end_to_end(ReqClass::Demand));
    ap_e2e.merge(ap.profile.end_to_end(ReqClass::AmbHit));
    assert!(
        ap_e2e.mean_ns() < base_e2e,
        "prefetching must lower mean demand latency ({:.1} vs {:.1} ns)",
        base_e2e,
        ap_e2e.mean_ns()
    );
}

#[test]
fn profile_is_deterministic_and_folded_export_is_well_formed() {
    let a = run("fbd-ap", "1C-swim");
    let b = run("fbd-ap", "1C-swim");
    assert_eq!(a.profile.to_folded(), b.profile.to_folded());
    assert_eq!(a.profile.reads(), b.profile.reads());

    let folded = a.profile.to_folded();
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("frame + weight");
        let frames: Vec<&str> = stack.split(';').collect();
        assert_eq!(frames.len(), 3, "reads;<class>;<stage>: {line}");
        assert_eq!(frames[0], "reads");
        assert!(weight.parse::<u64>().expect("integer weight") > 0);
    }
    // AMB hits never produce DRAM frames.
    assert!(!folded.contains("amb_hit;dram"));
    assert!(folded.contains("reads;amb_hit;north"));
}
