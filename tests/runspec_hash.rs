//! Tests for [`RunSpec`] canonicalization and hashing — the contract
//! the calibration cache (and any future result cache) depends on:
//! builder-call order and pure instrumentation never change the key,
//! every semantic field does.

use fbd_core::{ExperimentConfig, RunSpec, Warmup};
use fbd_telemetry::TelemetryConfig;
use fbd_types::config::MemoryConfig;

fn base() -> RunSpec {
    RunSpec::paper_default(1).workload("1C-swim")
}

#[test]
fn hash_is_stable_across_builder_call_order() {
    let a = base().budget(100_000).seed(7);
    let b = base().seed(7).budget(100_000);
    assert_eq!(a.canonical_key(), b.canonical_key());
    assert_eq!(a.canonical_hash(), b.canonical_hash());

    // Setting run control wholesale or field-by-field is equivalent.
    let exp = ExperimentConfig {
        budget: 100_000,
        seed: 7,
        ..*base().exp()
    };
    let c = base().experiment(exp);
    assert_eq!(a.canonical_hash(), c.canonical_hash());
}

#[test]
fn hash_ignores_instrumentation() {
    let plain = base();
    let instrumented = base().telemetry(TelemetryConfig::default()).capture_trace();
    assert_eq!(plain.canonical_key(), instrumented.canonical_key());
    assert_eq!(plain.canonical_hash(), instrumented.canonical_hash());
}

#[test]
fn hash_changes_on_every_semantic_field() {
    let reference = base().budget(100_000).seed(42);
    let h = reference.canonical_hash();

    // Run control.
    assert_ne!(h, base().budget(100_001).seed(42).canonical_hash());
    assert_ne!(h, base().budget(100_000).seed(43).canonical_hash());
    assert_ne!(
        h,
        base()
            .budget(100_000)
            .seed(42)
            .warmup(Warmup::None)
            .canonical_hash()
    );

    // Workload.
    assert_ne!(
        h,
        RunSpec::paper_default(1)
            .workload("1C-wupwise")
            .budget(100_000)
            .seed(42)
            .canonical_hash()
    );
    // No workload at all is its own key.
    assert_ne!(
        h,
        RunSpec::paper_default(1)
            .budget(100_000)
            .seed(42)
            .canonical_hash()
    );

    // System configuration: technology, geometry, prefetch knobs.
    let mut variants = Vec::new();
    variants.push(reference.clone().memory(MemoryConfig::ddr2_default()));
    variants.push(reference.clone().with_prefetch(true));
    let mut channels = reference.clone();
    channels.system_mut().mem.logical_channels *= 2;
    variants.push(channels);
    let mut dimms = reference.clone();
    dimms.system_mut().mem.dimms_per_channel += 1;
    variants.push(dimms);
    let mut region = reference.clone();
    region.system_mut().mem.amb.region_lines *= 2;
    variants.push(region);
    let mut seen = vec![h];
    for v in &variants {
        let vh = v.canonical_hash();
        assert!(
            !seen.contains(&vh),
            "semantic change did not change the hash: {}",
            v.canonical_key()
        );
        seen.push(vh);
    }
}

#[test]
fn key_is_humanly_attributable() {
    // The canonical key doubles as a debugging label: it must name the
    // workload and carry the run control in readable form.
    let key = base().budget(123_456).seed(9).canonical_key();
    assert!(key.contains("workload=1C-swim"), "{key}");
    assert!(key.contains("budget=123456"), "{key}");
    assert!(key.contains("seed=9"), "{key}");
    assert!(key.contains("system="), "{key}");
}

#[test]
fn equal_specs_from_different_construction_paths_collide() {
    // paper_default(1).workload(...) and an explicit with_workload of
    // the same resolved workload describe the same run.
    let by_name = base();
    let explicit = RunSpec::paper_default(1).with_workload(fbd_workloads::find("1C-swim").unwrap());
    assert_eq!(by_name.canonical_hash(), explicit.canonical_hash());
}
