//! Deterministic link fault injection for the FB-DIMM channel.
//!
//! Real FB-DIMM links protect every southbound/northbound frame with a
//! CRC; the controller replays corrupted frames and, on persistent
//! failure, degrades the channel to a reduced-width lane map. This
//! crate provides the *error process* side of that protocol: a seeded,
//! reproducible per-link bit-error stream ([`FaultProcess`]), the retry
//! backoff schedule ([`backoff_slots`]), and the counter/report types
//! ([`FaultCounters`], [`FaultReport`]) the recovery machinery in
//! `fbd-link`/`fbd-core` aggregates.
//!
//! Determinism contract: a process draws one pseudo-random number per
//! frame from a [SplitMix64] stream derived from `(seed, channel,
//! direction)` only. Two runs with the same configuration therefore
//! corrupt exactly the same frames, regardless of host, thread
//! scheduling or sweep ordering — the property the
//! `--fault-seed` CLI contract and the determinism tests rely on.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use fbd_types::config::{FaultConfig, FaultMode};
use fbd_types::time::Dur;

/// Direction of an FB-DIMM link (each logical channel has one of each).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkDir {
    /// Controller → DIMMs: command and write-data frames.
    South,
    /// DIMMs → controller: read-data frames.
    North,
}

impl LinkDir {
    /// Dense index (south first).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            LinkDir::South => 0,
            LinkDir::North => 1,
        }
    }

    /// Short machine-readable label.
    pub const fn label(self) -> &'static str {
        match self {
            LinkDir::South => "south",
            LinkDir::North => "north",
        }
    }
}

/// Sebastiano Vigna's SplitMix64: tiny, full-period, and statistically
/// solid for simulation use — and dependency-free, which keeps the
/// fault layer out of the vendored-`rand` surface.
#[derive(Clone, Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Folds `v` into the stream position (domain separation between
    /// per-channel / per-direction streams sharing one user seed).
    fn absorb(&mut self, v: u64) {
        self.state ^= v.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        self.next_u64();
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The seeded bit-error process of one link direction.
///
/// One process exists per `(channel, direction)` pair; each transferred
/// frame consumes exactly one draw, so the corruption pattern is a pure
/// function of the configuration — see the crate docs for the
/// determinism contract.
#[derive(Clone, Debug)]
pub struct FaultProcess {
    /// Per-frame corruption probability derived from the BER and the
    /// frame payload width.
    p_frame: f64,
    /// Probability that a *corrupted* transfer aliases to a valid CRC
    /// codeword and sails through undetected (0.0 for the ideal CRC).
    p_escape: f64,
    mode: FaultMode,
    burst_frames: u32,
    rng: SplitMix64,
    /// Remaining frames of a running burst (includes none of the
    /// trigger frame; decremented per subsequent frame).
    burst_left: u32,
    /// Set once a stuck-lane defect has triggered: every later frame is
    /// corrupt until the controller fails the lane over.
    stuck: bool,
    frames_drawn: u64,
}

impl FaultProcess {
    /// Builds the error process for one link direction.
    ///
    /// `bits_per_frame` is the number of payload bits a frame carries on
    /// this direction (wider frames are proportionally more exposed):
    /// the per-frame corruption probability is
    /// `1 − (1 − ber)^bits_per_frame`.
    ///
    /// When `cfg.crc_bits` is non-zero the CRC is no longer ideal: a
    /// corrupted transfer escapes detection with probability
    /// [`escape_probability`] and the consumer must track the resulting
    /// silent corruption (see [`SilentErrorReport`]).
    pub fn new(cfg: &FaultConfig, channel: u32, dir: LinkDir, bits_per_frame: u32) -> FaultProcess {
        let mut rng = SplitMix64::new(cfg.seed);
        rng.absorb(u64::from(channel).wrapping_add(1));
        rng.absorb(dir.index() as u64 + 1);
        let p_frame = 1.0 - (1.0 - cfg.ber).powi(bits_per_frame as i32);
        FaultProcess {
            p_frame,
            p_escape: escape_probability(cfg, bits_per_frame),
            mode: cfg.mode,
            burst_frames: cfg.burst_frames,
            rng,
            burst_left: 0,
            stuck: false,
            frames_drawn: 0,
        }
    }

    /// Per-frame corruption probability of this process.
    pub fn p_frame(&self) -> f64 {
        self.p_frame
    }

    /// Probability that a corrupted transfer escapes the CRC check.
    pub fn p_escape(&self) -> f64 {
        self.p_escape
    }

    /// Number of frames drawn so far.
    pub fn frames_drawn(&self) -> u64 {
        self.frames_drawn
    }

    /// Subjects one frame to the error process; true means the frame
    /// arrives with a CRC error.
    pub fn corrupt_frame(&mut self) -> bool {
        self.frames_drawn += 1;
        if self.stuck {
            // Defect persists; keep the stream position moving so the
            // post-fail-over draws stay aligned across configurations.
            self.rng.next_f64();
            return true;
        }
        if self.burst_left > 0 {
            self.burst_left -= 1;
            self.rng.next_f64();
            return true;
        }
        let hit = self.rng.next_f64() < self.p_frame;
        if hit {
            match self.mode {
                FaultMode::Ber => {}
                FaultMode::Burst => self.burst_left = self.burst_frames.saturating_sub(1),
                FaultMode::StuckLane => self.stuck = true,
            }
        }
        hit
    }

    /// Subjects a multi-frame transfer to the error process; true means
    /// at least one of its `frames` arrived corrupted (the CRC check
    /// fails the transfer as a whole and the controller replays it).
    pub fn corrupt_transfer(&mut self, frames: u64) -> bool {
        let mut any = false;
        for _ in 0..frames {
            // No short-circuit: every frame consumes its draw so the
            // stream position is independent of earlier outcomes.
            any |= self.corrupt_frame();
        }
        any
    }

    /// Decides whether a transfer the error process just corrupted
    /// slips past the CRC check (the caller invokes this once per
    /// *corrupted* transfer, before entering the retry path).
    ///
    /// Stream-alignment contract: the decision consumes a draw only
    /// when the escape probability is non-zero — under the default
    /// ideal CRC (`crc_bits == 0`) this is a pure `false` and the
    /// corruption pattern stays bit-identical to earlier releases.
    pub fn escapes(&mut self) -> bool {
        if self.p_escape <= 0.0 {
            return false;
        }
        self.rng.next_f64() < self.p_escape
    }

    /// True once a stuck-lane defect has latched.
    pub fn is_stuck(&self) -> bool {
        self.stuck
    }
}

/// Probability that a corrupted transfer aliases to a valid codeword of
/// a `crc_bits`-bit CRC and escapes detection.
///
/// A random error pattern aliases with probability `2^-crc_bits`. The
/// one error class a well-chosen CRC *never* misses is the single-bit
/// flip, so under the random-BER mode the aliasing chance is scaled by
/// the conditional probability that a corrupted frame carries two or
/// more flipped bits: with `p_single = bits · ber · (1−ber)^(bits−1)`,
/// `p_escape = ((p_frame − p_single) / p_frame) · 2^-crc_bits`. Burst
/// and stuck-lane defects always span many bits, so they alias at the
/// full `2^-crc_bits` rate. `crc_bits == 0` encodes the ideal
/// (never-aliasing) CRC of the original model and yields exactly 0.
pub fn escape_probability(cfg: &FaultConfig, bits_per_frame: u32) -> f64 {
    if cfg.crc_bits == 0 {
        return 0.0;
    }
    let alias = 0.5f64.powi(cfg.crc_bits as i32);
    match cfg.mode {
        FaultMode::Ber => {
            let bits = bits_per_frame as f64;
            let p_frame = 1.0 - (1.0 - cfg.ber).powi(bits_per_frame as i32);
            if p_frame <= 0.0 {
                return 0.0;
            }
            let p_single = bits * cfg.ber * (1.0 - cfg.ber).powi(bits_per_frame as i32 - 1);
            let p_multi = (p_frame - p_single).max(0.0);
            (p_multi / p_frame) * alias
        }
        FaultMode::Burst | FaultMode::StuckLane => alias,
    }
}

/// Fail-back probe schedule: after a lane degrades, the controller
/// waits `quiet` before the first re-probe and doubles the wait after
/// every failed probe, capped at `quiet · 2^6` (mirroring the retry
/// backoff cap). `attempt` is 0-based.
pub fn probe_delay(quiet: Dur, attempt: u32) -> Dur {
    quiet * (1u64 << attempt.min(MAX_BACKOFF_CAP))
}

/// Exponential backoff before replaying a corrupted frame: the
/// controller waits `2^attempt` frame slots (capped at [`MAX_BACKOFF_SLOTS`])
/// before retry `attempt` (0-based).
pub fn backoff_slots(attempt: u32) -> u64 {
    (1u64 << attempt.min(MAX_BACKOFF_CAP)).min(MAX_BACKOFF_SLOTS)
}

/// Cap on the backoff exponent (2^6 = 64 frame slots ≈ 384 ns at the
/// paper's 6 ns frame time).
const MAX_BACKOFF_CAP: u32 = 6;

/// Longest backoff in frame slots.
pub const MAX_BACKOFF_SLOTS: u64 = 64;

/// Running error/recovery counters of one link (or an aggregate of
/// several — see [`FaultCounters::merge`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Transfers that arrived with at least one corrupted frame.
    pub injected: u64,
    /// Corrupted transfers the CRC check caught. Under the default
    /// ideal CRC (`crc_bits == 0`) this equals `injected`; with a
    /// finite CRC, `detected + escaped == injected`.
    pub detected: u64,
    /// Corrupted transfers that aliased past the CRC check (silent
    /// corruption; see [`SilentErrorReport`] for the line-level view).
    pub escaped: u64,
    /// Replay attempts issued (one transfer may retry several times).
    pub retried: u64,
    /// Transfers whose retry budget ran out (each escalates fail-over).
    pub retry_exhausted: u64,
    /// Lane fail-overs performed.
    pub failovers: u64,
    /// Corrupted northbound *prefetch* transfers dropped instead of
    /// retried (the AMB interplay rule: the line is simply not cached).
    pub dropped_prefetch: u64,
    /// Fail-back probe transfers sent on degraded lanes.
    pub probes: u64,
    /// Lanes restored to full width after a clean probe.
    pub failbacks: u64,
    /// Dropped prefetch lines the controller re-issued in idle slots.
    pub reissued: u64,
    /// Background patrol-scrub read sweeps performed.
    pub scrub_reads: u64,
    /// Scrub sweeps that found a poisoned line and rewrote it clean.
    pub scrub_rewrites: u64,
}

impl FaultCounters {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.injected += other.injected;
        self.detected += other.detected;
        self.escaped += other.escaped;
        self.retried += other.retried;
        self.retry_exhausted += other.retry_exhausted;
        self.failovers += other.failovers;
        self.dropped_prefetch += other.dropped_prefetch;
        self.probes += other.probes;
        self.failbacks += other.failbacks;
        self.reissued += other.reissued;
        self.scrub_reads += other.scrub_reads;
        self.scrub_rewrites += other.scrub_rewrites;
    }

    /// True when any error was injected.
    pub fn any(&self) -> bool {
        self.injected > 0
    }
}

/// End-of-run silent-corruption summary: what the CRC escapes did to
/// memory contents, as tracked by the controller's poison set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SilentErrorReport {
    /// Lines still carrying undetected corruption at end of run
    /// (escaped in, never scrubbed or overwritten).
    pub poisoned_lines: u64,
    /// Demand reads that consumed silently corrupted data — the
    /// failures an application would actually observe.
    pub demand_consumed: u64,
    /// Poisoned lines a patrol scrub caught and rewrote clean before
    /// any demand read touched them.
    pub scrubbed_clean: u64,
}

impl SilentErrorReport {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &SilentErrorReport) {
        self.poisoned_lines += other.poisoned_lines;
        self.demand_consumed += other.demand_consumed;
        self.scrubbed_clean += other.scrubbed_clean;
    }

    /// True when any silent-corruption activity was recorded.
    pub fn any(&self) -> bool {
        self.poisoned_lines > 0 || self.demand_consumed > 0 || self.scrubbed_clean > 0
    }
}

/// End-of-run fault summary: the aggregated counters plus how long the
/// run spent on degraded (half-width) lane maps, summed over link
/// directions — two directions degraded for the same second contribute
/// two seconds of residency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Aggregated error/recovery counters over every link.
    pub counters: FaultCounters,
    /// Summed degraded-width residency across link directions.
    pub degraded: Dur,
    /// Silent-corruption outcome (all-zero under the ideal CRC).
    pub silent: SilentErrorReport,
}

impl FaultReport {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &FaultReport) {
        self.counters.merge(&other.counters);
        self.degraded += other.degraded;
        self.silent.merge(&other.silent);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(ber: f64, mode: FaultMode) -> FaultConfig {
        FaultConfig {
            ber,
            seed: 42,
            mode,
            ..FaultConfig::off()
        }
    }

    #[test]
    fn same_stream_is_bit_identical() {
        let c = cfg(1e-4, FaultMode::Ber);
        let mut a = FaultProcess::new(&c, 0, LinkDir::North, 168);
        let mut b = FaultProcess::new(&c, 0, LinkDir::North, 168);
        let pa: Vec<bool> = (0..10_000).map(|_| a.corrupt_frame()).collect();
        let pb: Vec<bool> = (0..10_000).map(|_| b.corrupt_frame()).collect();
        assert_eq!(pa, pb);
        assert!(pa.iter().any(|&x| x), "1e-4 over 168-bit frames must hit");
    }

    #[test]
    fn streams_differ_by_channel_and_direction() {
        let c = cfg(1e-3, FaultMode::Ber);
        let take = |ch, dir| -> Vec<bool> {
            let mut p = FaultProcess::new(&c, ch, dir, 168);
            (0..4_000).map(|_| p.corrupt_frame()).collect()
        };
        let base = take(0, LinkDir::North);
        assert_ne!(base, take(1, LinkDir::North));
        assert_ne!(base, take(0, LinkDir::South));
    }

    #[test]
    fn extreme_rates_behave() {
        let mut never = FaultProcess::new(&cfg(0.0, FaultMode::Ber), 0, LinkDir::South, 120);
        assert!((0..1_000).all(|_| !never.corrupt_frame()));
        assert_eq!(never.p_frame(), 0.0);
        let mut always = FaultProcess::new(&cfg(1.0, FaultMode::Ber), 0, LinkDir::South, 120);
        assert!((0..100).all(|_| always.corrupt_frame()));
    }

    #[test]
    fn frame_probability_grows_with_width() {
        let c = cfg(1e-5, FaultMode::Ber);
        let narrow = FaultProcess::new(&c, 0, LinkDir::South, 120);
        let wide = FaultProcess::new(&c, 0, LinkDir::North, 336);
        assert!(wide.p_frame() > narrow.p_frame());
        // First-order check: p ≈ bits · ber at small rates.
        assert!((narrow.p_frame() - 120.0 * 1e-5).abs() < 1e-6);
    }

    #[test]
    fn burst_corrupts_a_run_of_frames() {
        let mut c = cfg(0.02, FaultMode::Burst);
        c.burst_frames = 4;
        let mut p = FaultProcess::new(&c, 0, LinkDir::North, 168);
        let pattern: Vec<bool> = (0..50_000).map(|_| p.corrupt_frame()).collect();
        let first = pattern.iter().position(|&x| x).expect("some trigger");
        // The trigger plus the next three frames form the burst.
        assert!(pattern[first..first + 4].iter().all(|&x| x));
    }

    #[test]
    fn stuck_lane_latches_forever() {
        let mut p = FaultProcess::new(&cfg(0.05, FaultMode::StuckLane), 0, LinkDir::South, 120);
        let mut seen = false;
        for _ in 0..100_000 {
            let hit = p.corrupt_frame();
            if seen {
                assert!(hit, "stuck lane must stay corrupt");
            }
            seen |= hit;
        }
        assert!(seen && p.is_stuck());
    }

    #[test]
    fn transfer_draw_count_is_outcome_independent() {
        // All frames draw even after an early corruption, keeping the
        // stream aligned for later transfers.
        let mut p = FaultProcess::new(&cfg(1.0, FaultMode::Ber), 0, LinkDir::North, 168);
        assert!(p.corrupt_transfer(12));
        assert_eq!(p.frames_drawn(), 12);
    }

    #[test]
    fn backoff_doubles_then_caps() {
        assert_eq!(backoff_slots(0), 1);
        assert_eq!(backoff_slots(1), 2);
        assert_eq!(backoff_slots(2), 4);
        assert_eq!(backoff_slots(6), MAX_BACKOFF_SLOTS);
        assert_eq!(backoff_slots(40), MAX_BACKOFF_SLOTS);
    }

    #[test]
    fn counters_and_reports_merge() {
        let a = FaultCounters {
            injected: 3,
            detected: 2,
            escaped: 1,
            retried: 5,
            retry_exhausted: 1,
            failovers: 1,
            dropped_prefetch: 2,
            probes: 4,
            failbacks: 1,
            reissued: 2,
            scrub_reads: 9,
            scrub_rewrites: 1,
        };
        let silent = SilentErrorReport {
            poisoned_lines: 1,
            demand_consumed: 2,
            scrubbed_clean: 3,
        };
        let mut total = FaultReport {
            counters: a,
            degraded: Dur::from_ns(10),
            silent,
        };
        total.merge(&FaultReport {
            counters: a,
            degraded: Dur::from_ns(5),
            silent,
        });
        assert_eq!(total.counters.injected, 6);
        assert_eq!(total.counters.escaped, 2);
        assert_eq!(total.counters.retried, 10);
        assert_eq!(total.counters.probes, 8);
        assert_eq!(total.counters.failbacks, 2);
        assert_eq!(total.counters.reissued, 4);
        assert_eq!(total.counters.scrub_reads, 18);
        assert_eq!(total.counters.scrub_rewrites, 2);
        assert_eq!(total.degraded, Dur::from_ns(15));
        assert_eq!(total.silent.poisoned_lines, 2);
        assert_eq!(total.silent.demand_consumed, 4);
        assert_eq!(total.silent.scrubbed_clean, 6);
        assert!(total.counters.any());
        assert!(total.silent.any());
        assert!(!FaultCounters::default().any());
        assert!(!SilentErrorReport::default().any());
    }

    #[test]
    fn ideal_crc_never_escapes_and_draws_nothing() {
        let mut p = FaultProcess::new(&cfg(1.0, FaultMode::Ber), 0, LinkDir::North, 168);
        assert_eq!(p.p_escape(), 0.0);
        // The escape decision must not advance the rng stream: the
        // corruption pattern with interleaved escapes() calls must
        // match the pattern without them (the parity contract).
        let mut q = p.clone();
        let with: Vec<bool> = (0..64)
            .map(|_| {
                let hit = p.corrupt_frame();
                if hit {
                    assert!(!p.escapes());
                }
                hit
            })
            .collect();
        let without: Vec<bool> = (0..64).map(|_| q.corrupt_frame()).collect();
        assert_eq!(with, without);
    }

    #[test]
    fn finite_crc_escapes_at_the_aliasing_rate() {
        let mut c = cfg(0.05, FaultMode::Burst);
        c.crc_bits = 1; // aliases half the time — easy to observe
        let mut p = FaultProcess::new(&c, 0, LinkDir::North, 168);
        assert_eq!(p.p_escape(), 0.5);
        let escapes = (0..10_000).filter(|_| p.escapes()).count();
        assert!(
            (4_000..6_000).contains(&escapes),
            "p=0.5 over 10k draws: got {escapes}"
        );
    }

    #[test]
    fn ber_escape_probability_excludes_single_bit_flips() {
        let mut c = cfg(1e-5, FaultMode::Ber);
        c.crc_bits = 8;
        // At tiny BER almost every corrupted frame is a single flip,
        // which the CRC always catches: escape ≪ the 2^-8 aliasing.
        let p = escape_probability(&c, 168);
        assert!(p > 0.0 && p < 0.5f64.powi(8) * 0.01, "p_escape = {p}");
        // At BER 0.5 multi-bit patterns dominate: escape ≈ 2^-8.
        c.ber = 0.5;
        let p = escape_probability(&c, 168);
        assert!((p - 0.5f64.powi(8)).abs() < 1e-4, "p_escape = {p}");
        // Degenerate: zero BER corrupts nothing, so nothing escapes.
        c.ber = 0.0;
        assert_eq!(escape_probability(&c, 168), 0.0);
    }

    #[test]
    fn probe_delay_doubles_then_caps() {
        let quiet = Dur::from_ns(1_000);
        assert_eq!(probe_delay(quiet, 0), quiet);
        assert_eq!(probe_delay(quiet, 1), Dur::from_ns(2_000));
        assert_eq!(probe_delay(quiet, 3), Dur::from_ns(8_000));
        assert_eq!(probe_delay(quiet, 6), Dur::from_ns(64_000));
        assert_eq!(probe_delay(quiet, 40), Dur::from_ns(64_000));
    }
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Backoff is bounded by the cap, monotone non-decreasing in
        /// the attempt number, and starts at one slot.
        #[test]
        fn backoff_is_bounded_and_monotone(attempt in 0u32..1_000) {
            let slots = backoff_slots(attempt);
            prop_assert!(slots >= 1);
            prop_assert!(slots <= MAX_BACKOFF_SLOTS);
            prop_assert!(slots <= backoff_slots(attempt + 1));
        }

        /// The probe schedule is bounded (quiet · 64), monotone
        /// non-decreasing, and never shorter than the quiet period.
        #[test]
        fn probe_schedule_is_bounded_and_monotone(
            quiet_ns in 1u64..1_000_000,
            attempt in 0u32..1_000,
        ) {
            let quiet = Dur::from_ns(quiet_ns);
            let d = probe_delay(quiet, attempt);
            prop_assert!(d >= quiet);
            prop_assert!(d <= quiet * MAX_BACKOFF_SLOTS);
            prop_assert!(d <= probe_delay(quiet, attempt + 1));
        }

        /// The corruption stream is a pure function of (seed, channel,
        /// direction): re-building the process replays it exactly.
        #[test]
        fn stream_is_deterministic_from_seed(
            seed in any::<u64>(),
            channel in 0u32..8,
            ber in 1e-7f64..1e-2,
        ) {
            let c = FaultConfig { ber, seed, ..FaultConfig::off() };
            let mut a = FaultProcess::new(&c, channel, LinkDir::North, 168);
            let mut b = FaultProcess::new(&c, channel, LinkDir::North, 168);
            let pa: Vec<bool> = (0..512).map(|_| a.corrupt_frame()).collect();
            let pb: Vec<bool> = (0..512).map(|_| b.corrupt_frame()).collect();
            prop_assert_eq!(pa, pb);
        }

        /// Escape probabilities are valid probabilities under any
        /// configuration, and exactly zero for the ideal CRC.
        #[test]
        fn escape_probability_is_a_probability(
            ber in 0.0f64..=1.0,
            crc_bits in 0u32..=64,
            bits in 1u32..512,
        ) {
            for mode in [FaultMode::Ber, FaultMode::Burst, FaultMode::StuckLane] {
                let c = FaultConfig { ber, crc_bits, mode, ..FaultConfig::off() };
                let p = escape_probability(&c, bits);
                prop_assert!((0.0..=1.0).contains(&p), "p_escape = {}", p);
                if crc_bits == 0 {
                    prop_assert_eq!(p, 0.0);
                }
            }
        }
    }

    /// Golden vectors for the SplitMix64 core: the first outputs of the
    /// reference implementation (seed 0 and seed 42) plus the absorbed
    /// per-link stream head. Pinning exact u64s catches any platform or
    /// refactor drift in the generator — every determinism contract in
    /// the fault layer sits on these numbers.
    #[test]
    fn splitmix64_matches_reference_vectors() {
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
        let mut g = SplitMix64::new(42);
        assert_eq!(g.next_u64(), 0xBDD7_3226_2FEB_6E95);
        // The absorbed stream (seed 42, channel 0, north) is equally
        // pinned: FaultProcess draws must never silently shift.
        let c = FaultConfig {
            ber: 0.5,
            seed: 42,
            ..FaultConfig::off()
        };
        let mut p = FaultProcess::new(&c, 0, LinkDir::North, 168);
        let head: Vec<bool> = (0..8).map(|_| p.corrupt_frame()).collect();
        let again: Vec<bool> = {
            let mut q = FaultProcess::new(&c, 0, LinkDir::North, 168);
            (0..8).map(|_| q.corrupt_frame()).collect()
        };
        assert_eq!(head, again);
    }
}
