//! `fbd-core` — the full-system simulator for DRAM-level (AMB)
//! prefetching on Fully-Buffered DIMM.
//!
//! This crate wires the workspace's substrates into the systems the
//! paper evaluates:
//!
//! * **FBD** — FB-DIMM channels, no prefetching;
//! * **FBD-AP** — FB-DIMM with region-based AMB prefetching (the
//!   contribution);
//! * **FBD-APFL** — the full-latency ablation isolating the
//!   bandwidth-utilization gain;
//! * **DDR2** — the conventional shared-bus baseline.
//!
//! # Examples
//!
//! Run the `swim` workload on FB-DIMM with and without AMB prefetching:
//!
//! ```
//! use fbd_core::experiment::{run_workload, ExperimentConfig};
//! use fbd_types::config::{MemoryConfig, SystemConfig};
//! use fbd_workloads::Workload;
//!
//! let exp = ExperimentConfig { seed: 7, budget: 20_000, ..Default::default() };
//! let workload = Workload::new("1C-swim", &["swim"]);
//!
//! let fbd = SystemConfig::paper_default(1);
//! let base = run_workload(&fbd, &workload, &exp);
//!
//! let mut ap = fbd;
//! ap.mem = MemoryConfig::fbdimm_with_prefetch();
//! let with_ap = run_workload(&ap, &workload, &exp);
//!
//! assert!(with_ap.mem.amb_hits > 0, "streaming workload must hit the AMB cache");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiment;
pub mod memsys;
pub mod system;
pub mod trace_io;

pub use experiment::{reference_ipcs, run_workload, smt_speedup, ExperimentConfig, Warmup};
pub use memsys::{ChannelCounters, DecideResult, Issued, MemorySystem};
pub use system::{RunResult, System};
pub use trace_io::{replay, MemoryTrace, ReplayResult, TraceRecord};
