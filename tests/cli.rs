//! Contract tests for the `fbdsim` binary: exit codes, flag
//! validation, and the shape of the `--stats-json`/`--json` exporters
//! on `run`, `compare` and `sweep`.

use std::path::PathBuf;
use std::process::{Command, Output};

use fbd_telemetry::{json, Json};

fn fbdsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fbdsim"))
        .args(args)
        .output()
        .expect("fbdsim runs")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no signal")
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fbdsim-cli-{}-{name}", std::process::id()))
}

/// The energy object every stats document must carry: five components
/// that sum to the total.
fn assert_energy_consistent(doc: &Json) {
    let energy = doc.get("energy").expect("stats carry an energy object");
    let get = |k: &str| energy.get(k).and_then(Json::as_f64).expect(k);
    let sum = get("activation_nj")
        + get("burst_nj")
        + get("refresh_nj")
        + get("background_nj")
        + get("amb_nj");
    let total = get("total_nj");
    assert!(
        (sum - total).abs() < 1e-6 * total.max(1.0),
        "components {sum} != total {total}"
    );
    assert!(total > 0.0);
    assert!(get("avg_power_w") > 0.0);
}

#[test]
fn list_substrates_prints_every_registry_entry() {
    let out = fbdsim(&["list-substrates"]);
    assert_eq!(exit_code(&out), 0);
    let text = String::from_utf8(out.stdout).expect("utf-8 listing");
    for name in ["ddr2", "fbd", "fbd-ap", "fbd-apfl", "fbd-ddr3", "ddr3-1066"] {
        assert!(text.contains(name), "listing must name `{name}`:\n{text}");
    }
    // Each entry carries its timing spec and key parameters.
    assert!(text.contains("ddr2-667"), "{text}");
    assert!(text.contains("MT/s"), "{text}");
    assert!(text.contains("tCL"), "{text}");
}

#[test]
fn list_schedulers_prints_every_registry_entry() {
    let out = fbdsim(&["list-schedulers"]);
    assert_eq!(exit_code(&out), 0);
    let text = String::from_utf8(out.stdout).expect("utf-8 listing");
    assert!(text.contains("hit-first"), "{text}");
    assert!(text.contains("fcfs"), "{text}");
}

#[test]
fn compare_accepts_a_substrate_list_and_rejects_unknown_names() {
    let path = tmp_path("compare-substrates.json");
    let out = fbdsim(&[
        "compare",
        "--workload",
        "1C-swim",
        "--substrate",
        "fbd,fbd-ap",
        "--budget",
        "2000",
        "--stats-json",
        path.to_str().unwrap(),
    ]);
    assert_eq!(
        exit_code(&out),
        0,
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("stats file written");
    std::fs::remove_file(&path).ok();
    let doc = json::parse(&text).expect("well-formed JSON");
    let points = doc.get("points").and_then(Json::as_array).expect("points");
    let systems: Vec<&str> = points
        .iter()
        .map(|p| p.get("system").and_then(Json::as_str).expect("system"))
        .collect();
    assert_eq!(systems, ["fbd", "fbd-ap"]);

    let out = fbdsim(&[
        "compare",
        "--workload",
        "1C-swim",
        "--substrate",
        "fbd,ddr9",
    ]);
    assert_eq!(exit_code(&out), 2);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown substrate `ddr9`"), "{err}");
    assert!(err.contains("available:"), "{err}");
}

#[test]
fn sweep_rebases_on_the_selected_substrate() {
    let path = tmp_path("sweep-substrate.json");
    let out = fbdsim(&[
        "sweep",
        "--workload",
        "1C-swim",
        "--knob",
        "k",
        "--substrate",
        "fbd-ddr3",
        "--budget",
        "2000",
        "--stats-json",
        path.to_str().unwrap(),
    ]);
    assert_eq!(
        exit_code(&out),
        0,
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("stats file written");
    std::fs::remove_file(&path).ok();
    let doc = json::parse(&text).expect("well-formed JSON");
    let points = doc.get("points").and_then(Json::as_array).expect("points");
    assert_eq!(points.len(), 3, "the k knob expands to three points");
    for p in points {
        let label = p.get("system").and_then(Json::as_str).expect("label");
        assert!(label.starts_with("fbd-ddr3/"), "{label}");
        let comp = p.get("composition").expect("composition metadata");
        assert_eq!(
            comp.get("substrate").and_then(Json::as_str),
            Some("fbd-ddr3")
        );
    }

    let out = fbdsim(&[
        "sweep",
        "--workload",
        "1C-swim",
        "--knob",
        "k",
        "--substrate",
        "ddr9",
    ]);
    assert_eq!(exit_code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown substrate `ddr9`"));
}

#[test]
fn no_arguments_is_a_usage_error() {
    assert_eq!(exit_code(&fbdsim(&[])), 2);
    assert_eq!(exit_code(&fbdsim(&["frobnicate"])), 2);
}

#[test]
fn unknown_options_exit_2_on_run_compare_and_sweep() {
    for cmd in [
        vec![
            "run",
            "--workload",
            "1C-swim",
            "--system",
            "fbd",
            "--bogus",
            "x",
        ],
        vec!["compare", "--workload", "1C-swim", "--bogus", "x"],
        vec!["compare", "--workload", "1C-swim", "--timeline"],
        vec![
            "sweep",
            "--workload",
            "1C-swim",
            "--knob",
            "k",
            "--bogus",
            "x",
        ],
        vec![
            "record",
            "--workload",
            "1C-swim",
            "--system",
            "fbd",
            "--out",
            "t.csv",
            "--json",
        ],
        vec![
            "replay", "--trace", "t.csv", "--system", "fbd", "--budget", "1",
        ],
    ] {
        let out = fbdsim(&cmd);
        assert_eq!(
            exit_code(&out),
            2,
            "`fbdsim {}` must be a usage error, stderr: {}",
            cmd.join(" "),
            String::from_utf8_lossy(&out.stderr)
        );
        // The usage error never runs the simulation.
        assert!(out.stdout.is_empty());
    }
}

#[test]
fn unknown_workload_or_system_fails_cleanly() {
    // Bad names are usage errors (exit 2) with a diagnostic, never a
    // partial run or a panic.
    let out = fbdsim(&["run", "--workload", "9C-nope", "--system", "fbd"]);
    assert_eq!(exit_code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));
    let out = fbdsim(&["run", "--workload", "1C-swim", "--system", "ddr5"]);
    assert_eq!(exit_code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown system"));
    let out = fbdsim(&["profile", "--workload", "9C-nope"]);
    assert_eq!(exit_code(&out), 2);
}

#[test]
fn bad_numeric_arguments_are_usage_errors() {
    for cmd in [
        &[
            "run",
            "--workload",
            "1C-swim",
            "--system",
            "fbd",
            "--budget",
            "abc",
        ][..],
        &[
            "run",
            "--workload",
            "1C-swim",
            "--system",
            "fbd",
            "--budget",
            "0",
        ],
        &[
            "run",
            "--workload",
            "1C-swim",
            "--system",
            "fbd",
            "--seed",
            "x",
        ],
        &[
            "run",
            "--workload",
            "1C-swim",
            "--system",
            "fbd",
            "--fault-ber",
            "2",
        ],
        &[
            "run",
            "--workload",
            "1C-swim",
            "--system",
            "fbd",
            "--fault-ber",
            "oops",
        ],
        &[
            "run",
            "--workload",
            "1C-swim",
            "--system",
            "fbd",
            "--fault-ber",
            "1e-6",
            "--fault-mode",
            "cosmic",
        ],
        &["compare", "--workload", "1C-swim", "--fault-seed", "7"],
    ] {
        let out = fbdsim(cmd);
        assert_eq!(
            exit_code(&out),
            2,
            "`fbdsim {}` must be a usage error, stderr: {}",
            cmd.join(" "),
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            !out.stderr.is_empty(),
            "usage errors carry a diagnostic: {cmd:?}"
        );
    }
}

#[test]
fn replay_rejects_malformed_traces_with_a_diagnostic() {
    let path = tmp_path("corrupt.csv");
    std::fs::write(&path, "arrival_ps,kind,line,core\n100,R,7,0\n200,W\n").unwrap();
    let out = fbdsim(&[
        "replay",
        "--trace",
        path.to_str().unwrap(),
        "--system",
        "fbd",
    ]);
    std::fs::remove_file(&path).ok();
    assert_eq!(exit_code(&out), 2);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 3"), "diagnostic names the line: {err}");
}

#[test]
fn run_stats_json_has_a_consistent_energy_object() {
    let path = tmp_path("run.json");
    let out = fbdsim(&[
        "run",
        "--workload",
        "1C-swim",
        "--system",
        "fbd-ap",
        "--budget",
        "5000",
        "--stats-json",
        path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0);
    let text = std::fs::read_to_string(&path).expect("stats file written");
    std::fs::remove_file(&path).ok();
    let doc = json::parse(&text).expect("well-formed JSON");
    assert_eq!(doc.get("workload").and_then(Json::as_str), Some("1C-swim"));
    assert_eq!(doc.get("system").and_then(Json::as_str), Some("fbd-ap"));
    assert_energy_consistent(&doc);
}

#[test]
fn profile_reports_full_attribution_and_writes_folded_stacks() {
    let folded_path = tmp_path("profile.folded");
    let out = fbdsim(&[
        "profile",
        "--workload",
        "1C-swim",
        "--budget",
        "5000",
        "--folded-out",
        folded_path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0);
    let text = String::from_utf8(out.stdout).expect("utf-8 stdout");
    assert!(
        text.contains("stage sums match end-to-end latency for 100.0% of reads"),
        "read attribution check line missing:\n{text}"
    );
    assert!(
        text.contains("stage sums match end-to-end latency for 100.0% of writes"),
        "write attribution check line missing:\n{text}"
    );
    assert!(text.contains("latency attribution for 1C-swim on fbd-ap"));
    // The per-class tables cover both directions: at least one read
    // class and the posted-write class must print attribution rows.
    assert!(
        text.contains("writes)"),
        "write attribution table missing:\n{text}"
    );
    let folded = std::fs::read_to_string(&folded_path).expect("folded file written");
    std::fs::remove_file(&folded_path).ok();
    for line in folded.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("frame + weight");
        assert_eq!(stack.split(';').count(), 3, "bad folded line: {line}");
        assert!(
            stack.starts_with("read;") || stack.starts_with("write;"),
            "bad root frame: {line}"
        );
        weight.parse::<u64>().expect("integer weight");
    }
    assert!(folded.lines().any(|l| l.starts_with("read;")));
    assert!(
        folded.lines().any(|l| l.starts_with("write;")),
        "folded export must carry write frames:\n{folded}"
    );
}

#[test]
fn profile_rejects_unknown_options() {
    let out = fbdsim(&["profile", "--workload", "1C-swim", "--trace-out", "x.json"]);
    assert_eq!(exit_code(&out), 2);
}

#[test]
fn compare_stats_json_covers_every_system() {
    let path = tmp_path("compare.json");
    let out = fbdsim(&[
        "compare",
        "--workload",
        "1C-swim",
        "--budget",
        "5000",
        "--stats-json",
        path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0);
    let text = std::fs::read_to_string(&path).expect("stats file written");
    std::fs::remove_file(&path).ok();
    let doc = json::parse(&text).expect("well-formed JSON");
    assert_eq!(doc.get("command").and_then(Json::as_str), Some("compare"));
    let points = doc.get("points").and_then(Json::as_array).expect("points");
    let systems: Vec<&str> = points
        .iter()
        .map(|p| p.get("system").and_then(Json::as_str).expect("system"))
        .collect();
    assert_eq!(systems, ["ddr2", "fbd", "fbd-ap", "fbd-apfl"]);
    for p in points {
        assert_energy_consistent(p);
    }
}

#[test]
fn version_prints_build_provenance_on_every_spelling() {
    let canonical = fbdsim(&["version"]);
    assert_eq!(exit_code(&canonical), 0);
    let text = String::from_utf8(canonical.stdout.clone()).expect("utf-8 version line");
    assert!(
        text.starts_with(&format!("fbdsim {} (", env!("CARGO_PKG_VERSION"))),
        "version line must lead with the crate version: {text}"
    );
    assert!(text.contains("profile)"), "{text}");
    assert!(canonical.stderr.is_empty());
    for alias in ["--version", "-V"] {
        let out = fbdsim(&[alias]);
        assert_eq!(exit_code(&out), 0, "`fbdsim {alias}` failed");
        assert_eq!(out.stdout, canonical.stdout, "`{alias}` diverged");
    }
}

/// The `host` object every stats document must carry: an enabled
/// profiler with a finite throughput, a phase breakdown explaining
/// ≥95% of wall time, and build provenance.
fn assert_host_observability(doc: &Json) {
    let host = doc.get("host").expect("stats carry a host object");
    assert_eq!(host.get("enabled"), Some(&Json::Bool(true)));
    assert!(host.get("wall_s").and_then(Json::as_f64).expect("wall_s") > 0.0);
    let cps = host
        .get("cycles_per_sec")
        .and_then(Json::as_f64)
        .expect("cycles_per_sec");
    assert!(cps.is_finite() && cps > 0.0, "cycles_per_sec {cps}");
    let frac_sum = host
        .get("phase_fraction_sum")
        .and_then(Json::as_f64)
        .expect("phase_fraction_sum");
    assert!(frac_sum >= 0.95, "phases explain only {frac_sum} of wall");
    let phases = host.get("phases").expect("phase breakdown");
    assert!(matches!(phases, Json::Obj(fields) if !fields.is_empty()));
    assert!(host.get("counters").is_some());
    let build = host.get("build").expect("build provenance");
    for key in ["version", "git_sha", "rustc", "profile"] {
        let v = build.get(key).and_then(Json::as_str).expect(key);
        assert!(!v.is_empty(), "build.{key} must not be empty");
    }
    assert_eq!(
        build.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
}

#[test]
fn run_stats_json_carries_host_observability() {
    let out = fbdsim(&[
        "run",
        "--workload",
        "1C-swim",
        "--system",
        "fbd-ap",
        "--budget",
        "5000",
        "--json",
    ]);
    assert_eq!(exit_code(&out), 0);
    let doc = json::parse(String::from_utf8(out.stdout).unwrap().trim()).expect("stats JSON");
    assert_host_observability(&doc);
}

#[test]
fn compare_stats_json_carries_session_and_per_point_host_objects() {
    let out = fbdsim(&[
        "compare",
        "--workload",
        "1C-swim",
        "--budget",
        "2000",
        "--json",
    ]);
    assert_eq!(exit_code(&out), 0);
    let doc = json::parse(String::from_utf8(out.stdout).unwrap().trim()).expect("stats JSON");
    // Session-level host: wall time, aggregate throughput, provenance.
    let host = doc.get("host").expect("grid documents carry a host object");
    assert!(host.get("wall_s").and_then(Json::as_f64).expect("wall_s") > 0.0);
    assert!(host.get("build").is_some());
    // And every point carries its own full host breakdown.
    let points = doc.get("points").and_then(Json::as_array).expect("points");
    assert_eq!(points.len(), 4);
    for p in points {
        assert_host_observability(p);
    }
}

/// Removes every `host` object (top-level and per-point) and
/// re-serializes, so byte-identity can be asserted across runs whose
/// wall-clock timings legitimately differ.
fn strip_host(text: &str) -> String {
    fn strip(j: &mut Json) {
        match j {
            Json::Obj(fields) => {
                fields.retain(|(k, _)| k != "host");
                for (_, v) in fields.iter_mut() {
                    strip(v);
                }
            }
            Json::Arr(items) => items.iter_mut().for_each(strip),
            _ => {}
        }
    }
    let mut doc = json::parse(text.trim()).expect("well-formed stats JSON");
    strip(&mut doc);
    doc.to_json_pretty(2)
}

#[test]
fn live_flag_is_inert_when_output_is_piped() {
    // `--live` requires a terminal on stderr. Under pipes (this test,
    // CI, redirection) it must change nothing: no dashboard frames or
    // control sequences on stderr, and stdout byte-identical to the
    // same run without the flag (modulo the wall-clock host block).
    let args = |live: bool| {
        let mut v = vec![
            "run",
            "--workload",
            "1C-swim",
            "--system",
            "fbd-ap",
            "--budget",
            "5000",
            "--json",
        ];
        if live {
            v.push("--live");
        }
        v
    };
    let plain = fbdsim(&args(false));
    let live = fbdsim(&args(true));
    assert_eq!(exit_code(&plain), 0);
    assert_eq!(exit_code(&live), 0);
    assert!(
        live.stderr.is_empty(),
        "piped --live run must keep stderr clean: {}",
        String::from_utf8_lossy(&live.stderr)
    );
    assert_eq!(
        strip_host(&String::from_utf8(plain.stdout).unwrap()),
        strip_host(&String::from_utf8(live.stdout).unwrap()),
        "piped --live output must match the plain run"
    );

    // Same contract on a grid command.
    let out = fbdsim(&[
        "compare",
        "--workload",
        "1C-swim",
        "--budget",
        "2000",
        "--live",
        "--json",
    ]);
    assert_eq!(exit_code(&out), 0);
    assert!(
        out.stderr.is_empty(),
        "piped --live compare must keep stderr clean: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn sweep_json_stdout_covers_every_grid_point() {
    let out = fbdsim(&[
        "sweep",
        "--workload",
        "1C-swim",
        "--knob",
        "k",
        "--budget",
        "5000",
        "--json",
    ]);
    assert_eq!(exit_code(&out), 0);
    let text = String::from_utf8(out.stdout).expect("utf-8 stdout");
    // `--json` means the document is the only stdout output.
    let doc = json::parse(text.trim()).expect("well-formed JSON");
    assert_eq!(doc.get("command").and_then(Json::as_str), Some("sweep"));
    let points = doc.get("points").and_then(Json::as_array).expect("points");
    assert_eq!(points.len(), 3, "knob k sweeps three region sizes");
    for p in points {
        let label = p.get("system").and_then(Json::as_str).unwrap();
        assert!(label.starts_with("fbd-ap/k="), "unexpected label {label}");
        assert_energy_consistent(p);
    }
}
