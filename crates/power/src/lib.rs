//! DRAM power estimation (paper §5.5).
//!
//! The paper counts row and column accesses in simulation and feeds them
//! to the Micron DDR2 system-power calculator, arriving at a ≈4:1 ratio
//! of energy between one activate/precharge pair and one column access
//! (DDR2-667, close page, 70 % bandwidth utilization). This crate
//! reproduces both routes:
//!
//! * [`PowerModel::from_params`] computes per-operation energies from
//!   IDD-style datasheet currents, the same way the Micron calculator
//!   does;
//! * [`PowerModel::paper_ratio`] uses the paper's calibrated 4:1 weights
//!   directly.
//!
//! Beyond the paper's dynamic-only accounting, [`EnergyModel`] extends
//! the methodology to a full energy pipeline: per-mode background
//! energy from power-mode residencies ([`modes`]), refresh energy, and
//! AMB core/link power, rolled up into a single [`EnergyReport`] broken
//! down by component and by rank.
//!
//! # Examples
//!
//! The defining trade-off of AMB prefetching: fewer activations, more
//! column accesses. With 4:1 weights, trading one ACT/PRE for up to four
//! column accesses breaks even:
//!
//! ```
//! use fbd_power::PowerModel;
//! use fbd_types::stats::DramOpCounts;
//!
//! let model = PowerModel::paper_ratio();
//! let baseline = DramOpCounts { act_pre: 100, col_reads: 100, col_writes: 0, refreshes: 0 };
//! // K=4 group fetches with 50% coverage: 50 fewer ACTs, 100 extra columns.
//! let with_ap = DramOpCounts { act_pre: 50, col_reads: 200, col_writes: 0, refreshes: 0 };
//! let ratio = model.normalized(&with_ap, &baseline);
//! assert!(ratio < 1.0, "net saving expected, got {ratio}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod modes;

pub use modes::{ModeResidency, ModeSpan, PowerMode, PowerModeTracker};

use fbd_types::stats::DramOpCounts;
use fbd_types::time::Dur;

/// Datasheet-style current/voltage parameters for one DDR2 device
/// generation, as consumed by the Micron power calculator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramPowerParams {
    /// Activate-precharge cycling current (one bank, back-to-back tRC).
    pub idd0_ma: f64,
    /// Active standby current (all banks open, no I/O).
    pub idd3n_ma: f64,
    /// Burst read current.
    pub idd4r_ma: f64,
    /// Burst write current.
    pub idd4w_ma: f64,
    /// Refresh burst current.
    pub idd5_ma: f64,
    /// Supply voltage.
    pub vdd_v: f64,
    /// ACT-to-ACT minimum (energy window of one ACT/PRE pair).
    pub t_rc: Dur,
    /// Data-bus time of one column access's burst.
    pub burst: Dur,
    /// Refresh cycle time (energy window of one all-bank refresh).
    pub t_rfc: Dur,
}

impl DramPowerParams {
    /// Representative DDR2-667 datasheet values (Micron 1 Gb parts),
    /// which yield close to the paper's 4:1 ACT-PRE:column ratio.
    pub fn micron_ddr2_667() -> DramPowerParams {
        DramPowerParams {
            idd0_ma: 90.0,
            idd3n_ma: 35.0,
            idd4r_ma: 145.0,
            idd4w_ma: 155.0,
            idd5_ma: 235.0,
            vdd_v: 1.8,
            t_rc: Dur::from_ns(54),
            burst: Dur::from_ns(6),
            t_rfc: Dur::from_ns(128),
        }
    }

    /// Representative DDR3-1333 datasheet values (Micron 1 Gb parts,
    /// 1.5 V): higher currents over a shorter tRC, with the burst
    /// window halved by the doubled data rate. Matches the
    /// `fbdimm_ddr3` substrate's DDR3-1333 timing set.
    pub fn micron_ddr3_1333() -> DramPowerParams {
        DramPowerParams {
            idd0_ma: 95.0,
            idd3n_ma: 45.0,
            idd4r_ma: 180.0,
            idd4w_ma: 185.0,
            idd5_ma: 215.0,
            vdd_v: 1.5,
            t_rc: Dur::from_ps(49_500),
            burst: Dur::from_ns(3),
            t_rfc: Dur::from_ns(110),
        }
    }
}

/// Per-operation dynamic-energy weights for the memory devices.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerModel {
    e_act_pre_nj: f64,
    e_col_read_nj: f64,
    e_col_write_nj: f64,
    e_refresh_nj: f64,
}

/// Static power share of total device power in the paper's configuration
/// (reported for context; not part of the dynamic normalization).
pub const STATIC_POWER_FRACTION: f64 = 0.175;

/// Standby powers of one rank's devices, for state-residency static
/// energy (extension beyond the paper, which models dynamic energy
/// only).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StandbyPower {
    /// Active standby (row open / transferring): IDD3N-class.
    pub active_mw: f64,
    /// Precharge standby (idle, clock running): IDD2N-class.
    pub idle_mw: f64,
    /// Precharge power-down (CKE low): IDD2P-class.
    pub powerdown_mw: f64,
}

impl StandbyPower {
    /// Representative DDR2-667 values per rank (IDD3N 35 mA, IDD2N
    /// 30 mA, IDD2P 7 mA at 1.8 V).
    pub fn micron_ddr2_667() -> StandbyPower {
        StandbyPower {
            active_mw: 63.0,
            idle_mw: 54.0,
            powerdown_mw: 12.6,
        }
    }

    /// Representative DDR3-1333 values per rank (IDD3N 45 mA, IDD2N
    /// 42 mA, IDD2P 12 mA at 1.5 V).
    pub fn micron_ddr3_1333() -> StandbyPower {
        StandbyPower {
            active_mw: 67.5,
            idle_mw: 63.0,
            powerdown_mw: 18.0,
        }
    }

    /// Background energy (nJ) of one rank with the given per-mode
    /// residency: active time at `active_mw`, precharge standby at
    /// `idle_mw`, precharge power-down at `powerdown_mw`.
    pub fn residency_energy(&self, r: &ModeResidency) -> f64 {
        // mW × ns = pJ; divide by 1000 for nJ.
        (self.active_mw * r.active.as_ns_f64()
            + self.idle_mw * r.standby.as_ns_f64()
            + self.powerdown_mw * r.powerdown.as_ns_f64())
            / 1_000.0
    }

    /// Static energy (nJ) of one rank that was active for `active` out
    /// of `elapsed`, with idle periods either in precharge standby or
    /// (when `powerdown` is set) in precharge power-down.
    ///
    /// # Panics
    ///
    /// Panics if `active` exceeds `elapsed`.
    pub fn static_energy(&self, active: Dur, elapsed: Dur, powerdown: bool) -> f64 {
        assert!(active <= elapsed, "active time cannot exceed elapsed time");
        let idle = elapsed - active;
        let idle_mw = if powerdown {
            self.powerdown_mw
        } else {
            self.idle_mw
        };
        // mW × ns = pJ; divide by 1000 for nJ.
        (self.active_mw * active.as_ns_f64() + idle_mw * idle.as_ns_f64()) / 1_000.0
    }
}

impl PowerModel {
    /// Derives per-operation energies from datasheet currents, Micron
    /// calculator style: the incremental current over active standby,
    /// integrated over the operation's window.
    pub fn from_params(p: &DramPowerParams) -> PowerModel {
        let act_pre = (p.idd0_ma - p.idd3n_ma) * p.vdd_v * p.t_rc.as_ns_f64() * 1e-3;
        let col_rd = (p.idd4r_ma - p.idd3n_ma) * p.vdd_v * p.burst.as_ns_f64() * 1e-3;
        let col_wr = (p.idd4w_ma - p.idd3n_ma) * p.vdd_v * p.burst.as_ns_f64() * 1e-3;
        let refresh = (p.idd5_ma - p.idd3n_ma) * p.vdd_v * p.t_rfc.as_ns_f64() * 1e-3;
        PowerModel {
            e_act_pre_nj: act_pre,
            e_col_read_nj: col_rd,
            e_col_write_nj: col_wr,
            e_refresh_nj: refresh,
        }
    }

    /// The paper's calibrated weights: one ACT/PRE pair costs four column
    /// accesses.
    pub fn paper_ratio() -> PowerModel {
        PowerModel {
            e_act_pre_nj: 4.0,
            e_col_read_nj: 1.0,
            e_col_write_nj: 1.0,
            // One all-bank refresh costs roughly two ACT/PRE pairs of a
            // single bank at the calibrated scale (4 banks refreshed,
            // amortized window).
            e_refresh_nj: 8.0,
        }
    }

    /// Ratio of ACT/PRE energy to (read) column energy.
    pub fn act_to_col_ratio(&self) -> f64 {
        self.e_act_pre_nj / self.e_col_read_nj
    }

    /// Energy of `n` activate/precharge pairs.
    pub fn activation_energy(&self, n: u64) -> f64 {
        n as f64 * self.e_act_pre_nj
    }

    /// Energy of the column bursts: `reads` read bursts plus `writes`
    /// write bursts.
    pub fn burst_energy(&self, reads: u64, writes: u64) -> f64 {
        reads as f64 * self.e_col_read_nj + writes as f64 * self.e_col_write_nj
    }

    /// Energy of `n` all-bank refreshes.
    pub fn refresh_energy(&self, n: u64) -> f64 {
        n as f64 * self.e_refresh_nj
    }

    /// Total dynamic energy for a set of operation counts, in the
    /// model's energy units (nJ for [`from_params`](Self::from_params)).
    pub fn dynamic_energy(&self, ops: &DramOpCounts) -> f64 {
        ops.act_pre as f64 * self.e_act_pre_nj
            + ops.col_reads as f64 * self.e_col_read_nj
            + ops.col_writes as f64 * self.e_col_write_nj
            + ops.refreshes as f64 * self.e_refresh_nj
    }

    /// Dynamic energy of `ops` normalized to `baseline` (the paper's
    /// Figure 13 metric). Returns 1.0 when the baseline is empty.
    pub fn normalized(&self, ops: &DramOpCounts, baseline: &DramOpCounts) -> f64 {
        let base = self.dynamic_energy(baseline);
        if base == 0.0 {
            1.0
        } else {
            self.dynamic_energy(ops) / base
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::paper_ratio()
    }
}

/// Power drawn by one Advanced Memory Buffer, split into the buffer
/// core (SerDes, pass-through logic, prefetch cache) and the
/// point-to-point link I/O. Zero for a conventional DDR2 channel,
/// which has no buffer chip.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AmbPowerParams {
    /// AMB core power per DIMM (mW).
    pub core_mw: f64,
    /// Southbound + northbound link I/O power per DIMM (mW).
    pub link_mw: f64,
}

impl AmbPowerParams {
    /// Representative first-generation AMB numbers: ≈4 W per DIMM
    /// (1.5 W core + 2.5 W links), the figure that made FB-DIMM power a
    /// headline concern and motivates the paper's §6 savings.
    pub fn fbdimm_typical() -> AmbPowerParams {
        AmbPowerParams {
            core_mw: 1_500.0,
            link_mw: 2_500.0,
        }
    }

    /// No buffer chip (DDR2 shared-bus channel).
    pub const fn none() -> AmbPowerParams {
        AmbPowerParams {
            core_mw: 0.0,
            link_mw: 0.0,
        }
    }

    /// Total AMB power per DIMM (mW).
    pub fn total_mw(&self) -> f64 {
        self.core_mw + self.link_mw
    }
}

/// One rank's activity over a run: what it did (operation counts) and
/// when it was in which power mode (residency). The input record of
/// [`EnergyModel::report`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RankActivity {
    /// Logical channel index.
    pub channel: u32,
    /// DIMM index within the channel.
    pub dimm: u32,
    /// Rank index within the DIMM.
    pub rank: u32,
    /// DRAM operations the rank executed.
    pub ops: DramOpCounts,
    /// Per-mode time split over the run.
    pub residency: ModeResidency,
}

/// Energy attributed to one rank, alongside the activity it came from.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RankEnergy {
    /// Logical channel index.
    pub channel: u32,
    /// DIMM index within the channel.
    pub dimm: u32,
    /// Rank index within the DIMM.
    pub rank: u32,
    /// DRAM operations the rank executed.
    pub ops: DramOpCounts,
    /// Per-mode time split over the run.
    pub residency: ModeResidency,
    /// Dynamic energy (activation + burst + refresh), nJ.
    pub dynamic_nj: f64,
    /// Per-mode background energy, nJ.
    pub background_nj: f64,
}

impl RankEnergy {
    /// Total energy of this rank's devices (dynamic + background), nJ.
    pub fn total_nj(&self) -> f64 {
        self.dynamic_nj + self.background_nj
    }
}

/// Total energy of one run, broken down by component and by rank.
///
/// All component fields are in nanojoules and sum to
/// [`total_nj`](Self::total_nj). Produced by [`EnergyModel::report`];
/// flows through `RunResult`, the `--stats-json` document and the
/// telemetry registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EnergyReport {
    /// Name of the IDD current set that produced the report (e.g.
    /// `"micron_ddr2_667"`), so a mismatched substrate/current-set
    /// pairing is visible in the stats instead of silent. Empty on a
    /// default-constructed report.
    pub current_set: String,
    /// Run length the report covers.
    pub elapsed: Dur,
    /// Activate/precharge energy of all ranks, nJ.
    pub activation_nj: f64,
    /// Column-burst (read + write) energy of all ranks, nJ.
    pub burst_nj: f64,
    /// Refresh energy of all ranks, nJ.
    pub refresh_nj: f64,
    /// Per-mode background (standby) energy of all ranks, nJ.
    pub background_nj: f64,
    /// AMB core + link energy of all buffered DIMMs, nJ (zero on DDR2).
    pub amb_nj: f64,
    /// Per-rank breakdown; the component totals above are its sums.
    pub ranks: Vec<RankEnergy>,
}

impl EnergyReport {
    /// Total energy (all components), nJ.
    pub fn total_nj(&self) -> f64 {
        self.activation_nj + self.burst_nj + self.refresh_nj + self.background_nj + self.amb_nj
    }

    /// Dynamic DRAM energy (activation + burst + refresh), nJ.
    pub fn dynamic_nj(&self) -> f64 {
        self.activation_nj + self.burst_nj + self.refresh_nj
    }

    /// DRAM-device energy (dynamic + background, excluding AMBs), nJ.
    pub fn dram_nj(&self) -> f64 {
        self.dynamic_nj() + self.background_nj
    }

    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.total_nj() * 1e-9
    }

    /// Average total power over the run, in watts (0 for an empty run).
    pub fn avg_power_w(&self) -> f64 {
        let secs = self.elapsed.as_ns_f64() * 1e-9;
        if secs > 0.0 {
            self.total_j() / secs
        } else {
            0.0
        }
    }

    /// Background share of the DRAM-device energy (0 when no DRAM
    /// energy was spent). At low utilization this dominates — the §6
    /// observation that motivates power-aware scheduling.
    pub fn background_fraction(&self) -> f64 {
        let dram = self.dram_nj();
        if dram > 0.0 {
            self.background_nj / dram
        } else {
            0.0
        }
    }
}

/// The full energy model: per-operation dynamic energies, per-mode
/// background powers and AMB power, combined into an [`EnergyReport`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Per-operation dynamic energies (nJ).
    pub dynamic: PowerModel,
    /// Per-mode background powers of one rank (mW).
    pub background: StandbyPower,
    /// AMB power per buffered DIMM (mW).
    pub amb: AmbPowerParams,
    /// Name of the IDD current set behind `dynamic`/`background`,
    /// propagated into every [`EnergyReport`] this model produces.
    pub current_set: &'static str,
}

impl EnergyModel {
    /// Micron DDR2-667 datasheet model. `buffered` selects whether the
    /// DIMMs carry AMBs (FB-DIMM) or not (conventional DDR2).
    pub fn micron_ddr2_667(buffered: bool) -> EnergyModel {
        EnergyModel {
            dynamic: PowerModel::from_params(&DramPowerParams::micron_ddr2_667()),
            background: StandbyPower::micron_ddr2_667(),
            amb: if buffered {
                AmbPowerParams::fbdimm_typical()
            } else {
                AmbPowerParams::none()
            },
            current_set: "micron_ddr2_667",
        }
    }

    /// Micron DDR3-1333 datasheet model, for the `fbdimm_ddr3`
    /// substrate. `buffered` selects whether the DIMMs carry AMBs
    /// (FB-DIMM) or not.
    pub fn micron_ddr3_1333(buffered: bool) -> EnergyModel {
        EnergyModel {
            dynamic: PowerModel::from_params(&DramPowerParams::micron_ddr3_1333()),
            background: StandbyPower::micron_ddr3_1333(),
            amb: if buffered {
                AmbPowerParams::fbdimm_typical()
            } else {
                AmbPowerParams::none()
            },
            current_set: "micron_ddr3_1333",
        }
    }

    /// Rolls per-rank activity up into the run's [`EnergyReport`].
    /// `amb_dimms` is the number of buffered DIMMs in the subsystem
    /// (their core + link power burns for the whole run).
    pub fn report(&self, ranks: &[RankActivity], elapsed: Dur, amb_dimms: u32) -> EnergyReport {
        let mut out = EnergyReport {
            current_set: self.current_set.to_string(),
            elapsed,
            amb_nj: self.amb.total_mw() * elapsed.as_ns_f64() * f64::from(amb_dimms) / 1_000.0,
            ranks: Vec::with_capacity(ranks.len()),
            ..EnergyReport::default()
        };
        for r in ranks {
            let activation = self.dynamic.activation_energy(r.ops.act_pre);
            let burst = self.dynamic.burst_energy(r.ops.col_reads, r.ops.col_writes);
            let refresh = self.dynamic.refresh_energy(r.ops.refreshes);
            let background = self.background.residency_energy(&r.residency);
            out.activation_nj += activation;
            out.burst_nj += burst;
            out.refresh_nj += refresh;
            out.background_nj += background;
            out.ranks.push(RankEnergy {
                channel: r.channel,
                dimm: r.dimm,
                rank: r.rank,
                ops: r.ops,
                residency: r.residency,
                dynamic_nj: activation + burst + refresh,
                background_nj: background,
            });
        }
        out
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::micron_ddr2_667(true)
    }
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use fbd_types::time::Time;
    use proptest::prelude::*;

    proptest! {
        /// Total energy is monotone in the run length: extending a run
        /// never reduces any component (background keeps accruing in
        /// some mode, the dynamic ops are fixed, AMB power keeps
        /// burning).
        #[test]
        fn total_energy_is_monotone_in_run_length(
            windows in proptest::collection::vec((0u64..5_000, 1u64..200), 0..24),
            len_a in 1u64..10_000,
            len_b in 1u64..10_000,
        ) {
            let (short, long) = if len_a <= len_b {
                (len_a, len_b)
            } else {
                (len_b, len_a)
            };
            let mut tracker = PowerModeTracker::new(Dur::from_ns(30));
            for (start, len) in windows {
                tracker.note_busy(Time::from_ns(start), Time::from_ns(start + len));
            }
            let model = EnergyModel::micron_ddr2_667(true);
            let ops = DramOpCounts {
                act_pre: 10,
                col_reads: 12,
                col_writes: 4,
                refreshes: 1,
            };
            let rank_at = |end: u64| RankActivity {
                channel: 0,
                dimm: 0,
                rank: 0,
                ops,
                residency: tracker.residency(Time::from_ns(end)),
            };
            let r_short = model.report(&[rank_at(short)], Dur::from_ns(short), 4);
            let r_long = model.report(&[rank_at(long)], Dur::from_ns(long), 4);
            prop_assert!(r_long.total_nj() >= r_short.total_nj() - 1e-9);
            prop_assert!(r_long.background_nj >= r_short.background_nj - 1e-9);
            prop_assert!(r_long.amb_nj >= r_short.amb_nj - 1e-9);
            // Residency accounting stays exact at both lengths.
            prop_assert_eq!(
                tracker.residency(Time::from_ns(long)).total(),
                Dur::from_ns(long)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micron_params_give_roughly_four_to_one() {
        let model = PowerModel::from_params(&DramPowerParams::micron_ddr2_667());
        let ratio = model.act_to_col_ratio();
        assert!((3.5..5.0).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn paper_ratio_is_exactly_four() {
        assert_eq!(PowerModel::paper_ratio().act_to_col_ratio(), 4.0);
    }

    #[test]
    fn dynamic_energy_weighs_ops() {
        let m = PowerModel::paper_ratio();
        let ops = DramOpCounts {
            act_pre: 10,
            col_reads: 8,
            col_writes: 2,
            refreshes: 0,
        };
        assert_eq!(m.dynamic_energy(&ops), 50.0);
    }

    #[test]
    fn normalized_against_baseline() {
        let m = PowerModel::paper_ratio();
        let base = DramOpCounts {
            act_pre: 100,
            col_reads: 100,
            col_writes: 0,
            refreshes: 0,
        };
        let same = m.normalized(&base, &base);
        assert!((same - 1.0).abs() < 1e-12);
        let empty = DramOpCounts::default();
        assert_eq!(m.normalized(&base, &empty), 1.0);
    }

    #[test]
    fn paper_section55_four_core_example_saves_power() {
        // §5.5: for four-core workloads with 4-line interleaving the
        // ACT/PRE count drops ~33% while column accesses rise ~41%.
        let m = PowerModel::paper_ratio();
        let base = DramOpCounts {
            act_pre: 1000,
            col_reads: 1000,
            col_writes: 0,
            refreshes: 0,
        };
        let ap = DramOpCounts {
            act_pre: 667,
            col_reads: 1412,
            col_writes: 0,
            refreshes: 0,
        };
        let norm = m.normalized(&ap, &base);
        assert!(norm < 0.90, "expected >10% saving, got {norm:.3}");
    }

    #[test]
    fn excessive_column_overhead_can_cost_power() {
        // §5.5 extreme case: 8-line interleaving on 8 cores *increases*
        // power when extra columns outweigh saved activations.
        let m = PowerModel::paper_ratio();
        let base = DramOpCounts {
            act_pre: 1000,
            col_reads: 1000,
            col_writes: 0,
            refreshes: 0,
        };
        let ap = DramOpCounts {
            act_pre: 900,
            col_reads: 2000,
            col_writes: 0,
            refreshes: 0,
        };
        assert!(m.normalized(&ap, &base) > 1.0);
    }

    #[test]
    fn static_energy_accounts_residency_and_powerdown() {
        use fbd_types::time::Dur;
        let sp = StandbyPower::micron_ddr2_667();
        // Fully active for 1 µs: 63 mW × 1000 ns = 63 nJ.
        let e = sp.static_energy(Dur::from_ns(1_000), Dur::from_ns(1_000), false);
        assert!((e - 63.0).abs() < 1e-9);
        // Half active, no power-down: 31.5 + 27 = 58.5 nJ.
        let e = sp.static_energy(Dur::from_ns(500), Dur::from_ns(1_000), false);
        assert!((e - 58.5).abs() < 1e-9);
        // Half active with power-down idle: 31.5 + 6.3 = 37.8 nJ.
        let e = sp.static_energy(Dur::from_ns(500), Dur::from_ns(1_000), true);
        assert!((e - 37.8).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn static_energy_rejects_bad_residency() {
        use fbd_types::time::Dur;
        let sp = StandbyPower::micron_ddr2_667();
        let _ = sp.static_energy(Dur::from_ns(2), Dur::from_ns(1), false);
    }

    #[test]
    fn micron_per_op_energies_match_hand_computation() {
        // E = (IDD − IDD3N) × VDD × window. With the datasheet values:
        //   ACT/PRE: (90 − 35) mA × 1.8 V × 54 ns = 5.346 nJ
        //   RD burst: (145 − 35) mA × 1.8 V × 6 ns = 1.188 nJ
        //   WR burst: (155 − 35) mA × 1.8 V × 6 ns = 1.296 nJ
        //   Refresh: (235 − 35) mA × 1.8 V × 128 ns = 46.08 nJ
        let m = PowerModel::from_params(&DramPowerParams::micron_ddr2_667());
        assert!((m.activation_energy(1) - 5.346).abs() < 1e-9);
        assert!((m.burst_energy(1, 0) - 1.188).abs() < 1e-9);
        assert!((m.burst_energy(0, 1) - 1.296).abs() < 1e-9);
        assert!((m.refresh_energy(1) - 46.08).abs() < 1e-9);
        // Component methods agree with the lump-sum path.
        let ops = DramOpCounts {
            act_pre: 7,
            col_reads: 11,
            col_writes: 3,
            refreshes: 2,
        };
        let parts = m.activation_energy(ops.act_pre)
            + m.burst_energy(ops.col_reads, ops.col_writes)
            + m.refresh_energy(ops.refreshes);
        assert!((parts - m.dynamic_energy(&ops)).abs() < 1e-9);
    }

    #[test]
    fn residency_energy_weighs_each_mode() {
        use fbd_types::time::Dur;
        let sp = StandbyPower::micron_ddr2_667();
        let r = ModeResidency {
            active: Dur::from_ns(1_000),
            standby: Dur::from_ns(500),
            powerdown: Dur::from_ns(2_000),
        };
        // 63 mW × 1000 ns + 54 mW × 500 ns + 12.6 mW × 2000 ns
        //   = 63 000 + 27 000 + 25 200 pJ = 115.2 nJ.
        assert!((sp.residency_energy(&r) - 115.2).abs() < 1e-9);
        // Matches static_energy when the idle split is all-standby.
        let all_standby = ModeResidency {
            active: Dur::from_ns(400),
            standby: Dur::from_ns(600),
            powerdown: Dur::ZERO,
        };
        let via_static = sp.static_energy(Dur::from_ns(400), Dur::from_ns(1_000), false);
        assert!((sp.residency_energy(&all_standby) - via_static).abs() < 1e-9);
    }

    #[test]
    fn report_components_sum_to_total() {
        use fbd_types::time::Dur;
        let model = EnergyModel::micron_ddr2_667(true);
        let rank = |ch: u32, d: u32| RankActivity {
            channel: ch,
            dimm: d,
            rank: 0,
            ops: DramOpCounts {
                act_pre: 100,
                col_reads: 150,
                col_writes: 50,
                refreshes: 4,
            },
            residency: ModeResidency {
                active: Dur::from_ns(4_000),
                standby: Dur::from_ns(3_000),
                powerdown: Dur::from_ns(3_000),
            },
        };
        let ranks = [rank(0, 0), rank(0, 1), rank(1, 0)];
        let report = model.report(&ranks, Dur::from_ns(10_000), 8);
        let sum = report.activation_nj
            + report.burst_nj
            + report.refresh_nj
            + report.background_nj
            + report.amb_nj;
        assert!((sum - report.total_nj()).abs() < 1e-9);
        // Per-rank energies roll up to the component totals.
        let dynamic: f64 = report.ranks.iter().map(|r| r.dynamic_nj).sum();
        let background: f64 = report.ranks.iter().map(|r| r.background_nj).sum();
        assert!((dynamic - report.dynamic_nj()).abs() < 1e-9);
        assert!((background - report.background_nj).abs() < 1e-9);
        // AMB power: 4 W × 8 DIMMs × 10 µs = 320 µJ = 320 000 nJ.
        assert!((report.amb_nj - 320_000.0).abs() < 1e-6);
        // Average power is total energy over the 10 µs run.
        let expect_w = report.total_j() / 10e-6;
        assert!((report.avg_power_w() - expect_w).abs() < 1e-9);
    }

    #[test]
    fn ddr3_1333_current_set_is_distinct_and_named() {
        use fbd_types::time::Dur;
        let ddr2 = EnergyModel::micron_ddr2_667(true);
        let ddr3 = EnergyModel::micron_ddr3_1333(true);
        assert_eq!(ddr2.current_set, "micron_ddr2_667");
        assert_eq!(ddr3.current_set, "micron_ddr3_1333");
        assert_ne!(
            ddr3.dynamic, ddr2.dynamic,
            "DDR3 must not reuse DDR2 weights"
        );
        assert_ne!(ddr3.background, ddr2.background);
        // The report names the current set that produced it.
        let ranks = [RankActivity {
            channel: 0,
            dimm: 0,
            rank: 0,
            ops: DramOpCounts {
                act_pre: 10,
                col_reads: 20,
                col_writes: 10,
                refreshes: 1,
            },
            residency: ModeResidency {
                active: Dur::from_ns(500),
                standby: Dur::from_ns(300),
                powerdown: Dur::from_ns(200),
            },
        }];
        let report = ddr3.report(&ranks, Dur::from_ns(1_000), 1);
        assert_eq!(report.current_set, "micron_ddr3_1333");
        // Components still sum to the total under the new set.
        let sum = report.activation_nj
            + report.burst_nj
            + report.refresh_nj
            + report.background_nj
            + report.amb_nj;
        assert!((sum - report.total_nj()).abs() < 1e-9);
        // Same activity costs different dynamic energy under each set
        // (shorter tRC/burst windows at 1.5 V vs 1.8 V).
        let ddr2_report = ddr2.report(&ranks, Dur::from_ns(1_000), 1);
        assert_eq!(ddr2_report.current_set, "micron_ddr2_667");
        assert_ne!(report.dynamic_nj(), ddr2_report.dynamic_nj());
    }

    #[test]
    fn ddr2_model_has_no_amb_energy() {
        use fbd_types::time::Dur;
        let model = EnergyModel::micron_ddr2_667(false);
        let report = model.report(&[], Dur::from_ns(1_000), 0);
        assert_eq!(report.amb_nj, 0.0);
        assert_eq!(report.total_nj(), 0.0);
        assert_eq!(report.avg_power_w(), 0.0);
        assert_eq!(report.background_fraction(), 0.0);
    }

    #[test]
    fn empty_run_reports_zero_power() {
        let model = EnergyModel::micron_ddr2_667(true);
        let report = model.report(&[], Dur::ZERO, 8);
        assert_eq!(report.total_nj(), 0.0);
        assert_eq!(report.avg_power_w(), 0.0);
    }

    #[test]
    fn background_dominates_an_idle_rank() {
        use fbd_types::time::Dur;
        let model = EnergyModel::micron_ddr2_667(true);
        // One lone read in a 100 µs run: nearly all DRAM energy is
        // background (the §6 low-utilization observation).
        let elapsed = Dur::from_ns(100_000);
        let ranks = [RankActivity {
            channel: 0,
            dimm: 0,
            rank: 0,
            ops: DramOpCounts {
                act_pre: 1,
                col_reads: 1,
                col_writes: 0,
                refreshes: 0,
            },
            residency: ModeResidency {
                active: Dur::from_ns(60),
                standby: Dur::from_ns(30),
                powerdown: Dur::from_ns(99_910),
            },
        }];
        let report = model.report(&ranks, elapsed, 1);
        assert!(report.background_fraction() > 0.9);
    }

    #[test]
    fn write_energy_slightly_above_read() {
        let m = PowerModel::from_params(&DramPowerParams::micron_ddr2_667());
        let rd_only = DramOpCounts {
            act_pre: 0,
            col_reads: 1,
            col_writes: 0,
            refreshes: 0,
        };
        let wr_only = DramOpCounts {
            act_pre: 0,
            col_reads: 0,
            col_writes: 1,
            refreshes: 0,
        };
        assert!(m.dynamic_energy(&wr_only) > m.dynamic_energy(&rd_only));
    }
}
