//! Log-bucketed latency histograms and the stage × request-class
//! latency-attribution profile.
//!
//! [`LogHistogram`] covers the full `u64`-picosecond range with ~12.5%
//! relative resolution (8 sub-buckets per octave, HDR style), so one
//! fixed-size histogram serves both sub-nanosecond link slots and
//! millisecond-scale queueing tails. Histograms are mergeable across
//! epochs, runs and request classes.
//!
//! [`StageProfile`] aggregates the per-read
//! [`StageBreakdown`]s the memory
//! controller stamps into one histogram per stage × request class,
//! plus per-class end-to-end and DRAM-bank-time histograms. It exports
//! a folded-stack text form (`flamegraph.pl` / speedscope compatible)
//! and a JSON breakdown object for the stats document.

use fbd_types::request::{ReqClass, Stage, StageBreakdown, REQ_CLASSES, STAGES};
use fbd_types::time::Dur;

use crate::json::Json;

/// Sub-buckets per octave: 2^3 = 8, giving ≤ 12.5% bucket width.
const SUB_BITS: u32 = 3;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Buckets: exact values below 2^SUB_BITS, then 8 per octave up to
/// the top of the `u64` range.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) << SUB_BITS;

/// Index of the bucket holding `ps`.
fn bucket_of(ps: u64) -> usize {
    if ps < SUB_COUNT {
        return ps as usize;
    }
    let msb = 63 - ps.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = (ps >> shift) & (SUB_COUNT - 1);
    (((msb - SUB_BITS + 1) as u64 * SUB_COUNT) + sub) as usize
}

/// Largest value stored in bucket `i` (the reported percentile edge).
fn bucket_upper(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_COUNT {
        return i;
    }
    let octave = i / SUB_COUNT; // = msb - SUB_BITS + 1
    let sub = i % SUB_COUNT;
    let shift = (octave - 1) as u32;
    // Bucket spans [ (8+sub) << shift, (8+sub+1) << shift ).
    ((SUB_COUNT + sub + 1) << shift).wrapping_sub(1)
}

/// Log-bucketed latency histogram with exact count/sum/max and upper
/// bucket-edge percentiles, mergeable across epochs and classes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_ps: u128,
    max_ps: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_ps: 0,
            max_ps: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Dur) {
        let ps = sample.as_ps();
        self.counts[bucket_of(ps)] += 1;
        self.count += 1;
        self.sum_ps += u128::from(ps);
        self.max_ps = self.max_ps.max(ps);
    }

    /// Records `n` identical samples at once — used by the analytic
    /// fast fidelity to synthesize a profile from predicted means.
    pub fn record_n(&mut self, sample: Dur, n: u64) {
        if n == 0 {
            return;
        }
        let ps = sample.as_ps();
        self.counts[bucket_of(ps)] += n;
        self.count += n;
        self.sum_ps += u128::from(ps) * u128::from(n);
        self.max_ps = self.max_ps.max(ps);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples, in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.sum_ps as f64 / 1_000.0
    }

    /// Exact mean sample, in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns() / self.count as f64
        }
    }

    /// Largest sample recorded ([`Dur::ZERO`] when empty).
    pub fn max(&self) -> Dur {
        Dur::from_ps(self.max_ps)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper edge of the bucket
    /// where the cumulative count reaches `q · count`, clamped to the
    /// exact maximum. [`Dur::ZERO`] when empty.
    pub fn percentile(&self, q: f64) -> Dur {
        if self.count == 0 {
            return Dur::ZERO;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Dur::from_ps(bucket_upper(i).min(self.max_ps));
            }
        }
        self.max()
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ps += other.sum_ps;
        self.max_ps = self.max_ps.max(other.max_ps);
    }

    /// Summary object: `count`, `total_ns`, `mean_ns`, `p50_ns`,
    /// `p90_ns`, `p99_ns`, `max_ns`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::from(self.count)),
            ("total_ns".into(), Json::from(self.total_ns())),
            ("mean_ns".into(), Json::from(self.mean_ns())),
            (
                "p50_ns".into(),
                Json::from(self.percentile(0.50).as_ns_f64()),
            ),
            (
                "p90_ns".into(),
                Json::from(self.percentile(0.90).as_ns_f64()),
            ),
            (
                "p99_ns".into(),
                Json::from(self.percentile(0.99).as_ns_f64()),
            ),
            ("max_ns".into(), Json::from(self.max().as_ns_f64())),
        ])
    }
}

/// Latency-attribution aggregate over a run: one [`LogHistogram`] per
/// stage × request class, plus per-class end-to-end and DRAM-bank-time
/// histograms, and mismatch counters proving the attribution
/// invariant (stage durations sum to the observed end-to-end latency).
/// Read classes and the posted-write class share the same stage grid
/// but are counted and surfaced separately.
#[derive(Clone, Debug, Default)]
pub struct StageProfile {
    /// `[class][stage]`, dense by `ReqClass::index` / `Stage::index`.
    stages: Vec<LogHistogram>,
    /// Per-class end-to-end latency.
    e2e: Vec<LogHistogram>,
    /// Per-class total DRAM-bank time (wait + ACT + CAS) per request.
    dram: Vec<LogHistogram>,
    /// Reads whose stage sum did not equal the end-to-end latency.
    mismatches: u64,
    /// Writes whose stage sum did not equal the end-to-end latency.
    write_mismatches: u64,
}

impl StageProfile {
    /// An empty profile.
    pub fn new() -> StageProfile {
        StageProfile {
            stages: vec![LogHistogram::new(); ReqClass::COUNT * Stage::COUNT],
            e2e: vec![LogHistogram::new(); ReqClass::COUNT],
            dram: vec![LogHistogram::new(); ReqClass::COUNT],
            mismatches: 0,
            write_mismatches: 0,
        }
    }

    fn slot(&self, class: ReqClass, stage: Stage) -> usize {
        class.index() * Stage::COUNT + stage.index()
    }

    /// Records one completed request: its class, stamped stage
    /// breakdown, and end-to-end latency. A breakdown whose stages do
    /// not sum to `end_to_end` counts as a mismatch (the attribution
    /// invariant the profile exists to prove); read and write
    /// mismatches are tallied separately.
    pub fn record(&mut self, class: ReqClass, stages: &StageBreakdown, end_to_end: Dur) {
        if self.stages.is_empty() {
            *self = StageProfile::new();
        }
        if stages.total() != end_to_end {
            if class.is_write() {
                self.write_mismatches += 1;
            } else {
                self.mismatches += 1;
            }
        }
        for (stage, dur) in stages.iter() {
            let i = self.slot(class, stage);
            self.stages[i].record(dur);
        }
        self.e2e[class.index()].record(end_to_end);
        self.dram[class.index()].record(stages.dram_total());
    }

    /// Records `n` requests that all saw the same per-stage breakdown —
    /// how the analytic fast fidelity synthesizes a profile from
    /// predicted stage means without materializing every request.
    pub fn record_n(&mut self, class: ReqClass, stages: &StageBreakdown, end_to_end: Dur, n: u64) {
        if n == 0 {
            return;
        }
        if self.stages.is_empty() {
            *self = StageProfile::new();
        }
        if stages.total() != end_to_end {
            if class.is_write() {
                self.write_mismatches += n;
            } else {
                self.mismatches += n;
            }
        }
        for (stage, dur) in stages.iter() {
            let i = self.slot(class, stage);
            self.stages[i].record_n(dur, n);
        }
        self.e2e[class.index()].record_n(end_to_end, n);
        self.dram[class.index()].record_n(stages.dram_total(), n);
    }

    /// The histogram for one stage of one class (empty histogram when
    /// nothing was recorded).
    pub fn stage(&self, class: ReqClass, stage: Stage) -> &LogHistogram {
        static EMPTY: std::sync::OnceLock<LogHistogram> = std::sync::OnceLock::new();
        if self.stages.is_empty() {
            return EMPTY.get_or_init(LogHistogram::new);
        }
        &self.stages[self.slot(class, stage)]
    }

    /// The end-to-end latency histogram of one class.
    pub fn end_to_end(&self, class: ReqClass) -> &LogHistogram {
        static EMPTY: std::sync::OnceLock<LogHistogram> = std::sync::OnceLock::new();
        if self.e2e.is_empty() {
            return EMPTY.get_or_init(LogHistogram::new);
        }
        &self.e2e[class.index()]
    }

    /// The per-read DRAM-bank-time histogram of one class.
    pub fn dram_bank(&self, class: ReqClass) -> &LogHistogram {
        static EMPTY: std::sync::OnceLock<LogHistogram> = std::sync::OnceLock::new();
        if self.dram.is_empty() {
            return EMPTY.get_or_init(LogHistogram::new);
        }
        &self.dram[class.index()]
    }

    /// Total reads recorded, over all read classes.
    pub fn reads(&self) -> u64 {
        REQ_CLASSES
            .iter()
            .filter(|c| !c.is_write())
            .map(|c| self.end_to_end(*c).count())
            .sum()
    }

    /// Total posted writes recorded.
    pub fn writes(&self) -> u64 {
        self.end_to_end(ReqClass::Write).count()
    }

    /// Reads whose stage durations did not sum to the end-to-end
    /// latency (0 proves the attribution invariant for the whole run).
    pub fn mismatches(&self) -> u64 {
        self.mismatches
    }

    /// Writes whose stage durations did not sum to the end-to-end
    /// latency (the same invariant, proven for the write path).
    pub fn write_mismatches(&self) -> u64 {
        self.write_mismatches
    }

    /// Folds another profile into this one (for merging epochs or
    /// parallel shards).
    pub fn merge(&mut self, other: &StageProfile) {
        if other.stages.is_empty() {
            return;
        }
        if self.stages.is_empty() {
            *self = StageProfile::new();
        }
        for (a, b) in self.stages.iter_mut().zip(&other.stages) {
            a.merge(b);
        }
        for (a, b) in self.e2e.iter_mut().zip(&other.e2e) {
            a.merge(b);
        }
        for (a, b) in self.dram.iter_mut().zip(&other.dram) {
            a.merge(b);
        }
        self.mismatches += other.mismatches;
        self.write_mismatches += other.write_mismatches;
    }

    /// Folded-stack (flamegraph-compatible) text: one
    /// `read;<class>;<stage> <nanoseconds>` (or `write;…` for the
    /// posted-write class) line per non-empty class × stage cell,
    /// weighted by total time spent in the stage. Feed to
    /// `flamegraph.pl` or import into speedscope.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for class in REQ_CLASSES {
            if self.end_to_end(class).is_empty() {
                continue;
            }
            let root = if class.is_write() { "write" } else { "read" };
            for stage in STAGES {
                let h = self.stage(class, stage);
                let ns = h.total_ns().round() as u64;
                if ns == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "{};{};{} {}\n",
                    root,
                    class.label(),
                    stage.label(),
                    ns
                ));
            }
        }
        out
    }

    /// The histogram-summary object of one class: `count`,
    /// `end_to_end`, `dram_bank`, and per-stage summaries.
    fn class_json(&self, class: ReqClass) -> Json {
        let stages: Vec<(String, Json)> = STAGES
            .iter()
            .map(|s| (s.label().to_string(), self.stage(class, *s).to_json()))
            .collect();
        Json::Obj(vec![
            ("count".into(), Json::from(self.end_to_end(class).count())),
            ("end_to_end".into(), self.end_to_end(class).to_json()),
            ("dram_bank".into(), self.dram_bank(class).to_json()),
            ("stages".into(), Json::Obj(stages)),
        ])
    }

    /// The per-stage breakdown object embedded in the stats JSON:
    /// `reads`, `mismatches`, and per non-empty read class the
    /// end-to-end, DRAM-bank and per-stage histogram summaries under
    /// `classes` — plus a `writes` object carrying the same summaries
    /// for the posted-write class.
    pub fn to_json(&self) -> Json {
        let mut classes = Vec::new();
        for class in REQ_CLASSES {
            if class.is_write() || self.end_to_end(class).is_empty() {
                continue;
            }
            classes.push((class.label().to_string(), self.class_json(class)));
        }
        let writes = match self.class_json(ReqClass::Write) {
            Json::Obj(mut fields) => {
                fields.insert(1, ("mismatches".into(), Json::from(self.write_mismatches)));
                Json::Obj(fields)
            }
            other => other,
        };
        Json::Obj(vec![
            ("reads".into(), Json::from(self.reads())),
            ("mismatches".into(), Json::from(self.mismatches)),
            ("classes".into(), Json::Obj(classes)),
            ("writes".into(), writes),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_types::time::Time;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Every value lands in a bucket whose bounds contain it, and
        // bucket indices are non-decreasing in the value.
        let mut last = 0;
        for ps in (0..4096).chain([u64::MAX / 3, u64::MAX - 1, u64::MAX]) {
            let b = bucket_of(ps);
            assert!(b >= last || ps < 4096, "bucket order broke at {ps}");
            assert!(bucket_upper(b) >= ps, "upper edge below value at {ps}");
            if b > 0 {
                assert!(bucket_upper(b - 1) < ps, "value below bucket at {ps}");
            }
            last = if ps < 4096 { b } else { last };
            assert!(b < BUCKETS);
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for ns in [0u64, 1, 2, 3] {
            h.record(Dur::from_ps(ns));
        }
        assert_eq!(h.percentile(0.5), Dur::from_ps(1));
        assert_eq!(h.percentile(1.0), Dur::from_ps(3));
        assert_eq!(h.max(), Dur::from_ps(3));
    }

    #[test]
    fn percentile_relative_error_is_bounded() {
        let mut h = LogHistogram::new();
        for i in 1..=1000u64 {
            h.record(Dur::from_ns(i));
        }
        for (q, exact_ns) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let got = h.percentile(q).as_ns_f64();
            let err = (got - exact_ns).abs() / exact_ns;
            assert!(err <= 0.125, "p{q}: got {got} want ~{exact_ns}");
        }
        assert_eq!(h.percentile(1.0), Dur::from_ns(1000));
        assert_eq!(h.count(), 1000);
        assert!((h.mean_ns() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn all_zero_samples_report_zero_percentiles() {
        let mut h = LogHistogram::new();
        for _ in 0..10 {
            h.record(Dur::ZERO);
        }
        assert_eq!(h.percentile(0.5), Dur::ZERO);
        assert_eq!(h.percentile(0.99), Dur::ZERO);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for i in 0..500u64 {
            let d = Dur::from_ps(i * 37);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            all.record(d);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    fn breakdown(queue_ns: u64, cas_ns: u64) -> StageBreakdown {
        let mut st = StageBreakdown::stamper(Time::ZERO);
        st.to(Stage::CtrlQueue, Time::from_ns(queue_ns));
        st.to(Stage::DramCas, Time::from_ns(queue_ns + cas_ns));
        st.finish()
    }

    #[test]
    fn profile_records_per_class_and_detects_mismatches() {
        let mut p = StageProfile::new();
        let b = breakdown(10, 30);
        p.record(ReqClass::Demand, &b, Dur::from_ns(40));
        p.record(ReqClass::AmbHit, &breakdown(5, 0), Dur::from_ns(5));
        // Deliberately inconsistent: stages sum to 40, e2e says 50.
        p.record(ReqClass::Demand, &b, Dur::from_ns(50));
        assert_eq!(p.reads(), 3);
        assert_eq!(p.mismatches(), 1);
        assert_eq!(p.end_to_end(ReqClass::Demand).count(), 2);
        assert_eq!(p.stage(ReqClass::Demand, Stage::DramCas).count(), 2);
        assert_eq!(p.dram_bank(ReqClass::AmbHit).max(), Dur::ZERO);
        assert_eq!(p.end_to_end(ReqClass::SwPrefetch).count(), 0);
    }

    #[test]
    fn default_profile_is_usable_and_mergeable() {
        // `Default` (all-empty vecs) must behave like `new()`.
        let mut p = StageProfile::default();
        assert_eq!(p.reads(), 0);
        assert!(p.stage(ReqClass::Demand, Stage::CtrlQueue).is_empty());
        assert!(p.to_folded().is_empty());
        p.record(ReqClass::Demand, &breakdown(1, 2), Dur::from_ns(3));
        assert_eq!(p.reads(), 1);
        let mut q = StageProfile::default();
        q.merge(&p);
        assert_eq!(q.reads(), 1);
        q.merge(&StageProfile::default());
        assert_eq!(q.reads(), 1);
    }

    #[test]
    fn folded_lines_are_well_formed() {
        let mut p = StageProfile::new();
        p.record(ReqClass::Demand, &breakdown(10, 30), Dur::from_ns(40));
        p.record(ReqClass::AmbHit, &breakdown(7, 0), Dur::from_ns(7));
        p.record(ReqClass::Write, &breakdown(4, 20), Dur::from_ns(24));
        let folded = p.to_folded();
        assert!(!folded.is_empty());
        for line in folded.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("frame + weight");
            let frames: Vec<&str> = stack.split(';').collect();
            assert!(
                frames[0] == "read" || frames[0] == "write",
                "bad root frame in {line}"
            );
            assert_eq!(frames.len(), 3);
            let w: u64 = weight.parse().expect("integer weight");
            assert!(w > 0, "zero-weight line {line}");
        }
        assert!(folded.contains("read;demand;queue 10\n"));
        assert!(folded.contains("read;demand;dram_cas 30\n"));
        assert!(folded.contains("read;amb_hit;queue 7\n"));
        assert!(folded.contains("write;write;queue 4\n"));
        assert!(folded.contains("write;write;dram_cas 20\n"));
        // AMB hits spent no DRAM time, so no dram frame for that class.
        assert!(!folded.contains("amb_hit;dram"));
    }

    #[test]
    fn json_covers_only_populated_classes() {
        let mut p = StageProfile::new();
        p.record(ReqClass::Demand, &breakdown(10, 30), Dur::from_ns(40));
        let doc = p.to_json();
        assert_eq!(doc.get("reads").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("mismatches").and_then(Json::as_f64), Some(0.0));
        let classes = doc.get("classes").unwrap();
        let demand = classes.get("demand").expect("demand present");
        assert!(classes.get("swpf").is_none(), "empty class omitted");
        assert!(
            classes.get("write").is_none(),
            "write class lives under `writes`, not `classes`"
        );
        let e2e = demand.get("end_to_end").unwrap();
        assert_eq!(e2e.get("count").and_then(Json::as_f64), Some(1.0));
        let stages = demand.get("stages").unwrap();
        assert!(stages.get("queue").is_some());
        assert!(stages.get("north").is_some());
        // Round-trips through the writer/parser.
        let back = crate::json::parse(&doc.to_json()).unwrap();
        assert_eq!(back.get("reads").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn json_writes_object_tracks_the_write_class() {
        let mut p = StageProfile::new();
        p.record(ReqClass::Demand, &breakdown(10, 30), Dur::from_ns(40));
        // The writes object is always present, even with zero writes,
        // so consumers can rely on its shape.
        let doc = p.to_json();
        let writes = doc.get("writes").expect("writes object present");
        assert_eq!(writes.get("count").and_then(Json::as_f64), Some(0.0));

        p.record(ReqClass::Write, &breakdown(5, 25), Dur::from_ns(30));
        // Deliberately inconsistent write: stages sum 30, e2e says 31.
        p.record(ReqClass::Write, &breakdown(5, 25), Dur::from_ns(31));
        assert_eq!(p.writes(), 2);
        assert_eq!(p.write_mismatches(), 1);
        assert_eq!(p.mismatches(), 0, "write mismatch must not count as read");
        assert_eq!(p.reads(), 1, "write records must not count as reads");
        let doc = p.to_json();
        let writes = doc.get("writes").expect("writes object present");
        assert_eq!(writes.get("count").and_then(Json::as_f64), Some(2.0));
        assert_eq!(writes.get("mismatches").and_then(Json::as_f64), Some(1.0));
        assert!(writes.get("end_to_end").is_some());
        assert!(writes.get("dram_bank").is_some());
        let stages = writes.get("stages").expect("per-stage summaries");
        assert_eq!(
            stages
                .get("dram_cas")
                .and_then(|s| s.get("count"))
                .and_then(Json::as_f64),
            Some(2.0)
        );
        // Merging carries the write mismatch counter along.
        let mut q = StageProfile::default();
        q.merge(&p);
        assert_eq!(q.writes(), 2);
        assert_eq!(q.write_mismatches(), 1);
    }
}
