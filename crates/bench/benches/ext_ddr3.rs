//! Extension experiment: FB-DIMM carrying DDR3 devices.
//!
//! The paper's footnote 1 notes that "future FB-DIMM will also support
//! DDR3 bus and DRAM." This bench runs the next-generation substrate
//! (DDR3-1333, CL9) under the same workloads and asks whether AMB
//! prefetching's value survives the faster devices — the key question
//! being that DDR3 doubles channel bandwidth but barely moves
//! activation latency, so the bank-conflict relief AP provides should
//! still pay.

use fbd_bench::*;
use fbd_types::config::{AmbPrefetchConfig, Interleaving, MemoryConfig, SystemConfig};

fn ddr3_fbd(cores: u32) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(cores);
    cfg.mem = MemoryConfig::fbdimm_ddr3();
    cfg
}

fn ddr3_fbd_ap(cores: u32) -> SystemConfig {
    let mut cfg = ddr3_fbd(cores);
    cfg.mem.amb = AmbPrefetchConfig::paper_default();
    cfg.mem.interleaving = Interleaving::MultiCacheline { lines: 4 };
    cfg
}

fn main() {
    let exp = fbd_bench::experiment();
    banner(
        "Extension",
        "FB-DIMM with DDR3-1333 devices (paper footnote 1)",
        &exp,
    );
    let refs = references(Variant::Ddr2, &exp);

    let mut rows = vec![vec![
        "group".to_string(),
        "DDR2 FBD".to_string(),
        "DDR2 FBD-AP".to_string(),
        "DDR3 FBD".to_string(),
        "DDR3 FBD-AP".to_string(),
        "AP gain on DDR3".to_string(),
    ]];
    let grouped = run_grouped(
        |cores| {
            vec![
                ("DDR2 FBD".to_string(), system(Variant::Fbd, cores)),
                ("DDR2 FBD-AP".to_string(), system(Variant::FbdAp, cores)),
                ("DDR3 FBD".to_string(), ddr3_fbd(cores)),
                ("DDR3 FBD-AP".to_string(), ddr3_fbd_ap(cores)),
            ]
        },
        &exp,
    );
    for (group, workloads, results) in grouped {
        let avg = |label: &str| {
            let v: Vec<f64> = workloads
                .iter()
                .map(|w| {
                    results
                        .iter()
                        .find(|((c, n), _)| c == label && n == w.name())
                        .map(|(_, r)| speedup(w, r, &refs))
                        .expect("run")
                })
                .collect();
            mean(&v)
        };
        let (d2, d2ap, d3, d3ap) = (
            avg("DDR2 FBD"),
            avg("DDR2 FBD-AP"),
            avg("DDR3 FBD"),
            avg("DDR3 FBD-AP"),
        );
        rows.push(vec![
            group.to_string(),
            f3(d2),
            f3(d2ap),
            f3(d3),
            f3(d3ap),
            pct(d3ap / d3),
        ]);
        let _ = d2ap;
    }
    emit_table("ext_ddr3", &rows);
    println!();
    println!("question under test: does AMB prefetching's gain survive the DDR3 generation?");
}
