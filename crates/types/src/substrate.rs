//! Composable substrates: table-driven DRAM timing specs and named
//! system presets behind registries (DESIGN.md §14).
//!
//! A [`TimingSpec`] is a full FAW/tRTP-complete DRAM timing table plus
//! its data rate; a [`Substrate`] is a complete memory-subsystem preset
//! (geometry, technology, timing spec, prefetcher) selectable by its
//! stable string name. The four paper systems (`ddr2`, `fbd`, `fbd-ap`,
//! `fbd-apfl`), the DDR3-1333 extension (`fbd-ddr3`) and the DDR3-1066
//! extension (`ddr3-1066`, defined entirely in
//! [`ddr3_1066`](crate::ddr3_1066)) are all registry entries; adding a
//! new substrate is one new file plus one `register` line below — no
//! edits to the simulator core.
//!
//! # Examples
//!
//! ```
//! use fbd_types::substrate::{substrates, timing_specs};
//!
//! let fbd = substrates().get("fbd-ap").unwrap();
//! assert!(fbd.config().amb.is_enabled());
//! let t = timing_specs().get(fbd.timing_spec()).unwrap();
//! assert_eq!(t.timings(), fbd.config().timings);
//! ```

use std::sync::OnceLock;

use crate::config::{AmbPrefetchMode, DramTimings, MemoryConfig};
use crate::ddr3_1066::{Ddr3_1066Substrate, Ddr3_1066Timing};
use crate::registry::Registry;
use crate::time::DataRate;

/// A table-driven DRAM timing specification: the full Table-2-style
/// timing set (including the four-activate window and read-to-precharge
/// constraints) plus the transfer rate that defines the device clock.
pub trait TimingSpec: Send + Sync + std::fmt::Debug {
    /// Stable registry name (e.g. `ddr2-667`).
    fn name(&self) -> &'static str;
    /// One-line human description for listings.
    fn description(&self) -> &'static str;
    /// Per-physical-channel transfer rate; its clock period paces every
    /// command/data slot.
    fn data_rate(&self) -> DataRate;
    /// The timing table.
    fn timings(&self) -> DramTimings;
}

/// The paper's DDR2-667 timing table (Table 2).
#[derive(Debug)]
pub struct Ddr2T667;

impl TimingSpec for Ddr2T667 {
    fn name(&self) -> &'static str {
        "ddr2-667"
    }
    fn description(&self) -> &'static str {
        "DDR2-667, the paper's Table 2 timings"
    }
    fn data_rate(&self) -> DataRate {
        DataRate::MTS667
    }
    fn timings(&self) -> DramTimings {
        DramTimings::ddr2_table2()
    }
}

/// Representative DDR3-1333 (CL9) timings — the paper's footnote 1
/// anticipates FB-DIMM carrying DDR3.
#[derive(Debug)]
pub struct Ddr3T1333;

impl TimingSpec for Ddr3T1333 {
    fn name(&self) -> &'static str {
        "ddr3-1333"
    }
    fn description(&self) -> &'static str {
        "DDR3-1333 CL9, 1.5 ns clock"
    }
    fn data_rate(&self) -> DataRate {
        DataRate::MTS1333
    }
    fn timings(&self) -> DramTimings {
        DramTimings::ddr3_1333()
    }
}

/// The timing-spec registry. Built once; every entry is validated by
/// the substrate tests below.
pub fn timing_specs() -> &'static Registry<dyn TimingSpec> {
    static SPECS: OnceLock<Registry<dyn TimingSpec>> = OnceLock::new();
    SPECS.get_or_init(|| {
        let mut r = Registry::new("timing spec");
        r.register(Ddr2T667.name(), &Ddr2T667 as &dyn TimingSpec);
        r.register(Ddr3T1333.name(), &Ddr3T1333);
        r.register(Ddr3_1066Timing.name(), &Ddr3_1066Timing);
        r
    })
}

/// A complete memory-subsystem preset: a [`MemoryConfig`] (which embeds
/// the timing table of [`Self::timing_spec`]) under a stable name.
pub trait Substrate: Send + Sync + std::fmt::Debug {
    /// Stable registry/CLI name (e.g. `fbd-ap`).
    fn name(&self) -> &'static str;
    /// One-line human description for listings.
    fn description(&self) -> &'static str;
    /// Name of the [`TimingSpec`] this preset composes.
    fn timing_spec(&self) -> &'static str;
    /// The full memory configuration.
    fn config(&self) -> MemoryConfig;
}

/// The paper's conventional DDR2 shared-bus baseline.
#[derive(Debug)]
pub struct Ddr2Baseline;

impl Substrate for Ddr2Baseline {
    fn name(&self) -> &'static str {
        "ddr2"
    }
    fn description(&self) -> &'static str {
        "conventional DDR2-667 shared-bus baseline"
    }
    fn timing_spec(&self) -> &'static str {
        "ddr2-667"
    }
    fn config(&self) -> MemoryConfig {
        MemoryConfig::ddr2_default()
    }
}

/// Plain FB-DIMM (AMB prefetching off).
#[derive(Debug)]
pub struct FbdBaseline;

impl Substrate for FbdBaseline {
    fn name(&self) -> &'static str {
        "fbd"
    }
    fn description(&self) -> &'static str {
        "FB-DIMM/DDR2-667, AMB prefetching off"
    }
    fn timing_spec(&self) -> &'static str {
        "ddr2-667"
    }
    fn config(&self) -> MemoryConfig {
        MemoryConfig::fbdimm_default()
    }
}

/// FB-DIMM with the paper's default AMB prefetcher (K=4).
#[derive(Debug)]
pub struct FbdAmbPrefetch;

impl Substrate for FbdAmbPrefetch {
    fn name(&self) -> &'static str {
        "fbd-ap"
    }
    fn description(&self) -> &'static str {
        "FB-DIMM/DDR2-667 with AMB prefetching (K=4)"
    }
    fn timing_spec(&self) -> &'static str {
        "ddr2-667"
    }
    fn config(&self) -> MemoryConfig {
        MemoryConfig::fbdimm_with_prefetch()
    }
}

/// FB-DIMM prefetching under the full-latency ablation (AMB hits pay
/// the full DRAM latency; isolates the bandwidth effect).
#[derive(Debug)]
pub struct FbdAmbPrefetchFullLatency;

impl Substrate for FbdAmbPrefetchFullLatency {
    fn name(&self) -> &'static str {
        "fbd-apfl"
    }
    fn description(&self) -> &'static str {
        "FB-DIMM AMB prefetching, full-latency ablation"
    }
    fn timing_spec(&self) -> &'static str {
        "ddr2-667"
    }
    fn config(&self) -> MemoryConfig {
        let mut m = MemoryConfig::fbdimm_with_prefetch();
        m.amb.mode = AmbPrefetchMode::FullLatency;
        m
    }
}

/// FB-DIMM carrying DDR3-1333 devices.
#[derive(Debug)]
pub struct FbdDdr3;

impl Substrate for FbdDdr3 {
    fn name(&self) -> &'static str {
        "fbd-ddr3"
    }
    fn description(&self) -> &'static str {
        "FB-DIMM carrying DDR3-1333 devices"
    }
    fn timing_spec(&self) -> &'static str {
        "ddr3-1333"
    }
    fn config(&self) -> MemoryConfig {
        MemoryConfig::fbdimm_ddr3()
    }
}

/// The substrate registry: every named preset a run can be composed
/// from. Registration order is the CLI listing order.
pub fn substrates() -> &'static Registry<dyn Substrate> {
    static SUBSTRATES: OnceLock<Registry<dyn Substrate>> = OnceLock::new();
    SUBSTRATES.get_or_init(|| {
        let mut r = Registry::new("substrate");
        r.register(Ddr2Baseline.name(), &Ddr2Baseline as &dyn Substrate);
        r.register(FbdBaseline.name(), &FbdBaseline);
        r.register(FbdAmbPrefetch.name(), &FbdAmbPrefetch);
        r.register(FbdAmbPrefetchFullLatency.name(), &FbdAmbPrefetchFullLatency);
        r.register(FbdDdr3.name(), &FbdDdr3);
        r.register(Ddr3_1066Substrate.name(), &Ddr3_1066Substrate);
        r
    })
}

/// Emits the `MemoryConfig::by_name` deprecation warning once per
/// process (the shim forwards here so migrated code never pays it).
pub(crate) fn warn_by_name_deprecated() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!(
            "warning: MemoryConfig::by_name is deprecated; select a substrate \
             via fbd_types::substrate::substrates().get(name)"
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_substrate_validates_and_names_a_registered_timing_spec() {
        for (name, sub) in substrates().iter() {
            assert_eq!(name, sub.name());
            let cfg = sub.config();
            cfg.validate()
                .unwrap_or_else(|e| panic!("substrate `{name}` invalid: {e}"));
            let spec = timing_specs()
                .get(sub.timing_spec())
                .unwrap_or_else(|| panic!("substrate `{name}` names unknown timing spec"));
            assert_eq!(
                cfg.timings,
                spec.timings(),
                "substrate `{name}` must embed its timing spec's table"
            );
            assert_eq!(
                cfg.data_rate,
                spec.data_rate(),
                "substrate `{name}` must run at its timing spec's rate"
            );
            assert!(!sub.description().is_empty());
        }
    }

    #[test]
    fn every_timing_spec_validates() {
        for (name, spec) in timing_specs().iter() {
            assert_eq!(name, spec.name());
            spec.timings()
                .validate()
                .unwrap_or_else(|e| panic!("timing spec `{name}` invalid: {e}"));
            assert!(!spec.data_rate().clock_period().is_zero());
        }
    }

    #[test]
    fn registry_matches_the_legacy_presets() {
        // The four paper systems must resolve to exactly the configs the
        // old `MemoryConfig::by_name` enum path produced.
        #[allow(deprecated)]
        for name in ["ddr2", "fbd", "fbd-ap", "fbd-apfl"] {
            let legacy = MemoryConfig::by_name(name).unwrap();
            let composed = substrates().get(name).unwrap().config();
            assert_eq!(legacy, composed, "preset `{name}` diverged");
        }
    }

    #[test]
    fn extension_substrates_are_registered() {
        assert!(substrates().get("fbd-ddr3").is_some());
        assert!(substrates().get("ddr3-1066").is_some());
        assert!(substrates().get("ddr5").is_none());
    }
}
