//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of rand 0.8's API that this workspace uses —
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, `Rng::gen_range` over
//! integer ranges, and `Rng::gen_bool` — on top of xoshiro256++.
//! Generated streams differ from upstream `StdRng` (which is ChaCha12),
//! but the workspace only requires determinism for a fixed seed, not
//! stream compatibility.

/// A generator seedable from a `u64` (the used subset of rand's trait).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value convenience methods (the used subset of rand's trait).
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `range` (half-open or inclusive integer ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// True with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        // 53-bit mantissa comparison, like rand's Bernoulli.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

/// Ranges that can produce a uniform sample (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

fn below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0, "empty range");
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )+};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    //! Named generators.

    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256++ here (ChaCha12 upstream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 seed expansion, as rand_core documents.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
            let x: u64 = rng.gen_range(1..=6);
            assert!((1..=6).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "rate off: {hits}");
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn gen_bool_rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_bool(1.5);
    }
}
