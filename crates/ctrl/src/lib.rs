//! The memory controller: address mapping, the transaction queue, the
//! scheduling policies, refresh management, and the prefetch
//! information table.
//!
//! The controller is technology-agnostic policy behind pluggable
//! interfaces: it decodes addresses ([`AddressMapper`], default
//! [`InterleavedMapper`]), buffers transactions ([`TransactionQueue`]),
//! reorders them ([`SchedulerPolicy`], default [`HitFirstScheduler`]),
//! times refreshes ([`RefreshManager`]) and — when AMB prefetching is
//! enabled — tracks every AMB cache's content ([`PrefetchTable`]) so
//! hits are known before any channel command is sent. Implementations
//! are published by name through the [`schedulers`], [`mappers`] and
//! [`refresh_managers`] registries; the datapath (links, AMBs, DRAM
//! devices) lives in the sibling crates and is wired together by
//! `fbd-core`.
//!
//! # Examples
//!
//! Decode a line under the paper's 4-cacheline interleaving:
//!
//! ```
//! use fbd_ctrl::{AddressMapper, InterleavedMapper};
//! use fbd_types::config::MemoryConfig;
//! use fbd_types::LineAddr;
//!
//! let mapper = InterleavedMapper::new(&MemoryConfig::fbdimm_with_prefetch());
//! let a = mapper.map(LineAddr::new(6));
//! let b = mapper.map(LineAddr::new(7));
//! // Blocks 6 and 7 share a region, hence a bank row (Figure 2).
//! assert_eq!((a.channel, a.dimm, a.bank, a.row), (b.channel, b.dimm, b.bank, b.row));
//! ```
//!
//! Build a scheduling policy by name from the registry:
//!
//! ```
//! use fbd_types::config::MemoryConfig;
//!
//! let spec = fbd_ctrl::schedulers().get("fcfs").expect("registered");
//! let mut policy = spec.build(&MemoryConfig::fbdimm_default());
//! assert_eq!(policy.pick(&[], &mut |_| fbd_ctrl::SchedClass::Ready), None);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compose;
pub mod fcfs;
pub mod info_table;
pub mod mapping;
pub mod queue;
pub mod recovery;
pub mod refresh;
pub mod sched;
pub mod scrub;

pub use compose::{mappers, refresh_managers, schedulers, scrub_policies};
pub use fcfs::{FcfsScheduler, FcfsSpec};
pub use info_table::{FillOutcome, PrefetchTable};
pub use mapping::{AddressMapper, InterleavedMapper, InterleavedSpec, MappedAddr, MapperSpec};
pub use queue::{QueueEntry, TransactionQueue};
pub use recovery::{droppable, northbound_action, CrcAction};
pub use refresh::{
    NoRefresh, NoRefreshSpec, RefreshManager, RefreshOp, RefreshSpec, StaggeredRefresh,
    StaggeredSpec,
};
pub use sched::{HitFirstScheduler, HitFirstSpec, SchedClass, SchedulerPolicy, SchedulerSpec};
pub use scrub::{NoScrub, NoScrubSpec, PatrolScrub, PatrolSpec, ScrubPolicy, ScrubSpec};

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use fbd_types::config::{Interleaving, MemoryConfig, PagePolicy};
    use fbd_types::LineAddr;
    use proptest::prelude::*;

    fn mapper_for(scheme: u8) -> InterleavedMapper {
        let mut cfg = MemoryConfig::fbdimm_default();
        cfg.interleaving = match scheme % 4 {
            0 => Interleaving::Cacheline,
            1 => Interleaving::MultiCacheline { lines: 4 },
            2 => Interleaving::MultiCacheline { lines: 8 },
            _ => {
                cfg.page_policy = PagePolicy::OpenPage;
                Interleaving::Page
            }
        };
        InterleavedMapper::new(&cfg)
    }

    proptest! {
        /// map/unmap is a bijection within capacity for every scheme.
        #[test]
        fn mapping_round_trips(scheme in 0u8..4, line in 0u64..1_000_000) {
            let m = mapper_for(scheme);
            let l = LineAddr::new(line);
            prop_assert_eq!(m.unmap(m.map(l)), l);
        }

        /// The bijection holds across the whole geometry space, not just
        /// the paper's default (channels x dimms x banks x page sizes).
        #[test]
        fn mapping_round_trips_across_geometries(
            ch_log in 0u32..3,
            dimm_log in 1u32..4,
            bank_log in 1u32..4,
            page_log in 9u32..14, // 512 B - 8 KB pages
            scheme in 0u8..4,
            line in 0u64..5_000_000,
        ) {
            let mut cfg = MemoryConfig::fbdimm_default();
            cfg.logical_channels = 1 << ch_log;
            cfg.dimms_per_channel = 1 << dimm_log;
            cfg.banks_per_dimm = 1 << bank_log;
            cfg.page_bytes = 1 << page_log;
            cfg.interleaving = match scheme % 4 {
                0 => Interleaving::Cacheline,
                1 => Interleaving::MultiCacheline { lines: 4 },
                2 => Interleaving::MultiCacheline { lines: 8 },
                _ => {
                    cfg.page_policy = PagePolicy::OpenPage;
                    Interleaving::Page
                }
            };
            prop_assume!(cfg.validate().is_ok());
            let m = InterleavedMapper::new(&cfg);
            let l = LineAddr::new(line % m.capacity_lines());
            let x = m.map(l);
            prop_assert_eq!(m.unmap(x), l);
            prop_assert!(x.channel < cfg.logical_channels);
            prop_assert!(x.dimm < cfg.dimms_per_channel);
            prop_assert!(x.bank < cfg.banks_per_dimm);
            prop_assert!(x.col_line < cfg.lines_per_page());
        }

        /// The bijection holds at NON-power-of-two DIMM counts too: the
        /// modular channel/DIMM arithmetic never assumed a power of two,
        /// and the XOR permutation only touches the bank index.
        #[test]
        fn mapping_round_trips_at_any_dimm_count(
            dimms in 1u32..=9,
            permute in any::<bool>(),
            scheme in 0u8..4,
            line in 0u64..5_000_000,
        ) {
            let mut cfg = MemoryConfig::fbdimm_default();
            cfg.dimms_per_channel = dimms;
            cfg.xor_permutation = permute;
            cfg.interleaving = match scheme % 4 {
                0 => Interleaving::Cacheline,
                1 => Interleaving::MultiCacheline { lines: 4 },
                2 => Interleaving::MultiCacheline { lines: 8 },
                _ => {
                    cfg.page_policy = PagePolicy::OpenPage;
                    Interleaving::Page
                }
            };
            prop_assume!(cfg.validate().is_ok());
            let m = InterleavedMapper::new(&cfg);
            let l = LineAddr::new(line % m.capacity_lines());
            let x = m.map(l);
            prop_assert_eq!(m.unmap(x), l);
            prop_assert!(x.dimm < dimms);
        }

        /// Lines of one region always land on the same bank row under
        /// matching multi-cacheline interleaving (the property the AMB
        /// group fetch depends on).
        #[test]
        fn regions_never_straddle_rows(line in 0u64..1_000_000) {
            let m = mapper_for(1); // 4-line groups
            let base = (line / 4) * 4;
            let first = m.map(LineAddr::new(base));
            for off in 1..4 {
                let x = m.map(LineAddr::new(base + off));
                prop_assert_eq!(
                    (x.channel, x.dimm, x.bank, x.row),
                    (first.channel, first.dimm, first.bank, first.row)
                );
            }
        }

        /// Decoded coordinates are always within the configured geometry.
        #[test]
        fn coordinates_in_bounds(scheme in 0u8..4, line in 0u64..10_000_000) {
            let m = mapper_for(scheme);
            let x = m.map(LineAddr::new(line));
            prop_assert!(x.channel < 2);
            prop_assert!(x.dimm < 4);
            prop_assert!(x.bank < 4);
            prop_assert!(x.row < 16_384);
            prop_assert!(x.col_line < 128);
        }
    }
}
