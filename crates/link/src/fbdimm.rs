//! The FB-DIMM channel: southbound and northbound links and the AMB
//! daisy chain (paper §2).
//!
//! Both links are unidirectional and independently scheduled by the
//! memory controller. Per 6 ns frame (two DRAM clocks at 667 MT/s) a
//! physical southbound link carries three commands *or* one command plus
//! 16 bytes of write data; a physical northbound link carries 32 bytes of
//! read data. Two physical channels ganged into a logical channel move a
//! whole 64-byte line per frame time northbound, and commands are
//! broadcast to both members of the gang.
//!
//! The daisy chain adds a per-AMB forwarding delay. Without Variable Read
//! Latency (the paper's default) every access is charged the delay of the
//! farthest DIMM; with VRL the delay depends on the DIMM's position.

use fbd_types::config::{MemoryConfig, MemoryTech};
use fbd_types::time::{Dur, Time};
use fbd_types::CACHE_LINE_BYTES;

use crate::timeline::Timeline;

/// A granted link reservation: where the transfer sits on the wire and
/// when its payload is usable at the far end.
///
/// `start`/`dur` describe link *occupancy* (what an event tracer draws
/// on the frame timeline); `done` is the *latency* endpoint — command
/// arrival at the AMBs southbound, the critical line's arrival at the
/// controller northbound — which includes transit and daisy-chain
/// delays that occupy no link time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkSlot {
    /// First instant the transfer occupies the link.
    pub start: Time,
    /// Time the transfer occupies the link.
    pub dur: Dur,
    /// When the payload is available at the receiver.
    pub done: Time,
}

impl LinkSlot {
    /// How long the transfer waited for the wire: the gap between the
    /// instant its payload was `ready` to send and the granted `start`.
    /// Zero when the link was free immediately.
    pub fn queue_wait(&self, ready: Time) -> Dur {
        self.start.saturating_since(ready)
    }
}

/// One logical FB-DIMM channel's southbound + northbound links.
#[derive(Clone, Debug)]
pub struct FbdChannel {
    south: Timeline,
    north: Timeline,
    /// Time one command occupies the southbound link (a frame carries 3).
    cmd_slot: Dur,
    /// Southbound time for a full line of write data.
    write_slot: Dur,
    /// Northbound time for a full line of read data.
    read_slot: Dur,
    /// Transit latency of a command from controller onto the chain.
    cmd_transit: Dur,
    chain: DaisyChain,
}

/// Per-AMB daisy-chain delay model.
#[derive(Clone, Copy, Debug)]
pub struct DaisyChain {
    hop: Dur,
    dimms: u32,
    vrl: bool,
}

impl DaisyChain {
    /// Creates a chain of `dimms` AMBs with `hop` forwarding delay each.
    ///
    /// # Panics
    ///
    /// Panics if `dimms` is zero.
    pub fn new(hop: Dur, dimms: u32, vrl: bool) -> DaisyChain {
        assert!(dimms > 0, "a channel must have at least one DIMM");
        DaisyChain { hop, dimms, vrl }
    }

    /// Total AMB forwarding delay charged to an access of DIMM `dimm`.
    ///
    /// Without VRL this is the farthest DIMM's delay regardless of the
    /// target (fixed read latency); with VRL it is proportional to the
    /// target's position.
    ///
    /// # Panics
    ///
    /// Panics if `dimm` is out of range.
    pub fn amb_delay(&self, dimm: u32) -> Dur {
        assert!(dimm < self.dimms, "dimm {dimm} out of range");
        if self.vrl {
            self.hop * u64::from(dimm + 1)
        } else {
            self.hop * u64::from(self.dimms)
        }
    }
}

impl FbdChannel {
    /// Builds one logical channel from the memory configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not an FB-DIMM one.
    pub fn new(cfg: &MemoryConfig) -> FbdChannel {
        let vrl = match cfg.tech {
            MemoryTech::FbDimm { vrl } => vrl,
            MemoryTech::Ddr2 => panic!("FbdChannel requires an FB-DIMM configuration"),
        };
        let clock = cfg.data_rate.clock_period();
        let frame = clock * 2;
        let gang = u64::from(cfg.phys_per_logical);
        // Northbound: 32 B per frame per physical link.
        let frames_per_line_north = (CACHE_LINE_BYTES / 32).div_ceil(gang);
        // Southbound: 16 B per frame per physical link.
        let frames_per_line_south = (CACHE_LINE_BYTES / 16).div_ceil(gang);
        // Southbound slots are command-sized (3 per frame) so that three
        // commands really fit in one frame; northbound slots are
        // clock-sized.
        FbdChannel {
            south: Timeline::new(frame / 3),
            north: Timeline::new(clock),
            cmd_slot: frame / 3,
            write_slot: frame * frames_per_line_south,
            read_slot: frame * frames_per_line_north,
            cmd_transit: clock,
            chain: DaisyChain::new(cfg.amb_hop_delay, cfg.dimms_per_channel, vrl),
        }
    }

    /// Sends a command southbound at or after `not_before`; the slot's
    /// `done` is the instant the command *arrives at the AMBs* (send
    /// slot + transit).
    pub fn send_command(&mut self, not_before: Time) -> LinkSlot {
        let start = self.south.reserve(not_before, self.cmd_slot);
        LinkSlot {
            start,
            dur: self.cmd_slot,
            done: start + self.cmd_transit,
        }
    }

    /// Streams a line of write data southbound at or after `not_before`;
    /// the slot's `done` is the instant the last byte arrives at the
    /// AMBs.
    pub fn send_write_data(&mut self, not_before: Time) -> LinkSlot {
        let start = self.south.reserve(not_before, self.write_slot);
        LinkSlot {
            start,
            dur: self.write_slot,
            done: start + self.write_slot + self.cmd_transit,
        }
    }

    /// Returns a line of read data northbound from DIMM `dimm`. The AMB
    /// cuts the data through as it is produced, so the transfer may start
    /// at `data_ready` (when the first beats exist at the AMB); the
    /// critical line reaches the controller after the northbound frame
    /// plus the daisy-chain delay.
    ///
    /// The slot's `done` is the completion instant at the controller.
    pub fn return_read_data(&mut self, dimm: u32, data_ready: Time) -> LinkSlot {
        let start = self.north.reserve(data_ready, self.read_slot);
        LinkSlot {
            start,
            dur: self.read_slot,
            done: start + self.read_slot + self.chain.amb_delay(dimm),
        }
    }

    /// Northbound transfer time for one line (the "6 ns data transfer" of
    /// the paper's latency decomposition).
    pub fn read_slot(&self) -> Dur {
        self.read_slot
    }

    /// The daisy chain (for latency decomposition in tests).
    pub fn chain(&self) -> &DaisyChain {
        &self.chain
    }

    /// Bytes carried so far (south + north), for utilization reporting.
    pub fn carried_time(&self) -> (Dur, Dur) {
        (self.south.carried(), self.north.carried())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_types::config::MemoryConfig;

    fn channel() -> FbdChannel {
        FbdChannel::new(&MemoryConfig::fbdimm_default())
    }

    #[test]
    fn default_slots_match_paper_decomposition() {
        let ch = channel();
        // Ganged pair at 667 MT/s: 64 B northbound in one 6 ns frame.
        assert_eq!(ch.read_slot, Dur::from_ns(6));
        // Write data: 64 B at 2×16 B per frame = 2 frames = 12 ns.
        assert_eq!(ch.write_slot, Dur::from_ns(12));
        // Commands: 3 per 6 ns frame.
        assert_eq!(ch.cmd_slot, Dur::from_ns(2));
        assert_eq!(ch.cmd_transit, Dur::from_ns(3));
    }

    #[test]
    fn command_arrival_includes_transit() {
        let mut ch = channel();
        let slot = ch.send_command(Time::from_ns(12));
        assert_eq!(slot.start, Time::from_ns(12));
        assert_eq!(slot.dur, Dur::from_ns(2));
        assert_eq!(slot.done, Time::from_ns(15));
    }

    #[test]
    fn no_vrl_charges_farthest_dimm_delay() {
        let chain = DaisyChain::new(Dur::from_ns(3), 4, false);
        assert_eq!(chain.amb_delay(0), Dur::from_ns(12));
        assert_eq!(chain.amb_delay(3), Dur::from_ns(12));
    }

    #[test]
    fn vrl_delay_scales_with_position() {
        let chain = DaisyChain::new(Dur::from_ns(3), 4, true);
        assert_eq!(chain.amb_delay(0), Dur::from_ns(3));
        assert_eq!(chain.amb_delay(3), Dur::from_ns(12));
    }

    #[test]
    fn read_return_composes_frame_and_chain() {
        let mut ch = channel();
        // Data ready at the AMB at 45 ns → 45 + 6 (frame) + 12 (chain).
        let slot = ch.return_read_data(2, Time::from_ns(45));
        assert_eq!(slot.start, Time::from_ns(45));
        assert_eq!(slot.dur, Dur::from_ns(6));
        assert_eq!(slot.done, Time::from_ns(63));
    }

    #[test]
    fn northbound_serializes_concurrent_returns() {
        let mut ch = channel();
        let d1 = ch.return_read_data(0, Time::from_ns(45));
        let d2 = ch.return_read_data(1, Time::from_ns(45));
        assert_eq!(d1.done, Time::from_ns(63));
        assert_eq!(d2.done, Time::from_ns(69)); // queued one frame later
        assert_eq!(d2.start, d1.start + d1.dur, "frames must be back to back");
    }

    #[test]
    fn southbound_interleaves_commands_between_write_data() {
        let mut ch = channel();
        let w = ch.send_write_data(Time::ZERO); // occupies [0,12)
        assert_eq!(w.start, Time::ZERO);
        assert_eq!(w.dur, Dur::from_ns(12));
        assert_eq!(w.done, Time::from_ns(15));
        let c = ch.send_command(Time::ZERO);
        assert_eq!(c.start, Time::from_ns(12)); // first free slot after data
        assert_eq!(c.done, Time::from_ns(15)); // slot [12,14) + 3 transit
    }

    #[test]
    #[should_panic(expected = "FB-DIMM configuration")]
    fn ddr2_config_rejected() {
        let _ = FbdChannel::new(&MemoryConfig::ddr2_default());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_dimm_rejected() {
        let chain = DaisyChain::new(Dur::from_ns(3), 4, false);
        let _ = chain.amb_delay(4);
    }
}
