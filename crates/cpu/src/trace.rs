//! The access-trace abstraction feeding each simulated core.
//!
//! A trace is the stream of memory operations that *reach the shared L2*
//! (the per-core L1s are folded into the generator — see DESIGN.md §4),
//! annotated with the number of committed instructions between
//! consecutive operations. `fbd-workloads` provides the SPEC2000-like
//! synthetic implementations.

use fbd_types::time::Dur;
use fbd_types::LineAddr;

/// Kind of one traced memory operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A demand load; an L2 miss blocks commit when it reaches the ROB
    /// head (stall-on-use).
    Load,
    /// A store; write-allocate but never blocks commit (retires through
    /// the store queue).
    Store,
    /// A software prefetch instruction (compiler-inserted); never blocks
    /// commit, dropped when software prefetching is disabled.
    Prefetch,
}

/// One memory operation in a core's instruction stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Instructions committed between the previous operation and this
    /// one (the operation itself counts as one further instruction).
    pub gap: u64,
    /// Operation kind.
    pub kind: OpKind,
    /// Target cacheline.
    pub line: LineAddr,
}

/// A source of memory operations for one core.
///
/// Implementations must be deterministic for reproducible experiments.
/// The `Send` bound lets snapshots of trace state be held in a
/// process-wide warm-up cache shared between test threads.
pub trait TraceSource: Send {
    /// Produces the next operation, or `None` when the trace ends.
    fn next_op(&mut self) -> Option<TraceOp>;

    /// Base commit time per instruction when no L2 miss stalls commit.
    /// This folds in the benchmark's inherent ILP and L1/L2-hit costs.
    fn time_per_instr(&self) -> Dur;

    /// Human-readable benchmark name (e.g. `"swim"`).
    fn name(&self) -> &str;

    /// Clones this source's complete state (position, RNG, reuse
    /// history), or `None` when the implementation cannot snapshot
    /// itself. Sources that support this let the runner reuse one L2
    /// warm-up across runs with identical warm inputs instead of
    /// replaying it.
    fn clone_box(&self) -> Option<Box<dyn TraceSource>> {
        None
    }
}

/// A trivial trace for tests: strided loads with a fixed gap.
#[derive(Clone, Debug)]
pub struct StridedTrace {
    next_line: u64,
    stride: u64,
    gap: u64,
    remaining: u64,
    tpi: Dur,
}

impl StridedTrace {
    /// `count` loads, `stride` lines apart, `gap` instructions apart, at
    /// `tpi` base time per instruction.
    pub fn new(count: u64, stride: u64, gap: u64, tpi: Dur) -> StridedTrace {
        StridedTrace {
            next_line: 0,
            stride,
            gap,
            remaining: count,
            tpi,
        }
    }
}

impl TraceSource for StridedTrace {
    fn next_op(&mut self) -> Option<TraceOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let line = LineAddr::new(self.next_line);
        self.next_line += self.stride;
        Some(TraceOp {
            gap: self.gap,
            kind: OpKind::Load,
            line,
        })
    }

    fn time_per_instr(&self) -> Dur {
        self.tpi
    }

    fn name(&self) -> &str {
        "strided-test"
    }

    fn clone_box(&self) -> Option<Box<dyn TraceSource>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_trace_produces_count_ops() {
        let mut t = StridedTrace::new(3, 4, 10, Dur::from_ps(125));
        let ops: Vec<TraceOp> = std::iter::from_fn(|| t.next_op()).collect();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0].line, LineAddr::new(0));
        assert_eq!(ops[1].line, LineAddr::new(4));
        assert_eq!(ops[2].line, LineAddr::new(8));
        assert!(ops.iter().all(|o| o.gap == 10 && o.kind == OpKind::Load));
        assert_eq!(t.time_per_instr(), Dur::from_ps(125));
        assert_eq!(t.name(), "strided-test");
    }
}
