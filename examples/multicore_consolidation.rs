//! Multicore consolidation study: how the three memory systems (DDR2,
//! FB-DIMM, FB-DIMM + AMB prefetching) scale as more cores share the
//! memory subsystem — the scenario the paper's introduction motivates
//! (multicore processors multiply off-chip traffic).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p fbd-core --example multicore_consolidation
//! ```

use fbd_core::experiment::{reference_ipcs, smt_speedup, ExperimentConfig};
use fbd_core::RunSpec;
use fbd_types::config::{MemoryConfig, SystemConfig};
use fbd_workloads::{eight_core_workloads, four_core_workloads, two_core_workloads, Workload};

fn config(cores: u32, mem: MemoryConfig) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(cores);
    cfg.mem = mem;
    cfg
}

fn main() {
    let exp = ExperimentConfig {
        seed: 42,
        budget: 150_000,
        ..Default::default()
    };

    // References: each program alone on single-core DDR2 (the paper's
    // denominator for SMT speedup).
    let benchmarks: Vec<&str> = fbd_workloads::PROFILES.iter().map(|p| p.name).collect();
    let refs = reference_ipcs(&config(1, MemoryConfig::ddr2_default()), &benchmarks, &exp);

    // One representative streaming-heavy mix per core count (the "-1"
    // mixes of Table 3).
    let picks: Vec<Workload> = vec![
        Workload::new("1C-swim", &["swim"]),
        two_core_workloads().remove(0),
        four_core_workloads().remove(0),
        eight_core_workloads().remove(0),
    ];

    println!(
        "SMT speedup and memory behaviour as cores scale (seed {}):",
        exp.seed
    );
    println!();
    println!("workload  system   speedup  bandwidth  avg latency");
    for w in &picks {
        for (label, mem) in [
            ("DDR2  ", MemoryConfig::ddr2_default()),
            ("FBD   ", MemoryConfig::fbdimm_default()),
            ("FBD-AP", MemoryConfig::fbdimm_with_prefetch()),
        ] {
            let r = RunSpec::new(config(w.cores(), mem))
                .with_workload(w.clone())
                .experiment(exp)
                .run();
            println!(
                "{:>8}  {label}  {:>7.3}  {:>6.2}GB/s  {:>8.1}ns",
                w.name(),
                smt_speedup(w, &r, &refs),
                r.bandwidth_gbps(),
                r.avg_read_latency_ns()
            );
        }
        println!();
    }
    println!("Watch for: DDR2 competitive at 1-2 cores; FB-DIMM pulling ahead as cores");
    println!("scale; AMB prefetching compounding the advantage at every core count.");
}
