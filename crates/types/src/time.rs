//! Simulation time base.
//!
//! All simulated time is kept in integer **picoseconds**. Picosecond
//! resolution lets every clock in the system (4 GHz cores, 333 MHz DRAM
//! clocks, 3.75 ns DDR2-533 periods) be represented exactly, so the
//! latency decompositions of the paper (e.g. the 63 ns idle read latency)
//! come out exact rather than accumulating rounding error.
//!
//! Two newtypes are provided: [`Time`] is an *instant* (picoseconds since
//! simulation start) and [`Dur`] is a *duration*. Mixing them up is a
//! compile error; only the meaningful arithmetic combinations are
//! implemented.
//!
//! # Examples
//!
//! ```
//! use fbd_types::time::{Dur, Time};
//!
//! let start = Time::ZERO;
//! let t_cl = Dur::from_ns(15);
//! let first_beat = start + Dur::from_ns(12) + t_cl;
//! assert_eq!(first_beat - start, Dur::from_ns(27));
//! assert_eq!(first_beat.as_ps(), 27_000);
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An instant in simulated time, in picoseconds since simulation start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(u64);

/// A span of simulated time, in picoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dur(u64);

impl Time {
    /// The simulation start instant.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as "never" in schedulers.
    pub const NEVER: Time = Time(u64::MAX);

    /// Creates an instant from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }

    /// Creates an instant from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns * 1_000)
    }

    /// Raw picosecond value.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in nanoseconds as floating point (for reporting only).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration since `earlier`, saturating to zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Rounds this instant *up* to the next multiple of `quantum` (e.g. a
    /// clock edge). An instant already on an edge is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    #[inline]
    pub fn align_up(self, quantum: Dur) -> Time {
        assert!(quantum.0 > 0, "alignment quantum must be non-zero");
        let rem = self.0 % quantum.0;
        if rem == 0 {
            self
        } else {
            Time(self.0 + (quantum.0 - rem))
        }
    }
}

impl Dur {
    /// The zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Creates a duration from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Dur {
        Dur(ps)
    }

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Dur {
        Dur(ns * 1_000)
    }

    /// Raw picosecond value.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in nanoseconds as floating point (for reporting only).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in seconds as floating point (for bandwidth computations).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// `self - other`, saturating at zero.
    #[inline]
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two durations.
    #[inline]
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Mul<Dur> for u64 {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: Dur) -> Dur {
        Dur(self * rhs.0)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Div<Dur> for Dur {
    type Output = u64;
    /// Number of whole `rhs` periods in `self`.
    #[inline]
    fn div(self, rhs: Dur) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn rem(self, rhs: Dur) -> Dur {
        Dur(self.0 % rhs.0)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns_f64())
    }
}

/// DRAM channel data rate in mega-transfers per second.
///
/// DDR transfers twice per clock, so the DRAM *clock* period is
/// `2 / rate`. The three rates evaluated in the paper are provided as
/// exact constants (DDR2 nominal rates are 533.33 / 666.67 / 800 MT/s,
/// giving clock periods of exactly 3.75 / 3.0 / 2.5 ns).
///
/// # Examples
///
/// ```
/// use fbd_types::time::{DataRate, Dur};
///
/// assert_eq!(DataRate::MTS667.clock_period(), Dur::from_ps(3_000));
/// assert_eq!(DataRate::MTS533.clock_period(), Dur::from_ps(3_750));
/// // 8-byte channel, two transfers per clock: 16 B / 3 ns = 5.33 GB/s.
/// assert!((DataRate::MTS667.channel_bandwidth_gbps() - 5.333).abs() < 0.001);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DataRate {
    clock_period_ps: u64,
}

impl DataRate {
    /// DDR2-533: 3.75 ns clock.
    pub const MTS533: DataRate = DataRate {
        clock_period_ps: 3_750,
    };
    /// DDR2-667: 3.0 ns clock (the paper's default).
    pub const MTS667: DataRate = DataRate {
        clock_period_ps: 3_000,
    };
    /// DDR2-800: 2.5 ns clock.
    pub const MTS800: DataRate = DataRate {
        clock_period_ps: 2_500,
    };
    /// DDR3-1066: 1.875 ns clock (the paper's footnote anticipates
    /// FB-DIMM carrying DDR3).
    pub const MTS1066: DataRate = DataRate {
        clock_period_ps: 1_875,
    };
    /// DDR3-1333: 1.5 ns clock.
    pub const MTS1333: DataRate = DataRate {
        clock_period_ps: 1_500,
    };

    /// A custom rate from an explicit DRAM clock period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn from_clock_period(period: Dur) -> DataRate {
        assert!(!period.is_zero(), "clock period must be non-zero");
        DataRate {
            clock_period_ps: period.as_ps(),
        }
    }

    /// The DRAM clock period (one cycle of the command clock).
    #[inline]
    pub const fn clock_period(self) -> Dur {
        Dur::from_ps(self.clock_period_ps)
    }

    /// Mega-transfers per second (two transfers per clock).
    #[inline]
    pub fn mega_transfers(self) -> f64 {
        2.0e6 / self.clock_period_ps as f64
    }

    /// Peak data bandwidth of one 8-byte-wide physical channel, in GB/s.
    #[inline]
    pub fn channel_bandwidth_gbps(self) -> f64 {
        // 16 bytes move per clock (8-byte bus, double data rate).
        16.0 / self.clock_period_ps as f64 * 1_000.0
    }
}

impl Default for DataRate {
    fn default() -> Self {
        DataRate::MTS667
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}MT/s", self.mega_transfers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = Time::from_ns(63);
        assert_eq!(t.as_ps(), 63_000);
        assert_eq!(t + Dur::from_ns(2) - Dur::from_ns(2), t);
        assert_eq!((t + Dur::from_ns(5)) - t, Dur::from_ns(5));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = Time::from_ns(10);
        let late = Time::from_ns(20);
        assert_eq!(late.saturating_since(early), Dur::from_ns(10));
        assert_eq!(early.saturating_since(late), Dur::ZERO);
    }

    #[test]
    fn align_up_to_clock_edges() {
        let q = Dur::from_ps(3_000);
        assert_eq!(Time::from_ps(0).align_up(q), Time::from_ps(0));
        assert_eq!(Time::from_ps(1).align_up(q), Time::from_ps(3_000));
        assert_eq!(Time::from_ps(3_000).align_up(q), Time::from_ps(3_000));
        assert_eq!(Time::from_ps(3_001).align_up(q), Time::from_ps(6_000));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn align_up_rejects_zero_quantum() {
        let _ = Time::from_ps(5).align_up(Dur::ZERO);
    }

    #[test]
    fn dur_division_counts_periods() {
        assert_eq!(Dur::from_ns(10) / Dur::from_ns(3), 3);
        assert_eq!(Dur::from_ns(10) % Dur::from_ns(3), Dur::from_ns(1));
        assert_eq!(Dur::from_ns(9) / 3, Dur::from_ns(3));
    }

    #[test]
    fn data_rates_match_ddr2_clock_periods() {
        assert_eq!(DataRate::MTS533.clock_period(), Dur::from_ps(3_750));
        assert_eq!(DataRate::MTS667.clock_period(), Dur::from_ps(3_000));
        assert_eq!(DataRate::MTS800.clock_period(), Dur::from_ps(2_500));
        assert!((DataRate::MTS800.channel_bandwidth_gbps() - 6.4).abs() < 1e-9);
        assert!((DataRate::MTS800.mega_transfers() - 800.0).abs() < 1e-9);
    }

    #[test]
    fn dur_sum_and_max() {
        let total: Dur = [Dur::from_ns(1), Dur::from_ns(2)].into_iter().sum();
        assert_eq!(total, Dur::from_ns(3));
        assert_eq!(Dur::from_ns(1).max(Dur::from_ns(2)), Dur::from_ns(2));
        assert_eq!(Dur::from_ns(5).saturating_sub(Dur::from_ns(7)), Dur::ZERO);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(format!("{}", Dur::from_ns(15)), "15.000ns");
        assert_eq!(format!("{}", Time::from_ns(63)), "63.000ns");
        assert_eq!(format!("{}", DataRate::MTS667), "667MT/s");
    }
}
