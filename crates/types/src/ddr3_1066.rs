//! The DDR3-1066 substrate — the worked example of adding a substrate
//! in one file (DESIGN.md §14).
//!
//! Everything the new substrate needs lives here: the timing table
//! (clock-aligned to the 1.875 ns DDR3-1066 device clock), its
//! [`TimingSpec`] and the [`Substrate`] preset composing it onto the
//! FB-DIMM channel. The only lines outside this file are the two
//! `register` calls in [`crate::substrate`].

use crate::config::{DramTimings, MemoryConfig};
use crate::substrate::{Substrate, TimingSpec};
use crate::time::{DataRate, Dur};

impl DramTimings {
    /// Representative DDR3-1066 (CL7) timings. Every value is a
    /// multiple of the 1.875 ns clock so commands land on clock edges.
    pub const fn ddr3_1066() -> DramTimings {
        DramTimings {
            t_rp: Dur::from_ps(13_125),  // 7 clocks
            t_rcd: Dur::from_ps(13_125), // 7 clocks
            t_cl: Dur::from_ps(13_125),  // CL7
            t_rc: Dur::from_ps(50_625),  // 27 clocks = tRAS + tRP
            t_rrd: Dur::from_ps(7_500),  // 4 clocks
            t_rpd: Dur::from_ps(7_500),  // tRTP, 4 clocks
            t_wtr: Dur::from_ps(7_500),  // 4 clocks
            t_ras: Dur::from_ps(37_500), // 20 clocks
            t_wl: Dur::from_ps(11_250),  // CWL6
            t_wpd: Dur::from_ps(33_750), // WL + burst + tWR, 18 clocks
            t_faw: Dur::from_ps(37_500), // 20 clocks (2 KB page parts)
        }
    }
}

/// DDR3-1066 CL7 timing spec.
#[derive(Debug)]
pub struct Ddr3_1066Timing;

impl TimingSpec for Ddr3_1066Timing {
    fn name(&self) -> &'static str {
        "ddr3-1066"
    }
    fn description(&self) -> &'static str {
        "DDR3-1066 CL7, 1.875 ns clock"
    }
    fn data_rate(&self) -> DataRate {
        DataRate::MTS1066
    }
    fn timings(&self) -> DramTimings {
        DramTimings::ddr3_1066()
    }
}

/// FB-DIMM carrying DDR3-1066 devices: the paper's default geometry at
/// the intermediate DDR3 speed grade.
#[derive(Debug)]
pub struct Ddr3_1066Substrate;

impl Substrate for Ddr3_1066Substrate {
    fn name(&self) -> &'static str {
        "ddr3-1066"
    }
    fn description(&self) -> &'static str {
        "FB-DIMM carrying DDR3-1066 devices"
    }
    fn timing_spec(&self) -> &'static str {
        "ddr3-1066"
    }
    fn config(&self) -> MemoryConfig {
        MemoryConfig {
            data_rate: DataRate::MTS1066,
            timings: DramTimings::ddr3_1066(),
            ..MemoryConfig::fbdimm_default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_1066_timings_validate_and_align_to_the_clock() {
        let t = DramTimings::ddr3_1066();
        t.validate().expect("table must be self-consistent");
        let clk = DataRate::MTS1066.clock_period().as_ps();
        for (name, d) in [
            ("t_rp", t.t_rp),
            ("t_rcd", t.t_rcd),
            ("t_cl", t.t_cl),
            ("t_rc", t.t_rc),
            ("t_rrd", t.t_rrd),
            ("t_rpd", t.t_rpd),
            ("t_wtr", t.t_wtr),
            ("t_ras", t.t_ras),
            ("t_wl", t.t_wl),
            ("t_wpd", t.t_wpd),
            ("t_faw", t.t_faw),
        ] {
            assert_eq!(d.as_ps() % clk, 0, "{name} is not clock-aligned");
        }
        // Strictly faster than DDR2-667 on the row cycle, slower than
        // DDR3-1333 (the speed-grade ordering the sweep relies on).
        assert!(t.t_rc < DramTimings::ddr2_table2().t_rc);
        assert!(t.t_rc > DramTimings::ddr3_1333().t_rc);
    }

    #[test]
    fn substrate_composes_the_1066_table_onto_fbdimm() {
        let cfg = Ddr3_1066Substrate.config();
        cfg.validate().expect("preset must validate");
        assert!(cfg.tech.is_fbdimm());
        assert_eq!(cfg.data_rate, DataRate::MTS1066);
        assert_eq!(cfg.timings, DramTimings::ddr3_1066());
    }
}
