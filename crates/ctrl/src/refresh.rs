//! Pluggable refresh management.
//!
//! The controller delegates *when* each DIMM refreshes to a
//! [`RefreshManager`]; the memory system owns *what happens* (occupying
//! the banks for tRFC and charging the power model). The manager emits
//! [`RefreshOp`]s for every deadline at or before `now`, in a
//! deterministic order, so the timing outcome is identical to an
//! inlined deadline loop.
//!
//! Two managers ship by default (see [`crate::refresh_managers`]):
//! `staggered` — the paper-default policy that offsets each DIMM's
//! deadline by `tREFI / n` so the subsystem never refreshes all at once
//! — and `none` for refresh-free ablations.

use fbd_types::config::MemoryConfig;
use fbd_types::time::{Dur, Time};

/// One refresh the manager has scheduled: DIMM `dimm` is busy for
/// `t_rfc` starting at `at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RefreshOp {
    /// DIMM index within the channel.
    pub dimm: u32,
    /// When the refresh starts.
    pub at: Time,
    /// How long every rank of the DIMM stays busy.
    pub t_rfc: Dur,
}

/// Decides when each DIMM of each channel refreshes.
pub trait RefreshManager: Send + std::fmt::Debug {
    /// Whether this manager ever emits refreshes. The controller skips
    /// the per-decision call entirely when this is `false`.
    fn is_active(&self) -> bool;

    /// Appends to `out` every refresh on channel `ch` whose deadline is
    /// at or before `now`, advancing the internal deadlines. Ops are
    /// emitted DIMM by DIMM, oldest deadline first within a DIMM.
    fn due(&mut self, ch: u32, now: Time, out: &mut Vec<RefreshOp>);
}

/// Refresh disabled (ablation mode).
#[derive(Clone, Copy, Debug)]
pub struct NoRefresh;

impl RefreshManager for NoRefresh {
    fn is_active(&self) -> bool {
        false
    }
    fn due(&mut self, _ch: u32, _now: Time, _out: &mut Vec<RefreshOp>) {}
}

/// Per-DIMM deadlines staggered across the channel: DIMM `i` first
/// refreshes at `(tREFI / n) * (i + 1)` and every `tREFI` after, as real
/// controllers stagger refresh so the whole subsystem never stalls at
/// once.
#[derive(Clone, Debug)]
pub struct StaggeredRefresh {
    t_refi: Dur,
    t_rfc: Dur,
    /// `deadlines[channel][dimm]` = next refresh instant.
    deadlines: Vec<Vec<Time>>,
}

impl StaggeredRefresh {
    /// Creates the manager for `cfg`'s geometry and refresh timings.
    pub fn new(cfg: &MemoryConfig) -> StaggeredRefresh {
        let n = u64::from(cfg.dimms_per_channel);
        let per_channel: Vec<Time> = (0..n)
            .map(|i| Time::ZERO + (cfg.refresh.t_refi / n) * (i + 1))
            .collect();
        StaggeredRefresh {
            t_refi: cfg.refresh.t_refi,
            t_rfc: cfg.refresh.t_rfc,
            deadlines: vec![per_channel; cfg.logical_channels as usize],
        }
    }
}

impl RefreshManager for StaggeredRefresh {
    fn is_active(&self) -> bool {
        true
    }
    fn due(&mut self, ch: u32, now: Time, out: &mut Vec<RefreshOp>) {
        for (dimm, due) in self.deadlines[ch as usize].iter_mut().enumerate() {
            while *due <= now {
                out.push(RefreshOp {
                    dimm: dimm as u32,
                    at: *due,
                    t_rfc: self.t_rfc,
                });
                *due += self.t_refi;
            }
        }
    }
}

/// A named, registerable [`RefreshManager`] factory (see
/// [`crate::refresh_managers`] for the registry).
pub trait RefreshSpec: Send + Sync + std::fmt::Debug {
    /// Stable registry name (e.g. `staggered`).
    fn name(&self) -> &'static str;
    /// One-line human description for listings.
    fn description(&self) -> &'static str;
    /// Builds the manager for `cfg`.
    fn build(&self, cfg: &MemoryConfig) -> Box<dyn RefreshManager>;
}

/// Registry entry for [`StaggeredRefresh`].
#[derive(Debug)]
pub struct StaggeredSpec;

impl RefreshSpec for StaggeredSpec {
    fn name(&self) -> &'static str {
        "staggered"
    }
    fn description(&self) -> &'static str {
        "per-DIMM deadlines offset by tREFI/n (paper default)"
    }
    fn build(&self, cfg: &MemoryConfig) -> Box<dyn RefreshManager> {
        // Honour the config's master switch: composing `staggered` onto
        // a refresh-disabled config must not invent refreshes.
        if cfg.refresh.enabled {
            Box::new(StaggeredRefresh::new(cfg))
        } else {
            Box::new(NoRefresh)
        }
    }
}

/// Registry entry for [`NoRefresh`].
#[derive(Debug)]
pub struct NoRefreshSpec;

impl RefreshSpec for NoRefreshSpec {
    fn name(&self) -> &'static str {
        "none"
    }
    fn description(&self) -> &'static str {
        "refresh disabled (ablation)"
    }
    fn build(&self, _cfg: &MemoryConfig) -> Box<dyn RefreshManager> {
        Box::new(NoRefresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MemoryConfig {
        // fbdimm_default ships with refresh off (the paper's setting);
        // these tests exercise the enabled path.
        MemoryConfig {
            refresh: fbd_types::config::RefreshConfig::ddr2_1gb(),
            ..MemoryConfig::fbdimm_default()
        }
    }

    #[test]
    fn staggered_deadlines_match_the_documented_offsets() {
        let c = cfg();
        let mut m = StaggeredRefresh::new(&c);
        let n = u64::from(c.dimms_per_channel);
        let step = c.refresh.t_refi / n;
        // Just before the first deadline: nothing due.
        let mut ops = Vec::new();
        m.due(0, Time::ZERO + step - Dur::from_ps(1), &mut ops);
        assert!(ops.is_empty());
        // At the last first-round deadline: one op per DIMM, staggered.
        m.due(0, Time::ZERO + step * n, &mut ops);
        assert_eq!(ops.len(), c.dimms_per_channel as usize);
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(op.dimm, i as u32);
            assert_eq!(op.at, Time::ZERO + step * (i as u64 + 1));
            assert_eq!(op.t_rfc, c.refresh.t_rfc);
        }
    }

    #[test]
    fn deadlines_advance_by_t_refi_and_are_per_channel() {
        let c = cfg();
        let mut m = StaggeredRefresh::new(&c);
        let mut ops = Vec::new();
        let far = Time::ZERO + c.refresh.t_refi * 2;
        m.due(0, far, &mut ops);
        // Two full rounds per DIMM by 2*tREFI.
        assert_eq!(ops.len(), 2 * c.dimms_per_channel as usize);
        // Channel 1 is untouched by channel 0's drain.
        ops.clear();
        m.due(1, far, &mut ops);
        assert_eq!(ops.len(), 2 * c.dimms_per_channel as usize);
        // Re-polling channel 0 at the same instant yields nothing new.
        ops.clear();
        m.due(0, far, &mut ops);
        assert!(ops.is_empty());
    }

    #[test]
    fn staggered_spec_respects_the_disabled_switch() {
        let mut c = cfg();
        assert!(StaggeredSpec.build(&c).is_active());
        c.refresh.enabled = false;
        assert!(!StaggeredSpec.build(&c).is_active());
        assert!(
            !StaggeredSpec
                .build(&MemoryConfig::fbdimm_default())
                .is_active(),
            "the paper default keeps refresh off"
        );
        assert!(!NoRefreshSpec.build(&cfg()).is_active());
    }
}
