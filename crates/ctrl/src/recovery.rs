//! Frame-recovery policy under link fault injection.
//!
//! The FB-DIMM frame CRC tells the controller *that* a frame was
//! corrupted; what to do about it is controller policy. Command and
//! write-data frames are protocol state and must be delivered, so they
//! are always replayed. Northbound read data splits by what the read
//! was for: demand data is on a core's critical path and is replayed,
//! while *prefetch* data is speculative — replaying it would spend
//! northbound slots (exactly the resource AMB prefetching is trying to
//! exploit) on data nobody has asked for yet, so the controller simply
//! drops the transfer and leaves the line uncached. A later demand
//! access misses and fetches it again, which is how channel faults
//! shift the hit-rate/traffic curves the paper measures.

use fbd_types::request::AccessKind;

/// What the controller does with a northbound transfer whose CRC check
/// failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrcAction {
    /// Replay the transfer (bounded retries with backoff, then lane
    /// fail-over) — demand data and all southbound frames.
    Retry,
    /// Discard the transfer; the line is not cached and no replay
    /// occupies the link — speculative prefetch data.
    Drop,
}

/// Recovery policy for a northbound data transfer serving `kind`.
pub fn northbound_action(kind: AccessKind) -> CrcAction {
    if kind.is_prefetch() {
        CrcAction::Drop
    } else {
        CrcAction::Retry
    }
}

/// True when a corrupted northbound transfer for `kind` is dropped
/// rather than replayed (the form the link layer consumes).
pub fn droppable(kind: AccessKind) -> bool {
    northbound_action(kind) == CrcAction::Drop
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_data_retries_prefetch_data_drops() {
        assert_eq!(northbound_action(AccessKind::DemandRead), CrcAction::Retry);
        assert_eq!(
            northbound_action(AccessKind::SoftwarePrefetch),
            CrcAction::Drop
        );
        assert_eq!(
            northbound_action(AccessKind::HardwarePrefetch),
            CrcAction::Drop
        );
        assert!(droppable(AccessKind::HardwarePrefetch));
        assert!(!droppable(AccessKind::DemandRead));
        // Writes never traverse the northbound link, but the policy is
        // total: protocol frames are never droppable.
        assert!(!droppable(AccessKind::Write));
    }
}
