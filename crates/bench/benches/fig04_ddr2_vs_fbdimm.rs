//! Figure 4: SMT speedup of 1-, 2-, 4- and 8-core execution with DDR2
//! and FB-DIMM memory systems.
//!
//! Reference points: each program's single-threaded execution on DDR2,
//! so the single-core DDR2 bars are 1.0 by construction. Expected shape
//! (paper §5.1): DDR2 slightly ahead for 1–2 cores (shorter idle
//! latency), FB-DIMM ahead for 4–8 cores (more usable bandwidth).

use fbd_bench::*;

fn main() {
    let exp = fbd_bench::experiment();
    banner("Figure 4", "SMT speedup, DDR2 vs FB-DIMM", &exp);

    let refs = references(Variant::Ddr2, &exp);

    let mut rows = vec![vec![
        "workload".to_string(),
        "DDR2".to_string(),
        "FBD".to_string(),
        "FBD vs DDR2".to_string(),
    ]];
    let grouped = run_grouped(
        |cores| {
            vec![
                ("DDR2".to_string(), system(Variant::Ddr2, cores)),
                ("FBD".to_string(), system(Variant::Fbd, cores)),
            ]
        },
        &exp,
    );
    for (group, workloads, results) in grouped {
        let mut ddr2 = Vec::new();
        let mut fbd = Vec::new();
        for w in &workloads {
            let s_ddr2 = results
                .iter()
                .find(|((c, n), _)| c == "DDR2" && n == w.name())
                .map(|(_, r)| speedup(w, r, &refs))
                .expect("run exists");
            let s_fbd = results
                .iter()
                .find(|((c, n), _)| c == "FBD" && n == w.name())
                .map(|(_, r)| speedup(w, r, &refs))
                .expect("run exists");
            ddr2.push(s_ddr2);
            fbd.push(s_fbd);
            rows.push(vec![
                w.name().to_string(),
                f3(s_ddr2),
                f3(s_fbd),
                pct(s_fbd / s_ddr2),
            ]);
        }
        rows.push(vec![
            format!("avg {group}"),
            f3(mean(&ddr2)),
            f3(mean(&fbd)),
            pct(mean(&fbd) / mean(&ddr2)),
        ]);
        rows.push(Vec::new());
    }
    emit_table("fig04_ddr2_vs_fbdimm", &rows);
    println!();
    println!("paper: single −1.5%, dual −0.6%, four +1.1%, eight +6.0% (FBD vs DDR2 averages)");
}
