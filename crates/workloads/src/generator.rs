//! The synthetic trace generator: turns a [`BenchmarkProfile`] into a
//! deterministic, unbounded stream of memory operations.
//!
//! Structure of the generated stream:
//!
//! * **stream accesses** walk one of N sequential cursors through the
//!   working set (wrapping), optionally accompanied by a software
//!   prefetch of a future iteration — these carry the spatial locality
//!   the AMB prefetcher exploits;
//! * **irregular accesses** either re-reference a recently touched line
//!   (short temporal reuse) or hit a uniformly random line in the
//!   working set — these produce bank conflicts and defeat both
//!   prefetchers;
//! * gaps between operations are uniform around the profile's mean, so
//!   the instruction stream's memory intensity matches `ops_per_kilo`.
//!
//! Everything derives from a seeded [`StdRng`], so runs are exactly
//! reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fbd_cpu::{OpKind, TraceOp, TraceSource};
use fbd_types::time::Dur;
use fbd_types::LineAddr;

use crate::profile::BenchmarkProfile;

/// How many recently touched lines feed the short-reuse pool.
/// Must stay a power of two: the reuse ring indexes with a mask.
const REUSE_WINDOW: usize = 32;

/// A deterministic synthetic access trace for one core.
#[derive(Clone, Debug)]
pub struct SyntheticTrace {
    profile: BenchmarkProfile,
    rng: StdRng,
    base_line: u64,
    cursors: Vec<u64>,
    /// Fixed ring of the last [`REUSE_WINDOW`] touched lines. `rhead`
    /// is the index of the oldest entry once the ring is full (0 while
    /// filling), so logical index `i` lives at `(rhead + i) & mask` —
    /// the same oldest-first order a deque would give, without its
    /// bookkeeping on the warm-up inner loop.
    recent: [u64; REUSE_WINDOW],
    rlen: usize,
    rhead: usize,
    queued: Option<TraceOp>,
    tpi: Dur,
    /// Cached `profile.mean_gap()` (an integer division; `next_op` is
    /// the warm-up inner loop, so it is hoisted out).
    mean_gap: u64,
    /// The four per-profile coin probabilities pre-scaled to
    /// `gen_bool`'s 53-bit mantissa threshold (`p * 2^53`), so each of
    /// the up-to-four coin flips per op skips a float multiply. The
    /// draws stay bit-identical to `Rng::gen_bool`.
    stream_thresh: f64,
    pf_thresh: f64,
    reuse_thresh: f64,
    store_thresh: f64,
}

impl SyntheticTrace {
    /// Creates the trace for `profile`, placing its working set at
    /// `base_line` (distinct per core so programs do not share data),
    /// seeded deterministically from `seed`.
    pub fn new(profile: &BenchmarkProfile, base_line: u64, seed: u64) -> SyntheticTrace {
        let mut rng = StdRng::seed_from_u64(seed ^ hash_name(profile.name));
        let cursors = (0..profile.streams)
            .map(|_| rng.gen_range(0..profile.footprint_lines))
            .collect();
        SyntheticTrace {
            profile: *profile,
            rng,
            base_line,
            cursors,
            recent: [0; REUSE_WINDOW],
            rlen: 0,
            rhead: 0,
            queued: None,
            tpi: profile.time_per_instr(),
            mean_gap: profile.mean_gap(),
            stream_thresh: coin_threshold(profile.stream_fraction),
            pf_thresh: coin_threshold(profile.sw_prefetch_coverage),
            reuse_thresh: coin_threshold(profile.reuse_fraction),
            store_thresh: coin_threshold(profile.store_fraction),
        }
    }

    fn remember(&mut self, line: u64) {
        if self.rlen == REUSE_WINDOW {
            // Overwrite the oldest entry in place.
            self.recent[self.rhead] = line;
            self.rhead = (self.rhead + 1) & (REUSE_WINDOW - 1);
        } else {
            self.recent[self.rlen] = line;
            self.rlen += 1;
        }
    }

    fn gap(&mut self) -> u64 {
        self.rng.gen_range(1..=2 * self.mean_gap)
    }
}

/// `p` scaled to [`coin`]'s comparison domain, exactly as
/// `Rng::gen_bool` scales it (53-bit mantissa threshold).
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`, matching `gen_bool`.
fn coin_threshold(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
    p * (1u64 << 53) as f64
}

/// One Bernoulli draw with a pre-scaled threshold: consumes one
/// `next_u64` and decides exactly as `Rng::gen_bool(p)` would for the
/// `p` that produced `thresh` via [`coin_threshold`].
#[inline]
fn coin(rng: &mut StdRng, thresh: f64) -> bool {
    ((rng.next_u64() >> 11) as f64) < thresh
}

/// `v % m` for `v` already known to be a small number of multiples of
/// `m` (stream advances and bounded prefetch look-ahead): repeated
/// subtraction beats the hardware divider there.
#[inline]
fn wrap(mut v: u64, m: u64) -> u64 {
    while v >= m {
        v -= m;
    }
    v
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, stable across runs (unlike `DefaultHasher`).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl TraceSource for SyntheticTrace {
    fn next_op(&mut self) -> Option<TraceOp> {
        if let Some(op) = self.queued.take() {
            return Some(op);
        }
        let p = self.profile;
        let footprint = p.footprint_lines;
        let gap = self.gap();
        let is_stream = coin(&mut self.rng, self.stream_thresh);
        let rel_line = if is_stream {
            let s = self.rng.gen_range(0..self.cursors.len());
            let line = self.cursors[s];
            // Cursors stay below the footprint, so wrapping is repeated
            // subtraction — exactly the `%` it replaces, without the
            // ~30-cycle division on the warm-up inner loop.
            self.cursors[s] = wrap(line + p.stream_stride, footprint);
            // Compiler-inserted prefetch for a future iteration of this
            // stream, emitted alongside the demand access.
            if coin(&mut self.rng, self.pf_thresh) {
                let target = wrap(line + p.sw_prefetch_distance * p.stream_stride, footprint);
                self.queued = Some(TraceOp {
                    gap: 0,
                    kind: OpKind::Prefetch,
                    line: LineAddr::new(self.base_line + target),
                });
            }
            line
        } else if self.rlen != 0 && coin(&mut self.rng, self.reuse_thresh) {
            let i = self.rng.gen_range(0..self.rlen);
            self.recent[(self.rhead + i) & (REUSE_WINDOW - 1)]
        } else {
            self.rng.gen_range(0..footprint)
        };
        self.remember(rel_line);
        let kind = if coin(&mut self.rng, self.store_thresh) {
            OpKind::Store
        } else {
            OpKind::Load
        };
        Some(TraceOp {
            gap,
            kind,
            line: LineAddr::new(self.base_line + rel_line),
        })
    }

    fn time_per_instr(&self) -> Dur {
        self.tpi
    }

    fn name(&self) -> &str {
        self.profile.name
    }

    fn clone_box(&self) -> Option<Box<dyn TraceSource>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::by_name;

    fn take(trace: &mut SyntheticTrace, n: usize) -> Vec<TraceOp> {
        (0..n)
            .map(|_| trace.next_op().expect("unbounded"))
            .collect()
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let p = by_name("swim").unwrap();
        let mut a = SyntheticTrace::new(p, 0, 42);
        let mut b = SyntheticTrace::new(p, 0, 42);
        assert_eq!(take(&mut a, 500), take(&mut b, 500));
    }

    #[test]
    fn different_seeds_differ() {
        let p = by_name("swim").unwrap();
        let mut a = SyntheticTrace::new(p, 0, 1);
        let mut b = SyntheticTrace::new(p, 0, 2);
        assert_ne!(take(&mut a, 100), take(&mut b, 100));
    }

    #[test]
    fn addresses_stay_in_working_set() {
        let p = by_name("facerec").unwrap();
        let base = 1 << 23;
        let mut t = SyntheticTrace::new(p, base, 7);
        for op in take(&mut t, 2_000) {
            let l = op.line.as_u64();
            assert!(
                l >= base && l < base + p.footprint_lines,
                "line {l} outside set"
            );
        }
    }

    #[test]
    fn streaming_profile_emits_mostly_sequential_runs() {
        let p = by_name("swim").unwrap();
        let mut t = SyntheticTrace::new(p, 0, 3);
        let ops: Vec<TraceOp> = take(&mut t, 4_000)
            .into_iter()
            .filter(|o| o.kind != OpKind::Prefetch)
            .collect();
        // Count accesses adjacent (within the region) to an earlier
        // access: streams make consecutive lines appear close in time.
        let lines: Vec<u64> = ops.iter().map(|o| o.line.as_u64()).collect();
        let mut sequential = 0;
        for (i, &l) in lines.iter().enumerate() {
            let lo = i.saturating_sub(16);
            if lines[lo..i].iter().any(|&prev| l == prev + p.stream_stride) {
                sequential += 1;
            }
        }
        let frac = sequential as f64 / lines.len() as f64;
        assert!(frac > 0.6, "swim should look streaming, got {frac:.2}");
    }

    #[test]
    fn irregular_profile_emits_few_sequential_runs() {
        let p = by_name("parser").unwrap();
        let mut t = SyntheticTrace::new(p, 0, 3);
        let lines: Vec<u64> = take(&mut t, 4_000)
            .into_iter()
            .filter(|o| o.kind != OpKind::Prefetch)
            .map(|o| o.line.as_u64())
            .collect();
        let mut sequential = 0;
        for (i, &l) in lines.iter().enumerate() {
            let lo = i.saturating_sub(16);
            if lines[lo..i].iter().any(|&prev| l == prev + 1) {
                sequential += 1;
            }
        }
        let frac = sequential as f64 / lines.len() as f64;
        assert!(frac < 0.4, "parser should look irregular, got {frac:.2}");
    }

    #[test]
    fn prefetch_coverage_tracks_profile() {
        let p = by_name("swim").unwrap();
        let mut t = SyntheticTrace::new(p, 0, 11);
        let ops = take(&mut t, 5_000);
        let prefetches = ops.iter().filter(|o| o.kind == OpKind::Prefetch).count();
        let demands = ops.len() - prefetches;
        let ratio = prefetches as f64 / demands as f64;
        // coverage × stream_fraction ≈ 0.8 × 0.95 ≈ 0.76.
        assert!((0.6..0.95).contains(&ratio), "ratio {ratio:.2}");
        // Prefetches point a constant distance ahead.
        for w in ops.windows(2) {
            if w[1].kind == OpKind::Prefetch {
                assert_eq!(w[1].gap, 0);
            }
        }
    }

    #[test]
    fn store_fraction_roughly_matches() {
        let p = by_name("swim").unwrap();
        let mut t = SyntheticTrace::new(p, 0, 13);
        let ops = take(&mut t, 5_000);
        let demands: Vec<&TraceOp> = ops.iter().filter(|o| o.kind != OpKind::Prefetch).collect();
        let stores = demands.iter().filter(|o| o.kind == OpKind::Store).count();
        let frac = stores as f64 / demands.len() as f64;
        assert!(
            (frac - p.store_fraction).abs() < 0.05,
            "store frac {frac:.2}"
        );
    }

    #[test]
    fn mean_gap_matches_memory_intensity() {
        let p = by_name("vortex").unwrap();
        let mut t = SyntheticTrace::new(p, 0, 17);
        let ops = take(&mut t, 5_000);
        let demand_gaps: Vec<u64> = ops
            .iter()
            .filter(|o| o.kind != OpKind::Prefetch)
            .map(|o| o.gap)
            .collect();
        let mean = demand_gaps.iter().sum::<u64>() as f64 / demand_gaps.len() as f64;
        let expected = (p.mean_gap() as f64 + 1.0) / 2.0 + p.mean_gap() as f64 / 2.0;
        assert!(
            (mean - expected).abs() / expected < 0.1,
            "mean {mean:.1} vs {expected:.1}"
        );
    }
}
