//! Two-fidelity evidence bench: measures the calibrated analytic model's
//! wall-clock advantage over the cycle-accurate simulator on a large
//! design-space sweep, and records the calibration's held-out error
//! bounds next to it.
//!
//! Method: calibrate once (accurate fit + holdout runs, timed), predict
//! a 1000-point Latin-hypercube grid with the fast model (timed), then
//! run a deterministic 16-point sample of the same grid through the
//! cycle simulator with `parallel_map` and extrapolate the accurate
//! total from the sample. Both sides use every core, so the speedup is
//! a wall-clock-to-wall-clock comparison. The extrapolation is explicit
//! in the emitted JSON (`accurate_sample_points`, `est_accurate_total_s`).
//!
//! Output: `BENCH_fidelity.json` in `$FBD_OUT_DIR` (or the working
//! directory), carrying the speedup evidence (DESIGN.md §13 targets
//! ≥50× including calibration) and the held-out IPC error bound
//! (target ≤10% at the 200k-instruction calibration budget).

use std::time::Instant;

use fbd_bench::*;
use fbd_core::{calibrate, RunSpec};
use fbd_model::{calibration_configs, MetricError};
use fbd_telemetry::Json;
use fbd_types::config::SystemConfig;

/// Size of the fast-model grid. Matches the acceptance bar: "a
/// 1000-point sweep".
const GRID_POINTS: usize = 1000;
/// Cycle-accurate sample size the accurate total is extrapolated from.
const ACCURATE_SAMPLE: usize = 16;
/// Workload the grid is swept under (also the calibration workload).
const WORKLOAD: &str = "1C-swim";

fn metric_json(e: &MetricError) -> Json {
    Json::Obj(vec![
        ("mean_rel".into(), Json::from(e.mean_rel)),
        ("max_rel".into(), Json::from(e.max_rel)),
    ])
}

fn main() {
    let exp = fbd_bench::experiment();
    banner(
        "Fidelity",
        "fast-model speedup and held-out accuracy evidence",
        &exp,
    );

    let base = SystemConfig::paper_default(1);
    let spec = RunSpec::new(base).workload(WORKLOAD).experiment(exp);

    // 1. Calibration: the fast path's only accurate-simulation cost.
    let t0 = Instant::now();
    let cal = calibrate(&spec).expect("calibration");
    let calibrate_s = t0.elapsed().as_secs_f64();
    let rep = &cal.report;
    println!(
        "calibrated in {calibrate_s:.1}s ({} fit + {} holdout runs); holdout IPC error mean {:.1}% max {:.1}%",
        rep.fit_points,
        rep.holdout_points,
        rep.ipc.mean_rel * 100.0,
        rep.ipc.max_rel * 100.0
    );

    // 2. Fast sweep over the full grid.
    let grid = calibration_configs(&base, 0xf1de_11a5, GRID_POINTS);
    let t1 = Instant::now();
    let fast: Vec<f64> = grid
        .iter()
        .map(|cfg| {
            let r = spec.clone().with_system(*cfg).run_fast(&cal);
            r.ipcs().iter().sum::<f64>()
        })
        .collect();
    let fast_total_s = t1.elapsed().as_secs_f64();
    println!(
        "fast model: {GRID_POINTS} points in {:.3}s (mean IPC {:.3})",
        fast_total_s,
        mean(&fast)
    );

    // 3. Accurate sample: every (n/16)-th grid point, run in parallel,
    //    then extrapolated to the full grid. Extrapolating from a
    //    parallel sample keeps the comparison wall-clock vs wall-clock.
    let stride = GRID_POINTS / ACCURATE_SAMPLE;
    let sample: Vec<SystemConfig> = grid
        .iter()
        .step_by(stride)
        .take(ACCURATE_SAMPLE)
        .copied()
        .collect();
    let t2 = Instant::now();
    let accurate = parallel_map(&sample, |cfg| spec.clone().with_system(*cfg).run());
    let accurate_sample_s = t2.elapsed().as_secs_f64();
    let est_accurate_total_s = accurate_sample_s * GRID_POINTS as f64 / ACCURATE_SAMPLE as f64;
    let acc_ipc: Vec<f64> = accurate
        .iter()
        .map(|r| r.ipcs().iter().sum::<f64>())
        .collect();
    println!(
        "accurate sample: {ACCURATE_SAMPLE} points in {accurate_sample_s:.1}s \
         => est. {est_accurate_total_s:.0}s for all {GRID_POINTS} (mean IPC {:.3})",
        mean(&acc_ipc)
    );

    let speedup_model_only = est_accurate_total_s / fast_total_s;
    let speedup_with_calibration = est_accurate_total_s / (calibrate_s + fast_total_s);
    println!(
        "speedup: {speedup_model_only:.0}x model-only, {speedup_with_calibration:.0}x including one-time calibration"
    );

    let doc = Json::Obj(vec![
        ("workload".into(), Json::from(WORKLOAD)),
        ("budget".into(), Json::from(exp.budget)),
        ("grid_points".into(), Json::from(GRID_POINTS)),
        ("calibrate_s".into(), Json::from(calibrate_s)),
        ("fast_total_s".into(), Json::from(fast_total_s)),
        ("accurate_sample_points".into(), Json::from(ACCURATE_SAMPLE)),
        ("accurate_sample_s".into(), Json::from(accurate_sample_s)),
        (
            // Extrapolated: accurate_sample_s * grid_points / sample.
            "est_accurate_total_s".into(),
            Json::from(est_accurate_total_s),
        ),
        ("speedup_model_only".into(), Json::from(speedup_model_only)),
        (
            "speedup_with_calibration".into(),
            Json::from(speedup_with_calibration),
        ),
        (
            "calibration".into(),
            Json::Obj(vec![
                ("fit_points".into(), Json::from(rep.fit_points)),
                ("holdout_points".into(), Json::from(rep.holdout_points)),
                ("ipc".into(), metric_json(&rep.ipc)),
                ("latency".into(), metric_json(&rep.latency)),
                ("bandwidth".into(), metric_json(&rep.bandwidth)),
                ("energy".into(), metric_json(&rep.energy)),
            ]),
        ),
        (
            "note".into(),
            Json::from(
                "accurate total is extrapolated from the parallel sample; \
                 both fidelities use all cores",
            ),
        ),
    ]);
    let dir = std::env::var("FBD_OUT_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join("BENCH_fidelity.json");
    std::fs::write(&path, doc.to_json_pretty(2)).expect("write BENCH_fidelity.json");
    println!("wrote {}", path.display());
}
