//! Fidelity dispatch: accurate (cycle-stepped), fast (calibrated
//! analytic model), and auto (fast grid + accurate Pareto re-run).
//!
//! The fast path delegates to [`fbd_model`] and converts its
//! [`Prediction`] into the same [`RunResult`] surface the cycle
//! simulator produces — per-core IPCs, latency stats, a synthesized
//! per-stage [`StageProfile`], channel counters and an energy report —
//! so every consumer (CLI stats JSON, benches, tests) works unchanged.
//!
//! Calibration ([`calibrate`]) runs a small Latin-hypercube set of
//! configurations through the cycle-accurate core, fits the model's
//! three parameters, and measures held-out error bounds. Results are
//! cached per (workload, run-control, core-count) under the spec's
//! [`canonical hash`](RunSpec::canonical_hash), so one `sweep` pays
//! the accurate runs once no matter how many points it predicts.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use fbd_model::{
    calibration_configs, predict, CalibrationReport, Calibrator, Observation, ObservedPoint,
    Prediction,
};
use fbd_telemetry::host::{HostHandle, Phase};
use fbd_telemetry::{StageProfile, Telemetry};
use fbd_types::config::SystemConfig;
use fbd_types::request::{ReqClass, StageBreakdown, STAGES};
use fbd_types::stats::{CoreStats, MemStats};
use fbd_types::time::{Dur, Time};
use fbd_workloads::mixes::Workload;

use crate::experiment::RunSpec;
use crate::memsys::ChannelCounters;
use crate::parallel::parallel_map;
use crate::system::RunResult;

/// Which simulation engine services a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Fidelity {
    /// The cycle-stepped reference simulator (the default).
    #[default]
    Accurate,
    /// The calibrated analytic queue model.
    Fast,
    /// Fast for the whole grid, then accurate re-runs of the
    /// IPC/energy Pareto frontier, merged with per-point tags.
    Auto,
}

impl Fidelity {
    /// Parses a CLI fidelity name.
    pub fn by_name(name: &str) -> Option<Fidelity> {
        match name {
            "accurate" => Some(Fidelity::Accurate),
            "fast" => Some(Fidelity::Fast),
            "auto" => Some(Fidelity::Auto),
            _ => None,
        }
    }

    /// The tag written into per-point grid JSON.
    pub fn label(self) -> &'static str {
        match self {
            Fidelity::Accurate => "accurate",
            Fidelity::Fast => "fast",
            Fidelity::Auto => "auto",
        }
    }
}

/// A fitted model plus the held-out error bounds that must accompany
/// every fast-fidelity output.
#[derive(Clone, Debug)]
pub struct Calibration {
    /// Fitted parameters and per-metric mean/max relative errors.
    pub report: CalibrationReport,
}

/// Cycle-accurate runs used to fit the model parameters.
pub const CALIBRATION_FIT_POINTS: usize = 10;
/// Cycle-accurate runs held out to measure the error bounds.
pub const CALIBRATION_HOLDOUT_POINTS: usize = 4;

fn cache() -> &'static Mutex<HashMap<u64, Arc<Calibration>>> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<Calibration>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The spec the calibration cache is keyed on: workload, run control
/// and core count, with the swept system dimensions normalized away
/// (a calibration is reused across every system variant of a grid).
fn cache_key(spec: &RunSpec, workload: &Workload) -> u64 {
    let base = RunSpec::new(SystemConfig::paper_default(workload.cores()))
        .with_workload(workload.clone())
        .experiment(*spec.exp())
        .canonical_hash();
    // Substrates are not a normalized-away sweep dimension: a spec
    // composed on a different substrate must not reuse another's
    // calibration, so its label is folded into the key.
    base ^ fnv1a(substrate_label(spec))
}

fn fnv1a(s: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0100_0000_01b3;
    let mut h = OFFSET;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The registry name of the spec's substrate as a `'static` string
/// (`custom` when the config matches no registered preset).
fn substrate_label(spec: &RunSpec) -> &'static str {
    let name = spec.composition().substrate;
    fbd_types::substrate::substrates()
        .get(&name)
        .map_or("custom", |s| s.name())
}

fn observe(result: &RunResult) -> Observation {
    let instr: u64 = result.cores.iter().map(|c| c.instructions).sum();
    let per = |n: u64| {
        if instr == 0 {
            0.0
        } else {
            n as f64 / instr as f64
        }
    };
    Observation {
        ipc_sum: result.ipcs().iter().sum(),
        read_latency_ns: result.avg_read_latency_ns(),
        bandwidth_gbps: result.bandwidth_gbps(),
        energy_nj: result.energy.total_nj(),
        demand_per_instr: per(result.mem.demand_reads),
        swpf_per_instr: per(result.mem.sw_prefetch_reads),
        write_per_instr: per(result.mem.writes),
    }
}

/// Calibrates the analytic model for `spec`'s workload and run control
/// (cached): runs the Latin-hypercube fit and holdout sets through the
/// cycle-accurate core in parallel, fits the three model parameters by
/// least squares, and measures held-out error bounds.
///
/// # Errors
///
/// Returns an error if the spec has no workload.
pub fn calibrate(spec: &RunSpec) -> Result<Arc<Calibration>, String> {
    let workload = spec
        .workload_ref()
        .ok_or("no workload selected; call .workload()/.with_workload() first")?;
    let key = cache_key(spec, workload);
    if let Some(cal) = cache().lock().unwrap().get(&key) {
        return Ok(Arc::clone(cal));
    }

    let exp = *spec.exp();
    let base = SystemConfig::paper_default(workload.cores());
    let fit_systems = calibration_configs(&base, exp.seed, CALIBRATION_FIT_POINTS);
    let holdout_systems = calibration_configs(
        &base,
        exp.seed ^ 0x517c_c1b7_2722_0a95,
        CALIBRATION_HOLDOUT_POINTS,
    );
    let all: Vec<SystemConfig> = fit_systems
        .iter()
        .chain(&holdout_systems)
        .cloned()
        .collect();
    let observations = parallel_map(&all, |system| {
        let result = RunSpec::new(*system)
            .with_workload(workload.clone())
            .experiment(exp)
            .run();
        observe(&result)
    });
    let points: Vec<ObservedPoint> = all
        .into_iter()
        .zip(observations)
        .map(|(system, observation)| ObservedPoint {
            system,
            observation,
        })
        .collect();
    let (fit, holdout) = points.split_at(CALIBRATION_FIT_POINTS);

    let calibrator = Calibrator::new(workload, exp.budget).substrate(substrate_label(spec));
    let params = calibrator.fit(fit);
    let report = calibrator.report(params, fit.len(), holdout);
    let cal = Arc::new(Calibration { report });
    cache().lock().unwrap().insert(key, Arc::clone(&cal));
    Ok(cal)
}

impl RunSpec {
    /// Runs the spec through the calibrated analytic model instead of
    /// the cycle simulator, returning the same [`RunResult`] surface.
    ///
    /// # Errors
    ///
    /// Returns the same validation errors as
    /// [`try_run`](RunSpec::try_run).
    pub fn try_run_fast(&self, cal: &Calibration) -> Result<RunResult, String> {
        self.validate().map_err(|e| e.to_string())?;
        let workload = self
            .workload_ref()
            .ok_or("no workload selected; call .workload()/.with_workload() first")?;
        if self.system().cpu.cores != workload.cores() {
            return Err(format!(
                "system has {} cores but workload {} needs {}",
                self.system().cpu.cores,
                workload.name(),
                workload.cores()
            ));
        }
        let prediction = predict(
            self.system(),
            workload,
            self.exp().budget,
            &cal.report.params,
        );
        Ok(result_from_prediction(self, &prediction, cal))
    }

    /// Panicking variant of [`try_run_fast`](Self::try_run_fast),
    /// mirroring [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics on an invalid spec.
    pub fn run_fast(&self, cal: &Calibration) -> RunResult {
        self.try_run_fast(cal)
            .unwrap_or_else(|e| panic!("invalid run spec: {e}"))
    }
}

fn breakdown(stage_means: &[Dur; STAGES.len()]) -> StageBreakdown {
    let mut b = StageBreakdown::ZERO;
    for (stage, dur) in STAGES.iter().zip(stage_means) {
        b.add(*stage, *dur);
    }
    b
}

/// Splits `total` proportionally to `part`/`whole` (used to apportion
/// AMB hits between demand and software-prefetch reads).
fn proportion(total: u64, part: u64, whole: u64) -> u64 {
    if whole == 0 {
        0
    } else {
        (total as u128 * part as u128 / whole as u128) as u64
    }
}

fn result_from_prediction(spec: &RunSpec, p: &Prediction, cal: &Calibration) -> RunResult {
    let reads = p.reads();
    let demand_hits = proportion(p.amb_hits, p.demand_reads, reads);
    let swpf_hits = p.amb_hits - demand_hits;
    let demand_misses = p.demand_reads - demand_hits;
    let swpf_misses = p.sw_prefetch_reads - swpf_hits;

    let mut mem = MemStats {
        demand_reads: p.demand_reads,
        sw_prefetch_reads: p.sw_prefetch_reads,
        writes: p.writes,
        amb_hits: p.amb_hits,
        lines_prefetched: p.lines_prefetched,
        data_bytes: p.data_bytes,
        dram_active_time: p.dram_busy,
        dram_ops: p.dram_ops,
        ..MemStats::default()
    };
    mem.read_latency.record_n(p.miss_latency, demand_misses);
    mem.read_latency.record_n(p.hit_latency, demand_hits);
    mem.read_latency_hist
        .record_n(p.miss_latency, demand_misses);
    mem.read_latency_hist.record_n(p.hit_latency, demand_hits);

    let mut profile = StageProfile::new();
    let miss = breakdown(&p.miss_stages);
    let hit = breakdown(&p.hit_stages);
    let write = breakdown(&p.write_stages);
    profile.record_n(ReqClass::Demand, &miss, miss.total(), demand_misses);
    profile.record_n(ReqClass::SwPrefetch, &miss, miss.total(), swpf_misses);
    profile.record_n(ReqClass::AmbHit, &hit, hit.total(), p.amb_hits);
    profile.record_n(ReqClass::Write, &write, write.total(), p.writes);

    let telemetry = spec.telemetry_config().map(|tc| {
        let mut tel = Telemetry::new(tc);
        let reg = &mut tel.registry;
        let gauges: [(&str, f64); 14] = [
            ("model.ipc_sum", p.ipc_sum()),
            ("model.amb_hit_rate", p.hit_rate),
            ("model.latency_ns", p.demand_latency.as_ns_f64()),
            ("model.util.bank", p.util.bank),
            ("model.util.north", p.util.north),
            ("model.util.south", p.util.south),
            (
                "model.params.service_inflation",
                cal.report.params.service_inflation,
            ),
            ("model.params.hit_scaling", cal.report.params.hit_scaling),
            ("model.params.contention", cal.report.params.contention),
            ("model.err.ipc.mean_rel", cal.report.ipc.mean_rel),
            ("model.err.ipc.max_rel", cal.report.ipc.max_rel),
            ("model.err.latency.mean_rel", cal.report.latency.mean_rel),
            (
                "model.err.bandwidth.mean_rel",
                cal.report.bandwidth.mean_rel,
            ),
            ("model.err.energy.mean_rel", cal.report.energy.mean_rel),
        ];
        for (path, value) in gauges {
            let id = reg.gauge(path);
            reg.set(id, value);
        }
        // The analytic model has no event loop to drive epoch
        // snapshots, so synthesize the sampler's time axis directly:
        // one row per interval boundary over the predicted duration
        // (capped — a pathological interval must not OOM), closed by
        // the usual end-of-run flush. Rows carry the model gauges, so
        // downstream consumers (CSV export, the live dashboard, the
        // monotonicity tests) see the same row shape as an accurate
        // run.
        if let Some(interval) = tc.sample_interval {
            const MAX_SYNTH_ROWS: u64 = 10_000;
            let end = Time::ZERO + p.elapsed;
            let mut at = Time::ZERO + interval;
            let mut rows = 0;
            while at < end && rows < MAX_SYNTH_ROWS {
                tel.sample(at);
                at += interval;
                rows += 1;
            }
            tel.finish(end);
        }
        tel
    });

    let host_handle = spec
        .host_profiler_ref()
        .map_or_else(HostHandle::off, |p| HostHandle::new(Arc::clone(p)));
    // Everything since the profiler's last mark — prediction and result
    // synthesis — is the analytic model's time.
    host_handle.mark(Phase::Model);
    let instructions: u64 = p.cores.iter().map(|c| c.instructions).sum();
    let mut host = host_handle.finish_report(
        p.elapsed,
        spec.system().mem.data_rate.clock_period(),
        instructions,
    );
    host.build = crate::build_info();

    RunResult {
        elapsed: p.elapsed,
        cores: p
            .cores
            .iter()
            .map(|c| CoreStats {
                instructions: c.instructions,
                cycles: c.cycles,
                l2_misses: c.l2_misses,
                l2_accesses: c.l2_accesses,
            })
            .collect(),
        mem,
        channels: p
            .channels
            .iter()
            .map(|c| ChannelCounters {
                reads: c.reads,
                writes: c.writes,
                bytes: c.bytes,
                amb_hits: c.amb_hits,
            })
            .collect(),
        energy: p.energy.clone(),
        trace: None,
        telemetry,
        profile,
        faults: None,
        host,
    }
}

/// Indices of the Pareto frontier of `points` = `(ipc_sum,
/// energy_nj)`: maximize IPC, minimize energy. A point survives unless
/// some other point is at least as good on both axes and strictly
/// better on one.
///
/// # Examples
///
/// ```
/// use fbd_core::fidelity::pareto_frontier;
/// let pts = [(2.0, 100.0), (1.0, 50.0), (1.5, 120.0), (0.5, 60.0)];
/// assert_eq!(pareto_frontier(&pts), vec![0, 1]);
/// ```
pub fn pareto_frontier(points: &[(f64, f64)]) -> Vec<usize> {
    let mut frontier = Vec::new();
    'candidates: for (i, &(ipc_i, energy_i)) in points.iter().enumerate() {
        for (j, &(ipc_j, energy_j)) in points.iter().enumerate() {
            let dominates = j != i
                && ipc_j >= ipc_i
                && energy_j <= energy_i
                && (ipc_j > ipc_i || energy_j < energy_i);
            if dominates {
                continue 'candidates;
            }
        }
        frontier.push(i);
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_names_round_trip() {
        for f in [Fidelity::Accurate, Fidelity::Fast, Fidelity::Auto] {
            assert_eq!(Fidelity::by_name(f.label()), Some(f));
        }
        assert_eq!(Fidelity::by_name("quick"), None);
    }

    #[test]
    fn pareto_keeps_only_undominated_points() {
        let pts = [(1.0, 10.0), (2.0, 20.0), (1.5, 30.0), (2.0, 10.0)];
        // (2.0, 10.0) dominates everything else.
        assert_eq!(pareto_frontier(&pts), vec![3]);
        // Identical points both survive.
        let dup = [(1.0, 10.0), (1.0, 10.0)];
        assert_eq!(pareto_frontier(&dup), vec![0, 1]);
        assert!(pareto_frontier(&[]).is_empty());
    }
}
