//! Criterion microbenchmarks for the simulator's hot paths: address
//! mapping, AMB-cache operations, scheduler picks, DRAM plan/commit and
//! a short end-to-end run. These track the *simulator's* performance
//! (simulation throughput), complementing the figure benches that track
//! the *simulated system's* performance.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use fbd_core::experiment::ExperimentConfig;
use fbd_core::RunSpec;
use fbd_ctrl::AddressMapper;
use fbd_types::config::{MemoryConfig, SystemConfig};
use fbd_types::time::{Dur, Time};
use fbd_types::LineAddr;
use fbd_workloads::Workload;

fn bench_mapping(c: &mut Criterion) {
    let mapper = fbd_ctrl_mapper();
    let mut line = 0u64;
    c.bench_function("mapping/map", |b| {
        b.iter(|| {
            line = line.wrapping_add(977);
            black_box(mapper.map(LineAddr::new(line)))
        })
    });
}

fn fbd_ctrl_mapper() -> fbd_ctrl::InterleavedMapper {
    fbd_ctrl::InterleavedMapper::new(&MemoryConfig::fbdimm_with_prefetch())
}

fn bench_amb_cache(c: &mut Criterion) {
    let cfg = fbd_types::config::AmbPrefetchConfig::paper_default();
    let mut buf = fbd_amb::PrefetchBuffer::new(&cfg);
    let mut line = 0u64;
    c.bench_function("amb_cache/insert_lookup", |b| {
        b.iter(|| {
            line = line.wrapping_add(3);
            buf.insert(LineAddr::new(line % 256));
            black_box(buf.on_hit(LineAddr::new((line + 1) % 256)))
        })
    });
}

fn bench_dram_plan_commit(c: &mut Criterion) {
    let timings = fbd_types::config::DramTimings::ddr2_table2();
    c.bench_function("dram/plan_commit_close_page", |b| {
        let mut banks = fbd_dram::BankArray::new(4, timings, Dur::from_ns(3));
        let mut bus = fbd_dram::DataBus::new(Dur::from_ns(3));
        let mut now = Time::ZERO;
        let mut bank = 0usize;
        b.iter(|| {
            bank = (bank + 1) % 4;
            let op = fbd_dram::ColumnOp {
                kind: fbd_dram::ColKind::Read,
                auto_precharge: true,
                burst: Dur::from_ns(6),
            };
            let plan = banks.plan(bank, 7, op, now, &bus);
            banks.commit(&plan, &mut bus);
            now = plan.data_end;
            black_box(plan.cmd_at)
        })
    });
}

fn bench_timeline(c: &mut Criterion) {
    c.bench_function("link/timeline_reserve", |b| {
        let mut tl = fbd_link::Timeline::new(Dur::from_ns(3));
        let mut t = Time::ZERO;
        b.iter(|| {
            t += Dur::from_ns(9);
            black_box(tl.reserve(t, Dur::from_ns(6)))
        })
    });
}

fn bench_full_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("system");
    group.sample_size(10);
    let exp = ExperimentConfig {
        seed: 42,
        budget: 20_000,
        ..Default::default()
    };
    let w = Workload::new("1C-swim", &["swim"]);
    let mut cfg = SystemConfig::paper_default(1);
    cfg.mem = MemoryConfig::fbdimm_with_prefetch();
    // Telemetry off (the default): the registry/sampler/tracer cost is
    // one pointer test per transaction. Compare the two series to bound
    // the off-path overhead.
    let spec = RunSpec::new(cfg).with_workload(w.clone()).experiment(exp);
    group.bench_function("swim_20k_instructions", |b| {
        b.iter(|| black_box(spec.run().elapsed))
    });
    group.bench_function("swim_20k_instructions_telemetry", |b| {
        let tc = fbd_telemetry::TelemetryConfig {
            sample_interval: Some(cfg.mem.data_rate.clock_period() * 512),
            trace: true,
        };
        // Same automatic L2 warm-up as `RunSpec::run`, so the two
        // series differ only in instrumentation.
        let l2_lines = u64::from(cfg.cpu.l2_bytes) / fbd_types::CACHE_LINE_BYTES;
        let warmup = 2 * l2_lines / u64::from(cfg.cpu.cores);
        b.iter(|| {
            let mut sys =
                fbd_core::System::with_warmup(&cfg, w.traces(exp.seed), exp.budget, warmup);
            sys.enable_telemetry(&tc);
            black_box(sys.run().elapsed)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mapping,
    bench_amb_cache,
    bench_dram_plan_commit,
    bench_timeline,
    bench_full_system
);
criterion_main!(benches);
