//! Figure 5: average utilized bandwidth vs. average read latency for
//! DDR2 and FB-DIMM.
//!
//! Expected shape (paper §5.1): single-core workloads use ~4 GB/s with
//! ~60 ns latency on both systems (DDR2 marginally faster); 8-core
//! workloads push past 14 GB/s where FB-DIMM's extra write path gives it
//! *lower* latency than DDR2 despite its longer idle latency.

use fbd_bench::*;

fn main() {
    let exp = fbd_bench::experiment();
    banner("Figure 5", "utilized bandwidth vs average latency", &exp);

    let mut rows = vec![vec![
        "workload".to_string(),
        "DDR2 GB/s".to_string(),
        "DDR2 lat ns".to_string(),
        "FBD GB/s".to_string(),
        "FBD lat ns".to_string(),
    ]];
    let grouped = run_grouped(
        |cores| {
            vec![
                ("DDR2".to_string(), system(Variant::Ddr2, cores)),
                ("FBD".to_string(), system(Variant::Fbd, cores)),
            ]
        },
        &exp,
    );
    for (group, workloads, results) in grouped {
        let (mut bw_d, mut lat_d, mut bw_f, mut lat_f) = (vec![], vec![], vec![], vec![]);
        for w in &workloads {
            let d = &results
                .iter()
                .find(|((c, n), _)| c == "DDR2" && n == w.name())
                .expect("run")
                .1;
            let f = &results
                .iter()
                .find(|((c, n), _)| c == "FBD" && n == w.name())
                .expect("run")
                .1;
            bw_d.push(d.bandwidth_gbps());
            lat_d.push(d.avg_read_latency_ns());
            bw_f.push(f.bandwidth_gbps());
            lat_f.push(f.avg_read_latency_ns());
            rows.push(vec![
                w.name().to_string(),
                f2(d.bandwidth_gbps()),
                f2(d.avg_read_latency_ns()),
                f2(f.bandwidth_gbps()),
                f2(f.avg_read_latency_ns()),
            ]);
        }
        rows.push(vec![
            format!("avg {group}"),
            f2(mean(&bw_d)),
            f2(mean(&lat_d)),
            f2(mean(&bw_f)),
            f2(mean(&lat_f)),
        ]);
        rows.push(Vec::new());
    }
    emit_table("fig05_bandwidth_latency", &rows);
    println!();
    println!("paper: 1-core avg 4.2 GB/s @ 60/62 ns; 8-core avg 16.0 GB/s @ 155 ns (DDR2) vs 17.1 GB/s @ 146 ns (FBD)");
}
