//! The analytic channel model: offered load → queue delays → IPC, by
//! fixed-point iteration.
//!
//! Per logical channel the model sees (DESIGN.md §13):
//!
//! * a **southbound link** carrying command frames and write data at
//!   half the northbound bandwidth,
//! * the **AMB prefetch buffers** of the daisy-chained DIMMs, with a
//!   hit-rate estimate from stream structure and buffer capacity,
//! * the **DRAM bank pool** under close-page policy, where demand reads,
//!   prefetch fills and writes are accounted as separate classes
//!   (prefetch fills ride the demand activation and never cross the
//!   northbound link),
//! * a **northbound link** returning read data.
//!
//! Each shared resource contributes an M/D/1 wait ([`md1_wait`]); the
//! per-core latency feeds back into the instruction rate until the
//! load/latency loop converges.

use fbd_power::{EnergyModel, EnergyReport, ModeResidency, RankActivity};
use fbd_types::config::{AmbPrefetchMode, MemoryTech, SystemConfig};
use fbd_types::request::Stage;
use fbd_types::stats::DramOpCounts;
use fbd_types::time::{DataRate, Dur};
use fbd_workloads::mixes::Workload;

use crate::queue::md1_wait;

/// The model's three free parameters, fitted by [`crate::Calibrator`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelParams {
    /// `α` — multiplies every service time (DRAM timings, link and bus
    /// occupancies) to absorb scheduling overheads the queue abstraction
    /// does not represent.
    pub service_inflation: f64,
    /// `β` — scales the structural AMB hit-rate estimate toward what
    /// the reference simulator actually achieves.
    pub hit_scaling: f64,
    /// `γ` — multiplies every M/D/1 waiting time to absorb burstiness
    /// beyond the Poisson-arrival assumption.
    pub contention: f64,
    /// Demand-read traffic scale: measured directly from the reference
    /// runs (observed rate over the structural estimate), not searched.
    pub demand_scale: f64,
    /// Software-prefetch traffic scale (measured, not searched).
    pub swpf_scale: f64,
    /// Writeback traffic scale (measured, not searched) — the profile
    /// formula over-counts dirty evictions the L2 actually coalesces.
    pub write_scale: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            service_inflation: 1.0,
            hit_scaling: 1.0,
            contention: 1.0,
            demand_scale: 1.0,
            swpf_scale: 1.0,
            write_scale: 1.0,
        }
    }
}

/// Per-core prediction.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CorePrediction {
    /// Instructions committed when the run ends.
    pub instructions: u64,
    /// Core cycles elapsed.
    pub cycles: u64,
    /// Predicted IPC.
    pub ipc: f64,
    /// Memory operations reaching the L2.
    pub l2_accesses: u64,
    /// L2 misses (reads reaching memory).
    pub l2_misses: u64,
}

/// Per-logical-channel traffic prediction (uniform interleaving).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelPrediction {
    /// Read commands serviced (demand + software prefetch).
    pub reads: u64,
    /// Write commands serviced.
    pub writes: u64,
    /// Data bytes moved across the controller boundary.
    pub bytes: u64,
    /// Reads satisfied by an AMB prefetch buffer.
    pub amb_hits: u64,
}

/// Steady-state resource utilizations (post-convergence).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Utilization {
    /// Per-bank utilization of the DRAM bank pool.
    pub bank: f64,
    /// Northbound link (FBD) or shared data bus (DDR2) utilization.
    pub north: f64,
    /// Southbound link utilization (zero for DDR2).
    pub south: f64,
}

/// Everything the fast fidelity predicts for one run.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Simulated time at which the first core finishes its budget.
    pub elapsed: Dur,
    /// Per-core commit state.
    pub cores: Vec<CorePrediction>,
    /// Demand read count.
    pub demand_reads: u64,
    /// Software-prefetch read count.
    pub sw_prefetch_reads: u64,
    /// Write (writeback) count.
    pub writes: u64,
    /// Reads satisfied by an AMB prefetch buffer.
    pub amb_hits: u64,
    /// Lines speculatively fetched into AMB buffers.
    pub lines_prefetched: u64,
    /// Bytes moved across the controller boundary.
    pub data_bytes: u64,
    /// Mean demand-read latency (hit/miss weighted).
    pub demand_latency: Dur,
    /// Mean latency of a read serviced by DRAM.
    pub miss_latency: Dur,
    /// Mean latency of a read serviced by an AMB buffer.
    pub hit_latency: Dur,
    /// Mean write-path latency (arrival to write-data delivery).
    pub write_latency: Dur,
    /// Per-stage means of a DRAM-serviced read, in [`Stage`] order.
    pub miss_stages: [Dur; Stage::COUNT],
    /// Per-stage means of an AMB-hit read, in [`Stage`] order.
    pub hit_stages: [Dur; Stage::COUNT],
    /// Per-stage means of a write, in [`Stage`] order.
    pub write_stages: [Dur; Stage::COUNT],
    /// Aggregate AMB hit rate over all reads.
    pub hit_rate: f64,
    /// Converged resource utilizations.
    pub util: Utilization,
    /// Predicted DRAM command counts (feed the energy model).
    pub dram_ops: DramOpCounts,
    /// Total bank-busy time summed over all banks.
    pub dram_busy: Dur,
    /// Per-logical-channel traffic.
    pub channels: Vec<ChannelPrediction>,
    /// Energy from the existing [`EnergyModel`], fed with the predicted
    /// command counts and mode residencies.
    pub energy: EnergyReport,
}

impl Prediction {
    /// Sum of per-core IPCs.
    pub fn ipc_sum(&self) -> f64 {
        self.cores.iter().map(|c| c.ipc).sum()
    }

    /// Total reads (demand + software prefetch).
    pub fn reads(&self) -> u64 {
        self.demand_reads + self.sw_prefetch_reads
    }

    /// Utilized bandwidth in GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        let ns = self.elapsed.as_ns_f64();
        if ns == 0.0 {
            0.0
        } else {
            self.data_bytes as f64 / ns
        }
    }
}

/// Per-core static load parameters derived from the benchmark profile.
///
/// The stall model mirrors the reference core: only demand *loads*
/// whose line was not prefetched block commit (stores and software
/// prefetches retire immediately), the ROB hides the first
/// `rob_entries x base_time` of each blocking miss, and prefetched
/// loads wait only for the part of the latency the prefetch distance
/// could not cover.
struct CoreLoad {
    /// Ideal commit time per instruction (ns).
    base_time: f64,
    /// Demand reads per instruction reaching memory.
    demand_pi: f64,
    /// Software-prefetch reads per instruction.
    swpf_pi: f64,
    /// Writebacks per instruction.
    write_pi: f64,
    /// Commit-blocking load misses per instruction (uncovered loads).
    blocking_pi: f64,
    /// Prefetch-covered loads per instruction (late-prefetch waits).
    covered_pi: f64,
    /// Latency (ns) a software prefetch hides for its covered load.
    pf_hide: f64,
    /// Latency (ns) the reorder buffer hides for a blocking load.
    rob_hide: f64,
    /// Concurrent blocking misses sharing one stall (ROB clustering,
    /// capped by the MSHR count).
    overlap: f64,
    /// AMB hit probability per read.
    hit: f64,
}

fn dur_ns(x: f64) -> Dur {
    Dur::from_ps((x.max(0.0) * 1000.0).round() as u64)
}

/// Per-channel in-flight transaction cap, mirroring the accurate
/// controller's `MAX_INFLIGHT_PER_CHANNEL` admission limit.
const INFLIGHT_WINDOW: f64 = 16.0;

const FIXED_POINT_ITERS: usize = 600;
const DAMPING: f64 = 0.7;
const CONVERGENCE_TOL: f64 = 1e-10;
const MAX_HIT_RATE: f64 = 0.95;
/// Mirrors `fbd_core`'s power-down threshold (30 ns of idleness).
const POWERDOWN_AFTER_NS: f64 = 30.0;

/// Unscaled structural per-instruction traffic rates, averaged over
/// cores: `(demand reads, software prefetches, writebacks)`. The
/// calibrator divides observed rates by these to obtain the measured
/// traffic scales in [`ModelParams`].
pub(crate) fn structural_traffic(system: &SystemConfig, workload: &Workload) -> (f64, f64, f64) {
    let (mut d, mut s, mut w) = (0.0, 0.0, 0.0);
    for p in workload.benchmarks() {
        let mpi = p.ops_per_kilo as f64 / 1000.0;
        let q = if system.cpu.software_prefetch {
            p.sw_prefetch_coverage
        } else {
            0.0
        };
        let sf = p.stream_fraction;
        let irr = (1.0 - sf) * (1.0 - p.reuse_fraction);
        d += mpi * (sf * (1.0 - q) + irr);
        s += mpi * sf * q;
        w += mpi * p.store_fraction * (sf + irr);
    }
    let n = workload.benchmarks().len().max(1) as f64;
    (d / n, s / n, w / n)
}

/// Predicts one run of `workload` on `system` with an instruction
/// budget of `budget` per core.
///
/// The returned [`Prediction`] carries everything needed to synthesize
/// a `RunResult`-shaped output, including an [`EnergyReport`] computed
/// by the existing power model from predicted command counts.
pub fn predict(
    system: &SystemConfig,
    workload: &Workload,
    budget: u64,
    params: &ModelParams,
) -> Prediction {
    let cfg = &system.mem;
    let cpu = &system.cpu;
    let alpha = params.service_inflation.max(1e-3);
    let gamma = params.contention.max(0.0);

    let fbd = cfg.tech.is_fbdimm();
    let amb_on = fbd && cfg.amb.is_enabled();
    let full_latency_hits = amb_on && cfg.amb.mode == AmbPrefetchMode::FullLatency;
    let k = cfg.amb.region_lines.max(1) as f64;

    let n_ch = cfg.logical_channels.max(1) as f64;
    let banks_per_ch =
        (cfg.dimms_per_channel * cfg.ranks_per_dimm * cfg.banks_per_dimm).max(1) as f64;
    let phys = cfg.phys_per_logical.max(1) as u64;

    // Timing building blocks (ns), all inflated by α.
    let t = &cfg.timings;
    let dimm_clk = cfg.data_rate.clock_period().as_ns_f64();
    let burst_clocks = 64u64.div_ceil(16 * phys) as f64;
    let s_burst = alpha * dimm_clk * burst_clocks;
    let s_rc = alpha * t.t_rc.as_ns_f64();
    let s_rp = alpha * t.t_rp.as_ns_f64();
    let s_rcd = alpha * t.t_rcd.as_ns_f64();
    let s_cl = alpha * t.t_cl.as_ns_f64();
    let s_wl = alpha * t.t_wl.as_ns_f64();
    let s_frame = alpha * dimm_clk;
    // The northbound link moves a line in one burst time (the paper's
    // "6 ns data transfer"); southbound write data takes twice that at
    // half the bandwidth (DESIGN.md §3).
    let s_nb = s_burst;
    let s_sb = 2.0 * s_nb;
    let ctrl = cfg.controller_overhead.as_ns_f64();
    // The daisy-chain delay is paid once per request end to end (the
    // paper's idle decomposition: 12 ns for 4 DIMMs at 3 ns/hop), split
    // evenly between the south and north legs for stage attribution.
    let hops = match cfg.tech {
        MemoryTech::FbDimm { vrl: true } => (cfg.dimms_per_channel as f64 + 1.0) / 2.0,
        MemoryTech::FbDimm { vrl: false } => cfg.dimms_per_channel as f64,
        MemoryTech::Ddr2 => 0.0,
    };
    let transit = hops * cfg.amb_hop_delay.as_ns_f64() / 2.0;
    // Each DRAM read miss triggers a region fetch of k further lines
    // sharing one activation. The bank is occupied for
    // max(tRC, tRCD + k·burst + tRP) under close-page timing, so the
    // fills only cost extra when the column train outruns tRC.
    let extra_cols = if amb_on {
        (s_rcd + k * s_burst + s_rp - s_rc).max(0.0)
    } else {
        0.0
    };

    // AMB capacity pressure: each live stream pins one region.
    let streams_total: f64 = workload.benchmarks().iter().map(|p| p.streams as f64).sum();
    let amb_lines = (cfg.logical_channels * cfg.dimms_per_channel * cfg.amb.cache_lines) as f64;
    let cap = if amb_on {
        (amb_lines / (streams_total * k).max(1.0)).min(1.0)
    } else {
        0.0
    };

    let clk = cpu.clock.as_ns_f64();
    let loads: Vec<CoreLoad> = workload
        .benchmarks()
        .iter()
        .map(|p| {
            let mpi = p.ops_per_kilo as f64 / 1000.0;
            let q = if cpu.software_prefetch {
                p.sw_prefetch_coverage
            } else {
                0.0
            };
            let sf = p.stream_fraction;
            let irregular_miss = (1.0 - sf) * (1.0 - p.reuse_fraction);
            let demand_pi = params.demand_scale * mpi * (sf * (1.0 - q) + irregular_miss);
            let swpf_pi = params.swpf_scale * mpi * sf * q;
            let write_pi = params.write_scale * mpi * p.store_fraction * (sf + irregular_miss);
            let reads_pi = demand_pi + swpf_pi;
            let stream_share = if reads_pi > 0.0 {
                mpi * sf / reads_pi
            } else {
                0.0
            };
            let used = (k / p.stream_stride as f64).max(1.0);
            let region_hit = (used - 1.0) / used;
            let hit = if amb_on {
                (params.hit_scaling * stream_share * region_hit * cap).clamp(0.0, MAX_HIT_RATE)
            } else {
                0.0
            };
            let base_time = clk / p.base_ipc;
            let loads = 1.0 - p.store_fraction;
            let blocking_pi = params.demand_scale * loads * mpi * (sf * (1.0 - q) + irregular_miss);
            let covered_pi = params.swpf_scale * loads * mpi * sf * q;
            // A prefetch targets `distance` iterations ahead of its
            // stream; the stream advances every streams/(mpi*sf)
            // instructions, so the hide window is that many base-rate
            // instruction times.
            let pf_hide = if sf * mpi > 0.0 {
                p.sw_prefetch_distance as f64 * p.streams.max(1) as f64 / (sf * mpi) * base_time
            } else {
                f64::MAX
            };
            let rob = cpu.rob_entries.max(1) as f64;
            CoreLoad {
                base_time,
                demand_pi,
                swpf_pi,
                write_pi,
                blocking_pi,
                covered_pi,
                pf_hide,
                rob_hide: rob * base_time,
                // While one blocking load stalls commit, the ROB fills
                // with ~rob·blocking_pi further blocking loads whose
                // latency overlaps the first (bounded by the MSHRs).
                overlap: (1.0 + rob * blocking_pi).min(cpu.data_mshrs.max(1) as f64),
                hit,
            }
        })
        .collect();

    // Fixed point: per-instruction time → arrival rates → queue waits →
    // latency → per-instruction time.
    let mut times: Vec<f64> = loads.iter().map(|l| l.base_time).collect();
    let mut miss_stages = [0.0f64; Stage::COUNT];
    let mut hit_stages = [0.0f64; Stage::COUNT];
    let mut write_stages = [0.0f64; Stage::COUNT];
    let mut util = Utilization::default();
    // Residence blend from the previous iteration, for the in-flight
    // window term (seeded with a latency-free estimate).
    let mut resident = s_rc;
    for _ in 0..FIXED_POINT_ITERS {
        let mut rd = 0.0; // reads per ns per channel
        let mut hit_flow = 0.0;
        let mut wr = 0.0;
        for (l, tc) in loads.iter().zip(&times) {
            let rate = 1.0 / tc;
            rd += rate * (l.demand_pi + l.swpf_pi);
            hit_flow += rate * (l.demand_pi + l.swpf_pi) * l.hit;
            wr += rate * l.write_pi;
        }
        rd /= n_ch;
        hit_flow /= n_ch;
        wr /= n_ch;
        let miss = (rd - hit_flow).max(0.0);

        let rho_bank = (miss * (s_rc + extra_cols) + wr * s_rc) / banks_per_ch;
        let w_bank = gamma * md1_wait(rho_bank, s_rc + extra_cols);
        // Behind each AMB sits one DDR data bus shared by that DIMM's
        // ranks; a region fetch streams k bursts across it and a write
        // one (AMB hits are served from the AMB cache and never touch
        // it). The in-flight window closes the loop: of the <=16
        // admitted transactions, those in their DRAM phase pile up on
        // `dimms` parallel back-ends, so a request waits for the
        // back-end queue ahead of it — negligible until the per-DIMM
        // population exceeds one, then ~(population - 1) service times.
        // This, not link utilization, is why a saturated single channel
        // with 2 DIMMs is far slower than one with 8. DDR2 has no
        // per-DIMM bus distinct from the channel bus, which rho_north
        // already models. Structural (like the window), so no γ.
        let w_dimm = if fbd && miss + wr > 0.0 {
            let fetch_burst = if amb_on { k * s_burst } else { s_burst };
            let dimms = cfg.dimms_per_channel.max(1) as f64;
            let l_miss_prev: f64 = miss_stages.iter().sum();
            let l_write_prev: f64 = write_stages.iter().sum();
            let l_hit_prev: f64 = hit_stages.iter().sum();
            // Back-end in-flight population by Little's law, capped by
            // the admission window (hits occupy slots but no back-end).
            let mut n_back = miss * l_miss_prev + wr * l_write_prev;
            let n_win = n_back + hit_flow * l_hit_prev;
            if n_win > INFLIGHT_WINDOW {
                n_back *= INFLIGHT_WINDOW / n_win;
            }
            let s_mix = (miss * fetch_burst + wr * s_burst) / (miss + wr);
            (n_back / dimms - 1.0).max(0.0) * s_mix
        } else {
            0.0
        };
        // The controller admits at most MAX_INFLIGHT_PER_CHANNEL
        // transactions per channel; treat the window as a server whose
        // slot turnover time is residence / window. This is what makes
        // a single heavily-loaded channel collapse long before any
        // individual bank or link saturates. The cap is a structural
        // admission limit, not a tunable queue, so γ does not scale it
        // and the knee is sharp: negligible below ~60% occupancy, then
        // Little's-law blow-up (flow x latency → window).
        let slot = resident / INFLIGHT_WINDOW;
        let rho_win = ((rd + wr) * slot).min(crate::queue::MAX_UTILIZATION);
        let w_win = slot * rho_win.powi(2) / (1.0 - rho_win);
        let (w_sb, w_north, rho_north, rho_sb);
        if fbd {
            // The serial links carry fixed-size frames in schedule
            // slots; arrivals are regulated by the controller, so the
            // plain M/D/1 wait is already generous and γ (which
            // absorbs DRAM-side scheduling slack) does not apply.
            rho_north = rd * s_nb;
            w_north = md1_wait(rho_north, s_nb);
            rho_sb = (rd + wr) * s_frame + wr * s_sb;
            w_sb = md1_wait(rho_sb, s_sb.max(s_frame));
        } else {
            // DDR2: one shared bidirectional data bus per channel,
            // arbitrated alongside the banks — γ-scaled like them.
            rho_north = (rd + wr) * s_burst;
            w_north = gamma * md1_wait(rho_north, s_burst);
            rho_sb = 0.0;
            w_sb = 0.0;
        }
        util = Utilization {
            bank: rho_bank,
            north: rho_north,
            south: rho_sb,
        };

        miss_stages = [0.0; Stage::COUNT];
        miss_stages[Stage::CtrlQueue.index()] = ctrl + w_bank + w_dimm + w_win;
        miss_stages[Stage::DramAct.index()] = s_rcd;
        miss_stages[Stage::NorthQueue.index()] = w_north;
        if fbd {
            // The northbound data transfer is the burst itself; DramCas
            // carries only the CAS latency (idle miss: 12 + 3 + 15 + 15
            // + 6 + chain, exactly the paper's 63 ns decomposition).
            miss_stages[Stage::DramCas.index()] = s_cl;
            miss_stages[Stage::SouthLink.index()] = transit + s_frame + w_sb;
            miss_stages[Stage::NorthLink.index()] = transit + s_nb;
        } else {
            miss_stages[Stage::DramCas.index()] = s_cl + s_burst;
        }
        hit_stages = [0.0; Stage::COUNT];
        if amb_on {
            hit_stages[Stage::CtrlQueue.index()] = ctrl + w_win;
            hit_stages[Stage::SouthLink.index()] = transit + s_frame + w_sb;
            hit_stages[Stage::AmbProc.index()] = if full_latency_hits { s_rcd + s_cl } else { 0.0 };
            hit_stages[Stage::NorthQueue.index()] = w_north;
            hit_stages[Stage::NorthLink.index()] = transit + s_nb;
        }
        write_stages = [0.0; Stage::COUNT];
        write_stages[Stage::CtrlQueue.index()] = ctrl + w_bank + w_dimm + w_win;
        write_stages[Stage::DramAct.index()] = s_rcd;
        write_stages[Stage::DramCas.index()] = s_wl + s_burst;
        if fbd {
            write_stages[Stage::SouthLink.index()] = transit + s_frame + w_sb + s_sb;
        }

        let l_miss: f64 = miss_stages.iter().sum();
        let l_hit: f64 = hit_stages.iter().sum();
        // Slot residence for the next iteration: time in the window
        // after admission (total latency minus the admission wait),
        // blended over the read and write mix.
        let flow = rd + wr;
        if flow > 0.0 {
            let l_write: f64 = write_stages.iter().sum();
            let reads_res = miss * l_miss + hit_flow * l_hit;
            let next_res = ((reads_res + wr * l_write) / flow - w_win).max(s_burst);
            resident = DAMPING * resident + (1.0 - DAMPING) * next_res;
        }
        let mut worst_delta = 0.0f64;
        for (i, l) in loads.iter().enumerate() {
            let l_demand = (1.0 - l.hit) * l_miss + l.hit * l_hit;
            let block_stall = (l_demand - l.rob_hide).max(0.0) / l.overlap;
            let late_pf_stall = (l_demand - l.pf_hide).max(0.0) / l.overlap;
            let next = l.base_time + l.blocking_pi * block_stall + l.covered_pi * late_pf_stall;
            let updated = DAMPING * times[i] + (1.0 - DAMPING) * next;
            worst_delta = worst_delta.max((updated - times[i]).abs() / times[i]);
            times[i] = updated;
        }
        if worst_delta < CONVERGENCE_TOL {
            break;
        }
    }

    // The run ends when the first core commits its budget.
    let t_min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let elapsed_ns = budget as f64 * t_min;
    let cores: Vec<CorePrediction> = loads
        .iter()
        .zip(&times)
        .zip(workload.benchmarks())
        .map(|((l, tc), p)| {
            let instructions = ((elapsed_ns / tc).round() as u64).min(budget);
            let cycles = (elapsed_ns / clk).round() as u64;
            let n = instructions as f64;
            CorePrediction {
                instructions,
                cycles,
                ipc: if cycles == 0 {
                    0.0
                } else {
                    instructions as f64 / cycles as f64
                },
                l2_accesses: (n * p.ops_per_kilo as f64 / 1000.0).round() as u64,
                l2_misses: (n * (l.demand_pi + l.swpf_pi)).round() as u64,
            }
        })
        .collect();

    let mut demand_reads = 0u64;
    let mut sw_prefetch_reads = 0u64;
    let mut writes = 0u64;
    let mut amb_hits = 0u64;
    for (l, c) in loads.iter().zip(&cores) {
        let n = c.instructions as f64;
        demand_reads += (n * l.demand_pi).round() as u64;
        sw_prefetch_reads += (n * l.swpf_pi).round() as u64;
        writes += (n * l.write_pi).round() as u64;
        amb_hits += (n * (l.demand_pi + l.swpf_pi) * l.hit).round() as u64;
    }
    let reads = demand_reads + sw_prefetch_reads;
    let amb_hits = amb_hits.min(reads);
    let misses = reads - amb_hits;
    let lines_prefetched = if amb_on {
        misses * (cfg.amb.region_lines.max(1) as u64 - 1)
    } else {
        0
    };
    let data_bytes = (reads + writes) * 64;
    let dram_ops = DramOpCounts {
        act_pre: misses + writes,
        col_reads: misses + lines_prefetched,
        col_writes: writes,
        refreshes: 0,
    };
    let dram_busy = misses as f64 * (s_rc + extra_cols) + writes as f64 * s_rc;

    let n_channels = cfg.logical_channels.max(1) as usize;
    let split = |total: u64, i: usize| -> u64 {
        total / n_channels as u64 + u64::from(i == 0) * (total % n_channels as u64)
    };
    let channels: Vec<ChannelPrediction> = (0..n_channels)
        .map(|i| ChannelPrediction {
            reads: split(reads, i),
            writes: split(writes, i),
            bytes: split(data_bytes, i),
            amb_hits: split(amb_hits, i),
        })
        .collect();

    let energy = predicted_energy(cfg, elapsed_ns, &dram_ops, dram_busy);

    let l_miss: f64 = miss_stages.iter().sum();
    let l_hit: f64 = hit_stages.iter().sum();
    let hit_rate = if reads == 0 {
        0.0
    } else {
        amb_hits as f64 / reads as f64
    };
    let to_durs = |s: &[f64; Stage::COUNT]| -> [Dur; Stage::COUNT] {
        let mut out = [Dur::ZERO; Stage::COUNT];
        for (d, v) in out.iter_mut().zip(s) {
            *d = dur_ns(*v);
        }
        out
    };

    Prediction {
        elapsed: dur_ns(elapsed_ns),
        cores,
        demand_reads,
        sw_prefetch_reads,
        writes,
        amb_hits,
        lines_prefetched,
        data_bytes,
        demand_latency: dur_ns((1.0 - hit_rate) * l_miss + hit_rate * l_hit),
        miss_latency: dur_ns(l_miss),
        hit_latency: dur_ns(l_hit),
        write_latency: dur_ns(write_stages.iter().sum()),
        miss_stages: to_durs(&miss_stages),
        hit_stages: to_durs(&hit_stages),
        write_stages: to_durs(&write_stages),
        hit_rate,
        util,
        dram_ops,
        dram_busy: dur_ns(dram_busy),
        channels,
        energy,
    }
}

/// Feeds predicted command counts and mode residencies through the
/// existing Micron IDD energy model, mirroring the accurate path's
/// current-set selection.
fn predicted_energy(
    cfg: &fbd_types::config::MemoryConfig,
    elapsed_ns: f64,
    ops: &DramOpCounts,
    dram_busy_ns: f64,
) -> EnergyReport {
    let buffered = cfg.tech.is_fbdimm();
    let model = if cfg.data_rate == DataRate::MTS1333 {
        EnergyModel::micron_ddr3_1333(buffered)
    } else {
        EnergyModel::micron_ddr2_667(buffered)
    };
    let ranks_total =
        (cfg.logical_channels * cfg.dimms_per_channel * cfg.ranks_per_dimm).max(1) as u64;
    let per =
        |total: u64, idx: u64| total / ranks_total + u64::from(idx == 0) * (total % ranks_total);
    let busy_per_rank = dram_busy_ns / ranks_total as f64;
    let active_ns = busy_per_rank.min(elapsed_ns);
    let idle_ns = (elapsed_ns - active_ns).max(0.0);
    let acts_per_rank = (ops.act_pre / ranks_total).max(1) as f64;
    let mean_gap = idle_ns / acts_per_rank;
    // Fraction of idle time spent in gaps longer than the power-down
    // threshold, assuming exponential gaps of mean `mean_gap`.
    let pd_frac = if mean_gap > 0.0 {
        ((-POWERDOWN_AFTER_NS / mean_gap).exp() * (POWERDOWN_AFTER_NS + mean_gap) / mean_gap)
            .min(1.0)
    } else {
        0.0
    };
    let powerdown_ns = idle_ns * pd_frac;
    let standby_ns = idle_ns - powerdown_ns;

    let mut ranks = Vec::with_capacity(ranks_total as usize);
    let mut idx = 0u64;
    for ch in 0..cfg.logical_channels {
        for dimm in 0..cfg.dimms_per_channel {
            for rank in 0..cfg.ranks_per_dimm {
                ranks.push(RankActivity {
                    channel: ch,
                    dimm,
                    rank,
                    ops: DramOpCounts {
                        act_pre: per(ops.act_pre, idx),
                        col_reads: per(ops.col_reads, idx),
                        col_writes: per(ops.col_writes, idx),
                        refreshes: 0,
                    },
                    residency: ModeResidency {
                        active: dur_ns(active_ns),
                        standby: dur_ns(standby_ns),
                        powerdown: dur_ns(powerdown_ns),
                    },
                });
                idx += 1;
            }
        }
    }
    let amb_dimms = if buffered {
        cfg.logical_channels * cfg.dimms_per_channel
    } else {
        0
    };
    model.report(&ranks, dur_ns(elapsed_ns), amb_dimms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_types::config::MemoryConfig;
    use fbd_workloads::mixes::find;

    fn sys(mem: MemoryConfig, cores: u32) -> SystemConfig {
        let mut s = SystemConfig::paper_default(cores);
        s.mem = mem;
        s
    }

    #[test]
    fn prediction_is_deterministic() {
        let w = find("2C-1").unwrap();
        let s = sys(MemoryConfig::fbdimm_with_prefetch(), 2);
        let a = predict(&s, &w, 200_000, &ModelParams::default());
        let b = predict(&s, &w, 200_000, &ModelParams::default());
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.dram_ops, b.dram_ops);
        assert_eq!(a.energy.total_nj(), b.energy.total_nj());
    }

    #[test]
    fn prefetch_hits_streaming_workload() {
        let w = find("1C-swim").unwrap();
        let ap = predict(
            &sys(MemoryConfig::fbdimm_with_prefetch(), 1),
            &w,
            100_000,
            &ModelParams::default(),
        );
        let off = predict(
            &sys(MemoryConfig::fbdimm_default(), 1),
            &w,
            100_000,
            &ModelParams::default(),
        );
        assert!(ap.hit_rate > 0.3, "hit rate {}", ap.hit_rate);
        assert_eq!(off.hit_rate, 0.0);
        assert!(ap.demand_latency < off.demand_latency);
        assert!(ap.ipc_sum() >= off.ipc_sum());
    }

    #[test]
    fn idle_stage_structure_matches_paper_decomposition() {
        // Paper §5.2 idle FBD read: 12 ctrl + 3 southbound command +
        // 15 tRCD + 15 tCL + 6 transfer + 12 daisy chain = 63 ns. The
        // deterministic (wait-free) stage components must pin those
        // numbers so only queueing separates the model from idle.
        let w = find("1C-parser").unwrap();
        let p = predict(
            &sys(MemoryConfig::fbdimm_default(), 1),
            &w,
            100_000,
            &ModelParams::default(),
        );
        assert_eq!(p.miss_stages[Stage::DramAct.index()], Dur::from_ns(15));
        assert_eq!(p.miss_stages[Stage::DramCas.index()], Dur::from_ns(15));
        // NorthLink is wait-free: half the chain (6) plus the 6 ns
        // transfer.
        assert_eq!(p.miss_stages[Stage::NorthLink.index()], Dur::from_ns(12));
        // The full idle path is 63 ns plus whatever queueing the load
        // induces; it can never be below the paper's decomposition.
        assert!(p.miss_latency >= Dur::from_ns(63));
    }

    #[test]
    fn ddr2_has_no_link_stages() {
        let w = find("1C-parser").unwrap();
        let p = predict(
            &sys(MemoryConfig::ddr2_default(), 1),
            &w,
            100_000,
            &ModelParams::default(),
        );
        assert_eq!(p.hit_rate, 0.0);
        assert_eq!(p.miss_stages[Stage::SouthLink.index()], Dur::ZERO);
        assert_eq!(p.miss_stages[Stage::NorthLink.index()], Dur::ZERO);
        assert_eq!(p.util.south, 0.0);
        assert_eq!(p.energy.amb_nj, 0.0);
    }

    #[test]
    fn service_inflation_slows_the_system() {
        let w = find("4C-1").unwrap();
        let s = sys(MemoryConfig::fbdimm_with_prefetch(), 4);
        let fast = predict(&s, &w, 100_000, &ModelParams::default());
        let slow = predict(
            &s,
            &w,
            100_000,
            &ModelParams {
                service_inflation: 2.0,
                ..ModelParams::default()
            },
        );
        assert!(slow.ipc_sum() < fast.ipc_sum());
        // End-to-end latency is a closed loop (slower cores offer less
        // load, shrinking queue waits), so check the inflation on a
        // pure service stage instead.
        assert!(
            slow.miss_stages[Stage::DramAct.index()] > fast.miss_stages[Stage::DramAct.index()]
        );
    }

    #[test]
    fn stage_means_sum_to_latency() {
        let w = find("8C-1").unwrap();
        let p = predict(
            &sys(MemoryConfig::fbdimm_with_prefetch(), 8),
            &w,
            100_000,
            &ModelParams::default(),
        );
        let sum: u64 = p.miss_stages.iter().map(|d| d.as_ps()).sum();
        let diff = sum.abs_diff(p.miss_latency.as_ps());
        // Rounding each stage separately can drift by a few ps.
        assert!(diff <= Stage::COUNT as u64, "diff {diff} ps");
    }

    #[test]
    fn energy_counts_follow_traffic() {
        let w = find("1C-swim").unwrap();
        let p = predict(
            &sys(MemoryConfig::fbdimm_with_prefetch(), 1),
            &w,
            100_000,
            &ModelParams::default(),
        );
        assert!(p.energy.total_nj() > 0.0);
        assert!(p.energy.amb_nj > 0.0);
        assert_eq!(
            p.dram_ops.col_reads,
            p.reads() - p.amb_hits + p.lines_prefetched
        );
    }
}
