//! A hardware stream prefetcher at the shared L2 (extension).
//!
//! The paper evaluates AMB prefetching together with *software* cache
//! prefetching and argues (§5.4) that hardware prefetching would
//! compose similarly. This module provides the hardware half of that
//! claim: a classic stream detector in the spirit of predictor-directed
//! stream buffers — it watches the L2 demand-miss stream, confirms
//! ascending unit-stride streams after two hits (with a small window to
//! tolerate out-of-order misses), and then runs `degree` lines ahead of
//! each confirmed stream.

use fbd_types::config::HwPrefetchConfig;
use fbd_types::LineAddr;

#[derive(Clone, Copy, Debug)]
struct Stream {
    /// Next line the stream expects to be demanded.
    expected: u64,
    /// +1 or −1 line per step.
    direction: i64,
    /// Confirmations observed (≥ 2 ⇒ prefetching).
    confidence: u8,
    /// Last line already requested ahead.
    issued_until: u64,
    /// Replacement clock.
    last_used: u64,
}

/// Stream-detecting hardware prefetcher.
#[derive(Clone, Debug)]
pub struct StreamPrefetcher {
    streams: Vec<Stream>,
    degree: u64,
    tick: u64,
}

impl StreamPrefetcher {
    /// Builds the prefetcher from its configuration (capacity comes from
    /// `cfg.streams`; call only when `cfg.enabled`).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: &HwPrefetchConfig) -> StreamPrefetcher {
        cfg.validate().expect("invalid hardware prefetcher config");
        StreamPrefetcher {
            streams: Vec::with_capacity(cfg.streams as usize),
            degree: u64::from(cfg.degree),
            tick: 0,
        }
    }

    /// Observes a demand miss and returns the lines to prefetch (empty
    /// until a stream is confirmed).
    pub fn on_demand_miss(&mut self, line: LineAddr) -> Vec<LineAddr> {
        self.tick += 1;
        let tick = self.tick;
        let addr = line.as_u64();

        // Does this miss continue a tracked stream (within a small
        // window, to tolerate slightly out-of-order misses)?
        if let Some(s) = self.streams.iter_mut().find(|s| {
            let delta = addr as i64 - s.expected as i64;
            (0..4).contains(&(delta * s.direction))
        }) {
            s.expected = (addr as i64 + s.direction) as u64;
            s.confidence = s.confidence.saturating_add(1);
            s.last_used = tick;
            if s.confidence >= 2 {
                let start = s.issued_until.max(addr);
                let target = (addr as i64 + (self.degree as i64) * s.direction) as u64;
                let mut out = Vec::new();
                let mut next = (start as i64 + s.direction) as u64;
                while out.len() < self.degree as usize && next != target.wrapping_add(1) {
                    out.push(LineAddr::new(next));
                    if next == target {
                        break;
                    }
                    next = (next as i64 + s.direction) as u64;
                }
                s.issued_until = target;
                return out;
            }
            return Vec::new();
        }

        // New candidate streams in both directions replace the coldest
        // entry.
        let slot = if self.streams.len() < self.streams.capacity() {
            self.streams.push(Stream {
                expected: 0,
                direction: 1,
                confidence: 0,
                issued_until: 0,
                last_used: 0,
            });
            self.streams.len() - 1
        } else {
            self.streams
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .expect("non-empty table")
        };
        self.streams[slot] = Stream {
            expected: addr + 1,
            direction: 1,
            confidence: 1,
            issued_until: addr,
            last_used: tick,
        };
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StreamPrefetcher {
        StreamPrefetcher::new(&HwPrefetchConfig::typical())
    }

    #[test]
    fn single_miss_trains_without_prefetching() {
        let mut p = pf();
        assert!(p.on_demand_miss(LineAddr::new(100)).is_empty());
    }

    #[test]
    fn second_sequential_miss_confirms_stream() {
        let mut p = pf();
        assert!(p.on_demand_miss(LineAddr::new(100)).is_empty());
        let out = p.on_demand_miss(LineAddr::new(101));
        assert_eq!(
            out,
            vec![
                LineAddr::new(102),
                LineAddr::new(103),
                LineAddr::new(104),
                LineAddr::new(105)
            ]
        );
    }

    #[test]
    fn confirmed_stream_runs_ahead_without_duplicates() {
        let mut p = pf();
        p.on_demand_miss(LineAddr::new(100));
        p.on_demand_miss(LineAddr::new(101)); // issues 102..=105
        let out = p.on_demand_miss(LineAddr::new(102));
        assert_eq!(out, vec![LineAddr::new(106)], "only the new frontier line");
    }

    #[test]
    fn random_misses_never_prefetch() {
        let mut p = pf();
        for line in [5u64, 1000, 37, 99999, 12, 40000, 777, 123456] {
            assert!(p.on_demand_miss(LineAddr::new(line)).is_empty());
        }
    }

    #[test]
    fn tracks_multiple_streams_concurrently() {
        let mut p = pf();
        p.on_demand_miss(LineAddr::new(100));
        p.on_demand_miss(LineAddr::new(5000));
        let a = p.on_demand_miss(LineAddr::new(101));
        let b = p.on_demand_miss(LineAddr::new(5001));
        assert!(!a.is_empty());
        assert!(!b.is_empty());
        assert_eq!(b[0], LineAddr::new(5002));
    }

    #[test]
    fn cold_streams_get_replaced() {
        let mut p = StreamPrefetcher::new(&HwPrefetchConfig {
            enabled: true,
            streams: 2,
            degree: 2,
        });
        p.on_demand_miss(LineAddr::new(100));
        p.on_demand_miss(LineAddr::new(200));
        p.on_demand_miss(LineAddr::new(300)); // evicts the 100-stream
                                              // The 100-stream is gone: its continuation trains from scratch.
        assert!(p.on_demand_miss(LineAddr::new(101)).is_empty());
    }

    #[test]
    fn tolerates_small_gaps_in_the_stream() {
        let mut p = pf();
        p.on_demand_miss(LineAddr::new(100));
        p.on_demand_miss(LineAddr::new(101));
        // Miss 103 (skipping 102, e.g. it hit in L2) still continues.
        let out = p.on_demand_miss(LineAddr::new(103));
        assert!(!out.is_empty());
        assert_eq!(*out.last().unwrap(), LineAddr::new(107));
    }
}
