//! Reliability-lifecycle figure: what the closed error loop costs and
//! what it buys.
//!
//! Sweeps link bit-error rate against patrol-scrub aggressiveness on
//! all four paper systems and reports IPC, p99 demand-read latency,
//! total energy, and the undetected-error rate (CRC escapes per
//! injected corruption). When errors are injected the full recovery
//! loop is armed — 8 CRC check bits (so a realistic escape channel
//! exists), lane fail-back after a 2 µs quiet period, and an 8-line
//! prefetch re-issue budget — matching the CLI's
//! `--crc-bits 8 --failback 2000 --reissue 8` spelling.
//!
//! Expected shape: scrubbing is pure overhead at BER 0 (bandwidth and
//! energy, no benefit); as BER grows, faster patrol intervals convert
//! poisoned lines back to clean between demand touches, trading a
//! small IPC/energy cost for a lower standing poisoned-line count.
//! DDR2 has no serial links, so its error counters stay zero and only
//! the scrub-traffic overhead registers.
//!
//! Output: `BENCH_scrub_sweep.json` in `$FBD_OUT_DIR` (or the working
//! directory). Every metric is asserted finite, and every point
//! asserts the stage-sum-equals-latency invariant with scrub and
//! re-issue traffic in flight.

use fbd_bench::*;
use fbd_telemetry::Json;
use fbd_types::config::{ScrubPolicyKind, SystemConfig};

const BERS: [f64; 3] = [0.0, 1e-5, 1e-4];
/// (label, patrol interval in ns; 0 = scrubbing off).
const SCRUBS: [(&str, u64); 3] = [("off", 0), ("patrol-300", 300), ("patrol-3000", 3000)];
const WORKLOAD: &str = "4C-1";

fn sweep_config(variant: Variant, cores: u32, ber: f64, scrub_interval_ns: u64) -> SystemConfig {
    let mut cfg = system(variant, cores);
    cfg.mem.faults.ber = ber;
    if ber > 0.0 {
        cfg.mem.faults.crc_bits = 8;
        cfg.mem.faults.failback_quiet_ns = 2000;
        cfg.mem.faults.reissue_budget = 8;
    }
    if scrub_interval_ns > 0 {
        cfg.mem.faults.scrub = ScrubPolicyKind::Patrol;
        cfg.mem.faults.scrub_interval_ns = scrub_interval_ns;
    }
    cfg.validate().expect("sweep point validates");
    cfg
}

fn main() {
    let exp = fbd_bench::experiment();
    banner(
        "Scrub sweep",
        "IPC, p99 latency, energy and undetected-error rate vs BER x scrub rate",
        &exp,
    );

    let workload = fbd_workloads::find(WORKLOAD).expect("paper workload");
    let workloads = vec![workload];
    let cores = workloads[0].cores();

    let mut rows = vec![vec![
        "system".to_string(),
        "BER".to_string(),
        "scrub".to_string(),
        "mean IPC".to_string(),
        "p99 read ns".to_string(),
        "energy uJ".to_string(),
        "undetected rate".to_string(),
        "scrub reads".to_string(),
        "rewrites".to_string(),
        "reissued".to_string(),
    ]];
    let mut points = Vec::new();
    for variant in [
        Variant::Ddr2,
        Variant::Fbd,
        Variant::FbdAp,
        Variant::FbdApfl,
    ] {
        let configs: Vec<(String, SystemConfig)> = BERS
            .iter()
            .flat_map(|&ber| {
                SCRUBS.iter().map(move |&(slabel, interval)| {
                    (
                        format!("{ber:.0e}/{slabel}"),
                        sweep_config(variant, cores, ber, interval),
                    )
                })
            })
            .collect();
        let results = run_matrix(&configs, &workloads, &exp);
        for ((label, _), r) in &results {
            let ipc = mean(&r.ipcs());
            let p99 = r.read_latency_percentile_ns(0.99);
            let energy_uj = r.energy.total_nj() / 1_000.0;
            // One escaped corruption per injected one would be rate
            // 1.0; a clean channel reports 0 by convention.
            let (injected, escaped, scrub_reads, scrub_rewrites, reissued, poisoned) = r
                .faults
                .as_ref()
                .map(|fr| {
                    (
                        fr.counters.injected,
                        fr.counters.escaped,
                        fr.counters.scrub_reads,
                        fr.counters.scrub_rewrites,
                        fr.counters.reissued,
                        fr.silent.poisoned_lines,
                    )
                })
                .unwrap_or_default();
            let undetected = escaped as f64 / injected.max(1) as f64;
            // The stamped-lifecycle invariant must survive synthesized
            // scrub/re-issue traffic: every read's stage durations sum
            // to its end-to-end latency.
            assert_eq!(
                r.profile.mismatches(),
                0,
                "{} {label}: stage-sum invariant violated",
                variant.label()
            );
            for (name, v) in [
                ("ipc", ipc),
                ("p99", p99),
                ("energy", energy_uj),
                ("undetected", undetected),
            ] {
                assert!(
                    v.is_finite(),
                    "{} {label}: {name} must be finite, got {v}",
                    variant.label()
                );
            }
            let (ber_label, scrub_label) = label.split_once('/').expect("label shape");
            rows.push(vec![
                variant.label().to_string(),
                ber_label.to_string(),
                scrub_label.to_string(),
                f3(ipc),
                f2(p99),
                f2(energy_uj),
                format!("{undetected:.2e}"),
                scrub_reads.to_string(),
                scrub_rewrites.to_string(),
                reissued.to_string(),
            ]);
            points.push(Json::Obj(vec![
                ("system".into(), Json::from(variant.label())),
                ("ber".into(), Json::from(ber_label)),
                ("scrub".into(), Json::from(scrub_label)),
                ("mean_ipc".into(), Json::from(ipc)),
                ("p99_read_ns".into(), Json::from(p99)),
                ("energy_uj".into(), Json::from(energy_uj)),
                ("undetected_rate".into(), Json::from(undetected)),
                ("injected".into(), Json::from(injected)),
                ("escaped".into(), Json::from(escaped)),
                ("scrub_reads".into(), Json::from(scrub_reads)),
                ("scrub_rewrites".into(), Json::from(scrub_rewrites)),
                ("reissued".into(), Json::from(reissued)),
                ("poisoned_lines".into(), Json::from(poisoned)),
            ]));
        }
    }
    emit_table("fig_scrub_sweep", &rows);
    println!();
    println!(
        "model: BER>0 arms the full loop (crc-bits 8, failback 2000ns, reissue 8); \
         scrub sweeps ride idle scheduler slots only"
    );

    let doc = Json::Obj(vec![
        ("workload".into(), Json::from(WORKLOAD)),
        ("budget".into(), Json::from(exp.budget)),
        ("points".into(), Json::Arr(points)),
    ]);
    let dir = std::env::var("FBD_OUT_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join("BENCH_scrub_sweep.json");
    std::fs::write(&path, doc.to_json_pretty(2)).expect("write BENCH_scrub_sweep.json");
    println!("wrote {}", path.display());
}
