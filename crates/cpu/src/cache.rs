//! The shared L2 cache (Table 1: 4 MB, 4-way, 64 B lines).
//!
//! Write-back, write-allocate, true-LRU. The cache filters the cores'
//! access streams; only misses (and dirty evictions) reach the memory
//! controller. Fill timing is handled by the CPU complex — this module
//! is the content/replacement model.

use fbd_types::LineAddr;

/// Result of an L2 access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum L2Outcome {
    /// Line present.
    Hit,
    /// Line absent; it has been allocated, evicting a dirty line that
    /// must be written back if `writeback` is set.
    Miss {
        /// Dirty victim that must be written to memory.
        writeback: Option<LineAddr>,
    },
}

impl L2Outcome {
    /// True for hits.
    pub fn is_hit(&self) -> bool {
        matches!(self, L2Outcome::Hit)
    }
}

/// Valid bit of a [`Way`]'s packed metadata.
const VALID: u64 = 1;
/// Dirty bit of a [`Way`]'s packed metadata.
const DIRTY: u64 = 2;
/// The recency stamp occupies the bits above dirty/valid.
const LRU_SHIFT: u32 = 2;

/// One way frame: the line address plus packed metadata
/// (`lru << 2 | dirty << 1 | valid`; 0 = empty frame). 16 bytes, so a
/// 4-way set is one cache line of the *host* — the warm-up and access
/// paths scan a set without pointer chasing.
#[derive(Clone, Copy, Debug, Default)]
struct Way {
    line: u64,
    meta: u64,
}

/// A set-associative, write-back, write-allocate cache.
///
/// Storage is one flat `Way` array (sets contiguous) rather than a
/// `Vec` per set. Replacement behavior is identical to the boxed-set
/// form: recency stamps are unique, so the LRU victim is the unique
/// minimum, and an empty frame (packed metadata 0) orders before every
/// valid frame — exactly the "set not yet full" case.
#[derive(Clone, Debug)]
pub struct L2Cache {
    store: Vec<Way>,
    num_sets: usize,
    ways: usize,
    /// `num_sets - 1` when the set count is a power of two (the Table 1
    /// geometry): the set index is then a mask instead of a `u64`
    /// modulo on the hottest path in warm-up.
    set_mask: Option<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl L2Cache {
    /// Creates a cache of `bytes` capacity and `ways` associativity with
    /// 64-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible
    /// into `ways`-way sets of 64-byte lines, or fewer than one set).
    pub fn new(bytes: u64, ways: usize) -> L2Cache {
        let line = fbd_types::CACHE_LINE_BYTES;
        assert!(ways > 0, "associativity must be non-zero");
        assert!(
            bytes.is_multiple_of(ways as u64 * line) && bytes >= ways as u64 * line,
            "capacity must be a positive multiple of ways * line size"
        );
        let num_sets = (bytes / line / ways as u64) as usize;
        L2Cache {
            store: vec![Way::default(); num_sets * ways],
            num_sets,
            ways,
            set_mask: num_sets.is_power_of_two().then(|| num_sets as u64 - 1),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        match self.set_mask {
            Some(mask) => (line.as_u64() & mask) as usize,
            None => (line.as_u64() % self.num_sets as u64) as usize,
        }
    }

    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let base = self.set_index(line) * self.ways;
        base..base + self.ways
    }

    /// Accesses `line`, allocating it on a miss. `write` marks the line
    /// dirty (stores and write-allocate fills).
    ///
    /// The 4-way case (Table 1 geometry) runs a branchless fixed-width
    /// scan: the hit way and the minimum-metadata victim are selected
    /// with conditional moves, leaving one well-predicted hit/miss
    /// branch. An early-exit scan mispredicts on nearly every access
    /// (the hit way's position is uniform), which dominated warm-up
    /// cost on this model.
    pub fn access(&mut self, line: LineAddr, write: bool) -> L2Outcome {
        self.tick += 1;
        let fresh = (self.tick << LRU_SHIFT) | VALID | if write { DIRTY } else { 0 };
        let target = line.as_u64();
        let base = self.set_index(line) * self.ways;
        if self.ways == 4 {
            let set: &mut [Way; 4] = (&mut self.store[base..base + 4]).try_into().unwrap();
            let mut hit = usize::MAX;
            let mut victim = 0usize;
            let mut victim_meta = set[0].meta;
            for (i, w) in set.iter().enumerate() {
                // Straight-line selects; the compiler lowers both `if`s
                // to cmov so no way-position branch exists to mispredict.
                if (w.line == target) & (w.meta & VALID != 0) {
                    hit = i;
                }
                if w.meta < victim_meta {
                    victim_meta = w.meta;
                    victim = i;
                }
            }
            if hit != usize::MAX {
                set[hit].meta = fresh | (set[hit].meta & DIRTY);
                self.hits += 1;
                return L2Outcome::Hit;
            }
            self.misses += 1;
            let writeback = (victim_meta & (VALID | DIRTY) == VALID | DIRTY)
                .then(|| LineAddr::new(set[victim].line));
            set[victim] = Way {
                line: target,
                meta: fresh,
            };
            return L2Outcome::Miss { writeback };
        }
        let set = &mut self.store[base..base + self.ways];
        // One pass: find the hit or remember the minimum-metadata way.
        // Empty frames (meta 0) order before valid ones, and recency
        // stamps are unique, so the minimum is an empty frame when one
        // exists and the unique LRU entry otherwise.
        let mut victim = 0;
        let mut victim_meta = u64::MAX;
        for (i, w) in set.iter_mut().enumerate() {
            if w.meta & VALID != 0 && w.line == target {
                w.meta = fresh | (w.meta & DIRTY);
                self.hits += 1;
                return L2Outcome::Hit;
            }
            if w.meta < victim_meta {
                victim_meta = w.meta;
                victim = i;
            }
        }
        self.misses += 1;
        let writeback = (victim_meta & (VALID | DIRTY) == VALID | DIRTY)
            .then(|| LineAddr::new(set[victim].line));
        set[victim] = Way {
            line: target,
            meta: fresh,
        };
        L2Outcome::Miss { writeback }
    }

    /// Pure presence check (no LRU update).
    pub fn contains(&self, line: LineAddr) -> bool {
        let range = self.set_range(line);
        let target = line.as_u64();
        self.store[range]
            .iter()
            .any(|w| w.meta & VALID != 0 && w.line == target)
    }

    /// Removes `line` if present *and clean*; returns whether it was
    /// removed. Used when a fill is dropped after allocation (corrupted
    /// prefetch data under fault injection): the allocated frame holds
    /// no valid data, but a line dirtied by an intervening store must
    /// not lose its data and stays.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let range = self.set_range(line);
        let target = line.as_u64();
        if let Some(w) = self.store[range]
            .iter_mut()
            .find(|w| w.meta & (VALID | DIRTY) == VALID && w.line == target)
        {
            w.meta = 0;
            return true;
        }
        false
    }

    /// (hits, misses) so far.
    pub fn hit_miss_counts(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Zeroes the hit/miss counters (content is kept). Called after a
    /// warm-up phase so statistics cover only the measured region.
    pub fn reset_counts(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> L2Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        L2Cache::new(512, 2)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert_eq!(
            c.access(LineAddr::new(1), false),
            L2Outcome::Miss { writeback: None }
        );
        assert_eq!(c.access(LineAddr::new(1), false), L2Outcome::Hit);
        assert_eq!(c.hit_miss_counts(), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Lines 0, 4, 8 collide in set 0 of a 4-set cache.
        c.access(LineAddr::new(0), false);
        c.access(LineAddr::new(4), false);
        c.access(LineAddr::new(0), false); // touch 0: now 4 is LRU
        c.access(LineAddr::new(8), false); // evicts 4
        assert!(c.contains(LineAddr::new(0)));
        assert!(!c.contains(LineAddr::new(4)));
        assert!(c.contains(LineAddr::new(8)));
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = small();
        c.access(LineAddr::new(0), true); // dirty
        c.access(LineAddr::new(4), false);
        let out = c.access(LineAddr::new(8), false); // evicts 0 (LRU, dirty)
        assert_eq!(
            out,
            L2Outcome::Miss {
                writeback: Some(LineAddr::new(0))
            }
        );
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut c = small();
        c.access(LineAddr::new(0), false);
        c.access(LineAddr::new(4), false);
        let out = c.access(LineAddr::new(8), false);
        assert_eq!(out, L2Outcome::Miss { writeback: None });
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = small();
        c.access(LineAddr::new(0), false);
        c.access(LineAddr::new(0), true); // store hit dirties the line
        c.access(LineAddr::new(4), false);
        let out = c.access(LineAddr::new(8), false);
        assert_eq!(
            out,
            L2Outcome::Miss {
                writeback: Some(LineAddr::new(0))
            }
        );
    }

    #[test]
    fn invalidate_removes_clean_lines_only() {
        let mut c = small();
        c.access(LineAddr::new(0), false); // clean
        c.access(LineAddr::new(4), true); // dirty
        assert!(c.invalidate(LineAddr::new(0)));
        assert!(!c.contains(LineAddr::new(0)));
        // Dirty lines keep their data; absent lines are a no-op.
        assert!(!c.invalidate(LineAddr::new(4)));
        assert!(c.contains(LineAddr::new(4)));
        assert!(!c.invalidate(LineAddr::new(8)));
    }

    #[test]
    fn table1_geometry_constructs() {
        let c = L2Cache::new(4 << 20, 4);
        // 4 MB / 64 B / 4 ways = 16384 sets.
        assert_eq!(c.num_sets, 16_384);
        assert_eq!(c.store.len(), 16_384 * 4);
        // Power-of-two set count -> mask-indexed.
        assert_eq!(c.set_mask, Some(16_383));
    }

    #[test]
    fn non_power_of_two_set_count_falls_back_to_modulo() {
        // 3 sets × 2 ways × 64 B.
        let mut c = L2Cache::new(3 * 2 * 64, 2);
        assert_eq!(c.set_mask, None);
        // Lines 1 and 4 collide (both mod 3 == 1); 2 does not.
        c.access(LineAddr::new(1), false);
        c.access(LineAddr::new(4), false);
        c.access(LineAddr::new(2), false);
        assert!(c.contains(LineAddr::new(1)));
        assert!(c.contains(LineAddr::new(4)));
        assert!(c.contains(LineAddr::new(2)));
    }

    /// The flat-array rewrite must behave exactly like the seed's
    /// Vec-per-set model (find-hit, push-until-full, unique-min-LRU
    /// victim): drive both with the same scrambled access stream and
    /// compare every outcome.
    #[test]
    fn flat_storage_matches_reference_model() {
        #[derive(Clone, Copy)]
        struct RefEntry {
            line: u64,
            dirty: bool,
            lru: u64,
        }
        struct RefCache {
            sets: Vec<Vec<RefEntry>>,
            ways: usize,
            tick: u64,
        }
        impl RefCache {
            fn access(&mut self, line: u64, write: bool) -> (bool, Option<u64>) {
                self.tick += 1;
                let tick = self.tick;
                let idx = (line % self.sets.len() as u64) as usize;
                let set = &mut self.sets[idx];
                if let Some(e) = set.iter_mut().find(|e| e.line == line) {
                    e.lru = tick;
                    e.dirty |= write;
                    return (true, None);
                }
                let mut wb = None;
                if set.len() == self.ways {
                    let victim = set
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.lru)
                        .map(|(i, _)| i)
                        .unwrap();
                    let evicted = set.swap_remove(victim);
                    if evicted.dirty {
                        wb = Some(evicted.line);
                    }
                }
                set.push(RefEntry {
                    line,
                    dirty: write,
                    lru: tick,
                });
                (false, wb)
            }
        }

        // 16 sets × 4 ways, heavy conflict pressure from a 64-line
        // footprint; xorshift for a deterministic scramble.
        let mut flat = L2Cache::new(16 * 4 * 64, 4);
        let mut reference = RefCache {
            sets: vec![Vec::new(); 16],
            ways: 4,
            tick: 0,
        };
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let line = x % 64;
            let write = x & (1 << 40) != 0;
            let want = reference.access(line, write);
            let got = match flat.access(LineAddr::new(line), write) {
                L2Outcome::Hit => (true, None),
                L2Outcome::Miss { writeback } => (false, writeback.map(|l| l.as_u64())),
            };
            assert_eq!(got, want, "diverged on line {line} write {write}");
            // Occasionally invalidate a clean line, as dropped fills do.
            if x.is_multiple_of(97) {
                let victim = (x >> 8) % 64;
                let ref_idx = (victim % 16) as usize;
                let ref_removed = reference.sets[ref_idx]
                    .iter()
                    .position(|e| e.line == victim && !e.dirty)
                    .map(|pos| {
                        reference.sets[ref_idx].swap_remove(pos);
                    })
                    .is_some();
                assert_eq!(flat.invalidate(LineAddr::new(victim)), ref_removed);
            }
        }
        let (hits, misses) = flat.hit_miss_counts();
        assert!(hits > 0 && misses > 0, "stream must exercise both paths");
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn bad_geometry_rejected() {
        let _ = L2Cache::new(100, 3);
    }
}
