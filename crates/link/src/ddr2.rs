//! The conventional DDR2 channel used as the paper's baseline.
//!
//! Unlike FB-DIMM, a DDR2 channel is a stub bus shared by all DIMMs: one
//! command bus carrying a single command per clock, and one bidirectional
//! data bus (modelled by `fbd_dram::DataBus` at channel scope). This
//! module provides the command-bus arbitration; the data bus itself lives
//! in the DRAM crate because its timing rules (tWTR, turnaround) are DRAM
//! rules.

use fbd_types::config::MemoryConfig;
use fbd_types::time::{Dur, Time};

use crate::timeline::Timeline;

/// The shared command bus of one logical DDR2 channel.
///
/// A ganged pair of physical channels receives broadcast commands, so a
/// logical channel still carries one command per clock.
#[derive(Clone, Debug)]
pub struct Ddr2CommandBus {
    bus: Timeline,
    slot: Dur,
}

impl Ddr2CommandBus {
    /// Builds the command bus for one logical channel.
    pub fn new(cfg: &MemoryConfig) -> Ddr2CommandBus {
        let clock = cfg.data_rate.clock_period();
        Ddr2CommandBus {
            bus: Timeline::new(clock),
            slot: clock,
        }
    }

    /// Reserves the next free command slot at or after `not_before`;
    /// returns the slot's start (the command issue instant).
    pub fn issue(&mut self, not_before: Time) -> Time {
        self.bus.reserve(not_before, self.slot)
    }

    /// Reserves `n` consecutive-ish command slots starting at or after
    /// `not_before`, returning each slot start. Used for the
    /// PRE(optional)+ACT+CAS command triple of one access.
    pub fn issue_many(&mut self, not_before: Time, n: usize) -> Vec<Time> {
        let mut slots = Vec::with_capacity(n);
        let mut t = not_before;
        for _ in 0..n {
            let s = self.issue(t);
            t = s + self.slot;
            slots.push(s);
        }
        slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_types::config::MemoryConfig;

    #[test]
    fn one_command_per_clock() {
        let mut bus = Ddr2CommandBus::new(&MemoryConfig::ddr2_default());
        let a = bus.issue(Time::ZERO);
        let b = bus.issue(Time::ZERO);
        assert_eq!(a, Time::ZERO);
        assert_eq!(b, Time::from_ns(3));
    }

    #[test]
    fn issue_many_strictly_orders_slots() {
        let mut bus = Ddr2CommandBus::new(&MemoryConfig::ddr2_default());
        let slots = bus.issue_many(Time::from_ns(10), 3);
        assert_eq!(
            slots,
            vec![Time::from_ns(12), Time::from_ns(15), Time::from_ns(18)]
        );
    }

    #[test]
    fn contention_pushes_later_requests() {
        let mut bus = Ddr2CommandBus::new(&MemoryConfig::ddr2_default());
        bus.issue_many(Time::ZERO, 4); // occupies 0,3,6,9
        assert_eq!(bus.issue(Time::from_ns(4)), Time::from_ns(12));
    }
}
