//! Extension figure: performance under channel fault injection.
//!
//! Sweeps the southbound/northbound bit-error rate and reports IPC and
//! p99 demand-read latency for FBD and FBD-AP, alongside the recovery
//! counters (injected/retried/fail-overs). Expected shape: at BER up to
//! ~1e-6 the CRC-retry path absorbs corruption with negligible IPC
//! loss; by 1e-4 retry slots visibly inflate the read-latency tail, and
//! AMB prefetching keeps its edge because dropped prefetch lines cost
//! only a re-fetch while demand frames are replayed in place.

use fbd_bench::*;

const BERS: [f64; 5] = [0.0, 1e-7, 1e-6, 1e-5, 1e-4];

fn main() {
    let exp = fbd_bench::experiment();
    banner(
        "Fault sweep",
        "IPC and p99 read latency vs link bit-error rate",
        &exp,
    );

    let workloads = workload_groups()
        .into_iter()
        .find(|(g, _)| *g == "4-core")
        .map(|(_, ws)| ws)
        .expect("4-core group");
    let cores = workloads[0].cores();

    let mut rows = vec![vec![
        "system".to_string(),
        "BER".to_string(),
        "mean IPC".to_string(),
        "p99 read ns".to_string(),
        "injected".to_string(),
        "retried".to_string(),
        "failovers".to_string(),
    ]];
    for variant in [Variant::Fbd, Variant::FbdAp] {
        let configs: Vec<(String, fbd_types::config::SystemConfig)> = BERS
            .iter()
            .map(|&ber| {
                let mut cfg = system(variant, cores);
                cfg.mem.faults.ber = ber;
                (format!("{ber:.0e}"), cfg)
            })
            .collect();
        let results = run_matrix(&configs, &workloads, &exp);
        for (label, _) in &configs {
            let runs: Vec<&fbd_core::RunResult> = results
                .iter()
                .filter(|((c, _), _)| c == label)
                .map(|(_, r)| r)
                .collect();
            let ipc = mean(&runs.iter().map(|r| mean(&r.ipcs())).collect::<Vec<_>>());
            let p99 = mean(
                &runs
                    .iter()
                    .map(|r| r.read_latency_percentile_ns(0.99))
                    .collect::<Vec<_>>(),
            );
            let count = |f: fn(&fbd_faults::FaultCounters) -> u64| {
                runs.iter()
                    .filter_map(|r| r.faults.as_ref())
                    .map(|fr| f(&fr.counters))
                    .sum::<u64>()
            };
            rows.push(vec![
                variant.label().to_string(),
                label.clone(),
                f3(ipc),
                f2(p99),
                count(|c| c.injected).to_string(),
                count(|c| c.retried).to_string(),
                count(|c| c.failovers).to_string(),
            ]);
        }
    }
    emit_table("fig_fault_sweep", &rows);
    println!();
    println!("model: CRC detection is ideal; corrupted demand frames replay with backoff, corrupted prefetch returns are dropped");
}
