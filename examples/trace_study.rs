//! Trace-driven memory study: capture one workload's memory-request
//! stream, then replay the *identical* stream against every memory
//! configuration — isolating the memory subsystem from CPU feedback,
//! the way trace-driven DRAM studies work.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p fbd-core --example trace_study [benchmark]
//! ```

use fbd_core::experiment::ExperimentConfig;
use fbd_core::{replay, System};
use fbd_types::config::{AmbPrefetchMode, MemoryConfig, SystemConfig};
use fbd_workloads::Workload;

fn main() {
    let bench = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "applu".to_string());
    if fbd_workloads::by_name(&bench).is_none() {
        eprintln!("unknown benchmark `{bench}`");
        std::process::exit(1);
    }
    let exp = ExperimentConfig {
        seed: 42,
        budget: 150_000,
        ..Default::default()
    };

    // Capture the stream once, on the plain FB-DIMM system.
    let workload = Workload::new(format!("1C-{bench}"), &[&bench]);
    let mut sys = System::new(
        &SystemConfig::paper_default(1),
        workload.traces(exp.seed),
        exp.budget,
    );
    sys.warm(140_000); // fill the L2 so writeback traffic is present
    sys.enable_trace_capture();
    let result = sys.run();
    let trace = result.trace.expect("capture enabled");
    println!(
        "captured {} transactions from `{bench}` ({} demand reads, {} prefetch reads, {} writes)",
        trace.len(),
        result.mem.demand_reads,
        result.mem.sw_prefetch_reads,
        result.mem.writes
    );
    println!();

    // Replay the identical stream everywhere.
    let mut apfl = MemoryConfig::fbdimm_with_prefetch();
    apfl.amb.mode = AmbPrefetchMode::FullLatency;
    let systems = [
        ("DDR2", MemoryConfig::ddr2_default()),
        ("FBD", MemoryConfig::fbdimm_default()),
        ("FBD-AP", MemoryConfig::fbdimm_with_prefetch()),
        ("FBD-APFL", apfl),
        ("FBD/DDR3", MemoryConfig::fbdimm_ddr3()),
    ];
    println!("system     avg latency   ACT/PRE   columns   AMB hits");
    for (name, mem) in systems {
        let r = replay(&mem, &trace);
        println!(
            "{name:<9}  {:>8.1} ns  {:>8}  {:>8}  {:>9}",
            r.mem.read_latency.mean().map_or(0.0, |d| d.as_ns_f64()),
            r.mem.dram_ops.act_pre,
            r.mem.dram_ops.col_total(),
            r.mem.amb_hits
        );
    }
    println!();
    println!("Identical arrival times everywhere (open-loop): latency and DRAM-operation");
    println!("differences are purely the memory subsystem's doing.");
}
