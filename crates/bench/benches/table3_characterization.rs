//! Table 3 companion: single-core characterization of the twelve
//! synthetic SPEC2000-like benchmarks on the default FB-DIMM system.
//!
//! The paper selects its programs for memory intensity; this bench
//! documents what our substitutes actually look like to the memory
//! subsystem — the numbers DESIGN.md §4's substitution argument rests
//! on. (IPC, memory traffic, bandwidth, latency, and how streaming each
//! program's miss sequence is.)

use fbd_bench::*;
use fbd_core::RunSpec;
use fbd_workloads::Workload;

fn main() {
    let exp = fbd_bench::experiment();
    banner(
        "Table 3 companion",
        "workload characterization (FBD, 1 core)",
        &exp,
    );

    let names = benchmark_names();
    let results = parallel_map(&names, |name| {
        let w = Workload::new(format!("1C-{name}"), &[name]);
        RunSpec::new(system(Variant::Fbd, 1))
            .with_workload(w)
            .experiment(exp)
            .run()
    });

    let mut rows = vec![vec![
        "benchmark".to_string(),
        "IPC".to_string(),
        "L2 MPKI".to_string(),
        "reads".to_string(),
        "swpf".to_string(),
        "writes".to_string(),
        "GB/s".to_string(),
        "lat ns".to_string(),
        "p99 ns".to_string(),
    ]];
    for (name, r) in names.iter().zip(&results) {
        let instr = r.cores[0].instructions.max(1);
        let mpki = r.cores[0].l2_misses as f64 * 1000.0 / instr as f64;
        rows.push(vec![
            name.to_string(),
            f3(r.cores[0].ipc()),
            f2(mpki),
            r.mem.demand_reads.to_string(),
            r.mem.sw_prefetch_reads.to_string(),
            r.mem.writes.to_string(),
            f2(r.bandwidth_gbps()),
            f2(r.avg_read_latency_ns()),
            f2(r.read_latency_percentile_ns(0.99)),
        ]);
    }
    emit_table("table3_characterization", &rows);
    println!();
    println!("FP streaming codes (swim, mgrid, applu) should dominate bandwidth;");
    println!("integer codes (parser, vortex) should be latency-bound at low MPKI.");
}
