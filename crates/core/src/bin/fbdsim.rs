//! `fbdsim` — command-line experiment runner for the FB-DIMM AMB
//! prefetching simulator.
//!
//! ```text
//! fbdsim list
//! fbdsim list-substrates
//! fbdsim list-schedulers
//! fbdsim run     --workload 4C-1 --substrate fbd-ap [--scheduler fcfs] [--budget N] [--seed N]
//!                [--csv] [--json] [--stats-json stats.json] [--trace-out trace.json]
//! fbdsim profile --workload 1C-swim [--system fbd-ap] [--folded-out folded.txt]
//! fbdsim compare --workload 1C-swim [--substrate a,b,c] [--budget N] [--csv] [--fidelity auto]
//! fbdsim sweep   --workload 1C-mgrid --knob {k|entries|assoc|channels|rate|grid} [--csv]
//! ```
//!
//! Substrates come from the `fbd_types::substrate::substrates()`
//! registry (`fbdsim list-substrates` prints them); `--system` is an
//! exact alias of `--substrate` on `run` for backward compatibility.
//! Workloads: the paper's Table 3 mixes (`2C-1` … `8C-3`) and the
//! single-program workloads (`1C-<benchmark>`).

use std::io::{IsTerminal, Write};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fbd_core::experiment::{default_budget, ExperimentConfig};
use fbd_core::{calibrate, parallel_map, pareto_frontier, Calibration, Composition, Fidelity};
use fbd_core::{RunResult, RunSpec};
use fbd_ctrl::{schedulers, scrub_policies};
use fbd_telemetry::host::{Counter, HostProfiler, PHASES};
use fbd_telemetry::live::{bar, fmt_duration, si, sparkline};
use fbd_telemetry::{Json, LogHistogram, SampleObserver, TelemetryConfig};
use fbd_types::config::{
    Associativity, FaultConfig, FaultMode, Interleaving, ScrubPolicyKind, SystemConfig,
};
use fbd_types::request::{REQ_CLASSES, STAGES};
use fbd_types::substrate::substrates;
use fbd_types::time::DataRate;
use fbd_workloads::{paper_workloads, Workload};

fn usage_text() -> String {
    "usage:\n  fbdsim list\n  fbdsim list-substrates\n  fbdsim list-schedulers\n  fbdsim version\n  \
     fbdsim run --workload <name> --substrate <name> [--scheduler <name>] \
     [--budget N] [--seed N]\n             [--csv] [--json] [--timeline] [--live] \
     [--stats-json <file>] [--trace-out <file>] [--sample-interval <cycles>]\n  \
     fbdsim profile --workload <name> [--system <name>] [--budget N] [--seed N] [--json]\n             \
     [--folded-out <file>] [--stats-json <file>]\n  \
     fbdsim compare --workload <name> [--substrate <a,b,c>] [--scheduler <name>] [--budget N] \
     [--seed N] [--csv] [--json] [--live] [--stats-json <file>]\n  \
     fbdsim sweep --workload <name> --knob <k|entries|assoc|channels|rate|grid> \
     [--substrate <name>] [--scheduler <name>]\n             [--budget N] [--seed N] \
     [--csv] [--json] [--live] [--stats-json <file>]\n  \
     fbdsim record --workload <name> --system <name> --out <trace.csv> [--budget N] [--seed N]\n  \
     fbdsim replay --trace <trace.csv> --system <name>\n\n\
     substrate options:\n  \
     --substrate <name>         registered memory substrate (see `fbdsim list-substrates`);\n                             \
     on run, --system is an exact alias; on compare, a\n                             \
     comma-separated list replaces the default paper grid\n  \
     --scheduler <name>         registered scheduling policy (see `fbdsim list-schedulers`;\n                             \
     default hit-first)\n\n\
     statistics options:\n  \
     --stats-json <file>        write machine-readable statistics as JSON (run: one\n                             \
     document; compare/sweep: one document covering every grid point)\n  \
     --json                     print the same statistics JSON to stdout\n\n\
     telemetry options (run):\n  \
     --trace-out <file>         write a Chrome-trace (Perfetto-loadable) event trace\n  \
     --sample-interval <cycles> snapshot all metrics every N memory-clock cycles\n\n\
     display options (run/compare/sweep):\n  \
     --live                     live stderr dashboard while the simulation runs: host\n                             \
     throughput sparkline, per-phase wall-time bars, grid\n                             \
     progress and hot-loop counters (requires a terminal on\n                             \
     stderr, silently off otherwise; `q` + Enter detaches)\n\n\
     fault-injection options (run/profile/compare/sweep):\n  \
     --fault-ber <rate>         channel bit-error rate in [0,1] (0 = injection off)\n  \
     --fault-seed <n>           error-process seed (default 1)\n  \
     --fault-mode <mode>        ber|burst|stuck-lane (default ber)\n\n\
     reliability options (run/profile/compare/sweep):\n  \
     --crc-bits <n>             effective CRC strength in check bits; corrupted frames\n                             \
     escape detection with probability ~2^-n (0 = ideal CRC,\n                             \
     every corruption detected; requires --fault-ber)\n  \
     --scrub <policy>           background scrub policy: none|patrol (default none;\n                             \
     patrol costs bandwidth even on a clean channel)\n  \
     --scrub-interval-ns <n>    per-channel patrol rate limit in ns (default 600;\n                             \
     requires --scrub patrol)\n  \
     --failback <quiet-ns>      re-probe failed-over lanes after this quiet period with\n                             \
     bounded exponential backoff (0 = fail-over is permanent;\n                             \
     requires --fault-ber)\n  \
     --reissue <budget>         dropped prefetch returns remembered per channel and\n                             \
     re-issued in idle slots (0 = off; requires --fault-ber)\n\n\
     fidelity options (run/compare/sweep):\n  \
     --fidelity <mode>          accurate: cycle-stepped simulator (default)\n                             \
     fast: calibrated analytic queue model; output embeds the\n                             \
     calibration's held-out error bounds\n                             \
     auto (compare/sweep): fast for the whole grid, then accurate\n                             \
     re-runs of the IPC/energy Pareto frontier, points tagged\n\n\
     profile options:\n  \
     --folded-out <file>        write folded stacks (flamegraph.pl / speedscope input)"
        .to_string()
}

/// Value-taking and boolean options accepted by each subcommand.
const RUN_KEYS: &[&str] = &[
    "workload",
    "system",
    "substrate",
    "scheduler",
    "budget",
    "seed",
    "stats-json",
    "trace-out",
    "sample-interval",
    "fault-ber",
    "fault-seed",
    "fault-mode",
    "crc-bits",
    "scrub",
    "scrub-interval-ns",
    "failback",
    "reissue",
    "fidelity",
];
const RUN_FLAGS: &[&str] = &["csv", "json", "timeline", "live"];
const PROFILE_KEYS: &[&str] = &[
    "workload",
    "system",
    "budget",
    "seed",
    "folded-out",
    "stats-json",
    "fault-ber",
    "fault-seed",
    "fault-mode",
    "crc-bits",
    "scrub",
    "scrub-interval-ns",
    "failback",
    "reissue",
];
const PROFILE_FLAGS: &[&str] = &["json"];
const COMPARE_KEYS: &[&str] = &[
    "workload",
    "substrate",
    "scheduler",
    "budget",
    "seed",
    "stats-json",
    "fault-ber",
    "fault-seed",
    "fault-mode",
    "crc-bits",
    "scrub",
    "scrub-interval-ns",
    "failback",
    "reissue",
    "fidelity",
];
const COMPARE_FLAGS: &[&str] = &["csv", "json", "live"];
const SWEEP_KEYS: &[&str] = &[
    "workload",
    "knob",
    "substrate",
    "scheduler",
    "budget",
    "seed",
    "stats-json",
    "fault-ber",
    "fault-seed",
    "fault-mode",
    "crc-bits",
    "scrub",
    "scrub-interval-ns",
    "failback",
    "reissue",
    "fidelity",
];
const SWEEP_FLAGS: &[&str] = &["csv", "json", "live"];
const RECORD_KEYS: &[&str] = &["workload", "system", "out", "budget", "seed"];
const RECORD_FLAGS: &[&str] = &[];
const REPLAY_KEYS: &[&str] = &["trace", "system"];
const REPLAY_FLAGS: &[&str] = &[];

/// Rejects options a subcommand does not understand (usage error 2,
/// like every other argument mistake), so a typo never silently runs
/// with defaults. Value-taking options missing their value and boolean
/// flags given a value are reported specifically.
fn validate_args(cmd: &str, args: &Args, keys: &[&str], flags: &[&str]) -> Result<(), ExitCode> {
    for (k, _) in &args.pairs {
        if flags.contains(&k.as_str()) {
            eprintln!("--{k} does not take a value");
            return Err(usage());
        }
        if !keys.contains(&k.as_str()) {
            eprintln!("unknown option `--{k}` for `fbdsim {cmd}`");
            return Err(usage());
        }
    }
    for f in &args.flags {
        if keys.contains(&f.as_str()) {
            eprintln!("--{f} requires a value");
            return Err(usage());
        }
        if !flags.contains(&f.as_str()) {
            eprintln!("unknown option `--{f}` for `fbdsim {cmd}`");
            return Err(usage());
        }
    }
    Ok(())
}

fn usage() -> ExitCode {
    eprintln!("{}", usage_text());
    ExitCode::from(2)
}

fn help() -> ExitCode {
    println!("{}", usage_text());
    ExitCode::SUCCESS
}

/// Minimal flag parser: `--key value` pairs after the subcommand.
struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Option<Args> {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            let key = a.strip_prefix("--")?;
            if it.peek().is_some_and(|v| !v.starts_with("--")) {
                if let Some(v) = it.next() {
                    pairs.push((key.to_string(), v.clone()));
                }
            } else {
                flags.push(key.to_string());
            }
        }
        Some(Args { pairs, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

fn all_workloads() -> Vec<Workload> {
    let (c1, c2, c4, c8) = paper_workloads();
    c1.into_iter().chain(c2).chain(c4).chain(c8).collect()
}

fn find_workload(name: &str) -> Option<Workload> {
    fbd_workloads::find(name)
}

fn system_config(name: &str, cores: u32) -> Option<SystemConfig> {
    let mut cfg = SystemConfig::paper_default(cores);
    cfg.mem = substrates().get(name)?.config();
    Some(cfg)
}

/// The composition metadata a CLI run reports. The substrate label is
/// the name the user selected — kept verbatim so it stays meaningful
/// when fault flags make the config diverge from the registered preset
/// (where [`Composition::from_config`] would report `custom`). The
/// scheduler is the validated `--scheduler` choice; the rest comes from
/// the config's own switches.
fn composition_for(sname: &str, sched: &str, cfg: &SystemConfig) -> Composition {
    Composition {
        substrate: sname.to_string(),
        scheduler: sched.to_string(),
        mapper: "interleaved".to_string(),
        refresh: if cfg.mem.refresh.enabled {
            "staggered"
        } else {
            "none"
        }
        .to_string(),
    }
}

/// Resolves the `--scheduler` flag shared by `run`/`compare`/`sweep`.
/// Absent means the registered default (`hit-first`); unknown names are
/// usage errors listing the registry.
fn scheduler_options(args: &Args) -> Result<&str, ExitCode> {
    if args.has_flag("scheduler") {
        eprintln!("--scheduler requires a value");
        return Err(ExitCode::from(2));
    }
    let name = args.get("scheduler").unwrap_or("hit-first");
    if schedulers().get(name).is_none() {
        eprintln!(
            "unknown scheduler `{name}` (available: {})",
            schedulers().available()
        );
        return Err(ExitCode::from(2));
    }
    Ok(name)
}

fn experiment(args: &Args) -> Result<ExperimentConfig, ExitCode> {
    let mut exp = ExperimentConfig {
        budget: default_budget(),
        ..ExperimentConfig::default()
    };
    if let Some(v) = args.get("budget") {
        match v.parse::<u64>() {
            Ok(b) if b > 0 => exp.budget = b,
            _ => {
                eprintln!("--budget must be a positive instruction count, got `{v}`");
                return Err(ExitCode::from(2));
            }
        }
    }
    if let Some(v) = args.get("seed") {
        match v.parse::<u64>() {
            Ok(s) => exp.seed = s,
            Err(_) => {
                eprintln!("--seed must be an unsigned integer, got `{v}`");
                return Err(ExitCode::from(2));
            }
        }
    }
    Ok(exp)
}

/// Resolves the fault-injection and reliability flags shared by
/// `run`/`profile`/`compare`/`sweep`. `Ok(None)` means neither
/// injection nor any recovery policy was requested (the channel models
/// stay on the zero-cost no-fault path); `Err` is a usage error
/// already reported on stderr.
///
/// `--scrub` stands alone — patrol scrubbing costs bandwidth on a
/// clean channel too, so it is meaningful without an error process.
/// The other reliability knobs shape how errors are detected or
/// recovered from, so they require `--fault-ber`.
fn fault_options(args: &Args) -> Result<Option<FaultConfig>, ExitCode> {
    for key in [
        "fault-ber",
        "fault-seed",
        "fault-mode",
        "crc-bits",
        "scrub",
        "scrub-interval-ns",
        "failback",
        "reissue",
    ] {
        if args.has_flag(key) {
            eprintln!("--{key} requires a value");
            return Err(ExitCode::from(2));
        }
    }
    if args.get("fault-ber").is_none() {
        for key in [
            "fault-seed",
            "fault-mode",
            "crc-bits",
            "failback",
            "reissue",
        ] {
            if args.get(key).is_some() {
                eprintln!("--{key} requires --fault-ber");
                return Err(ExitCode::from(2));
            }
        }
    }
    if args.get("scrub-interval-ns").is_some() && args.get("scrub") != Some("patrol") {
        eprintln!("--scrub-interval-ns requires --scrub patrol");
        return Err(ExitCode::from(2));
    }
    if args.get("fault-ber").is_none() && args.get("scrub").is_none() {
        return Ok(None);
    }
    let mut fc = FaultConfig::off();
    if let Some(ber_s) = args.get("fault-ber") {
        match ber_s.parse::<f64>() {
            Ok(b) if b.is_finite() && (0.0..=1.0).contains(&b) => fc.ber = b,
            _ => {
                eprintln!("--fault-ber must be a bit-error rate in [0, 1], got `{ber_s}`");
                return Err(ExitCode::from(2));
            }
        }
    }
    if let Some(v) = args.get("fault-seed") {
        match v.parse::<u64>() {
            Ok(s) => fc.seed = s,
            Err(_) => {
                eprintln!("--fault-seed must be an unsigned integer, got `{v}`");
                return Err(ExitCode::from(2));
            }
        }
    }
    if let Some(v) = args.get("fault-mode") {
        match FaultMode::by_name(v) {
            Some(m) => fc.mode = m,
            None => {
                eprintln!("--fault-mode must be ber, burst or stuck-lane, got `{v}`");
                return Err(ExitCode::from(2));
            }
        }
    }
    if let Some(v) = args.get("crc-bits") {
        match v.parse::<u32>() {
            Ok(b) if b <= 64 => fc.crc_bits = b,
            _ => {
                eprintln!("--crc-bits must be an integer in [0, 64], got `{v}`");
                return Err(ExitCode::from(2));
            }
        }
    }
    if let Some(v) = args.get("scrub") {
        match ScrubPolicyKind::by_name(v) {
            Some(k) => fc.scrub = k,
            None => {
                eprintln!(
                    "unknown scrub policy `{v}` (available: {})",
                    scrub_policies().available()
                );
                return Err(ExitCode::from(2));
            }
        }
    }
    if let Some(v) = args.get("scrub-interval-ns") {
        match v.parse::<u64>() {
            Ok(n) if n > 0 => fc.scrub_interval_ns = n,
            _ => {
                eprintln!("--scrub-interval-ns must be a positive nanosecond count, got `{v}`");
                return Err(ExitCode::from(2));
            }
        }
    }
    if let Some(v) = args.get("failback") {
        match v.parse::<u64>() {
            Ok(n) => fc.failback_quiet_ns = n,
            Err(_) => {
                eprintln!("--failback must be a quiet period in ns (0 = off), got `{v}`");
                return Err(ExitCode::from(2));
            }
        }
    }
    if let Some(v) = args.get("reissue") {
        match v.parse::<u32>() {
            Ok(n) => fc.reissue_budget = n,
            Err(_) => {
                eprintln!("--reissue must be a per-channel line budget (0 = off), got `{v}`");
                return Err(ExitCode::from(2));
            }
        }
    }
    Ok(Some(fc))
}

/// Resolves the `--fidelity` flag shared by `run`/`compare`/`sweep`.
/// Absent means accurate (the cycle simulator); `Err` is a usage error
/// already reported on stderr.
fn fidelity_options(args: &Args) -> Result<Fidelity, ExitCode> {
    if args.has_flag("fidelity") {
        eprintln!("--fidelity requires a value");
        return Err(ExitCode::from(2));
    }
    match args.get("fidelity") {
        None => Ok(Fidelity::Accurate),
        Some(v) => match Fidelity::by_name(v) {
            Some(f) => Ok(f),
            None => {
                eprintln!("--fidelity must be accurate, fast or auto, got `{v}`");
                Err(ExitCode::from(2))
            }
        },
    }
}

/// Throttled `done/total/ETA` progress meter for grid commands. It
/// prints to stderr only when both stderr *and* stdout are terminals
/// (so piped and CI output stays byte-identical on either stream) and
/// never while the `--live` dashboard owns stderr.
struct Progress {
    enabled: bool,
    total: usize,
    done: AtomicUsize,
    start: Instant,
    last: Mutex<Option<Instant>>,
}

impl Progress {
    const THROTTLE_MS: u128 = 100;

    fn new(total: usize, live: bool) -> Progress {
        Progress {
            enabled: !live && std::io::stderr().is_terminal() && std::io::stdout().is_terminal(),
            total,
            done: AtomicUsize::new(0),
            start: Instant::now(),
            last: Mutex::new(None),
        }
    }

    /// Records one finished grid point; safe to call from worker
    /// threads. The final point always prints (then clears the line).
    fn tick(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        {
            let mut last = self.last.lock().unwrap();
            let due = last.is_none_or(|t| now.duration_since(t).as_millis() >= Self::THROTTLE_MS);
            if !due && done != self.total {
                return;
            }
            *last = Some(now);
        }
        let elapsed = self.start.elapsed().as_secs_f64();
        let eta = elapsed / done as f64 * (self.total - done) as f64;
        let mut err = std::io::stderr();
        if done == self.total {
            // Clear the meter so the report that follows starts clean.
            let _ = write!(err, "\r{:64}\r", "");
        } else {
            let _ = write!(
                err,
                "\r  {done}/{} points, {elapsed:.0}s elapsed, ETA {eta:.0}s ",
                self.total
            );
        }
        let _ = err.flush();
    }
}

/// Sample cadence driving the `--live` dashboard when the user gave no
/// `--sample-interval`: one telemetry snapshot (and one throughput
/// observation) every 1024 memory-clock cycles.
const LIVE_SAMPLE_CYCLES: u64 = 1024;

/// Shared state behind the `--live` dashboard: the simulation threads
/// write it (per-point [`HostProfiler`]s, sampler observers, the done
/// counter) and the render thread reads it a few times per second.
struct LiveState {
    workload: String,
    total: usize,
    done: AtomicUsize,
    /// Labeled per-point profilers, registered as grid points start.
    points: Mutex<Vec<(String, Arc<HostProfiler>)>>,
    /// Total simulated picoseconds advanced across all points, fed by
    /// the per-point sample observers.
    sim_ps: AtomicU64,
    /// Memory-clock period (ps) for converting simulated time to
    /// cycles; grids use the first point's clock.
    clock_ps: u64,
    /// Set by the stdin reader when the user types `q` + Enter: the
    /// dashboard erases itself and stops drawing, the run continues.
    detached: AtomicBool,
}

impl LiveState {
    fn new(workload: &str, total: usize, clock: fbd_types::time::Dur) -> Arc<LiveState> {
        Arc::new(LiveState {
            workload: workload.to_string(),
            total,
            done: AtomicUsize::new(0),
            points: Mutex::new(Vec::new()),
            sim_ps: AtomicU64::new(0),
            clock_ps: clock.as_ps().max(1),
            detached: AtomicBool::new(false),
        })
    }

    fn register(&self, label: &str, profiler: Arc<HostProfiler>) {
        self.points
            .lock()
            .expect("live points poisoned")
            .push((label.to_string(), profiler));
    }

    /// A sampler observer accumulating one point's simulated-time
    /// progress into the shared total (each point keeps its own
    /// last-seen instant, so concurrent points compose additively).
    fn observer(self: &Arc<Self>) -> SampleObserver {
        let state = Arc::clone(self);
        let last_ps = Mutex::new(0u64);
        SampleObserver::new(move |row, _| {
            let mut last = last_ps.lock().expect("observer state poisoned");
            let ps = row.at.as_ps();
            state
                .sim_ps
                .fetch_add(ps.saturating_sub(*last), Ordering::Relaxed);
            *last = ps;
        })
    }

    fn point_done(&self) {
        self.done.fetch_add(1, Ordering::Relaxed);
    }
}

/// The `--live` dashboard: a render thread that redraws a small stderr
/// panel ~5×/second (throughput sparkline, per-phase wall-time bars,
/// grid progress, hot-loop counters) while the simulation runs, then
/// erases it so the report that follows starts clean. Callers only
/// construct one when stderr is a terminal; without one, a `--live`
/// run's output is byte-identical to a run without the flag.
struct LiveDashboard {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl LiveDashboard {
    const FRAME_MS: u64 = 200;
    /// Sparkline history window (frames) kept for the throughput row.
    const HISTORY: usize = 32;

    fn start(state: Arc<LiveState>) -> LiveDashboard {
        // `q` + Enter detaches. The reader thread blocks on stdin, so
        // it is left detached (it dies with the process) and is only
        // spawned when stdin is interactive.
        if std::io::stdin().is_terminal() {
            let st = Arc::clone(&state);
            std::thread::spawn(move || {
                let mut line = String::new();
                loop {
                    line.clear();
                    match std::io::stdin().read_line(&mut line) {
                        Ok(0) | Err(_) => return,
                        Ok(_) if line.trim() == "q" => {
                            st.detached.store(true, Ordering::Relaxed);
                            return;
                        }
                        Ok(_) => {}
                    }
                }
            });
        }
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || Self::render_loop(&state, &stop))
        };
        LiveDashboard {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the render thread and waits for it to erase the panel.
    fn finish(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    fn render_loop(state: &LiveState, stop: &AtomicBool) {
        let start = Instant::now();
        let mut history: Vec<f64> = Vec::new();
        let mut last_ps = 0u64;
        let mut last_frame = start;
        let mut drawn = 0usize;
        loop {
            let stopping = stop.load(Ordering::Relaxed);
            if state.detached.load(Ordering::Relaxed) {
                Self::erase(&mut drawn);
                return;
            }
            let now = Instant::now();
            let ps = state.sim_ps.load(Ordering::Relaxed);
            let dt = now.duration_since(last_frame).as_secs_f64();
            if dt > 0.0 {
                let cycles = ps.saturating_sub(last_ps) as f64 / state.clock_ps as f64;
                history.push(cycles / dt);
                if history.len() > Self::HISTORY {
                    history.remove(0);
                }
            }
            last_ps = ps;
            last_frame = now;
            if stopping {
                Self::erase(&mut drawn);
                return;
            }
            Self::draw(state, start, &history, ps, &mut drawn);
            std::thread::sleep(Duration::from_millis(Self::FRAME_MS));
        }
    }

    /// Renders one frame: erases the previous panel (cursor-up + clear
    /// to end of screen), then prints the new one.
    fn draw(state: &LiveState, start: Instant, history: &[f64], sim_ps: u64, drawn: &mut usize) {
        let mut frame = String::new();
        if *drawn > 0 {
            frame.push_str(&format!("\x1b[{}A\x1b[J", *drawn));
        }
        let done = state.done.load(Ordering::Relaxed).min(state.total);
        let mut lines = vec![format!(
            "  {} live   {done}/{} point(s)   {} elapsed   (q⏎ detaches)",
            state.workload,
            state.total,
            fmt_duration(start.elapsed())
        )];
        let current = history.last().copied().unwrap_or(0.0);
        let total_cycles = sim_ps as f64 / state.clock_ps as f64;
        let avg = total_cycles / start.elapsed().as_secs_f64().max(1e-9);
        lines.push(format!(
            "  sim speed   {}  {}cyc/s now, {}cyc/s avg",
            sparkline(history, Self::HISTORY),
            si(current),
            si(avg)
        ));
        // Aggregate phases and counters across every registered point.
        let points = state.points.lock().expect("live points poisoned");
        let mut phases = [Duration::ZERO; PHASES.len()];
        let mut counts = [0u64; fbd_telemetry::host::COUNTERS.len()];
        for (_, prof) in points.iter() {
            for (slot, d) in phases.iter_mut().zip(prof.phase_snapshot()) {
                *slot += d;
            }
            for (slot, &(c, _)) in counts.iter_mut().zip(&fbd_telemetry::host::COUNTERS) {
                *slot += prof.counter(c);
            }
        }
        drop(points);
        let busy: Duration = phases.iter().sum();
        if !busy.is_zero() {
            for (&(_, label), d) in PHASES.iter().zip(&phases) {
                if d.is_zero() {
                    continue;
                }
                let frac = d.as_secs_f64() / busy.as_secs_f64();
                lines.push(format!(
                    "  {label:<11} {} {:>5.1}%",
                    bar(frac, 24),
                    frac * 100.0
                ));
            }
        }
        lines.push(format!(
            "  counters    {} events, {} retired, {} frames, {} retries",
            si(counts[Counter::Events as usize] as f64),
            si(counts[Counter::RequestsRetired as usize] as f64),
            si(counts[Counter::FramesSent as usize] as f64),
            si(counts[Counter::Retries as usize] as f64),
        ));
        for l in &lines {
            frame.push_str(l);
            // Clear to end of line so shrinking lines leave no residue.
            frame.push_str("\x1b[K\n");
        }
        *drawn = lines.len();
        let mut err = std::io::stderr();
        let _ = err.write_all(frame.as_bytes());
        let _ = err.flush();
    }

    fn erase(drawn: &mut usize) {
        if *drawn > 0 {
            let mut err = std::io::stderr();
            let _ = write!(err, "\x1b[{}A\x1b[J", *drawn);
            let _ = err.flush();
            *drawn = 0;
        }
    }
}

/// The `calibration` object embedded in every fast-fidelity stats
/// document: the fitted parameters plus the held-out error bounds.
fn calibration_json(cal: &Calibration) -> Json {
    let rep = &cal.report;
    let err = |e: &fbd_model::MetricError| {
        Json::Obj(vec![
            ("mean_rel".into(), Json::from(e.mean_rel)),
            ("max_rel".into(), Json::from(e.max_rel)),
        ])
    };
    Json::Obj(vec![
        ("substrate".into(), Json::from(rep.substrate)),
        (
            "params".into(),
            Json::Obj(vec![
                (
                    "service_inflation".into(),
                    Json::from(rep.params.service_inflation),
                ),
                ("hit_scaling".into(), Json::from(rep.params.hit_scaling)),
                ("contention".into(), Json::from(rep.params.contention)),
                ("demand_scale".into(), Json::from(rep.params.demand_scale)),
                ("swpf_scale".into(), Json::from(rep.params.swpf_scale)),
                ("write_scale".into(), Json::from(rep.params.write_scale)),
            ]),
        ),
        ("fit_points".into(), Json::from(rep.fit_points)),
        ("holdout_points".into(), Json::from(rep.holdout_points)),
        ("ipc".into(), err(&rep.ipc)),
        ("latency".into(), err(&rep.latency)),
        ("bandwidth".into(), err(&rep.bandwidth)),
        ("energy".into(), err(&rep.energy)),
    ])
}

/// Runs a labeled grid at the requested fidelity. Returns the per-point
/// results in grid order, the fidelity tag each point actually ran at,
/// and the calibration when the fast model was involved. `Err` carries
/// an exit code already reported on stderr.
///
/// Every point runs with its own enabled [`HostProfiler`] (created at
/// run time, so a point's wall clock starts when *it* starts), which is
/// where the `host` object in every grid stats document comes from.
/// With `live`, points also carry a sampler (at the dashboard's default
/// cadence) whose observer feeds the shared throughput meter.
#[allow(clippy::type_complexity)]
fn run_grid(
    grid: &[(String, String, SystemConfig)],
    workload: &Workload,
    exp: ExperimentConfig,
    fidelity: Fidelity,
    sched: &str,
    live: Option<&Arc<LiveState>>,
) -> Result<(Vec<RunResult>, Vec<Fidelity>, Option<Arc<Calibration>>), ExitCode> {
    let point_spec = |i: usize| -> RunSpec {
        let (label, _, cfg) = &grid[i];
        let profiler = Arc::new(HostProfiler::enabled());
        let mut spec = spec_for(*cfg, workload, exp, sched).host_profiler(Arc::clone(&profiler));
        if let Some(state) = live {
            state.register(label, profiler);
            spec = spec
                .telemetry(TelemetryConfig {
                    sample_interval: Some(cfg.mem.data_rate.clock_period() * LIVE_SAMPLE_CYCLES),
                    trace: false,
                })
                .sample_observer(state.observer());
        }
        spec
    };
    let indices: Vec<usize> = (0..grid.len()).collect();
    if fidelity == Fidelity::Accurate {
        let progress = Progress::new(grid.len(), live.is_some());
        let results = parallel_map(&indices, |&i| {
            let r = point_spec(i).run();
            progress.tick();
            if let Some(state) = live {
                state.point_done();
            }
            r
        });
        return Ok((results, vec![Fidelity::Accurate; grid.len()], None));
    }
    let Some((_, _, first)) = grid.first() else {
        return Ok((Vec::new(), Vec::new(), None));
    };
    if live.is_none() && std::io::stderr().is_terminal() {
        eprintln!("calibrating the fast model (accurate fit + holdout runs)...");
    }
    let cal = match calibrate(&spec_for(*first, workload, exp, sched)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return Err(ExitCode::FAILURE);
        }
    };
    let mut results = Vec::with_capacity(grid.len());
    for &i in &indices {
        match point_spec(i).try_run_fast(&cal) {
            Ok(r) => {
                results.push(r);
                if let Some(state) = live {
                    state.point_done();
                }
            }
            Err(e) => {
                eprintln!("{}: {e}", grid[i].0);
                return Err(ExitCode::FAILURE);
            }
        }
    }
    let mut tags = vec![Fidelity::Fast; grid.len()];
    if fidelity == Fidelity::Auto {
        // Re-run only the model's IPC/energy Pareto frontier through
        // the cycle simulator; dominated points keep their fast result.
        // Re-runs get fresh profilers (via `point_spec`), so a frontier
        // point's host report covers its accurate run only; the done
        // counter is not re-ticked (the point was already counted).
        let points: Vec<(f64, f64)> = results
            .iter()
            .map(|r| (r.ipcs().iter().sum::<f64>(), r.energy.total_nj()))
            .collect();
        let frontier = pareto_frontier(&points);
        let progress = Progress::new(frontier.len(), live.is_some());
        let accurate = parallel_map(&frontier, |&i| {
            let r = point_spec(i).run();
            progress.tick();
            r
        });
        for (&i, r) in frontier.iter().zip(accurate) {
            results[i] = r;
            tags[i] = Fidelity::Accurate;
        }
    }
    Ok((results, tags, Some(cal)))
}

/// Builds the [`RunSpec`] every subcommand runs through: the resolved
/// system and workload, the validated scheduler name, plus the shared
/// `--budget`/`--seed` run control.
fn spec_for(cfg: SystemConfig, workload: &Workload, exp: ExperimentConfig, sched: &str) -> RunSpec {
    RunSpec::new(cfg)
        .with_workload(workload.clone())
        .experiment(exp)
        .scheduler(sched)
}

/// Resolves the run subcommand's telemetry flags. `Ok(None)` means no
/// telemetry was requested (the run pays zero instrumentation cost);
/// `Err` is a usage error already reported on stderr.
fn telemetry_options(args: &Args, cfg: &SystemConfig) -> Result<Option<TelemetryConfig>, ExitCode> {
    for key in ["stats-json", "trace-out", "sample-interval"] {
        if args.has_flag(key) {
            eprintln!("--{key} requires a value");
            return Err(ExitCode::from(2));
        }
    }
    let sample_interval = match args.get("sample-interval") {
        None => None,
        Some(v) => match v.parse::<u64>() {
            Ok(cycles) if cycles > 0 => Some(cfg.mem.data_rate.clock_period() * cycles),
            _ => {
                eprintln!("--sample-interval must be a positive cycle count, got `{v}`");
                return Err(ExitCode::from(2));
            }
        },
    };
    let trace = args.get("trace-out").is_some();
    if sample_interval.is_none() && !trace {
        return Ok(None);
    }
    Ok(Some(TelemetryConfig {
        sample_interval,
        trace,
    }))
}

/// The machine-readable statistics document written by `--stats-json`
/// and printed by `--json`: everything the human report shows, plus the
/// full metric registry and epoch time-series when telemetry ran.
fn stats_document(workload: &Workload, system: &str, comp: &Composition, r: &RunResult) -> Json {
    let ipc_sum: f64 = r.ipcs().iter().sum();
    let bw = r.channel_bandwidth_gbps();
    let channels: Vec<Json> = r
        .channels
        .iter()
        .zip(&bw)
        .enumerate()
        .map(|(c, (counts, gbps))| {
            Json::Obj(vec![
                ("channel".into(), Json::from(c)),
                ("reads".into(), Json::from(counts.reads)),
                ("writes".into(), Json::from(counts.writes)),
                ("bytes".into(), Json::from(counts.bytes)),
                ("amb_hits".into(), Json::from(counts.amb_hits)),
                ("bandwidth_gbps".into(), Json::from(*gbps)),
            ])
        })
        .collect();
    let max_ns = r.mem.read_latency.max().map_or(0.0, |d| d.as_ns_f64());
    let mut fields = vec![
        ("workload".to_string(), Json::from(workload.name())),
        ("system".to_string(), Json::from(system)),
        (
            "composition".to_string(),
            Json::Obj(vec![
                ("substrate".into(), Json::from(comp.substrate.as_str())),
                ("scheduler".into(), Json::from(comp.scheduler.as_str())),
                ("mapper".into(), Json::from(comp.mapper.as_str())),
                ("refresh".into(), Json::from(comp.refresh.as_str())),
            ]),
        ),
        ("elapsed_ns".to_string(), Json::from(r.elapsed.as_ns_f64())),
        ("ipc_sum".to_string(), Json::from(ipc_sum)),
        (
            "ipc".to_string(),
            Json::Arr(r.ipcs().into_iter().map(Json::from).collect()),
        ),
        ("bandwidth_gbps".to_string(), Json::from(r.bandwidth_gbps())),
        (
            "traffic".to_string(),
            Json::Obj(vec![
                ("demand_reads".into(), Json::from(r.mem.demand_reads)),
                (
                    "sw_prefetch_reads".into(),
                    Json::from(r.mem.sw_prefetch_reads),
                ),
                (
                    "hw_prefetch_reads".into(),
                    Json::from(r.mem.hw_prefetch_reads),
                ),
                ("writes".into(), Json::from(r.mem.writes)),
                ("data_bytes".into(), Json::from(r.mem.data_bytes)),
            ]),
        ),
        ("channels".to_string(), Json::Arr(channels)),
        (
            "read_latency".to_string(),
            Json::Obj(vec![
                ("count".into(), Json::from(r.mem.read_latency.count())),
                ("mean_ns".into(), Json::from(r.avg_read_latency_ns())),
                ("max_ns".into(), Json::from(max_ns)),
                (
                    "p50_ns".into(),
                    Json::from(r.read_latency_percentile_ns(0.50)),
                ),
                (
                    "p95_ns".into(),
                    Json::from(r.read_latency_percentile_ns(0.95)),
                ),
                (
                    "p99_ns".into(),
                    Json::from(r.read_latency_percentile_ns(0.99)),
                ),
            ]),
        ),
        (
            "prefetch".to_string(),
            Json::Obj(vec![
                ("amb_hits".into(), Json::from(r.mem.amb_hits)),
                (
                    "lines_prefetched".into(),
                    Json::from(r.mem.lines_prefetched),
                ),
                ("coverage".into(), Json::from(r.mem.prefetch_coverage())),
                ("efficiency".into(), Json::from(r.mem.prefetch_efficiency())),
            ]),
        ),
        (
            "dram".to_string(),
            Json::Obj(vec![
                ("act_pre".into(), Json::from(r.mem.dram_ops.act_pre)),
                ("col_reads".into(), Json::from(r.mem.dram_ops.col_reads)),
                ("col_writes".into(), Json::from(r.mem.dram_ops.col_writes)),
                ("refreshes".into(), Json::from(r.mem.dram_ops.refreshes)),
            ]),
        ),
        (
            "energy".to_string(),
            Json::Obj(vec![
                (
                    "current_set".into(),
                    Json::from(r.energy.current_set.as_str()),
                ),
                ("activation_nj".into(), Json::from(r.energy.activation_nj)),
                ("burst_nj".into(), Json::from(r.energy.burst_nj)),
                ("refresh_nj".into(), Json::from(r.energy.refresh_nj)),
                ("background_nj".into(), Json::from(r.energy.background_nj)),
                ("amb_nj".into(), Json::from(r.energy.amb_nj)),
                ("total_nj".into(), Json::from(r.energy.total_nj())),
                ("total_j".into(), Json::from(r.energy.total_j())),
                ("avg_power_w".into(), Json::from(r.energy.avg_power_w())),
                (
                    "background_fraction".into(),
                    Json::from(r.energy.background_fraction()),
                ),
            ]),
        ),
    ];
    // Present only when fault injection ran, so a no-fault run's
    // document stays byte-identical to one from a build without the
    // fault flags.
    if let Some(fr) = &r.faults {
        fields.push((
            "errors".to_string(),
            Json::Obj(vec![
                ("injected".into(), Json::from(fr.counters.injected)),
                ("detected".into(), Json::from(fr.counters.detected)),
                ("retried".into(), Json::from(fr.counters.retried)),
                (
                    "retry_exhausted".into(),
                    Json::from(fr.counters.retry_exhausted),
                ),
                ("escaped".into(), Json::from(fr.counters.escaped)),
                ("failovers".into(), Json::from(fr.counters.failovers)),
                (
                    "dropped_prefetch".into(),
                    Json::from(fr.counters.dropped_prefetch),
                ),
                ("degraded_ns".into(), Json::from(fr.degraded.as_ns_f64())),
                ("probes".into(), Json::from(fr.counters.probes)),
                ("failbacks".into(), Json::from(fr.counters.failbacks)),
                ("reissued".into(), Json::from(fr.counters.reissued)),
                ("scrub_reads".into(), Json::from(fr.counters.scrub_reads)),
                (
                    "scrub_rewrites".into(),
                    Json::from(fr.counters.scrub_rewrites),
                ),
                (
                    "silent".into(),
                    Json::Obj(vec![
                        (
                            "poisoned_lines".into(),
                            Json::from(fr.silent.poisoned_lines),
                        ),
                        (
                            "demand_consumed".into(),
                            Json::from(fr.silent.demand_consumed),
                        ),
                        (
                            "scrubbed_clean".into(),
                            Json::from(fr.silent.scrubbed_clean),
                        ),
                    ]),
                ),
            ]),
        ));
    }
    fields.push(("latency_stages".to_string(), r.profile.to_json()));
    if let Some(tel) = &r.telemetry {
        fields.push(("metrics".to_string(), tel.registry.to_json()));
        if let Some(sampler) = &tel.sampler {
            fields.push(("series".to_string(), sampler.to_json(&tel.registry)));
        }
    }
    // Host-side observability: wall time, per-phase breakdown,
    // throughput and build provenance. Always present; wall-clock
    // fields are the one nondeterministic part of the document, so
    // byte-comparing consumers strip this key.
    fields.push(("host".to_string(), r.host.to_json()));
    Json::Obj(fields)
}

const CSV_HEADER: &str =
    "workload,system,ipc_sum,bandwidth_gbps,avg_latency_ns,p50_ns,p95_ns,p99_ns,\
     demand_reads,prefetch_reads,writes,amb_hits,coverage,efficiency,act_pre,col_accesses,\
     energy_total_nj,avg_power_w";

fn report(workload: &Workload, system: &str, r: &RunResult, csv: bool) {
    let ipc_sum: f64 = r.ipcs().iter().sum();
    if csv {
        println!(
            "{},{},{:.4},{:.3},{:.2},{:.2},{:.2},{:.2},{},{},{},{},{:.4},{:.4},{},{},{:.1},{:.3}",
            workload.name(),
            system,
            ipc_sum,
            r.bandwidth_gbps(),
            r.avg_read_latency_ns(),
            r.read_latency_percentile_ns(0.50),
            r.read_latency_percentile_ns(0.95),
            r.read_latency_percentile_ns(0.99),
            r.mem.demand_reads,
            r.mem.sw_prefetch_reads + r.mem.hw_prefetch_reads,
            r.mem.writes,
            r.mem.amb_hits,
            r.mem.prefetch_coverage(),
            r.mem.prefetch_efficiency(),
            r.mem.dram_ops.act_pre,
            r.mem.dram_ops.col_total(),
            r.energy.total_nj(),
            r.energy.avg_power_w(),
        );
    } else {
        println!("{} on {}:", workload.name(), system);
        println!("  IPC sum            {ipc_sum:.3}");
        println!("  bandwidth          {:.2} GB/s", r.bandwidth_gbps());
        println!(
            "  read latency       avg {:.1} / p50 {:.0} / p95 {:.0} / p99 {:.0} ns",
            r.avg_read_latency_ns(),
            r.read_latency_percentile_ns(0.50),
            r.read_latency_percentile_ns(0.95),
            r.read_latency_percentile_ns(0.99)
        );
        println!(
            "  traffic            {} demand reads, {} prefetch reads, {} writes",
            r.mem.demand_reads,
            r.mem.sw_prefetch_reads + r.mem.hw_prefetch_reads,
            r.mem.writes
        );
        if r.mem.amb_hits > 0 || r.mem.lines_prefetched > 0 {
            println!(
                "  AMB prefetching    {} hits, coverage {:.1}%, efficiency {:.1}%",
                r.mem.amb_hits,
                r.mem.prefetch_coverage() * 100.0,
                r.mem.prefetch_efficiency() * 100.0
            );
        }
        println!(
            "  DRAM operations    {} ACT/PRE, {} column accesses",
            r.mem.dram_ops.act_pre,
            r.mem.dram_ops.col_total()
        );
        println!(
            "  energy             {:.2} µJ total ({:.2} W avg), {:.0}% DRAM background",
            r.energy.total_nj() / 1_000.0,
            r.energy.avg_power_w(),
            r.energy.background_fraction() * 100.0
        );
        if let Some(fr) = &r.faults {
            println!(
                "  channel faults     {} injected, {} retried, {} exhausted, {} failovers, \
                 {} prefetch drops",
                fr.counters.injected,
                fr.counters.retried,
                fr.counters.retry_exhausted,
                fr.counters.failovers,
                fr.counters.dropped_prefetch
            );
            if fr.counters.failovers > 0 {
                println!(
                    "                     degraded-width residency {:.1} µs",
                    fr.degraded.as_ns_f64() / 1_000.0
                );
            }
            if fr.counters.escaped > 0 || fr.silent.any() {
                println!(
                    "  silent errors      {} CRC escapes, {} poisoned lines at end, \
                     {} demand reads consumed one, {} scrubbed clean",
                    fr.counters.escaped,
                    fr.silent.poisoned_lines,
                    fr.silent.demand_consumed,
                    fr.silent.scrubbed_clean
                );
            }
            if fr.counters.scrub_reads > 0 {
                println!(
                    "  patrol scrubbing   {} verify reads, {} rewrites",
                    fr.counters.scrub_reads, fr.counters.scrub_rewrites
                );
            }
            if fr.counters.probes > 0 || fr.counters.failbacks > 0 {
                println!(
                    "  lane fail-back     {} probes, {} fail-backs",
                    fr.counters.probes, fr.counters.failbacks
                );
            }
            if fr.counters.reissued > 0 {
                println!(
                    "  prefetch re-issue  {} dropped returns re-fetched",
                    fr.counters.reissued
                );
            }
        }
        if r.host.enabled {
            let mut top: Vec<(&str, Duration)> = r
                .host
                .phases
                .iter()
                .filter(|(_, d)| !d.is_zero())
                .map(|&(l, d)| (l, d))
                .collect();
            top.sort_by_key(|&(_, d)| std::cmp::Reverse(d));
            let top: Vec<String> = top
                .iter()
                .take(2)
                .map(|(l, d)| {
                    format!(
                        "{l} {:.0}%",
                        100.0 * d.as_secs_f64() / r.host.wall.as_secs_f64().max(1e-12)
                    )
                })
                .collect();
            println!(
                "  host               {} wall, {}cyc/s, {}instr/s ({})",
                fmt_duration(r.host.wall),
                si(r.host.cycles_per_sec()),
                si(r.host.instr_per_sec()),
                top.join(", ")
            );
        }
        println!();
    }
}

fn cmd_list() -> ExitCode {
    let names: Vec<&str> = substrates().names().collect();
    println!("systems: {}", names.join(" "));
    println!();
    println!("workloads:");
    for w in all_workloads() {
        let names: Vec<&str> = w.benchmarks().iter().map(|b| b.name).collect();
        println!(
            "  {:<12} {} core(s): {}",
            w.name(),
            w.cores(),
            names.join(", ")
        );
    }
    ExitCode::SUCCESS
}

/// Prints every registered substrate with its timing spec and the key
/// Table-2 parameters, in registration order.
fn cmd_list_substrates() -> ExitCode {
    println!("substrates (select with --substrate; --system is an alias on run):");
    for (name, sub) in substrates().iter() {
        let cfg = sub.config();
        let t = &cfg.timings;
        println!("  {:<10} {}", name, sub.description());
        println!(
            "             {} @ {:.0} MT/s, tCL {:.2} / tRCD {:.2} / tRP {:.2} ns, \
             {} channel(s) x {} DIMM(s)",
            sub.timing_spec(),
            cfg.data_rate.mega_transfers(),
            t.t_cl.as_ns_f64(),
            t.t_rcd.as_ns_f64(),
            t.t_rp.as_ns_f64(),
            cfg.logical_channels,
            cfg.dimms_per_channel,
        );
    }
    ExitCode::SUCCESS
}

/// Prints every registered scheduling policy, in registration order.
fn cmd_list_schedulers() -> ExitCode {
    println!("schedulers (select with --scheduler on run/compare/sweep):");
    for (name, spec) in schedulers().iter() {
        println!("  {:<10} {}", name, spec.description());
    }
    ExitCode::SUCCESS
}

fn cmd_run(args: &Args) -> ExitCode {
    if let Err(code) = validate_args("run", args, RUN_KEYS, RUN_FLAGS) {
        return code;
    }
    let Some(wname) = args.get("workload") else {
        return usage();
    };
    // `--system` (historical) and `--substrate` (registry spelling) are
    // exact aliases: both resolve through the substrate registry, so
    // their outputs are byte-identical.
    let (sname, flag) = match (args.get("system"), args.get("substrate")) {
        (Some(_), Some(_)) => {
            eprintln!("--system and --substrate are aliases; give only one");
            return ExitCode::from(2);
        }
        (Some(s), None) => (s, "system"),
        (None, Some(s)) => (s, "substrate"),
        (None, None) => return usage(),
    };
    let Some(workload) = find_workload(wname) else {
        eprintln!("unknown workload `{wname}` (try `fbdsim list`)");
        return ExitCode::from(2);
    };
    let Some(mut cfg) = system_config(sname, workload.cores()) else {
        eprintln!(
            "unknown {flag} `{sname}` (available: {})",
            substrates().available()
        );
        return ExitCode::from(2);
    };
    let sched = match scheduler_options(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let (exp, faults) = match (experiment(args), fault_options(args)) {
        (Ok(e), Ok(f)) => (e, f),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let fidelity = match fidelity_options(args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    // `auto` degenerates to accurate for a single point: the point is
    // its own Pareto frontier, so it would be re-run accurately anyway.
    let fast = fidelity == Fidelity::Fast;
    if fast && faults.is_some() {
        eprintln!("--fault-* and reliability options require --fidelity accurate");
        return ExitCode::from(2);
    }
    if fast && args.get("trace-out").is_some() {
        eprintln!("--trace-out requires --fidelity accurate");
        return ExitCode::from(2);
    }
    if let Some(fc) = faults {
        cfg.mem.faults = fc;
    }
    let mut telemetry = match telemetry_options(args, &cfg) {
        Ok(t) => t,
        Err(code) => return code,
    };
    // `--live` needs a terminal on stderr; otherwise it is silently
    // inert, so piped output stays byte-identical to a run without it.
    // The dashboard's throughput meter rides on the epoch sampler, so
    // a live run without an explicit cadence gets the default one.
    let live = args.has_flag("live") && std::io::stderr().is_terminal();
    if live
        && telemetry
            .as_ref()
            .is_none_or(|t| t.sample_interval.is_none())
    {
        let t = telemetry.get_or_insert(TelemetryConfig {
            sample_interval: None,
            trace: false,
        });
        t.sample_interval = Some(cfg.mem.data_rate.clock_period() * LIVE_SAMPLE_CYCLES);
    }
    let csv = args.has_flag("csv");
    let json_stdout = args.has_flag("json");
    let comp = composition_for(sname, sched, &cfg);
    let mut spec = spec_for(cfg, &workload, exp, sched);
    if let Some(tc) = &telemetry {
        spec = spec.telemetry(*tc);
    }
    let profiler = Arc::new(HostProfiler::enabled());
    spec = spec.host_profiler(Arc::clone(&profiler));
    let live_state =
        live.then(|| LiveState::new(workload.name(), 1, cfg.mem.data_rate.clock_period()));
    if let Some(state) = &live_state {
        state.register(sname, profiler);
        spec = spec.sample_observer(state.observer());
    }
    let dashboard = live_state
        .as_ref()
        .map(|s| LiveDashboard::start(Arc::clone(s)));
    let calibration = if fast {
        match calibrate(&spec) {
            Ok(c) => Some(c),
            Err(e) => {
                if let Some(d) = dashboard {
                    d.finish();
                }
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let run = match &calibration {
        Some(cal) => spec.try_run_fast(cal),
        None => spec.try_run(),
    };
    if let Some(d) = dashboard {
        d.finish();
    }
    let r = match run {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // The fast document carries its provenance: the fidelity tag and
    // the calibration's held-out error bounds. An accurate run's
    // document is identical whether the system was selected with
    // `--system` or `--substrate`.
    let doc = || {
        let Json::Obj(mut fields) = stats_document(&workload, sname, &comp, &r) else {
            unreachable!("stats_document always returns an object");
        };
        if let Some(cal) = &calibration {
            fields.push(("fidelity".into(), Json::from(Fidelity::Fast.label())));
            fields.push(("calibration".into(), calibration_json(cal)));
        }
        Json::Obj(fields)
    };
    if json_stdout {
        println!("{}", doc().to_json());
    } else {
        if csv {
            println!("{CSV_HEADER}");
        }
        if let Some(cal) = &calibration {
            println!(
                "fast fidelity: calibrated analytic model, held-out mean IPC error {:.1}% \
                 (max {:.1}%)",
                cal.report.ipc.mean_rel * 100.0,
                cal.report.ipc.max_rel * 100.0
            );
        }
        report(&workload, sname, &r, csv);
    }
    if let Some(path) = args.get("stats-json") {
        if let Err(e) = std::fs::write(path, doc().to_json_pretty(2)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = args.get("trace-out") {
        let Some(tracer) = r.telemetry.as_ref().and_then(|t| t.tracer.as_ref()) else {
            eprintln!("internal error: --trace-out ran without a tracer");
            return ExitCode::FAILURE;
        };
        let doc = tracer.to_chrome_trace().to_json_pretty(1);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if args.has_flag("timeline") {
        println!(
            "bandwidth over time ({} epochs):",
            r.mem.bandwidth_series.epoch()
        );
        for (i, gbps) in r.mem.bandwidth_series.series_gbps().iter().enumerate() {
            let bar = "#".repeat((gbps * 2.0).round() as usize);
            println!("  {:>5} µs  {gbps:>6.2} GB/s  {bar}", i);
        }
    }
    ExitCode::SUCCESS
}

/// One row of the per-stage attribution table.
fn stage_row(label: &str, h: &LogHistogram, e2e_total_ns: f64) -> String {
    let share = if e2e_total_ns > 0.0 {
        100.0 * h.total_ns() / e2e_total_ns
    } else {
        0.0
    };
    format!(
        "    {label:<12} {:>12.1} {:>9.2} {:>8.1} {:>8.1} {share:>6.1}%",
        h.total_ns(),
        h.mean_ns(),
        h.percentile(0.50).as_ns_f64(),
        h.percentile(0.99).as_ns_f64(),
    )
}

/// Runs one workload and prints the stage-resolved latency attribution:
/// per request class, where every nanosecond of read and write latency
/// went.
fn cmd_profile(args: &Args) -> ExitCode {
    if let Err(code) = validate_args("profile", args, PROFILE_KEYS, PROFILE_FLAGS) {
        return code;
    }
    let Some(wname) = args.get("workload") else {
        return usage();
    };
    let sname = args.get("system").unwrap_or("fbd-ap");
    let Some(workload) = find_workload(wname) else {
        eprintln!("unknown workload `{wname}` (try `fbdsim list`)");
        return ExitCode::from(2);
    };
    let Some(mut cfg) = system_config(sname, workload.cores()) else {
        eprintln!(
            "unknown system `{sname}` (available: {})",
            substrates().available()
        );
        return ExitCode::from(2);
    };
    let (exp, faults) = match (experiment(args), fault_options(args)) {
        (Ok(e), Ok(f)) => (e, f),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    if let Some(fc) = faults {
        cfg.mem.faults = fc;
    }
    let comp = composition_for(sname, "hit-first", &cfg);
    let spec =
        spec_for(cfg, &workload, exp, "hit-first").host_profiler(Arc::new(HostProfiler::enabled()));
    let r = match spec.try_run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let p = &r.profile;
    if args.has_flag("json") {
        println!("{}", stats_document(&workload, sname, &comp, &r).to_json());
    } else {
        println!("latency attribution for {} on {}:", workload.name(), sname);
        let reads = p.reads();
        let matched = reads - p.mismatches();
        let pct = if reads > 0 {
            100.0 * matched as f64 / reads as f64
        } else {
            100.0
        };
        println!(
            "  stage sums match end-to-end latency for {pct:.1}% of reads ({matched}/{reads})"
        );
        let writes = p.writes();
        let wmatched = writes - p.write_mismatches();
        let wpct = if writes > 0 {
            100.0 * wmatched as f64 / writes as f64
        } else {
            100.0
        };
        println!(
            "  stage sums match end-to-end latency for {wpct:.1}% of writes ({wmatched}/{writes})"
        );
        println!();
        for class in REQ_CLASSES {
            let e2e = p.end_to_end(class);
            if e2e.is_empty() {
                continue;
            }
            println!(
                "  {} ({} {})  e2e mean {:.1} / p50 {:.0} / p90 {:.0} / p99 {:.0} / max {:.0} ns",
                class.label(),
                e2e.count(),
                if class.is_write() { "writes" } else { "reads" },
                e2e.mean_ns(),
                e2e.percentile(0.50).as_ns_f64(),
                e2e.percentile(0.90).as_ns_f64(),
                e2e.percentile(0.99).as_ns_f64(),
                e2e.max().as_ns_f64(),
            );
            println!(
                "    {:<12} {:>12} {:>9} {:>8} {:>8} {:>7}",
                "stage", "total ns", "mean ns", "p50 ns", "p99 ns", "share"
            );
            // Skip only stages with no recorded events: a stage whose
            // share rounds to 0.0% (e.g. `retry` on a clean channel)
            // still prints when its event count is nonzero.
            for stage in STAGES {
                let h = p.stage(class, stage);
                if h.is_empty() {
                    continue;
                }
                println!("{}", stage_row(stage.label(), h, e2e.total_ns()));
            }
            println!();
        }
    }
    if let Some(path) = args.get("folded-out") {
        if let Err(e) = std::fs::write(path, p.to_folded()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = args.get("stats-json") {
        let doc = stats_document(&workload, sname, &comp, &r);
        if let Err(e) = std::fs::write(path, doc.to_json_pretty(2)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Emits the statistics a grid command (`compare`/`sweep`) collected:
/// one JSON document whose `points` array holds the full per-run stats
/// document (including the energy breakdown) for every grid point.
/// When the fast model ran, the top-level `calibration` object records
/// the fitted parameters and held-out error bounds.
fn emit_grid(
    args: &Args,
    cmd: &str,
    workload: &Workload,
    points: Vec<Json>,
    calibration: Option<&Calibration>,
    host: Json,
) -> ExitCode {
    let mut fields = vec![
        ("command".to_string(), Json::from(cmd)),
        ("workload".to_string(), Json::from(workload.name())),
    ];
    if let Some(cal) = calibration {
        fields.push(("calibration".to_string(), calibration_json(cal)));
    }
    fields.push(("host".to_string(), host));
    fields.push(("points".to_string(), Json::Arr(points)));
    let doc = Json::Obj(fields);
    if args.has_flag("json") {
        println!("{}", doc.to_json());
    }
    if let Some(path) = args.get("stats-json") {
        if let Err(e) = std::fs::write(path, doc.to_json_pretty(2)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// The grid-level `host` object on `compare`/`sweep` documents: the
/// whole command's wall time and aggregate simulation throughput plus
/// build provenance. Per-point phase breakdowns live in each point's
/// own `host` object.
fn session_host_json(start: Instant, results: &[RunResult]) -> Json {
    let wall = start.elapsed().as_secs_f64();
    let cycles: u64 = results.iter().map(|r| r.host.sim_cycles).sum();
    let instructions: u64 = results.iter().map(|r| r.host.instructions).sum();
    let per_sec = |n: u64| {
        if wall > 0.0 {
            n as f64 / wall
        } else {
            0.0
        }
    };
    let mut fields = vec![
        ("wall_s".to_string(), Json::from(wall)),
        ("sim_cycles".to_string(), Json::from(cycles)),
        ("instructions".to_string(), Json::from(instructions)),
        ("cycles_per_sec".to_string(), Json::from(per_sec(cycles))),
        (
            "instr_per_sec".to_string(),
            Json::from(per_sec(instructions)),
        ),
    ];
    if let Some(rss) = fbd_telemetry::host::peak_rss_bytes() {
        fields.push(("peak_rss_bytes".to_string(), Json::from(rss)));
    }
    fields.push(("build".to_string(), fbd_core::build_info().to_json()));
    Json::Obj(fields)
}

/// Resolves `--live` for the grid commands: active only when stderr is
/// a terminal, otherwise silently inert (output byte-identical). The
/// dashboard converts simulated time to cycles with the first grid
/// point's memory clock.
fn live_state_for(
    args: &Args,
    workload: &Workload,
    grid: &[(String, String, SystemConfig)],
) -> Option<Arc<LiveState>> {
    if !(args.has_flag("live") && std::io::stderr().is_terminal()) {
        return None;
    }
    let clock = grid
        .first()
        .map_or(DataRate::MTS667.clock_period(), |(_, _, cfg)| {
            cfg.mem.data_rate.clock_period()
        });
    Some(LiveState::new(workload.name(), grid.len(), clock))
}

fn cmd_compare(args: &Args) -> ExitCode {
    if let Err(code) = validate_args("compare", args, COMPARE_KEYS, COMPARE_FLAGS) {
        return code;
    }
    let session_start = Instant::now();
    let Some(wname) = args.get("workload") else {
        return usage();
    };
    let Some(workload) = find_workload(wname) else {
        eprintln!("unknown workload `{wname}` (try `fbdsim list`)");
        return ExitCode::from(2);
    };
    let (exp, faults) = match (experiment(args), fault_options(args)) {
        (Ok(e), Ok(f)) => (e, f),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let fidelity = match fidelity_options(args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    if faults.is_some() && fidelity != Fidelity::Accurate {
        eprintln!("--fault-* and reliability options require --fidelity accurate");
        return ExitCode::from(2);
    }
    let csv = args.has_flag("csv");
    let want_stats = args.has_flag("json") || args.get("stats-json").is_some();
    let human = !args.has_flag("json");
    if csv && human {
        println!("{CSV_HEADER}");
    }
    // Every grid point is an independent simulation: run them across
    // all cores, then report strictly in grid order so the output stays
    // byte-for-byte deterministic. `--substrate a,b,c` replaces the
    // default paper grid.
    let systems: Vec<String> = match args.get("substrate") {
        Some(list) => list.split(',').map(|s| s.trim().to_string()).collect(),
        None => ["ddr2", "fbd", "fbd-ap", "fbd-apfl"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    let sched = match scheduler_options(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let mut grid = Vec::new();
    for sname in &systems {
        let Some(mut cfg) = system_config(sname, workload.cores()) else {
            eprintln!(
                "unknown substrate `{sname}` (available: {})",
                substrates().available()
            );
            return ExitCode::from(2);
        };
        if let Some(fc) = faults {
            cfg.mem.faults = fc;
        }
        grid.push((sname.clone(), sname.clone(), cfg));
    }
    let live_state = live_state_for(args, &workload, &grid);
    let dashboard = live_state
        .as_ref()
        .map(|s| LiveDashboard::start(Arc::clone(s)));
    let run = run_grid(&grid, &workload, exp, fidelity, sched, live_state.as_ref());
    if let Some(d) = dashboard {
        d.finish();
    }
    let (results, tags, calibration) = match run {
        Ok(x) => x,
        Err(code) => return code,
    };
    let host = session_host_json(session_start, &results);
    let points = grid_points(
        &grid, &results, &tags, fidelity, &workload, sched, human, csv, want_stats,
    );
    emit_grid(
        args,
        "compare",
        &workload,
        points,
        calibration.as_deref(),
        host,
    )
}

/// Reports every grid point in order and collects the per-point stats
/// documents (when requested). Points are tagged with the fidelity they
/// ran at whenever the fast model was involved; a plain accurate grid
/// stays byte-identical to previous releases.
#[allow(clippy::too_many_arguments)]
fn grid_points(
    grid: &[(String, String, SystemConfig)],
    results: &[RunResult],
    tags: &[Fidelity],
    fidelity: Fidelity,
    workload: &Workload,
    sched: &str,
    human: bool,
    csv: bool,
    want_stats: bool,
) -> Vec<Json> {
    let mut points = Vec::new();
    for (((label, substrate, cfg), r), tag) in grid.iter().zip(results).zip(tags) {
        if human {
            report(workload, label, r, csv);
        }
        if !want_stats {
            continue;
        }
        let comp = composition_for(substrate, sched, cfg);
        let Json::Obj(mut fields) = stats_document(workload, label, &comp, r) else {
            unreachable!("stats_document always returns an object");
        };
        if fidelity != Fidelity::Accurate {
            fields.push(("fidelity".into(), Json::from(tag.label())));
        }
        points.push(Json::Obj(fields));
    }
    points
}

fn cmd_sweep(args: &Args) -> ExitCode {
    if let Err(code) = validate_args("sweep", args, SWEEP_KEYS, SWEEP_FLAGS) {
        return code;
    }
    let session_start = Instant::now();
    let (Some(wname), Some(knob)) = (args.get("workload"), args.get("knob")) else {
        return usage();
    };
    let Some(workload) = find_workload(wname) else {
        eprintln!("unknown workload `{wname}` (try `fbdsim list`)");
        return ExitCode::from(2);
    };
    let (exp, faults) = match (experiment(args), fault_options(args)) {
        (Ok(e), Ok(f)) => (e, f),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let fidelity = match fidelity_options(args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    if faults.is_some() && fidelity != Fidelity::Accurate {
        eprintln!("--fault-* and reliability options require --fidelity accurate");
        return ExitCode::from(2);
    }
    let csv = args.has_flag("csv");
    let want_stats = args.has_flag("json") || args.get("stats-json").is_some();
    let human = !args.has_flag("json");
    if csv && human {
        println!("{CSV_HEADER}");
    }
    // `--substrate` re-bases the sweep on any registered preset; the
    // default is the paper's fbd-ap system.
    let base_name = args.get("substrate").unwrap_or("fbd-ap");
    let sched = match scheduler_options(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let Some(mut base) = system_config(base_name, workload.cores()) else {
        eprintln!(
            "unknown substrate `{base_name}` (available: {})",
            substrates().available()
        );
        return ExitCode::from(2);
    };
    if let Some(fc) = faults {
        base.mem.faults = fc;
    }
    let Some(points) = sweep_points(knob, base_name, base) else {
        eprintln!("unknown knob `{knob}` (k|entries|assoc|channels|rate|grid)");
        return ExitCode::from(2);
    };
    let grid: Vec<(String, String, SystemConfig)> = points
        .into_iter()
        .map(|(label, cfg)| (label, base_name.to_string(), cfg))
        .collect();
    let live_state = live_state_for(args, &workload, &grid);
    let dashboard = live_state
        .as_ref()
        .map(|s| LiveDashboard::start(Arc::clone(s)));
    let run = run_grid(&grid, &workload, exp, fidelity, sched, live_state.as_ref());
    if let Some(d) = dashboard {
        d.finish();
    }
    let (results, tags, calibration) = match run {
        Ok(x) => x,
        Err(code) => return code,
    };
    let host = session_host_json(session_start, &results);
    let docs = grid_points(
        &grid, &results, &tags, fidelity, &workload, sched, human, csv, want_stats,
    );
    emit_grid(args, "sweep", &workload, docs, calibration.as_deref(), host)
}

/// The labeled configuration grid a `sweep` knob expands to, or `None`
/// for an unknown knob. Labels carry the base substrate's name. The
/// `grid` knob is the 64-point cross product (entries × channels × k ×
/// rate) the auto-fidelity Pareto search is built for.
fn sweep_points(knob: &str, name: &str, base: SystemConfig) -> Option<Vec<(String, SystemConfig)>> {
    let points: Vec<(String, SystemConfig)> = match knob {
        "k" => [2u32, 4, 8]
            .iter()
            .map(|&k| {
                let mut c = base;
                c.mem.amb.region_lines = k;
                c.mem.interleaving = Interleaving::MultiCacheline { lines: k };
                (format!("{name}/k={k}"), c)
            })
            .collect(),
        "entries" => [32u32, 64, 128]
            .iter()
            .map(|&e| {
                let mut c = base;
                c.mem.amb.cache_lines = e;
                (format!("{name}/entries={e}"), c)
            })
            .collect(),
        "assoc" => vec![
            ("direct", Associativity::Direct),
            ("2way", Associativity::Ways(2)),
            ("4way", Associativity::Ways(4)),
            ("full", Associativity::Full),
        ]
        .into_iter()
        .map(|(l, a)| {
            let mut c = base;
            c.mem.amb.associativity = a;
            (format!("{name}/{l}"), c)
        })
        .collect(),
        "channels" => [1u32, 2, 4]
            .iter()
            .map(|&n| {
                let mut c = base;
                c.mem.logical_channels = n;
                (format!("{name}/{n}ch"), c)
            })
            .collect(),
        "rate" => [
            ("533", DataRate::MTS533),
            ("667", DataRate::MTS667),
            ("800", DataRate::MTS800),
        ]
        .iter()
        .map(|&(l, r)| {
            let mut c = base;
            c.mem.data_rate = r;
            (format!("{name}/{l}MT"), c)
        })
        .collect(),
        "grid" => {
            let mut pts = Vec::new();
            for &entries in &[32u32, 64, 128, 256] {
                for &channels in &[1u32, 2, 4, 8] {
                    for &k in &[2u32, 4] {
                        for &(label, rate) in
                            &[("667", DataRate::MTS667), ("800", DataRate::MTS800)]
                        {
                            let mut c = base;
                            c.mem.amb.cache_lines = entries;
                            c.mem.amb.region_lines = k;
                            c.mem.interleaving = Interleaving::MultiCacheline { lines: k };
                            c.mem.logical_channels = channels;
                            c.mem.data_rate = rate;
                            pts.push((format!("{name}/e{entries}-{channels}ch-k{k}-{label}MT"), c));
                        }
                    }
                }
            }
            pts
        }
        _ => return None,
    };
    Some(points)
}

fn cmd_record(args: &Args) -> ExitCode {
    if let Err(code) = validate_args("record", args, RECORD_KEYS, RECORD_FLAGS) {
        return code;
    }
    let (Some(wname), Some(sname), Some(out)) =
        (args.get("workload"), args.get("system"), args.get("out"))
    else {
        return usage();
    };
    let Some(workload) = find_workload(wname) else {
        eprintln!("unknown workload `{wname}` (try `fbdsim list`)");
        return ExitCode::from(2);
    };
    let Some(cfg) = system_config(sname, workload.cores()) else {
        eprintln!("unknown system `{sname}`");
        return ExitCode::from(2);
    };
    // Record the raw access stream: no L2 warm-up, so the trace starts
    // at the first transaction (matching the historical behavior of
    // `System::new`).
    let mut exp = match experiment(args) {
        Ok(e) => e,
        Err(code) => return code,
    };
    exp.warmup = fbd_core::Warmup::Ops(0);
    let result = match spec_for(cfg, &workload, exp, "hit-first")
        .capture_trace()
        .try_run()
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(trace) = result.trace else {
        eprintln!("internal error: record ran without trace capture");
        return ExitCode::FAILURE;
    };
    let mut file = match std::fs::File::create(out) {
        Ok(f) => std::io::BufWriter::new(f),
        Err(e) => {
            eprintln!("cannot create {out}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = trace.to_csv(&mut file) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "recorded {} transactions from {} on {} to {}",
        trace.len(),
        workload.name(),
        sname,
        out
    );
    ExitCode::SUCCESS
}

fn cmd_replay(args: &Args) -> ExitCode {
    if let Err(code) = validate_args("replay", args, REPLAY_KEYS, REPLAY_FLAGS) {
        return code;
    }
    let (Some(path), Some(sname)) = (args.get("trace"), args.get("system")) else {
        return usage();
    };
    let Some(cfg) = system_config(sname, 1) else {
        eprintln!("unknown system `{sname}`");
        return ExitCode::from(2);
    };
    let file = match std::fs::File::open(path) {
        Ok(f) => std::io::BufReader::new(f),
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Malformed input is the user's to fix, like any other bad
    // argument: report the offending line and exit 2.
    let trace = match fbd_core::MemoryTrace::from_csv(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let result = fbd_core::replay(&cfg.mem, &trace);
    println!("replayed {} transactions on {}:", trace.len(), sname);
    println!(
        "  finished at        {:.2} µs",
        result.finished.as_ns_f64() / 1_000.0
    );
    println!("  bandwidth          {:.2} GB/s", result.bandwidth_gbps());
    println!(
        "  read latency       avg {:.1} ns",
        result
            .mem
            .read_latency
            .mean()
            .map_or(0.0, |d| d.as_ns_f64())
    );
    println!(
        "  DRAM operations    {} ACT/PRE, {} column accesses",
        result.mem.dram_ops.act_pre,
        result.mem.dram_ops.col_total()
    );
    if result.mem.amb_hits > 0 {
        println!(
            "  AMB prefetching    {} hits, coverage {:.1}%",
            result.mem.amb_hits,
            result.mem.prefetch_coverage() * 100.0
        );
    }
    println!(
        "  energy             {:.2} µJ total ({:.2} W avg)",
        result.energy.total_nj() / 1_000.0,
        result.energy.avg_power_w()
    );
    ExitCode::SUCCESS
}

/// Prints build provenance: crate version, git SHA, rustc and profile
/// (the same `build` object every stats JSON document embeds).
fn cmd_version() -> ExitCode {
    let b = fbd_core::build_info();
    println!(
        "fbdsim {} ({}, {}, {} profile)",
        b.version, b.git_sha, b.rustc, b.profile
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return usage();
    };
    let Some(args) = Args::parse(&argv[1..]) else {
        return usage();
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => help(),
        "version" | "--version" | "-V" => cmd_version(),
        "list" => cmd_list(),
        "list-substrates" => cmd_list_substrates(),
        "list-schedulers" => cmd_list_schedulers(),
        "run" => cmd_run(&args),
        "profile" => cmd_profile(&args),
        "compare" => cmd_compare(&args),
        "sweep" => cmd_sweep(&args),
        "record" => cmd_record(&args),
        "replay" => cmd_replay(&args),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[&str]) -> Option<Args> {
        let v: Vec<String> = raw.iter().map(|s| s.to_string()).collect();
        Args::parse(&v)
    }

    #[test]
    fn parses_pairs_and_flags() {
        let args = parse(&["--workload", "1C-swim", "--csv", "--budget", "1000"]).unwrap();
        assert_eq!(args.get("workload"), Some("1C-swim"));
        assert_eq!(args.get("budget"), Some("1000"));
        assert!(args.has_flag("csv"));
        assert!(!args.has_flag("timeline"));
        assert_eq!(args.get("missing"), None);
    }

    #[test]
    fn rejects_positional_arguments() {
        assert!(parse(&["stray"]).is_none());
        assert!(parse(&["--ok", "v", "stray"]).is_none());
    }

    #[test]
    fn trailing_flag_parses() {
        let args = parse(&["--csv"]).unwrap();
        assert!(args.has_flag("csv"));
    }

    #[test]
    fn workloads_and_systems_resolve() {
        assert!(find_workload("1C-swim").is_some());
        assert!(find_workload("4C-1").is_some());
        assert!(find_workload("9C-1").is_none());
        // Every registered substrate resolves, including the extension
        // entries that exist only in the registry.
        for s in ["ddr2", "fbd", "fbd-ap", "fbd-apfl", "fbd-ddr3", "ddr3-1066"] {
            let cfg = system_config(s, 2).expect(s);
            cfg.validate().unwrap();
        }
        assert!(system_config("ddr5", 1).is_none());
    }

    #[test]
    fn scheduler_flag_resolves_against_the_registry() {
        // Absent means the paper's hit-first policy.
        let args = parse(&["--workload", "1C-swim"]).unwrap();
        assert_eq!(scheduler_options(&args).unwrap(), "hit-first");
        for name in ["hit-first", "fcfs"] {
            let args = parse(&["--scheduler", name]).unwrap();
            assert_eq!(scheduler_options(&args).unwrap(), name);
        }
        // Unknown names and a bare flag are usage errors.
        let args = parse(&["--scheduler", "round-robin"]).unwrap();
        assert!(scheduler_options(&args).is_err());
        let args = parse(&["--scheduler"]).unwrap();
        assert!(scheduler_options(&args).is_err());
    }

    #[test]
    fn composition_metadata_reflects_the_selection() {
        let cfg = system_config("fbd-ap", 1).unwrap();
        let comp = composition_for("fbd-ap", "fcfs", &cfg);
        assert_eq!(comp.substrate, "fbd-ap");
        assert_eq!(comp.scheduler, "fcfs");
        assert_eq!(comp.mapper, "interleaved");
        assert_eq!(comp.refresh, "none", "the paper runs without refresh");
        // The substrate label survives a config edit (e.g. fault
        // injection) that makes the config diverge from the preset.
        let mut faulty = cfg;
        faulty.mem.faults.ber = 1e-6;
        let comp = composition_for("fbd-ap", "hit-first", &faulty);
        assert_eq!(comp.substrate, "fbd-ap");
    }

    #[test]
    fn telemetry_flags_resolve() {
        let cfg = system_config("fbd-ap", 1).unwrap();
        // No telemetry flags: instrumentation stays off entirely.
        let args = parse(&["--workload", "1C-swim"]).unwrap();
        assert!(telemetry_options(&args, &cfg).unwrap().is_none());
        // `--trace-out` alone turns tracing on without sampling.
        let args = parse(&["--trace-out", "/tmp/t.json"]).unwrap();
        let tc = telemetry_options(&args, &cfg).unwrap().unwrap();
        assert!(tc.trace);
        assert!(tc.sample_interval.is_none());
        // `--sample-interval` is in memory-clock cycles.
        let args = parse(&["--sample-interval", "512"]).unwrap();
        let tc = telemetry_options(&args, &cfg).unwrap().unwrap();
        assert!(!tc.trace);
        assert_eq!(
            tc.sample_interval,
            Some(cfg.mem.data_rate.clock_period() * 512)
        );
    }

    #[test]
    fn telemetry_rejects_bad_sample_intervals() {
        let cfg = system_config("fbd-ap", 1).unwrap();
        for bad in ["0", "-5", "abc", "1.5"] {
            let args = parse(&["--sample-interval", bad]).unwrap();
            assert!(
                telemetry_options(&args, &cfg).is_err(),
                "interval `{bad}` must be rejected"
            );
        }
        // A value-taking telemetry flag with no value is a usage error,
        // not a silent no-op.
        for flag in ["--stats-json", "--trace-out", "--sample-interval"] {
            let args = parse(&[flag, "--csv"]).unwrap();
            assert!(
                telemetry_options(&args, &cfg).is_err(),
                "bare {flag} must be rejected"
            );
        }
    }

    #[test]
    fn stats_document_matches_run_result() {
        let workload = find_workload("1C-swim").unwrap();
        let cfg = system_config("fbd-ap", 1).unwrap();
        let exp = ExperimentConfig {
            budget: 20_000,
            ..ExperimentConfig::default()
        };
        let tc = TelemetryConfig {
            sample_interval: Some(cfg.mem.data_rate.clock_period() * 512),
            trace: true,
        };
        let r = RunSpec::new(cfg)
            .with_workload(workload.clone())
            .experiment(exp)
            .telemetry(tc)
            .run();
        let comp = composition_for("fbd-ap", "hit-first", &cfg);
        let doc = stats_document(&workload, "fbd-ap", &comp, &r);
        // The document round-trips through its own writer and parser.
        let parsed = fbd_telemetry::json::parse(&doc.to_json()).unwrap();
        assert_eq!(
            parsed.get("workload").and_then(Json::as_str),
            Some("1C-swim")
        );
        // The composition object names every pluggable part.
        let c = parsed.get("composition").expect("composition present");
        assert_eq!(c.get("substrate").and_then(Json::as_str), Some("fbd-ap"));
        assert_eq!(c.get("scheduler").and_then(Json::as_str), Some("hit-first"));
        assert_eq!(c.get("mapper").and_then(Json::as_str), Some("interleaved"));
        assert_eq!(c.get("refresh").and_then(Json::as_str), Some("none"));
        // Summed channel bandwidth agrees with the scalar headline.
        let chans = parsed.get("channels").and_then(Json::as_array).unwrap();
        assert_eq!(chans.len(), cfg.mem.logical_channels as usize);
        let reads: f64 = chans
            .iter()
            .map(|c| c.get("reads").and_then(Json::as_f64).unwrap())
            .sum();
        let all_reads = r.mem.demand_reads + r.mem.sw_prefetch_reads + r.mem.hw_prefetch_reads;
        assert_eq!(reads as u64, all_reads);
        // Latency, prefetch, and DRAM operation fields mirror MemStats.
        let lat = parsed.get("read_latency").unwrap();
        assert_eq!(
            lat.get("count").and_then(Json::as_f64),
            Some(r.mem.demand_reads as f64)
        );
        let mean = lat.get("mean_ns").and_then(Json::as_f64).unwrap();
        assert!((mean - r.avg_read_latency_ns()).abs() < 1e-6);
        let pf = parsed.get("prefetch").unwrap();
        assert_eq!(
            pf.get("amb_hits").and_then(Json::as_f64),
            Some(r.mem.amb_hits as f64)
        );
        let dram = parsed.get("dram").unwrap();
        assert_eq!(
            dram.get("act_pre").and_then(Json::as_f64),
            Some(r.mem.dram_ops.act_pre as f64)
        );
        // The energy object is always present and internally consistent:
        // the five components sum to the reported total.
        let energy = parsed.get("energy").unwrap();
        let component_sum: f64 = [
            "activation_nj",
            "burst_nj",
            "refresh_nj",
            "background_nj",
            "amb_nj",
        ]
        .iter()
        .map(|k| energy.get(k).and_then(Json::as_f64).unwrap())
        .sum();
        let total = energy.get("total_nj").and_then(Json::as_f64).unwrap();
        assert!((component_sum - total).abs() < 1e-6 * total.max(1.0));
        assert!(total > 0.0);
        assert!(energy.get("avg_power_w").and_then(Json::as_f64).unwrap() > 0.0);
        // The active IDD current set is named (fbd-ap runs DDR2-667).
        assert_eq!(
            energy.get("current_set").and_then(Json::as_str),
            Some("micron_ddr2_667")
        );
        // The latency attribution is always present: its read count
        // covers every read class and no read violated the stage-sum
        // invariant.
        let stages = parsed.get("latency_stages").unwrap();
        assert_eq!(
            stages.get("reads").and_then(Json::as_f64),
            Some(all_reads as f64)
        );
        assert_eq!(stages.get("mismatches").and_then(Json::as_f64), Some(0.0));
        // The write attribution mirrors the read side: every retired
        // write is stamped and none violated the stage-sum invariant.
        let writes = stages.get("writes").expect("writes object present");
        assert_eq!(
            writes.get("count").and_then(Json::as_f64),
            Some(r.mem.writes as f64)
        );
        assert_eq!(writes.get("mismatches").and_then(Json::as_f64), Some(0.0));
        // Telemetry ran, so the registry and time-series are attached.
        assert!(parsed.get("metrics").is_some());
        assert!(parsed.get("series").is_some());
        // Without telemetry those sections are absent.
        let bare = RunSpec::new(cfg)
            .with_workload(workload.clone())
            .experiment(exp)
            .run();
        let doc = stats_document(&workload, "fbd-ap", &comp, &bare);
        assert!(doc.get("metrics").is_none());
        assert!(doc.get("series").is_none());
    }

    #[test]
    fn unknown_options_are_usage_errors_on_every_subcommand() {
        let bogus = parse(&["--workload", "1C-swim", "--bogus", "x"]).unwrap();
        assert!(validate_args("run", &bogus, RUN_KEYS, RUN_FLAGS).is_err());
        assert!(validate_args("profile", &bogus, PROFILE_KEYS, PROFILE_FLAGS).is_err());
        assert!(validate_args("compare", &bogus, COMPARE_KEYS, COMPARE_FLAGS).is_err());
        assert!(validate_args("sweep", &bogus, SWEEP_KEYS, SWEEP_FLAGS).is_err());
        assert!(validate_args("record", &bogus, RECORD_KEYS, RECORD_FLAGS).is_err());
        assert!(validate_args("replay", &bogus, REPLAY_KEYS, REPLAY_FLAGS).is_err());
        let stray_flag = parse(&["--workload", "1C-swim", "--timeline"]).unwrap();
        assert!(validate_args("compare", &stray_flag, COMPARE_KEYS, COMPARE_FLAGS).is_err());
        // A value-taking option with no value, and a boolean flag given
        // a value, are both rejected.
        let bare = parse(&["--workload"]).unwrap();
        assert!(validate_args("compare", &bare, COMPARE_KEYS, COMPARE_FLAGS).is_err());
        let flag_with_value = parse(&["--csv", "yes"]).unwrap();
        assert!(validate_args("compare", &flag_with_value, COMPARE_KEYS, COMPARE_FLAGS).is_err());
        // The happy path stays accepted.
        let ok = parse(&["--workload", "1C-swim", "--csv", "--stats-json", "s.json"]).unwrap();
        assert!(validate_args("compare", &ok, COMPARE_KEYS, COMPARE_FLAGS).is_ok());
    }

    #[test]
    fn experiment_flags_override_defaults() {
        let args = parse(&["--budget", "123", "--seed", "9"]).unwrap();
        let exp = experiment(&args).unwrap();
        assert_eq!(exp.budget, 123);
        assert_eq!(exp.seed, 9);
        // Bad numbers are usage errors, not silent defaults.
        for bad in [
            &["--budget", "abc"][..],
            &["--budget", "0"],
            &["--budget", "-5"],
            &["--seed", "x"],
        ] {
            assert!(experiment(&parse(bad).unwrap()).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn fault_flags_resolve() {
        // No fault flags: injection stays off entirely.
        let args = parse(&["--workload", "1C-swim"]).unwrap();
        assert!(fault_options(&args).unwrap().is_none());
        // --fault-ber alone uses the seed/mode defaults.
        let args = parse(&["--fault-ber", "1e-6"]).unwrap();
        let fc = fault_options(&args).unwrap().unwrap();
        assert_eq!(fc.ber, 1e-6);
        assert_eq!(fc.seed, FaultConfig::off().seed);
        assert_eq!(fc.mode, FaultMode::Ber);
        assert!(fc.is_active());
        // All three spelled out.
        let args = parse(&[
            "--fault-ber",
            "0.001",
            "--fault-seed",
            "7",
            "--fault-mode",
            "stuck-lane",
        ])
        .unwrap();
        let fc = fault_options(&args).unwrap().unwrap();
        assert_eq!((fc.ber, fc.seed, fc.mode), (0.001, 7, FaultMode::StuckLane));
        // `--fault-ber 0` explicitly disables injection (still Some so
        // it overrides a preset, but inactive).
        let args = parse(&["--fault-ber", "0"]).unwrap();
        let fc = fault_options(&args).unwrap().unwrap();
        assert!(!fc.is_active());
    }

    #[test]
    fn reliability_flags_resolve() {
        // `--scrub patrol` stands alone: clean-channel scrubbing needs
        // no error process.
        let args = parse(&["--scrub", "patrol"]).unwrap();
        let fc = fault_options(&args).unwrap().unwrap();
        assert_eq!(fc.scrub, ScrubPolicyKind::Patrol);
        assert!(!fc.is_active());
        assert!(fc.recovery_active());
        assert_eq!(fc.scrub_interval_ns, FaultConfig::off().scrub_interval_ns);
        // `--scrub none` is an explicit off: Some so it overrides a
        // preset, but the zero-cost path stays selected.
        let args = parse(&["--scrub", "none"]).unwrap();
        let fc = fault_options(&args).unwrap().unwrap();
        assert_eq!(fc, FaultConfig::off());
        assert!(!fc.recovery_active());
        // The interval rides on patrol.
        let args = parse(&["--scrub", "patrol", "--scrub-interval-ns", "250"]).unwrap();
        let fc = fault_options(&args).unwrap().unwrap();
        assert_eq!(fc.scrub_interval_ns, 250);
        // The full lifecycle spelled out on one error process.
        let args = parse(&[
            "--fault-ber",
            "1e-5",
            "--crc-bits",
            "8",
            "--scrub",
            "patrol",
            "--failback",
            "2000",
            "--reissue",
            "8",
        ])
        .unwrap();
        let fc = fault_options(&args).unwrap().unwrap();
        assert_eq!(fc.crc_bits, 8);
        assert_eq!(fc.scrub, ScrubPolicyKind::Patrol);
        assert_eq!(fc.failback_quiet_ns, 2000);
        assert!(fc.failback_enabled());
        assert_eq!(fc.reissue_budget, 8);
        assert!(fc.recovery_active());
        fc.validate().unwrap();
        // Explicit zeros keep the configuration byte-identical to the
        // defaults (the parity contract for the off spellings).
        let args = parse(&[
            "--fault-ber",
            "0",
            "--crc-bits",
            "0",
            "--failback",
            "0",
            "--reissue",
            "0",
        ])
        .unwrap();
        let fc = fault_options(&args).unwrap().unwrap();
        assert_eq!(fc, FaultConfig::off());
    }

    #[test]
    fn reliability_flags_reject_bad_values() {
        for bad in [
            // Unknown or malformed values.
            &["--fault-ber", "1e-6", "--crc-bits", "65"][..],
            &["--fault-ber", "1e-6", "--crc-bits", "-1"],
            &["--fault-ber", "1e-6", "--crc-bits", "x"],
            &["--scrub", "demand"],
            &["--scrub", "patrol", "--scrub-interval-ns", "0"],
            &["--scrub", "patrol", "--scrub-interval-ns", "abc"],
            &["--fault-ber", "1e-6", "--failback", "-3"],
            &["--fault-ber", "1e-6", "--reissue", "many"],
            // Detection/recovery shaping without an error process.
            &["--crc-bits", "8"],
            &["--failback", "2000"],
            &["--reissue", "8"],
            // The patrol rate limit without patrol.
            &["--scrub-interval-ns", "250"],
            &["--scrub", "none", "--scrub-interval-ns", "250"],
        ] {
            let args = parse(bad).unwrap();
            assert!(fault_options(&args).is_err(), "{bad:?} must be rejected");
        }
        // Bare value-taking reliability flags are usage errors.
        for flag in [
            "--crc-bits",
            "--scrub",
            "--scrub-interval-ns",
            "--failback",
            "--reissue",
        ] {
            let args = parse(&[flag]).unwrap();
            assert!(
                fault_options(&args).is_err(),
                "bare {flag} must be rejected"
            );
        }
    }

    #[test]
    fn fidelity_flags_resolve() {
        // Absent means the cycle-accurate default.
        let args = parse(&["--workload", "1C-swim"]).unwrap();
        assert_eq!(fidelity_options(&args).unwrap(), Fidelity::Accurate);
        for (v, f) in [
            ("accurate", Fidelity::Accurate),
            ("fast", Fidelity::Fast),
            ("auto", Fidelity::Auto),
        ] {
            let args = parse(&["--fidelity", v]).unwrap();
            assert_eq!(fidelity_options(&args).unwrap(), f, "{v}");
        }
        // Unknown modes and a bare flag are usage errors.
        let args = parse(&["--fidelity", "quick"]).unwrap();
        assert!(fidelity_options(&args).is_err());
        let args = parse(&["--fidelity"]).unwrap();
        assert!(fidelity_options(&args).is_err());
    }

    #[test]
    fn sweep_grid_knob_expands_to_64_valid_points() {
        let base = system_config("fbd-ap", 1).unwrap();
        let points = sweep_points("grid", "fbd-ap", base).unwrap();
        assert_eq!(points.len(), 64);
        let labels: std::collections::HashSet<&str> =
            points.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels.len(), 64, "labels must be unique");
        for (label, cfg) in &points {
            cfg.validate().unwrap_or_else(|e| panic!("{label}: {e}"));
            assert!(label.starts_with("fbd-ap/"), "{label}");
        }
        // The single-knob sweeps still expand, and typos stay rejected.
        assert_eq!(sweep_points("k", "fbd-ap", base).unwrap().len(), 3);
        assert!(sweep_points("voltage", "fbd-ap", base).is_none());
    }

    #[test]
    fn fault_flags_reject_bad_values() {
        for bad in [
            &["--fault-ber", "nope"][..],
            &["--fault-ber", "-0.1"],
            &["--fault-ber", "1.5"],
            &["--fault-ber", "inf"],
            &["--fault-ber", "nan"],
            &["--fault-ber", "1e-6", "--fault-seed", "x"],
            &["--fault-ber", "1e-6", "--fault-mode", "cosmic"],
            // Dependent flags without the rate are a usage error.
            &["--fault-seed", "7"],
            &["--fault-mode", "burst"],
        ] {
            let args = parse(bad).unwrap();
            assert!(fault_options(&args).is_err(), "{bad:?} must be rejected");
        }
        // A bare value-taking fault flag is a usage error.
        let args = parse(&["--fault-ber"]).unwrap();
        assert!(fault_options(&args).is_err());
    }
}
