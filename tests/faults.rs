//! Fault-injection invariants (ISSUE 5 acceptance criteria).
//!
//! With a non-zero bit-error rate, every system variant must keep the
//! stage-sum attribution identity (retry slots are charged to the
//! `retry` stage, never silently absorbed); FBD runs must report the
//! injected/recovered error counters while DDR2 (no serial links)
//! reports none; fault runs must be deterministic in the seed — the
//! same `--fault-seed` produces bit-identical stats JSON, including
//! under `compare`'s parallel execution — and a zero-BER run must be
//! byte-identical to a run with no fault flags at all. Stuck-lane
//! exhaustion must fail the direction over to degraded width without
//! breaking attribution.

use std::path::PathBuf;
use std::process::{Command, Output};

use fbd_core::{RunResult, RunSpec};
use fbd_faults::{FaultCounters, FaultReport, SilentErrorReport};
use fbd_telemetry::{json, Json};
use fbd_types::config::{FaultConfig, FaultMode, ScrubPolicyKind};
use fbd_types::request::{Stage, REQ_CLASSES};
use fbd_types::substrate::substrates;
use fbd_types::time::Dur;

const BUDGET: u64 = 20_000;

fn faulted(system: &str, ber: f64, mode: FaultMode) -> RunResult {
    let mem = substrates().get(system).expect("known system").config();
    let mut spec = RunSpec::paper_default(1)
        .workload("1C-swim")
        .memory(mem)
        .budget(BUDGET)
        .seed(42);
    spec.system_mut().mem.faults.ber = ber;
    spec.system_mut().mem.faults.seed = 7;
    spec.system_mut().mem.faults.mode = mode;
    spec.run()
}

/// A run with the whole recovery lifecycle armed (overriding the
/// preset's fault config with `faults` wholesale).
fn recovered(system: &str, faults: FaultConfig) -> RunResult {
    let mem = substrates().get(system).expect("known system").config();
    let mut spec = RunSpec::paper_default(1)
        .workload("1C-swim")
        .memory(mem)
        .budget(BUDGET)
        .seed(42);
    spec.system_mut().mem.faults = faults;
    spec.run()
}

fn retry_ns(r: &RunResult) -> f64 {
    REQ_CLASSES
        .iter()
        .map(|&c| r.profile.stage(c, Stage::Retry).total_ns())
        .sum()
}

#[test]
fn stage_sums_hold_under_injection_on_every_system() {
    for system in ["ddr2", "fbd", "fbd-ap", "fbd-apfl"] {
        let r = faulted(system, 1e-4, FaultMode::Ber);
        assert_eq!(
            r.profile.mismatches(),
            0,
            "{system}: read stage sums must survive fault injection"
        );
        assert_eq!(
            r.profile.write_mismatches(),
            0,
            "{system}: write stage sums must survive fault injection"
        );
        if system == "ddr2" {
            // No serial links: nothing to inject into, no report.
            assert!(r.faults.is_none(), "ddr2 must not report link faults");
        } else {
            let f = r.faults.as_ref().expect("FBD systems report faults");
            assert!(f.counters.injected > 0, "{system}: BER 1e-4 must inject");
            assert_eq!(
                f.counters.detected, f.counters.injected,
                "{system}: the CRC model is ideal — every corruption detected"
            );
            assert!(
                retry_ns(&r) > 0.0,
                "{system}: recovered transfers must charge the retry stage"
            );
        }
    }
}

#[test]
fn burst_mode_injects_and_recovers() {
    let r = faulted("fbd", 1e-5, FaultMode::Burst);
    let f = r.faults.as_ref().expect("fault report");
    assert!(f.counters.injected > 0);
    assert_eq!(f.counters.detected, f.counters.injected);
    assert_eq!(r.profile.mismatches(), 0);
    assert_eq!(r.profile.write_mismatches(), 0);
}

#[test]
fn stuck_lane_exhaustion_fails_over_to_degraded_width() {
    let r = faulted("fbd", 0.05, FaultMode::StuckLane);
    let f = r.faults.as_ref().expect("fault report");
    assert!(
        f.counters.retry_exhausted > 0,
        "a stuck lane corrupts every replay until retries run out"
    );
    assert!(
        f.counters.failovers > 0,
        "exhaustion must trigger fail-over"
    );
    assert!(
        f.degraded > Dur::ZERO,
        "failed-over directions accumulate degraded-width residency"
    );
    // Attribution survives even at degraded frame width.
    assert_eq!(r.profile.mismatches(), 0);
    assert_eq!(r.profile.write_mismatches(), 0);
}

#[test]
fn zero_ber_run_matches_no_fault_run_exactly() {
    let clean = faulted("fbd-ap", 0.0, FaultMode::Ber);
    assert!(
        clean.faults.is_none(),
        "an inactive fault config must not produce a report"
    );
    let baseline = {
        let mem = substrates().get("fbd-ap").unwrap().config();
        RunSpec::paper_default(1)
            .workload("1C-swim")
            .memory(mem)
            .budget(BUDGET)
            .seed(42)
            .run()
    };
    assert_eq!(clean.elapsed, baseline.elapsed);
    assert_eq!(clean.mem.demand_reads, baseline.mem.demand_reads);
    assert_eq!(retry_ns(&clean), 0.0);
    assert_eq!(retry_ns(&baseline), 0.0);
}

// ---------------------------------------------------------------------
// The closed recovery loop: escapes, scrubbing, re-issue (ISSUE 10).
// ---------------------------------------------------------------------

#[test]
fn crc_escape_accounting_is_exact() {
    // One CRC check bit makes escapes common enough to observe at this
    // budget while keeping detection the majority outcome.
    let mut fc = FaultConfig::off();
    fc.ber = 1e-4;
    fc.seed = 7;
    fc.crc_bits = 1;
    let r = recovered("fbd-ap", fc);
    let f = r.faults.as_ref().expect("fault report");
    assert!(f.counters.injected > 0, "BER 1e-4 must inject");
    assert!(
        f.counters.escaped > 0,
        "1 check bit must let escapes through"
    );
    assert_eq!(
        f.counters.detected + f.counters.escaped,
        f.counters.injected,
        "every injected corruption is either detected or escaped"
    );
    // Without scrubbing, nothing converts poisoned lines back to clean.
    assert_eq!(f.counters.scrub_reads, 0);
    assert_eq!(f.silent.scrubbed_clean, 0);
    // Attribution survives the escape path (escaped transfers complete
    // without retry slots, so their stamps must still balance).
    assert_eq!(r.profile.mismatches(), 0);
    assert_eq!(r.profile.write_mismatches(), 0);
}

#[test]
fn patrol_scrub_issues_traffic_and_repairs_poisoned_lines() {
    let mut fc = FaultConfig::off();
    fc.ber = 1e-4;
    fc.seed = 7;
    fc.crc_bits = 1;
    fc.scrub = ScrubPolicyKind::Patrol;
    fc.scrub_interval_ns = 100;
    let r = recovered("fbd-ap", fc);
    let f = r.faults.as_ref().expect("fault report");
    assert!(f.counters.scrub_reads > 0, "patrol must sweep idle slots");
    assert_eq!(
        f.counters.scrub_rewrites, f.silent.scrubbed_clean,
        "every scrub rewrite is a line converted back to clean"
    );
    // The scrub traffic is real stamped traffic: the stage-sum
    // invariant holds with sweeps and rewrites in flight.
    assert_eq!(r.profile.mismatches(), 0);
    assert_eq!(r.profile.write_mismatches(), 0);

    // Scrubbing on a clean channel is pure overhead but still reports:
    // the errors surface exists whenever the policy costs bandwidth.
    let mut clean = FaultConfig::off();
    clean.scrub = ScrubPolicyKind::Patrol;
    clean.scrub_interval_ns = 100;
    let r = recovered("fbd-ap", clean);
    let f = r.faults.as_ref().expect("scrub-only runs report");
    assert!(f.counters.scrub_reads > 0);
    assert_eq!(f.counters.injected, 0);
    assert_eq!(f.counters.scrub_rewrites, 0, "nothing to repair at BER 0");
}

#[test]
fn dropped_prefetch_returns_are_reissued_within_budget() {
    let mut fc = FaultConfig::off();
    fc.ber = 1e-4;
    fc.seed = 7;
    fc.reissue_budget = 8;
    let r = recovered("fbd-ap", fc);
    let f = r.faults.as_ref().expect("fault report");
    assert!(
        f.counters.dropped_prefetch > 0,
        "BER 1e-4 must drop returns"
    );
    assert!(f.counters.reissued > 0, "remembered drops must re-issue");
    assert!(
        f.counters.reissued <= f.counters.dropped_prefetch,
        "each re-issue answers a remembered drop"
    );
    assert_eq!(r.profile.mismatches(), 0);
    assert_eq!(r.profile.write_mismatches(), 0);
}

/// Regression for the `compare`-grid merge: a merged [`FaultReport`]
/// must not depend on the order workers hand their reports back.
#[test]
fn fault_report_merge_is_order_independent() {
    let reports: Vec<FaultReport> = (1..=4u64)
        .map(|i| FaultReport {
            counters: FaultCounters {
                injected: 10 * i,
                detected: 9 * i,
                escaped: i,
                retried: 7 * i,
                retry_exhausted: i / 2,
                failovers: i % 2,
                dropped_prefetch: 3 * i,
                probes: 2 * i,
                failbacks: i / 3,
                reissued: 2 * i,
                scrub_reads: 5 * i,
                scrub_rewrites: i,
            },
            degraded: Dur::from_ns(100 * i),
            silent: SilentErrorReport {
                poisoned_lines: i,
                demand_consumed: i / 2,
                scrubbed_clean: i * 2,
            },
        })
        .collect();
    let merge_in = |order: &[usize]| {
        let mut acc = FaultReport::default();
        for &i in order {
            acc.merge(&reports[i]);
        }
        acc
    };
    let reference = merge_in(&[0, 1, 2, 3]);
    for order in [
        [3, 2, 1, 0],
        [2, 0, 3, 1],
        [1, 3, 0, 2],
        [3, 0, 1, 2],
        [0, 2, 1, 3],
    ] {
        assert_eq!(
            merge_in(&order),
            reference,
            "merge order {order:?} changed the report"
        );
    }
}

// ---------------------------------------------------------------------
// Binary-level determinism: the exported stats JSON is the contract.
// ---------------------------------------------------------------------

fn fbdsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fbdsim"))
        .args(args)
        .output()
        .expect("fbdsim runs")
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fbdsim-faults-{}-{name}", std::process::id()))
}

/// Removes every `host` object (top-level and per-point) and
/// re-serializes: host wall-clock timings legitimately differ between
/// two invocations of the same deterministic run, so byte-identity is
/// asserted on everything else.
fn strip_host(text: &str) -> String {
    fn strip(j: &mut Json) {
        match j {
            Json::Obj(fields) => {
                fields.retain(|(k, _)| k != "host");
                for (_, v) in fields.iter_mut() {
                    strip(v);
                }
            }
            Json::Arr(items) => items.iter_mut().for_each(strip),
            _ => {}
        }
    }
    let mut doc = json::parse(text).expect("well-formed stats JSON");
    strip(&mut doc);
    doc.to_json_pretty(2)
}

fn run_json(extra: &[&str]) -> String {
    let mut args = vec![
        "run",
        "--workload",
        "1C-swim",
        "--system",
        "fbd-ap",
        "--budget",
        "5000",
        "--json",
    ];
    args.extend_from_slice(extra);
    let out = fbdsim(&args);
    assert_eq!(
        out.status.code(),
        Some(0),
        "fbdsim {:?} failed: {}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    strip_host(&String::from_utf8(out.stdout).expect("utf-8 stats JSON"))
}

#[test]
fn identical_fault_seed_gives_bit_identical_stats_json() {
    let a = run_json(&["--fault-ber", "1e-5", "--fault-seed", "3"]);
    let b = run_json(&["--fault-ber", "1e-5", "--fault-seed", "3"]);
    assert_eq!(a, b, "same seed and BER must reproduce exactly");
    assert!(
        a.contains("\"errors\""),
        "faulted stats JSON must carry the errors object:\n{a}"
    );
    assert!(a.contains("\"retry\""), "stage list must include retry");
}

#[test]
fn zero_ber_stats_json_is_byte_identical_to_no_fault_path() {
    let clean = run_json(&[]);
    let zero = run_json(&["--fault-ber", "0"]);
    assert_eq!(
        clean, zero,
        "--fault-ber 0 must leave the export byte-identical"
    );
    assert!(
        !clean.contains("\"errors\""),
        "no-fault stats JSON must not grow an errors object"
    );
}

#[test]
fn full_lifecycle_stats_json_is_deterministic_and_schema_complete() {
    let flags = [
        "--fault-ber",
        "1e-4",
        "--fault-seed",
        "3",
        "--crc-bits",
        "4",
        "--scrub",
        "patrol",
        "--scrub-interval-ns",
        "200",
        "--failback",
        "2000",
        "--reissue",
        "8",
    ];
    let a = run_json(&flags);
    let b = run_json(&flags);
    assert_eq!(a, b, "the armed lifecycle must reproduce exactly");
    let doc = json::parse(&a).expect("stats JSON");
    let errors = doc.get("errors").expect("errors object");
    for key in [
        "injected",
        "detected",
        "escaped",
        "retried",
        "retry_exhausted",
        "failovers",
        "dropped_prefetch",
        "degraded_ns",
        "probes",
        "failbacks",
        "reissued",
        "scrub_reads",
        "scrub_rewrites",
    ] {
        assert!(errors.get(key).is_some(), "errors.{key} must be present");
    }
    let silent = errors.get("silent").expect("errors.silent object");
    for key in ["poisoned_lines", "demand_consumed", "scrubbed_clean"] {
        assert!(silent.get(key).is_some(), "errors.silent.{key} missing");
    }
    let injected = errors.get("injected").and_then(Json::as_f64).unwrap();
    let detected = errors.get("detected").and_then(Json::as_f64).unwrap();
    let escaped = errors.get("escaped").and_then(Json::as_f64).unwrap();
    assert_eq!(detected + escaped, injected, "escape accounting in JSON");
    assert!(
        errors.get("scrub_reads").and_then(Json::as_f64).unwrap() > 0.0,
        "patrol scrubbing must surface in the export"
    );
}

#[test]
fn compare_is_deterministic_under_parallel_execution() {
    // `compare` runs the four systems through `parallel_map`; per-link
    // fault streams are keyed by (seed, channel, direction), so thread
    // scheduling must not leak into the results.
    let path_a = tmp_path("cmp-a.json");
    let path_b = tmp_path("cmp-b.json");
    for path in [&path_a, &path_b] {
        let out = fbdsim(&[
            "compare",
            "--workload",
            "1C-swim",
            "--budget",
            "5000",
            "--fault-ber",
            "1e-5",
            "--fault-seed",
            "9",
            "--crc-bits",
            "4",
            "--scrub",
            "patrol",
            "--reissue",
            "8",
            "--stats-json",
            path.to_str().unwrap(),
        ]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "compare failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let a = strip_host(&std::fs::read_to_string(&path_a).expect("stats A"));
    let b = strip_host(&std::fs::read_to_string(&path_b).expect("stats B"));
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
    assert_eq!(a, b, "parallel compare must be deterministic");
    assert!(a.contains("\"errors\""));
}
