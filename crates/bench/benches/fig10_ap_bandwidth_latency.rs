//! Figure 10: average utilized bandwidth vs. average latency for
//! FB-DIMM with and without AMB prefetching.
//!
//! Expected shape (paper §5.2): for every workload FBD-AP moves
//! up-and-left — significantly higher utilized bandwidth at
//! significantly shorter latency.

use fbd_bench::*;

fn main() {
    let exp = fbd_bench::experiment();
    banner("Figure 10", "bandwidth vs latency, FBD vs FBD-AP", &exp);

    let mut rows = vec![vec![
        "workload".to_string(),
        "FBD GB/s".to_string(),
        "FBD lat ns".to_string(),
        "AP GB/s".to_string(),
        "AP lat ns".to_string(),
    ]];
    let mut regressions = Vec::new();
    let grouped = run_grouped(
        |cores| {
            vec![
                ("FBD".to_string(), system(Variant::Fbd, cores)),
                ("FBD-AP".to_string(), system(Variant::FbdAp, cores)),
            ]
        },
        &exp,
    );
    for (group, workloads, results) in grouped {
        let (mut bw_b, mut lat_b, mut bw_a, mut lat_a) = (vec![], vec![], vec![], vec![]);
        for w in &workloads {
            let b = &results
                .iter()
                .find(|((c, n), _)| c == "FBD" && n == w.name())
                .expect("run")
                .1;
            let a = &results
                .iter()
                .find(|((c, n), _)| c == "FBD-AP" && n == w.name())
                .expect("run")
                .1;
            if a.avg_read_latency_ns() > b.avg_read_latency_ns() {
                regressions.push(w.name().to_string());
            }
            bw_b.push(b.bandwidth_gbps());
            lat_b.push(b.avg_read_latency_ns());
            bw_a.push(a.bandwidth_gbps());
            lat_a.push(a.avg_read_latency_ns());
            rows.push(vec![
                w.name().to_string(),
                f2(b.bandwidth_gbps()),
                f2(b.avg_read_latency_ns()),
                f2(a.bandwidth_gbps()),
                f2(a.avg_read_latency_ns()),
            ]);
        }
        rows.push(vec![
            format!("avg {group}"),
            f2(mean(&bw_b)),
            f2(mean(&lat_b)),
            f2(mean(&bw_a)),
            f2(mean(&lat_a)),
        ]);
        rows.push(Vec::new());
    }
    emit_table("fig10_ap_bandwidth_latency", &rows);
    println!();
    println!("paper: every workload shows higher utilized bandwidth and shorter latency with AP");
    if !regressions.is_empty() {
        println!("NOTE: latency regressions on: {}", regressions.join(", "));
    }
}
