//! Logical DRAM banks of one DIMM and their timing state machines.
//!
//! A *logical bank* gangs the same physical bank across all chips of a
//! rank (paper §3.2); all timing rules of Table 2 are enforced here:
//!
//! * `tRC` between activates to the same bank;
//! * `tRRD` between activates (or precharges) to *different* banks;
//! * `tRCD` from activate to column command;
//! * `tRAS` / `tRPD` / `tWPD` before a precharge may begin;
//! * `tRP` from precharge to the next activate;
//! * column/data timing (`tCL`, `tWL`) plus data-bus occupancy and
//!   `tWTR`, delegated to [`DataBus`].
//!
//! The API is plan/commit: [`BankArray::plan`] is pure and answers "when
//! would this access complete"; [`BankArray::commit`] applies a plan.

use fbd_types::config::DramTimings;
use fbd_types::stats::DramOpCounts;
use fbd_types::time::{Dur, Time};

use crate::bus::DataBus;
use crate::command::{AccessPlan, ColKind, ColumnOp};

/// Timing state of one logical bank.
#[derive(Clone, Copy, Debug)]
struct BankState {
    /// Currently open row, if any.
    row: Option<u32>,
    /// Earliest next ACT (respects tRP after precharge and tRC).
    act_ready: Time,
    /// Earliest column command to the open row (act + tRCD).
    col_ready: Time,
    /// Earliest precharge (max of tRAS after ACT, tRPD after RD, tWPD
    /// after WR).
    pre_ready: Time,
    /// Last activate time (for tRC).
    last_act: Time,
}

impl BankState {
    fn new() -> BankState {
        BankState {
            row: None,
            act_ready: Time::ZERO,
            col_ready: Time::ZERO,
            pre_ready: Time::ZERO,
            last_act: Time::ZERO,
        }
    }
}

/// The logical banks of one DIMM, with inter-bank timing constraints.
#[derive(Clone, Debug)]
pub struct BankArray {
    banks: Vec<BankState>,
    timings: DramTimings,
    clock: Dur,
    /// Last ACT to any bank (tRRD).
    last_act_any: Option<Time>,
    /// Last PRE to any bank (tRRD applies to PRE-PRE across banks too).
    last_pre_any: Option<Time>,
    /// End of the last write burst to this rank (tWTR: write data end to
    /// the next read command, a rank-level rule).
    last_write_end: Option<Time>,
    /// The four most recent ACT times on this rank (tFAW window).
    recent_acts: [Option<Time>; 4],
    /// Union of busy windows (rows open / data moving), for
    /// state-residency static-power accounting.
    active_time: Dur,
    busy_until: Time,
    ops: DramOpCounts,
}

impl BankArray {
    /// Creates `banks` idle banks with the given timings and DRAM clock.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or the clock period is zero.
    pub fn new(banks: usize, timings: DramTimings, clock: Dur) -> BankArray {
        assert!(banks > 0, "a DIMM must have at least one bank");
        assert!(!clock.is_zero(), "clock period must be non-zero");
        BankArray {
            banks: vec![BankState::new(); banks],
            timings,
            clock,
            last_act_any: None,
            last_pre_any: None,
            last_write_end: None,
            recent_acts: [None; 4],
            active_time: Dur::ZERO,
            busy_until: Time::ZERO,
            ops: DramOpCounts::default(),
        }
    }

    /// Creates the array from a registered timing spec: the table and
    /// device clock both come from the spec, so a substrate selected by
    /// name drives the devices with its own timings.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn for_spec(banks: usize, spec: &dyn fbd_types::substrate::TimingSpec) -> BankArray {
        BankArray::new(banks, spec.timings(), spec.data_rate().clock_period())
    }

    /// Number of banks.
    pub fn len(&self) -> usize {
        self.banks.len()
    }

    /// Always false (a `BankArray` cannot be empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if `row` is currently open in `bank` (row-buffer hit for the
    /// hit-first scheduler).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn is_row_open(&self, bank: usize, row: u32) -> bool {
        self.banks[bank].row == Some(row)
    }

    /// DRAM operation counters accumulated by committed plans.
    pub fn ops(&self) -> &DramOpCounts {
        &self.ops
    }

    /// Earliest instant `bank` could accept an activate (respects tRP,
    /// tRC and the cross-bank tRRD window). Used by bank-readiness-aware
    /// scheduling.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn earliest_act(&self, bank: usize) -> Time {
        self.banks[bank]
            .act_ready
            .max(self.t_rrd_after(self.last_act_any))
            .max(self.t_faw_ready())
    }

    /// Performs an all-bank auto-refresh requested at `at`: waits for
    /// every open row to become precharge-able, closes all rows, and
    /// blocks every bank for `t_rfc`. Returns the instant the banks are
    /// usable again.
    ///
    /// # Panics
    ///
    /// Panics if `t_rfc` is zero.
    pub fn refresh_all(&mut self, at: Time, t_rfc: Dur) -> Time {
        assert!(!t_rfc.is_zero(), "tRFC must be non-zero");
        let mut start = at;
        for b in &self.banks {
            if b.row.is_some() {
                // Must precharge the open row first.
                start = start.max(b.pre_ready + self.timings.t_rp);
            } else {
                // Wait out any in-progress precharge (conservatively,
                // until the bank could accept an activate).
                start = start.max(b.act_ready);
            }
        }
        let start = start.align_up(self.clock);
        let done = start + t_rfc;
        for b in &mut self.banks {
            b.row = None;
            b.act_ready = b.act_ready.max(done);
            b.col_ready = b.col_ready.max(done);
        }
        self.note_busy(start, done);
        self.ops.refreshes += 1;
        done
    }

    /// Earliest instant a read *command* may issue on this rank given
    /// the write-to-read turnaround (tWTR after the last write burst).
    pub fn read_turnaround_until(&self) -> Time {
        match self.last_write_end {
            Some(we) => we + self.timings.t_wtr,
            None => Time::ZERO,
        }
    }

    /// Issues a bare activate to `(bank, row)` at the earliest legal
    /// instant at or after `not_before` — *command-ahead* activation, so
    /// a future read's tRCD elapses while the data bus is busy with
    /// other traffic (e.g. a write drain). Returns the ACT time, or
    /// `None` if the bank already has a row open (hit or conflict — the
    /// normal plan path handles both).
    pub fn pre_activate(&mut self, bank: usize, row: u32, not_before: Time) -> Option<Time> {
        if self.banks[bank].row.is_some() {
            return None;
        }
        let a = not_before
            .max(self.banks[bank].act_ready)
            .max(self.t_rrd_after(self.last_act_any))
            .max(self.t_faw_ready())
            .align_up(self.clock);
        let t = self.timings;
        let b = &mut self.banks[bank];
        b.last_act = a;
        b.act_ready = a + t.t_rc;
        b.col_ready = a + t.t_rcd;
        b.pre_ready = a + t.t_ras;
        b.row = Some(row);
        Self::bump(&mut self.last_act_any, a);
        self.note_act(a);
        self.ops.act_pre += 1;
        Some(a)
    }

    /// Plans a column access to `(bank, row)` that may not begin before
    /// `not_before`, against the current bank state and `bus` occupancy.
    ///
    /// The returned plan holds every command time and the data window.
    /// Planning is pure: neither the banks nor the bus are modified.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range or the burst length is zero.
    pub fn plan(
        &self,
        bank: usize,
        row: u32,
        op: ColumnOp,
        not_before: Time,
        bus: &DataBus,
    ) -> AccessPlan {
        assert!(!op.burst.is_zero(), "burst length must be non-zero");
        let t = &self.timings;
        let clk = self.clock;
        let start = not_before.align_up(clk);
        let b = &self.banks[bank];

        let mut pre_at = None;
        let mut act_at = None;
        let col_ready;
        match b.row {
            Some(open) if open == row => {
                col_ready = b.col_ready;
            }
            Some(_) => {
                // Row conflict (open-page mode): precharge, then activate.
                let p = start
                    .max(b.pre_ready)
                    .max(self.t_rrd_after(self.last_pre_any))
                    .align_up(clk);
                pre_at = Some(p);
                let a = (p + t.t_rp)
                    .max(b.act_ready)
                    .max(b.last_act + t.t_rc)
                    .max(self.t_rrd_after(self.last_act_any))
                    .max(self.t_faw_ready())
                    .align_up(clk);
                act_at = Some(a);
                col_ready = a + t.t_rcd;
            }
            None => {
                let a = start
                    .max(b.act_ready)
                    .max(self.t_rrd_after(self.last_act_any))
                    .max(self.t_faw_ready())
                    .align_up(clk);
                act_at = Some(a);
                col_ready = a + t.t_rcd;
            }
        }

        let mut cmd_at = start.max(col_ready).align_up(clk);
        let data_latency = match op.kind {
            ColKind::Read => t.t_cl,
            ColKind::Write => t.t_wl,
        };
        if op.kind == ColKind::Read {
            if let Some(we) = self.last_write_end {
                cmd_at = cmd_at.max(we + t.t_wtr).align_up(clk);
            }
        }
        // Push the command until its whole data window fits on the bus
        // (possibly into a gap between already-scheduled bursts).
        loop {
            let data_start = cmd_at + data_latency;
            let ok_at = bus.earliest_fit(op.kind, data_start, op.burst);
            if ok_at <= data_start {
                break;
            }
            cmd_at = (cmd_at + (ok_at - data_start)).align_up(clk);
        }
        let data_start = cmd_at + data_latency;

        AccessPlan {
            bank,
            row,
            pre_at,
            act_at,
            cmd_at,
            data_start,
            data_end: data_start + op.burst,
            op,
        }
    }

    fn t_rrd_after(&self, last: Option<Time>) -> Time {
        match last {
            Some(t) => t + self.timings.t_rrd,
            None => Time::ZERO,
        }
    }

    /// Earliest instant a fifth activate may issue: tFAW after the
    /// fourth-most-recent ACT on this rank.
    fn t_faw_ready(&self) -> Time {
        if self.timings.t_faw.is_zero() {
            return Time::ZERO;
        }
        match self.recent_acts[3] {
            Some(fourth) => fourth + self.timings.t_faw,
            None => Time::ZERO,
        }
    }

    /// Total time this rank spent active (row open or transferring) —
    /// the active-standby residency for static-power estimation.
    pub fn active_time(&self) -> Dur {
        self.active_time
    }

    fn note_busy(&mut self, start: Time, end: Time) {
        let begin = start.max(self.busy_until);
        if end > begin {
            self.active_time += end - begin;
            self.busy_until = end;
        }
    }

    fn note_act(&mut self, at: Time) {
        // Keep the four most recent ACT times, newest first.
        self.recent_acts.rotate_right(1);
        self.recent_acts[0] = Some(at);
    }

    fn bump(slot: &mut Option<Time>, at: Time) {
        *slot = Some(slot.map_or(at, |prev| prev.max(at)));
    }

    /// Applies `plan` to the bank and bus state and updates the DRAM
    /// operation counters.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the plan is stale (violates the current
    /// bank timing state) — plans must be committed against the same
    /// state they were computed from.
    pub fn commit(&mut self, plan: &AccessPlan, bus: &mut DataBus) {
        let t = self.timings;
        if let Some(p) = plan.pre_at {
            debug_assert!(
                p >= self.banks[plan.bank].pre_ready,
                "stale plan: pre too early"
            );
            Self::bump(&mut self.last_pre_any, p);
        }
        if let Some(a) = plan.act_at {
            let b = &mut self.banks[plan.bank];
            debug_assert!(a >= b.act_ready, "stale plan: act too early");
            b.last_act = a;
            b.act_ready = a + t.t_rc;
            b.col_ready = a + t.t_rcd;
            b.pre_ready = a + t.t_ras;
            b.row = Some(plan.row);
            Self::bump(&mut self.last_act_any, a);
            self.note_act(a);
            self.ops.act_pre += 1;
        }
        let b = &mut self.banks[plan.bank];
        debug_assert!(
            b.row == Some(plan.row),
            "stale plan: row not open at commit"
        );
        debug_assert!(plan.cmd_at >= b.col_ready, "stale plan: column too early");
        match plan.op.kind {
            ColKind::Read => {
                self.ops.col_reads += 1;
                b.pre_ready = b.pre_ready.max(plan.cmd_at + t.t_rpd);
            }
            ColKind::Write => {
                self.ops.col_writes += 1;
                b.pre_ready = b.pre_ready.max(plan.cmd_at + t.t_wpd);
                Self::bump(&mut self.last_write_end, plan.data_end);
            }
        }
        let mut window_end = plan.data_end;
        if plan.op.auto_precharge {
            let pre_at = b.pre_ready;
            b.row = None;
            b.act_ready = b.act_ready.max(pre_at + t.t_rp);
            Self::bump(&mut self.last_pre_any, pre_at);
            window_end = window_end.max(pre_at + t.t_rp);
        }
        let window_start = plan.pre_at.or(plan.act_at).unwrap_or(plan.cmd_at);
        self.note_busy(window_start, window_end);
        bus.commit(plan.op.kind, plan.data_start, plan.data_end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLK: Dur = Dur::from_ns(3);

    fn array() -> BankArray {
        BankArray::new(4, DramTimings::ddr2_table2(), CLK)
    }

    fn bus() -> DataBus {
        DataBus::new(CLK)
    }

    fn read_ap() -> ColumnOp {
        ColumnOp {
            kind: ColKind::Read,
            auto_precharge: true,
            burst: Dur::from_ns(6),
        }
    }

    #[test]
    fn cold_read_takes_act_plus_rcd_plus_cl() {
        let a = array();
        let b = bus();
        let plan = a.plan(0, 7, read_ap(), Time::ZERO, &b);
        assert_eq!(plan.act_at, Some(Time::ZERO));
        assert_eq!(plan.cmd_at, Time::from_ns(15)); // tRCD
        assert_eq!(plan.data_start, Time::from_ns(30)); // + tCL
        assert_eq!(plan.data_end, Time::from_ns(36));
        assert!(plan.is_row_miss());
    }

    #[test]
    fn auto_precharge_closes_row_and_enforces_trc_cycle() {
        let mut a = array();
        let mut b = bus();
        let p1 = a.plan(0, 7, read_ap(), Time::ZERO, &b);
        a.commit(&p1, &mut b);
        assert!(!a.is_row_open(0, 7));
        // Next ACT same bank: pre at max(tRAS=39, rd@15+tRPD=24)=39, +tRP=54.
        let p2 = a.plan(0, 9, read_ap(), Time::ZERO, &b);
        assert_eq!(p2.act_at, Some(Time::from_ns(54)));
        // And tRC (54) is also satisfied exactly.
    }

    #[test]
    fn t_rrd_separates_activates_to_different_banks() {
        let mut a = array();
        let mut b = bus();
        let p1 = a.plan(0, 1, read_ap(), Time::ZERO, &b);
        a.commit(&p1, &mut b);
        let p2 = a.plan(1, 1, read_ap(), Time::ZERO, &b);
        assert_eq!(p2.act_at, Some(Time::from_ns(9))); // tRRD
    }

    #[test]
    fn open_page_row_hit_skips_activation() {
        let mut a = array();
        let mut b = bus();
        let open_read = ColumnOp {
            auto_precharge: false,
            ..read_ap()
        };
        let p1 = a.plan(0, 7, open_read, Time::ZERO, &b);
        a.commit(&p1, &mut b);
        assert!(a.is_row_open(0, 7));
        let p2 = a.plan(0, 7, open_read, Time::from_ns(20), &b);
        assert_eq!(p2.act_at, None);
        assert!(!p2.is_row_miss());
        // Only bus occupancy orders the second burst after the first.
        assert!(p2.data_start >= p1.data_end);
    }

    #[test]
    fn open_page_conflict_inserts_precharge() {
        let mut a = array();
        let mut b = bus();
        let open_read = ColumnOp {
            auto_precharge: false,
            ..read_ap()
        };
        let p1 = a.plan(0, 7, open_read, Time::ZERO, &b);
        a.commit(&p1, &mut b);
        let p2 = a.plan(0, 8, open_read, Time::ZERO, &b);
        // PRE cannot issue before tRAS (39 ns after ACT@0).
        assert_eq!(p2.pre_at, Some(Time::from_ns(39)));
        assert_eq!(p2.act_at, Some(Time::from_ns(54))); // +tRP
    }

    #[test]
    fn write_then_read_respects_t_wtr() {
        let mut a = array();
        let mut b = bus();
        let write = ColumnOp {
            kind: ColKind::Write,
            auto_precharge: true,
            burst: Dur::from_ns(6),
        };
        let pw = a.plan(0, 1, write, Time::ZERO, &b);
        a.commit(&pw, &mut b);
        // WR cmd at 15 (tRCD), data 27..33 (tWL=12). Read cmd ≥ 33+9=42.
        assert_eq!(pw.data_start, Time::from_ns(27));
        let pr = a.plan(1, 1, read_ap(), Time::ZERO, &b);
        assert_eq!(pr.cmd_at, Time::from_ns(42));
    }

    #[test]
    fn pipelined_reads_to_different_banks_share_the_bus() {
        let mut a = array();
        let mut b = bus();
        let p1 = a.plan(0, 1, read_ap(), Time::ZERO, &b);
        a.commit(&p1, &mut b);
        let p2 = a.plan(1, 1, read_ap(), Time::ZERO, &b);
        a.commit(&p2, &mut b);
        // Data windows must not overlap.
        assert!(p2.data_start >= p1.data_end);
        // And the second access did not need to wait a full tRC.
        assert!(p2.cmd_at < Time::from_ns(54));
    }

    #[test]
    fn group_fetch_pipelines_column_accesses_on_one_row() {
        // The AMB prefetch group: 1 ACT + K column reads, last with AP.
        let mut a = array();
        let mut b = bus();
        let k = 4;
        let mut plans = Vec::new();
        for i in 0..k {
            let op = ColumnOp {
                kind: ColKind::Read,
                auto_precharge: i == k - 1,
                burst: Dur::from_ns(6),
            };
            let p = a.plan(0, 3, op, Time::ZERO, &b);
            a.commit(&p, &mut b);
            plans.push(p);
        }
        // Exactly one activation, K column reads.
        assert_eq!(a.ops().act_pre, 1);
        assert_eq!(a.ops().col_reads, 4);
        // Bursts are contiguous on the bus: 6 ns apart each.
        for w in plans.windows(2) {
            assert_eq!(w[1].data_start, w[0].data_end);
        }
        assert_eq!(plans[0].data_start, Time::from_ns(30));
        assert_eq!(plans[3].data_end, Time::from_ns(54));
    }

    #[test]
    fn op_counters_track_reads_and_writes() {
        let mut a = array();
        let mut b = bus();
        let p = a.plan(0, 1, read_ap(), Time::ZERO, &b);
        a.commit(&p, &mut b);
        let write = ColumnOp {
            kind: ColKind::Write,
            auto_precharge: true,
            burst: Dur::from_ns(6),
        };
        let p = a.plan(1, 1, write, Time::ZERO, &b);
        a.commit(&p, &mut b);
        assert_eq!(a.ops().act_pre, 2);
        assert_eq!(a.ops().col_reads, 1);
        assert_eq!(a.ops().col_writes, 1);
        assert_eq!(a.ops().col_total(), 2);
    }

    #[test]
    fn pre_activate_opens_a_row_command_ahead() {
        let mut a = array();
        let mut b = bus();
        // Open the row ahead of time; the later read skips its ACT.
        let act = a.pre_activate(0, 7, Time::ZERO).expect("bank was closed");
        assert_eq!(act, Time::ZERO);
        let open_read = ColumnOp {
            auto_precharge: true,
            ..read_ap()
        };
        let p = a.plan(0, 7, open_read, Time::from_ns(15), &b);
        assert_eq!(p.act_at, None, "pre-activated row serves without a new ACT");
        assert_eq!(p.cmd_at, Time::from_ns(15)); // tRCD already elapsed
        a.commit(&p, &mut b);
        assert_eq!(
            a.ops().act_pre,
            1,
            "one ACT total, counted at pre-activation"
        );
        // Pre-activating an already-open bank is a no-op.
        let mut a2 = array();
        a2.pre_activate(1, 3, Time::ZERO).unwrap();
        assert_eq!(a2.pre_activate(1, 4, Time::ZERO), None);
    }

    #[test]
    fn t_faw_limits_activate_bursts() {
        // 8 banks so tRC never masks the four-activate window.
        let mut a = BankArray::new(8, DramTimings::ddr2_table2(), CLK);
        let mut b = bus();
        let mut acts = Vec::new();
        for bank in 0..5 {
            let p = a.plan(bank, 1, read_ap(), Time::ZERO, &b);
            acts.push(p.act_at.expect("close page activates"));
            a.commit(&p, &mut b);
        }
        // First four ACTs are tRRD-paced: 0, 9, 18, 27 ns.
        assert_eq!(acts[3], Time::from_ns(27));
        // The fifth must wait tFAW (37.5 ns) after the first.
        assert!(
            acts[4] >= Time::ZERO + DramTimings::ddr2_table2().t_faw,
            "fifth ACT at {} violates tFAW",
            acts[4]
        );
    }

    #[test]
    fn t_faw_zero_disables_the_window() {
        let mut t = DramTimings::ddr2_table2();
        t.t_faw = Dur::ZERO;
        let mut a = BankArray::new(8, t, CLK);
        let mut b = bus();
        let mut acts = Vec::new();
        for bank in 0..5 {
            let p = a.plan(bank, 1, read_ap(), Time::ZERO, &b);
            acts.push(p.act_at.expect("activates"));
            a.commit(&p, &mut b);
        }
        // Pure tRRD pacing: fifth ACT at 36 ns < 37.5 ns.
        assert_eq!(acts[4], Time::from_ns(36));
    }

    #[test]
    fn refresh_blocks_all_banks_for_trfc() {
        let mut a = array();
        let mut b = bus();
        let done = a.refresh_all(Time::from_ns(30), Dur::from_ns(128));
        assert_eq!(done, Time::from_ns(158));
        assert_eq!(a.ops().refreshes, 1);
        // The next access to any bank waits for the refresh to finish.
        let p = a.plan(2, 1, read_ap(), Time::ZERO, &b);
        assert_eq!(p.act_at, Some(Time::from_ns(159).align_up(CLK)));
        a.commit(&p, &mut b);
    }

    #[test]
    fn refresh_waits_for_open_rows_to_precharge() {
        let mut a = array();
        let mut b = bus();
        let open_read = ColumnOp {
            auto_precharge: false,
            ..read_ap()
        };
        let p = a.plan(0, 7, open_read, Time::ZERO, &b);
        a.commit(&p, &mut b); // row open; pre_ready = tRAS = 39 ns
        let done = a.refresh_all(Time::ZERO, Dur::from_ns(128));
        // PRE earliest at 39, +tRP 15 -> refresh starts at 54.
        assert_eq!(done, Time::from_ns(54 + 128));
        assert!(!a.is_row_open(0, 7), "refresh closes all rows");
    }

    #[test]
    #[should_panic(expected = "tRFC")]
    fn refresh_rejects_zero_trfc() {
        let mut a = array();
        a.refresh_all(Time::ZERO, Dur::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let _ = BankArray::new(0, DramTimings::ddr2_table2(), CLK);
    }

    #[test]
    fn len_reports_bank_count() {
        assert_eq!(array().len(), 4);
        assert!(!array().is_empty());
    }

    #[test]
    fn builds_from_a_registered_timing_spec() {
        // The extension substrate's table reaches the devices purely by
        // registry name — no bank-array code mentions DDR3-1066.
        let spec = fbd_types::substrate::timing_specs()
            .get("ddr3-1066")
            .expect("ddr3-1066 timing spec is registered");
        let a = BankArray::for_spec(4, spec);
        let t = spec.timings();
        let clk = spec.data_rate().clock_period();
        let p = a.plan(0, 3, read_ap(), Time::ZERO, &DataBus::new(clk));
        // First access to an idle bank: ACT at 0, READ at tRCD, data at
        // tRCD + CL — straight from the spec's table.
        assert_eq!(p.act_at, Some(Time::ZERO));
        assert_eq!(p.cmd_at, Time::ZERO + t.t_rcd);
        assert_eq!(p.data_start, Time::ZERO + t.t_rcd + t.t_cl);
    }
}
