//! Figure 9: decomposition of the AMB-prefetching performance gain into
//! bandwidth-utilization improvement and idle-latency reduction, via the
//! FBD-APFL ablation (hits skip the bank but are charged full latency).
//!
//! FBD→FBD-APFL isolates the bandwidth-utilization gain;
//! FBD-APFL→FBD-AP isolates the latency-reduction gain. Expected shape
//! (paper §5.2): the two gains are comparable, with bandwidth
//! utilization mattering more as cores increase (8.2/10.1/8.5/9.2% vs
//! 7.1/8.5/7.2/5.3% on 1/2/4/8 cores).

use fbd_bench::*;

fn main() {
    let exp = fbd_bench::experiment();
    banner("Figure 9", "gain decomposition via FBD-APFL", &exp);

    let refs = references(Variant::Ddr2, &exp);
    let mut rows = vec![vec![
        "group".to_string(),
        "FBD".to_string(),
        "FBD-APFL".to_string(),
        "FBD-AP".to_string(),
        "bandwidth gain".to_string(),
        "latency gain".to_string(),
    ]];
    let grouped = run_grouped(
        |cores| {
            vec![
                ("FBD".to_string(), system(Variant::Fbd, cores)),
                ("FBD-APFL".to_string(), system(Variant::FbdApfl, cores)),
                ("FBD-AP".to_string(), system(Variant::FbdAp, cores)),
            ]
        },
        &exp,
    );
    for (group, workloads, results) in grouped {
        let avg = |label: &str| {
            let v: Vec<f64> = workloads
                .iter()
                .map(|w| {
                    results
                        .iter()
                        .find(|((c, n), _)| c == label && n == w.name())
                        .map(|(_, r)| speedup(w, r, &refs))
                        .expect("run")
                })
                .collect();
            mean(&v)
        };
        let (base, apfl, ap) = (avg("FBD"), avg("FBD-APFL"), avg("FBD-AP"));
        rows.push(vec![
            group.to_string(),
            f3(base),
            f3(apfl),
            f3(ap),
            pct(apfl / base),
            pct(ap / apfl),
        ]);
    }
    emit_table("fig09_gain_decomposition", &rows);
    println!();
    println!(
        "paper: bandwidth gains 8.2/10.1/8.5/9.2%, latency gains 7.1/8.5/7.2/5.3% (1/2/4/8 cores)"
    );
}
