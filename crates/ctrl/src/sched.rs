//! Memory-access scheduling: the hit-first policy with read priority
//! (paper §4.1, after Rixner et al., reference 18 of the paper).
//!
//! The scheduler reorders pending transactions:
//!
//! 1. reads are scheduled before writes, unless the number of pending
//!    writes exceeds a threshold (then writes drain);
//! 2. among candidates, "hits" go first — row-buffer hits in open-page
//!    mode, AMB-cache hits when prefetching is on (both can be served
//!    without a new bank activation);
//! 3. ties break by age (oldest first).
//!
//! The scheduler itself is policy only: the caller classifies each entry
//! (it knows the bank and AMB-cache state) and the scheduler picks.

use fbd_types::config::{MemoryConfig, MemoryTech};
use fbd_types::request::AccessKind;
use fbd_types::RequestId;

use crate::queue::QueueEntry;

/// Service class of one queued transaction, as seen by the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SchedClass {
    /// Can be served without a new activation (row-buffer hit or
    /// AMB-cache hit). Highest priority.
    Hit,
    /// Needs an activation and its bank could accept one now.
    Ready,
    /// Its bank is busy (activation window, precharge, tRC).
    NotReady,
}

/// A pluggable, per-channel request-reordering policy (the trait-object
/// form of the scheduling interface; [`crate::schedulers`] publishes
/// implementations by name).
///
/// The controller collects the channel's schedulable entries and a
/// `classify` callback that knows the bank and AMB-cache state; the
/// policy picks the next transaction (or `None` when `candidates` is
/// empty). Policies may keep state across picks (e.g. write-drain
/// hysteresis), which is why `pick` takes `&mut self`.
pub trait SchedulerPolicy: Send + std::fmt::Debug {
    /// Picks the next transaction among `candidates` (already filtered
    /// to one channel and to schedulable arrivals). The slice is a
    /// caller-owned scratch buffer of copied entries, so policies can
    /// scan it repeatedly without allocating.
    fn pick(
        &mut self,
        candidates: &[QueueEntry],
        classify: &mut dyn FnMut(&QueueEntry) -> SchedClass,
    ) -> Option<RequestId>;
}

/// A named, registerable [`SchedulerPolicy`] factory (see
/// [`crate::schedulers`] for the registry).
pub trait SchedulerSpec: Send + Sync + std::fmt::Debug {
    /// Stable registry name (e.g. `hit-first`).
    fn name(&self) -> &'static str;
    /// One-line human description for listings.
    fn description(&self) -> &'static str;
    /// Builds one per-channel policy instance for `cfg` (write-drain
    /// threshold, bus technology, …).
    fn build(&self, cfg: &MemoryConfig) -> Box<dyn SchedulerPolicy>;
}

/// Which kinds the scheduler should consider this round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Reads,
    Writes,
}

/// The hit-first scheduling policy for one channel.
///
/// Write draining has hysteresis: once the pending-write count reaches
/// the threshold the scheduler *stays* in drain mode until writes fall
/// to half the threshold, so the expensive bus turnaround (tWTR) is paid
/// once per batch instead of once per write.
#[derive(Clone, Copy, Debug)]
pub struct HitFirstScheduler {
    write_drain_threshold: usize,
    hysteresis: bool,
    draining: bool,
}

impl HitFirstScheduler {
    /// Creates the policy with the given write-drain threshold and batch
    /// hysteresis (use hysteresis for shared-bus channels where each
    /// read/write turnaround costs tWTR; skip it for FB-DIMM, whose
    /// write path is independent).
    ///
    /// # Panics
    ///
    /// Panics if `write_drain_threshold` is zero.
    pub fn new(write_drain_threshold: usize, hysteresis: bool) -> HitFirstScheduler {
        assert!(write_drain_threshold > 0, "threshold must be non-zero");
        HitFirstScheduler {
            write_drain_threshold,
            hysteresis,
            draining: false,
        }
    }

    /// Picks the next transaction among `candidates` (the caller filters
    /// to one channel), classifying each entry with `classify`. Two
    /// passes over the slice, no allocation.
    ///
    /// Returns `None` when `candidates` is empty.
    pub fn pick<F>(&mut self, candidates: &[QueueEntry], mut classify: F) -> Option<RequestId>
    where
        F: FnMut(&QueueEntry) -> SchedClass,
    {
        if candidates.is_empty() {
            return None;
        }
        let writes = candidates
            .iter()
            .filter(|e| e.req.kind == AccessKind::Write)
            .count();
        let reads = candidates.len() - writes;
        if writes >= self.write_drain_threshold {
            self.draining = true;
        } else if writes <= self.write_drain_threshold / 2 || !self.hysteresis {
            self.draining = false;
        }
        let over_threshold = writes >= self.write_drain_threshold;
        let phase = if (self.draining && writes > 0) || over_threshold || reads == 0 {
            Phase::Writes
        } else {
            Phase::Reads
        };
        candidates
            .iter()
            .filter(|e| match phase {
                Phase::Reads => e.req.kind != AccessKind::Write,
                Phase::Writes => e.req.kind == AccessKind::Write,
            })
            .min_by_key(|e| (classify(e), e.seq))
            .map(|e| e.req.id)
    }
}

impl SchedulerPolicy for HitFirstScheduler {
    fn pick(
        &mut self,
        candidates: &[QueueEntry],
        classify: &mut dyn FnMut(&QueueEntry) -> SchedClass,
    ) -> Option<RequestId> {
        HitFirstScheduler::pick(self, candidates, |e| classify(e))
    }
}

/// Registry entry for the paper's hit-first policy.
#[derive(Debug)]
pub struct HitFirstSpec;

impl SchedulerSpec for HitFirstSpec {
    fn name(&self) -> &'static str {
        "hit-first"
    }
    fn description(&self) -> &'static str {
        "hit-first with read priority and write-drain threshold (paper §4.1)"
    }
    fn build(&self, cfg: &MemoryConfig) -> Box<dyn SchedulerPolicy> {
        Box::new(HitFirstScheduler::new(
            cfg.write_drain_threshold as usize,
            // Batch-drain writes only on the shared DDR2 bus, where
            // every direction change costs tWTR.
            cfg.tech == MemoryTech::Ddr2,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappedAddr;
    use fbd_types::request::{CoreId, MemRequest};
    use fbd_types::time::Time;
    use fbd_types::LineAddr;

    fn entry(id: u64, kind: AccessKind, seq: u64, bank: u32) -> QueueEntry {
        QueueEntry {
            req: MemRequest::new(
                RequestId(id),
                CoreId(0),
                kind,
                LineAddr::new(id),
                Time::ZERO,
            ),
            mapped: MappedAddr {
                channel: 0,
                dimm: 0,
                rank: 0,
                bank,
                row: 0,
                col_line: 0,
            },
            seq,
        }
    }

    fn sched() -> HitFirstScheduler {
        HitFirstScheduler::new(4, true)
    }

    #[test]
    fn empty_queue_yields_none() {
        let empty: Vec<QueueEntry> = Vec::new();
        let picked = sched().pick(&empty, |_| SchedClass::Ready);
        assert_eq!(picked, None);
    }

    #[test]
    fn reads_go_before_older_writes() {
        let entries = [
            entry(1, AccessKind::Write, 0, 0),
            entry(2, AccessKind::DemandRead, 1, 0),
        ];
        let picked = sched().pick(&entries, |_| SchedClass::Ready);
        assert_eq!(picked, Some(RequestId(2)));
    }

    #[test]
    fn hits_go_before_older_non_hits() {
        let entries = [
            entry(1, AccessKind::DemandRead, 0, 0),
            entry(2, AccessKind::DemandRead, 1, 1),
        ];
        let picked = sched().pick(&entries, |e| {
            if e.mapped.bank == 1 {
                SchedClass::Hit
            } else {
                SchedClass::Ready
            }
        });
        assert_eq!(picked, Some(RequestId(2)));
    }

    #[test]
    fn age_breaks_ties_within_a_class() {
        let entries = [
            entry(5, AccessKind::DemandRead, 7, 0),
            entry(6, AccessKind::DemandRead, 3, 0),
        ];
        let picked = sched().pick(&entries, |_| SchedClass::Ready);
        assert_eq!(picked, Some(RequestId(6)));
    }

    #[test]
    fn drain_mode_has_hysteresis() {
        let mut s = sched(); // threshold 4, low watermark 2
        let mut entries: Vec<QueueEntry> =
            (0..4).map(|i| entry(i, AccessKind::Write, i, 0)).collect();
        entries.push(entry(10, AccessKind::DemandRead, 10, 0));
        // 4 writes trigger draining.
        assert_eq!(s.pick(&entries, |_| SchedClass::Ready), Some(RequestId(0)));
        entries.remove(0);
        // 3 writes remain: still above the low watermark → keep draining
        // even though a read is available.
        assert_eq!(s.pick(&entries, |_| SchedClass::Ready), Some(RequestId(1)));
        entries.remove(0);
        // 2 writes: at the watermark → back to reads.
        assert_eq!(s.pick(&entries, |_| SchedClass::Ready), Some(RequestId(10)));
    }

    #[test]
    fn without_hysteresis_reads_resume_immediately() {
        let mut s = HitFirstScheduler::new(4, false);
        let mut entries: Vec<QueueEntry> =
            (0..4).map(|i| entry(i, AccessKind::Write, i, 0)).collect();
        entries.push(entry(10, AccessKind::DemandRead, 10, 0));
        // At the threshold a write drains...
        assert_eq!(s.pick(&entries, |_| SchedClass::Ready), Some(RequestId(0)));
        entries.remove(0);
        // ...but with hysteresis off the next pick returns to reads.
        assert_eq!(s.pick(&entries, |_| SchedClass::Ready), Some(RequestId(10)));
    }

    #[test]
    fn write_pressure_flips_to_write_drain() {
        let mut entries: Vec<QueueEntry> =
            (0..4).map(|i| entry(i, AccessKind::Write, i, 0)).collect();
        entries.push(entry(10, AccessKind::DemandRead, 10, 0));
        let picked = sched().pick(&entries, |_| SchedClass::Ready);
        assert_eq!(
            picked,
            Some(RequestId(0)),
            "4 writes ≥ threshold: drain oldest write"
        );
    }

    #[test]
    fn writes_drain_when_no_reads_pending() {
        let entries = [entry(1, AccessKind::Write, 0, 0)];
        let picked = sched().pick(&entries, |_| SchedClass::Ready);
        assert_eq!(picked, Some(RequestId(1)));
    }

    #[test]
    fn software_prefetch_counts_as_a_read() {
        let entries = [
            entry(1, AccessKind::Write, 0, 0),
            entry(2, AccessKind::SoftwarePrefetch, 1, 0),
        ];
        let picked = sched().pick(&entries, |_| SchedClass::Ready);
        assert_eq!(picked, Some(RequestId(2)));
    }

    #[test]
    fn ready_beats_not_ready() {
        let entries = [
            entry(1, AccessKind::DemandRead, 0, 0),
            entry(2, AccessKind::DemandRead, 1, 1),
        ];
        let picked = sched().pick(&entries, |e| {
            if e.mapped.bank == 0 {
                SchedClass::NotReady
            } else {
                SchedClass::Ready
            }
        });
        assert_eq!(picked, Some(RequestId(2)));
    }
}
