//! A minimal name-keyed component registry.
//!
//! Every composable interface in the workspace — timing specs and
//! substrates here in `fbd-types`, scheduler/mapper/refresh-manager
//! specs in `fbd-ctrl` — is published through a [`Registry`] so a
//! component can be selected by its stable string name at `RunSpec`
//! build time (DESIGN.md §14). Registries are built once behind a
//! `OnceLock` and hold `&'static` trait objects, so lookup is
//! allocation-free and a registered component lives for the whole
//! process.
//!
//! # Examples
//!
//! ```
//! use fbd_types::registry::Registry;
//!
//! let mut r: Registry<str> = Registry::new("greeting");
//! r.register("hello", "hello world");
//! assert_eq!(r.get("hello"), Some("hello world"));
//! assert_eq!(r.get("nope"), None);
//! assert_eq!(r.available(), "hello");
//! ```

/// An ordered name → component table. `T` is typically a trait object
/// type (`dyn TimingSpec`, `dyn SchedulerSpec`, …); entries keep their
/// registration order so listings are stable.
#[derive(Debug)]
pub struct Registry<T: ?Sized + 'static> {
    kind: &'static str,
    entries: Vec<(&'static str, &'static T)>,
}

impl<T: ?Sized + 'static> Registry<T> {
    /// An empty registry; `kind` names the component family in
    /// diagnostics (e.g. `"scheduler"`).
    pub fn new(kind: &'static str) -> Registry<T> {
        Registry {
            kind,
            entries: Vec::new(),
        }
    }

    /// The component family name this registry holds.
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// Adds an entry under `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered — duplicate names would
    /// make string selection ambiguous.
    pub fn register(&mut self, name: &'static str, entry: &'static T) {
        assert!(
            self.get(name).is_none(),
            "duplicate {} registration: `{name}`",
            self.kind
        );
        self.entries.push((name, entry));
    }

    /// Looks up a component by name.
    pub fn get(&self, name: &str) -> Option<&'static T> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, e)| *e)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.iter().map(|(n, _)| *n)
    }

    /// `(name, component)` pairs, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &'static T)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of registered components.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The names joined for diagnostics: `"a|b|c"` — the list printed
    /// after "unknown …" CLI errors.
    pub fn available(&self) -> String {
        self.names().collect::<Vec<_>>().join("|")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_order_follow_registration() {
        let mut r: Registry<str> = Registry::new("word");
        r.register("b", "bee");
        r.register("a", "ay");
        assert_eq!(r.get("a"), Some("ay"));
        assert_eq!(r.get("b"), Some("bee"));
        assert_eq!(r.get("c"), None);
        assert_eq!(r.names().collect::<Vec<_>>(), ["b", "a"]);
        assert_eq!(r.available(), "b|a");
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate word registration")]
    fn duplicate_names_are_rejected() {
        let mut r: Registry<str> = Registry::new("word");
        r.register("a", "ay");
        r.register("a", "ay again");
    }
}
