//! Calibration tests: the paper's idle-latency decomposition, exactly.
//!
//! Paper §5.2: with the default 667 MT/s configuration, an idle FB-DIMM
//! read takes 63 ns (12 controller + 3 southbound command + 15 tRCD +
//! 15 tCL + 6 data transfer + 12 AMB daisy chain) and an AMB-cache hit
//! takes 33 ns (the 30 ns of DRAM work eliminated).

use fbd_core::memsys::{Issued, MemorySystem};
use fbd_types::config::{AmbPrefetchMode, MemoryConfig, MemoryTech};
use fbd_types::request::{AccessKind, CoreId, MemRequest};
use fbd_types::time::Time;
use fbd_types::{LineAddr, RequestId};

fn read_req(id: u64, line: u64, at: Time) -> MemRequest {
    MemRequest::new(
        RequestId(id),
        CoreId(0),
        AccessKind::DemandRead,
        LineAddr::new(line),
        at,
    )
}

fn issue_read(mem: &mut MemorySystem, req: MemRequest) -> Time {
    let (ch, ready) = mem.submit(req);
    let mut result = mem.decide(ch, ready);
    match result.issued.pop().expect("request must issue") {
        Issued::Read { resp } => resp.completion,
        Issued::Write { .. } => panic!("expected a read"),
    }
}

#[test]
fn fbdimm_idle_read_latency_is_exactly_63ns() {
    let mut mem = MemorySystem::new(&MemoryConfig::fbdimm_default());
    let completion = issue_read(&mut mem, read_req(0, 0, Time::ZERO));
    assert_eq!(completion, Time::from_ns(63));
}

#[test]
fn amb_cache_hit_idle_latency_is_exactly_33ns() {
    let mut mem = MemorySystem::new(&MemoryConfig::fbdimm_with_prefetch());
    // Demand miss on line 0 group-fetches lines 0..4; lines 1-3 land in
    // the AMB cache.
    let first = issue_read(&mut mem, read_req(0, 0, Time::ZERO));
    assert_eq!(
        first,
        Time::from_ns(63),
        "miss path unchanged by prefetching"
    );
    // A later, isolated read of line 1 hits the AMB cache: 33 ns.
    let arrival = Time::from_ns(300);
    let completion = issue_read(&mut mem, read_req(1, 1, arrival));
    assert_eq!(completion - arrival, fbd_types::time::Dur::from_ns(33));
}

#[test]
fn full_latency_ablation_hit_costs_miss_latency() {
    let mut cfg = MemoryConfig::fbdimm_with_prefetch();
    cfg.amb.mode = AmbPrefetchMode::FullLatency;
    let mut mem = MemorySystem::new(&cfg);
    issue_read(&mut mem, read_req(0, 0, Time::ZERO));
    let arrival = Time::from_ns(300);
    let completion = issue_read(&mut mem, read_req(1, 1, arrival));
    // FBD-APFL: hits skip the bank but are charged the full 63 ns.
    assert_eq!(completion - arrival, fbd_types::time::Dur::from_ns(63));
    // And the hit really did skip the DRAM: only the group fetch's ops.
    let ops = mem.stats().dram_ops;
    assert_eq!(ops.act_pre, 1);
    assert_eq!(ops.col_reads, 4);
}

#[test]
fn ddr2_idle_read_latency_is_exactly_48ns() {
    // No southbound command transit and no AMB chain: 12 + 15 + 15 + 6.
    let mut mem = MemorySystem::new(&MemoryConfig::ddr2_default());
    let completion = issue_read(&mut mem, read_req(0, 0, Time::ZERO));
    assert_eq!(completion, Time::from_ns(48));
}

#[test]
fn vrl_shortens_close_dimms_only() {
    let mut cfg = MemoryConfig::fbdimm_default();
    cfg.tech = MemoryTech::FbDimm { vrl: true };
    let mut mem = MemorySystem::new(&cfg);
    // Line 0 maps to DIMM 0 — with VRL its chain delay is 3 ns, not 12.
    let completion = issue_read(&mut mem, read_req(0, 0, Time::ZERO));
    assert_eq!(completion, Time::from_ns(54));
}

#[test]
fn second_dimm_same_latency_without_vrl() {
    let mut mem = MemorySystem::new(&MemoryConfig::fbdimm_default());
    // Cacheline interleaving: channels cycle first, then DIMMs; line 2
    // sits on channel 0, DIMM 1.
    let completion = issue_read(&mut mem, read_req(0, 2, Time::ZERO));
    assert_eq!(
        completion,
        Time::from_ns(63),
        "fixed read latency without VRL"
    );
}

#[test]
fn amb_prefetch_does_not_delay_the_demanded_line() {
    // The group fetch returns the demanded line first: its latency must
    // equal the plain miss latency, for any K.
    for k in [2u32, 4, 8] {
        let mut cfg = MemoryConfig::fbdimm_with_prefetch();
        cfg.amb.region_lines = k;
        cfg.interleaving = fbd_types::config::Interleaving::MultiCacheline { lines: k };
        let mut mem = MemorySystem::new(&cfg);
        let completion = issue_read(&mut mem, read_req(0, 0, Time::ZERO));
        assert_eq!(completion, Time::from_ns(63), "K={k}");
    }
}

#[test]
fn ddr2_open_page_row_hit_is_exactly_33ns() {
    // Open-page DDR2: a row hit skips the activation entirely:
    // 12 controller + 15 tCL + 6 data = 33 ns.
    let mut cfg = MemoryConfig::ddr2_default();
    cfg.page_policy = fbd_types::config::PagePolicy::OpenPage;
    cfg.interleaving = fbd_types::config::Interleaving::Page;
    let mut mem = MemorySystem::new(&cfg);
    // Page interleaving: lines 0 and 1 share a row.
    let first = issue_read(&mut mem, read_req(0, 0, Time::ZERO));
    assert_eq!(first, Time::from_ns(48), "cold access pays the activation");
    let arrival = Time::from_ns(300);
    let completion = issue_read(&mut mem, read_req(1, 1, arrival));
    assert_eq!(completion - arrival, fbd_types::time::Dur::from_ns(33));
    assert_eq!(mem.stats().row_hits, 1);
    assert_eq!(
        mem.stats().dram_ops.act_pre,
        1,
        "one activation serves both"
    );
}

#[test]
fn ddr2_open_page_row_conflict_pays_precharge() {
    let mut cfg = MemoryConfig::ddr2_default();
    cfg.page_policy = fbd_types::config::PagePolicy::OpenPage;
    cfg.interleaving = fbd_types::config::Interleaving::Page;
    let mut mem = MemorySystem::new(&cfg);
    issue_read(&mut mem, read_req(0, 0, Time::ZERO)); // opens row 0
                                                      // A line on the same bank but a different row: page interleaving
                                                      // revisits a bank every (2 ch × 4 dimms × 4 banks) = 32 pages.
    let conflict_line = 32 * 128;
    let arrival = Time::from_ns(300);
    let completion = issue_read(&mut mem, read_req(1, conflict_line, arrival));
    // 12 + tRP(15) + tRCD(15) + tCL(15) + 6 = 63 ns.
    assert_eq!(completion - arrival, fbd_types::time::Dur::from_ns(63));
    assert_eq!(mem.stats().row_hits, 0);
}

#[test]
fn fbdimm_open_page_row_hit_is_exactly_48ns() {
    // FB-DIMM open page: 63 − 15 (activation skipped) = 48 ns.
    let mut cfg = MemoryConfig::fbdimm_default();
    cfg.page_policy = fbd_types::config::PagePolicy::OpenPage;
    cfg.interleaving = fbd_types::config::Interleaving::Page;
    let mut mem = MemorySystem::new(&cfg);
    issue_read(&mut mem, read_req(0, 0, Time::ZERO));
    let arrival = Time::from_ns(300);
    let completion = issue_read(&mut mem, read_req(1, 1, arrival));
    assert_eq!(completion - arrival, fbd_types::time::Dur::from_ns(48));
}

#[test]
fn write_invalidates_prefetched_copy() {
    let mut mem = MemorySystem::new(&MemoryConfig::fbdimm_with_prefetch());
    issue_read(&mut mem, read_req(0, 0, Time::ZERO)); // prefetches 1..4
                                                      // A writeback of line 1 makes the AMB copy stale.
    let wr = MemRequest::new(
        RequestId(1),
        CoreId(0),
        AccessKind::Write,
        LineAddr::new(1),
        Time::from_ns(200),
    );
    let (ch, ready) = mem.submit(wr);
    mem.decide(ch, ready);
    // The next read of line 1 must MISS (fresh DRAM access), not hit.
    let arrival = Time::from_ns(600);
    let completion = issue_read(&mut mem, read_req(2, 1, arrival));
    assert_eq!(completion - arrival, fbd_types::time::Dur::from_ns(63));
    assert_eq!(mem.stats().amb_hits, 0);
}
