//! A single-resource reservation timeline.
//!
//! Links and buses in the simulator are resources that carry one thing at
//! a time. A [`Timeline`] hands out non-overlapping time windows aligned
//! to clock edges, filling gaps left by earlier reservations (a short
//! command can slip between two long data transfers, which is exactly
//! how the FB-DIMM southbound link interleaves commands and write data).

use std::collections::VecDeque;

use fbd_types::time::{Dur, Time};

/// How far behind the newest reservation the timeline keeps history.
/// Reservations this far in the past can no longer be disturbed by new
/// traffic (the memory controller issues work in near-time order), so
/// intervals older than this are pruned and their span treated as busy.
const PRUNE_WINDOW: Dur = Dur::from_ps(5_000_000); // 5 µs

/// A single-resource timeline handing out non-overlapping busy windows.
///
/// # Examples
///
/// ```
/// use fbd_link::timeline::Timeline;
/// use fbd_types::time::{Dur, Time};
///
/// let mut tl = Timeline::new(Dur::from_ns(3));
/// let a = tl.reserve(Time::ZERO, Dur::from_ns(6));
/// let b = tl.reserve(Time::ZERO, Dur::from_ns(6));
/// assert_eq!(a, Time::ZERO);
/// assert_eq!(b, Time::from_ns(6)); // queued behind the first window
/// ```
#[derive(Clone, Debug)]
pub struct Timeline {
    clock: Dur,
    /// Sorted, disjoint busy intervals `[start, end)`.
    busy: VecDeque<(Time, Time)>,
    /// Everything before this instant is permanently unavailable.
    horizon: Time,
    /// Total reserved time, for utilization reporting.
    carried: Dur,
}

impl Timeline {
    /// Creates an idle timeline whose reservations start on multiples of
    /// `clock`.
    ///
    /// # Panics
    ///
    /// Panics if `clock` is zero.
    pub fn new(clock: Dur) -> Timeline {
        assert!(!clock.is_zero(), "clock period must be non-zero");
        Timeline {
            clock,
            busy: VecDeque::new(),
            horizon: Time::ZERO,
            carried: Dur::ZERO,
        }
    }

    /// Earliest start (on a clock edge, not before `not_before` or the
    /// prune horizon) of a free window of length `duration`.
    ///
    /// Pure: does not reserve.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is zero.
    pub fn probe(&self, not_before: Time, duration: Dur) -> Time {
        assert!(!duration.is_zero(), "reservation must be non-zero");
        let mut start = not_before.max(self.horizon).align_up(self.clock);
        for &(b_start, b_end) in &self.busy {
            if start + duration <= b_start {
                break; // fits in the gap before this interval
            }
            if start < b_end {
                start = b_end.align_up(self.clock);
            }
        }
        start
    }

    /// Reserves the earliest free window of length `duration` at or after
    /// `not_before`; returns its start.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is zero.
    pub fn reserve(&mut self, not_before: Time, duration: Dur) -> Time {
        let start = self.probe(not_before, duration);
        self.insert(start, start + duration);
        self.carried += duration;
        self.prune(start);
        start
    }

    /// Reserves a window at exactly `start` (which must be free and on a
    /// clock edge) — used when a previously probed window is committed.
    ///
    /// # Panics
    ///
    /// Panics if the window is not actually free.
    pub fn reserve_at(&mut self, start: Time, duration: Dur) {
        let got = self.probe(start, duration);
        assert!(
            got == start,
            "window at {start} no longer free (next free {got})"
        );
        self.insert(start, start + duration);
        self.carried += duration;
        self.prune(start);
    }

    fn insert(&mut self, start: Time, end: Time) {
        // Find insertion point keeping the deque sorted by start.
        let idx = self
            .busy
            .iter()
            .position(|&(s, _)| s > start)
            .unwrap_or(self.busy.len());
        self.busy.insert(idx, (start, end));
        // Merge adjacent/contiguous neighbours to bound the deque length.
        let mut i = idx.saturating_sub(1);
        while i + 1 < self.busy.len() {
            let (s1, e1) = self.busy[i];
            let (s2, e2) = self.busy[i + 1];
            debug_assert!(e1 <= s2 || s1 == s2, "overlapping reservations");
            if e1 >= s2 {
                self.busy[i] = (s1, e1.max(e2));
                self.busy.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }

    fn prune(&mut self, latest_start: Time) {
        let cutoff = Time::from_ps(latest_start.as_ps().saturating_sub(PRUNE_WINDOW.as_ps()));
        while let Some(&(_, end)) = self.busy.front() {
            if end <= cutoff {
                self.horizon = self.horizon.max(end);
                self.busy.pop_front();
            } else {
                break;
            }
        }
    }

    /// Total time this resource has carried traffic.
    pub fn carried(&self) -> Dur {
        self.carried
    }

    /// Instant after which the timeline is completely free.
    pub fn free_after(&self) -> Time {
        self.busy.back().map_or(self.horizon, |&(_, end)| end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl() -> Timeline {
        Timeline::new(Dur::from_ns(3))
    }

    #[test]
    fn reservations_queue_in_order() {
        let mut t = tl();
        assert_eq!(t.reserve(Time::ZERO, Dur::from_ns(6)), Time::ZERO);
        assert_eq!(t.reserve(Time::ZERO, Dur::from_ns(6)), Time::from_ns(6));
        assert_eq!(
            t.reserve(Time::from_ns(30), Dur::from_ns(6)),
            Time::from_ns(30)
        );
    }

    #[test]
    fn starts_align_to_clock_edges() {
        let mut t = tl();
        assert_eq!(
            t.reserve(Time::from_ns(4), Dur::from_ns(6)),
            Time::from_ns(6)
        );
    }

    #[test]
    fn short_reservation_fills_gap() {
        let mut t = tl();
        t.reserve(Time::ZERO, Dur::from_ns(6)); // [0,6)
        t.reserve(Time::from_ns(12), Dur::from_ns(6)); // [12,18)
                                                       // A 6 ns window fits exactly in [6,12).
        assert_eq!(t.reserve(Time::ZERO, Dur::from_ns(6)), Time::from_ns(6));
        // Nothing remains before 18.
        assert_eq!(t.reserve(Time::ZERO, Dur::from_ns(3)), Time::from_ns(18));
    }

    #[test]
    fn gap_too_small_is_skipped() {
        let mut t = tl();
        t.reserve(Time::ZERO, Dur::from_ns(3)); // [0,3)
        t.reserve(Time::from_ns(6), Dur::from_ns(6)); // [6,12)
                                                      // 6 ns does not fit in [3,6).
        assert_eq!(t.reserve(Time::ZERO, Dur::from_ns(6)), Time::from_ns(12));
    }

    #[test]
    fn probe_is_pure() {
        let mut t = tl();
        t.reserve(Time::ZERO, Dur::from_ns(6));
        let p1 = t.probe(Time::ZERO, Dur::from_ns(6));
        let p2 = t.probe(Time::ZERO, Dur::from_ns(6));
        assert_eq!(p1, p2);
        t.reserve_at(p1, Dur::from_ns(6));
        assert_eq!(t.probe(Time::ZERO, Dur::from_ns(6)), Time::from_ns(12));
    }

    #[test]
    #[should_panic(expected = "no longer free")]
    fn reserve_at_rejects_taken_window() {
        let mut t = tl();
        t.reserve(Time::ZERO, Dur::from_ns(6));
        t.reserve_at(Time::from_ns(3), Dur::from_ns(6));
    }

    #[test]
    fn carried_time_accumulates() {
        let mut t = tl();
        t.reserve(Time::ZERO, Dur::from_ns(6));
        t.reserve(Time::ZERO, Dur::from_ns(2));
        assert_eq!(t.carried(), Dur::from_ns(8));
        assert_eq!(t.free_after(), Time::from_ns(8)); // [0,6) then [6,8)
    }

    #[test]
    fn pruning_keeps_timeline_bounded() {
        let mut t = tl();
        for i in 0..10_000u64 {
            t.reserve(Time::from_ns(i * 30), Dur::from_ns(6));
        }
        assert!(
            t.busy.len() < 1_000,
            "deque grew unboundedly: {}",
            t.busy.len()
        );
        // Reservations far in the past get bumped to the horizon, never lost.
        let start = t.reserve(Time::ZERO, Dur::from_ns(3));
        assert!(start >= t.horizon);
    }
}
