//! Terminal rendering primitives for the `fbdsim --live` dashboard.
//!
//! The dashboard itself (layout, input handling, redraw loop) lives in
//! the CLI; this module holds the pure text widgets — sparkline, bar
//! gauge, SI-scaled numbers, compact durations — so they are
//! unit-testable without a TTY and reusable by future frontends (the
//! planned job-server streaming UI renders the same rows).
//!
//! All widgets return plain `String`s of exactly the requested width
//! (the redraw loop overdraws in place, so ragged lines would leave
//! stale characters behind).

use std::time::Duration;

/// Unicode block elements from "lower eighth" to "full block".
const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders the last `width` values as a one-line sparkline, scaled to
/// the max of the *visible window* (so a spike early in a long run does
/// not flatten the rest of the plot forever). Non-finite values and an
/// all-zero window render as the lowest block; missing leading values
/// pad with spaces so the line is always `width` chars.
pub fn sparkline(values: &[f64], width: usize) -> String {
    let start = values.len().saturating_sub(width);
    let window = &values[start..];
    let max = window
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(0.0_f64, f64::max);
    let mut out = String::with_capacity(width * 3);
    for _ in window.len()..width {
        out.push(' ');
    }
    for &v in window {
        if max > 0.0 && v.is_finite() && v > 0.0 {
            let level = ((v / max) * 8.0).ceil() as usize;
            out.push(BLOCKS[level.clamp(1, 8) - 1]);
        } else {
            out.push(BLOCKS[0]);
        }
    }
    out
}

/// Renders `frac` (clamped to 0..=1) as a `width`-char bar gauge with
/// eighth-block resolution on the leading edge.
pub fn bar(frac: f64, width: usize) -> String {
    let frac = if frac.is_finite() {
        frac.clamp(0.0, 1.0)
    } else {
        0.0
    };
    let eighths = (frac * (width as f64) * 8.0).round() as usize;
    let full = eighths / 8;
    let rem = eighths % 8;
    let mut out = String::with_capacity(width * 3);
    for _ in 0..full {
        out.push('█');
    }
    if rem > 0 && full < width {
        out.push(BLOCKS[rem - 1]);
    }
    while out.chars().count() < width {
        out.push(' ');
    }
    out
}

/// Formats a value with an SI magnitude suffix in ≤ 5 visible chars of
/// number (`"3.21M"`, `"456k"`, `"7.2G"`, `"12"`).
pub fn si(value: f64) -> String {
    if !value.is_finite() {
        return "-".into();
    }
    let neg = value < 0.0;
    let v = value.abs();
    let (scaled, suffix) = if v >= 1e12 {
        (v / 1e12, "T")
    } else if v >= 1e9 {
        (v / 1e9, "G")
    } else if v >= 1e6 {
        (v / 1e6, "M")
    } else if v >= 1e3 {
        (v / 1e3, "k")
    } else {
        (v, "")
    };
    let digits = if scaled >= 100.0 || (suffix.is_empty() && scaled == scaled.trunc()) {
        0
    } else if scaled >= 10.0 {
        1
    } else {
        2
    };
    format!(
        "{}{:.*}{}",
        if neg { "-" } else { "" },
        digits,
        scaled,
        suffix
    )
}

/// Formats a wall-clock duration compactly: `"873ms"`, `"4.3s"`,
/// `"2m07s"`, `"1h04m"`.
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 1.0 {
        format!("{:.0}ms", secs * 1000.0)
    } else if secs < 60.0 {
        format!("{secs:.1}s")
    } else if secs < 3600.0 {
        format!("{}m{:02}s", (secs / 60.0) as u64, (secs % 60.0) as u64)
    } else {
        format!(
            "{}h{:02}m",
            (secs / 3600.0) as u64,
            ((secs % 3600.0) / 60.0) as u64
        )
    }
}

/// Pads or truncates `s` to exactly `width` display chars — the redraw
/// loop overwrites lines in place, so every frame line must be
/// constant-width.
pub fn fit(s: &str, width: usize) -> String {
    let mut out: String = s.chars().take(width).collect();
    let len = out.chars().count();
    for _ in len..width {
        out.push(' ');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_is_fixed_width_and_scaled() {
        let s = sparkline(&[1.0, 2.0, 4.0, 8.0], 4);
        assert_eq!(s.chars().count(), 4);
        assert_eq!(s.chars().last(), Some('█'));
        // Short history pads on the left.
        let s = sparkline(&[5.0], 4);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with("   "));
        // Long history shows only the trailing window, rescaled to it.
        let s = sparkline(&[100.0, 1.0, 1.0], 2);
        assert_eq!(s, "██");
    }

    #[test]
    fn sparkline_handles_degenerate_input() {
        assert_eq!(sparkline(&[], 3), "   ");
        assert_eq!(sparkline(&[0.0, 0.0], 2).chars().count(), 2);
        assert_eq!(sparkline(&[f64::NAN, 1.0], 2).chars().count(), 2);
    }

    #[test]
    fn bar_clamps_and_fills() {
        assert_eq!(bar(0.0, 4), "    ");
        assert_eq!(bar(1.0, 4), "████");
        assert_eq!(bar(2.5, 4), "████");
        assert_eq!(bar(f64::NAN, 4), "    ");
        assert_eq!(bar(0.5, 4).chars().count(), 4);
        assert!(bar(0.5, 4).starts_with("██"));
    }

    #[test]
    fn si_scales_magnitudes() {
        assert_eq!(si(12.0), "12");
        assert_eq!(si(4_560.0), "4.56k");
        assert_eq!(si(3_210_000.0), "3.21M");
        assert_eq!(si(7_200_000_000.0), "7.20G");
        assert_eq!(si(1.5e13), "15.0T");
        assert_eq!(si(-2_000.0), "-2.00k");
        assert_eq!(si(f64::INFINITY), "-");
    }

    #[test]
    fn durations_format_compactly() {
        assert_eq!(fmt_duration(Duration::from_millis(873)), "873ms");
        assert_eq!(fmt_duration(Duration::from_secs_f64(4.31)), "4.3s");
        assert_eq!(fmt_duration(Duration::from_secs(127)), "2m07s");
        assert_eq!(fmt_duration(Duration::from_secs(3840)), "1h04m");
    }

    #[test]
    fn fit_pads_and_truncates() {
        assert_eq!(fit("ab", 4), "ab  ");
        assert_eq!(fit("abcdef", 4), "abcd");
        assert_eq!(fit("", 2), "  ");
    }
}
