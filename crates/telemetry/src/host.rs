//! Host-side self-profiling: where the *simulator process* spends its
//! wall-clock time, how fast the hot loop runs, and what it allocates.
//!
//! Everything else in this crate observes the *simulated* hardware;
//! this module observes the host. A [`HostProfiler`] accumulates
//! wall-clock time into a small fixed set of [`Phase`]s, counts hot-loop
//! events ([`Counter`]), and is summarized into a [`HostReport`] —
//! the `host` object every stats JSON document carries (wall time,
//! simulated-cycles/sec, per-phase breakdown, peak RSS, build
//! provenance).
//!
//! # Attribution model
//!
//! The event loop calls [`HostProfiler::mark`] at phase boundaries; the
//! wall time since the previous mark is charged to the phase that just
//! *completed*. Because every instant since construction is between two
//! marks, the per-phase durations partition the run's wall time by
//! construction — the phase fractions sum to ~1.0, which is what lets
//! downstream tooling assert "the breakdown explains ≥95% of wall
//! time" instead of trusting it.
//!
//! # Cost model
//!
//! A disabled profiler (the default for library users; see
//! [`HostProfiler::disabled`]) reduces every `mark`/`bump` to one
//! relaxed atomic load and a predictable branch — no timestamps are
//! taken. An enabled profiler takes one monotonic-clock read per mark.
//! Accumulators are relaxed [`AtomicU64`]s so the profiler is `Sync`
//! and a live dashboard on another thread can read it mid-run.
//!
//! # Examples
//!
//! ```
//! use fbd_telemetry::host::{HostProfiler, Phase};
//! use fbd_types::time::{DataRate, Dur};
//!
//! let prof = HostProfiler::enabled();
//! // ... do setup work ...
//! prof.mark(Phase::Setup);
//! // ... run the hot loop, marking phases ...
//! prof.mark(Phase::Controller);
//! let report = prof.report(Dur::from_ns(1_000_000), DataRate::MTS667.clock_period(), 300_000);
//! assert!(report.enabled);
//! assert!(report.phase_fraction_sum() > 0.95);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fbd_types::time::Dur;

use crate::json::Json;

/// A wall-clock attribution bucket. The set is closed and small so the
/// accumulators are a fixed array of atomics (no allocation, no map
/// lookup on the hot path).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Trace generation, system construction and instrumentation setup.
    Setup = 0,
    /// L2 warm-up (fast-forwarding traces through the cache model).
    Warmup = 1,
    /// Processor complex: trace advance, ROB/MSHR bookkeeping, fills.
    Cpu = 2,
    /// Memory-controller work: refresh management, queue scan and
    /// scheduling policy, event bookkeeping.
    Controller = 3,
    /// The issued transaction's datapath: FBD link frames, AMB cache
    /// and prefetch engine, and DRAM bank timing (these interleave per
    /// transaction, so they share one bucket; see DESIGN.md §15).
    Datapath = 4,
    /// Telemetry epoch snapshots.
    Telemetry = 5,
    /// The analytic fast-fidelity model (prediction + result
    /// synthesis); accurate runs never charge this phase.
    Model = 6,
    /// End-of-run collection: stats, energy report, final telemetry.
    Finish = 7,
    /// Everything outside the simulator itself: report formatting,
    /// JSON serialization, file I/O (charged by [`HostProfiler::report`]).
    Harness = 8,
}

/// All phases, in accumulator order; labels are the JSON keys.
pub const PHASES: [(Phase, &str); 9] = [
    (Phase::Setup, "setup"),
    (Phase::Warmup, "warmup"),
    (Phase::Cpu, "cpu"),
    (Phase::Controller, "controller"),
    (Phase::Datapath, "datapath"),
    (Phase::Telemetry, "telemetry"),
    (Phase::Model, "model"),
    (Phase::Finish, "finish"),
    (Phase::Harness, "harness"),
];

/// A monotonic hot-loop event counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Event-queue pops (loop iterations).
    Events = 0,
    /// Channel scheduling decisions executed.
    Decisions = 1,
    /// Requests retired at the controller (read + write completions).
    RequestsRetired = 2,
    /// DRAM device commands (ACT/PRE, column accesses, refreshes);
    /// collected from the device counters at run end.
    DramCommands = 3,
    /// Link frame transfers initiated (southbound commands + write
    /// data, northbound data returns), including retries.
    FramesSent = 4,
    /// Frames re-sent after a CRC-detected channel error (the retry
    /// subset of [`Counter::FramesSent`]); nonzero only under fault
    /// injection.
    Retries = 5,
}

/// All counters, in accumulator order; labels are the JSON keys.
pub const COUNTERS: [(Counter, &str); 6] = [
    (Counter::Events, "events"),
    (Counter::Decisions, "decisions"),
    (Counter::RequestsRetired, "requests_retired"),
    (Counter::DramCommands, "dram_commands"),
    (Counter::FramesSent, "frames_sent"),
    (Counter::Retries, "link_retries"),
];

/// Low-overhead wall-clock phase timer + event counters for one run.
///
/// See the [module docs](self) for the attribution and cost model.
#[derive(Debug)]
pub struct HostProfiler {
    on: bool,
    origin: Instant,
    /// Nanoseconds since `origin` of the most recent mark.
    last_ns: AtomicU64,
    /// Calls into [`mark_sampled`](Self::mark_sampled) so far; only
    /// every [`MARK_STRIDE`]th takes a timestamp.
    mark_seq: AtomicU64,
    phases: [AtomicU64; PHASES.len()],
    counters: [AtomicU64; COUNTERS.len()],
    /// Global allocation count at construction (`alloc-count` builds).
    #[cfg(feature = "alloc-count")]
    alloc_base: u64,
    /// Allocation count when the run entered steady state
    /// (`u64::MAX` until [`note_steady_start`](Self::note_steady_start)).
    #[cfg(feature = "alloc-count")]
    steady_alloc_base: AtomicU64,
    /// Allocation count when the hot loop ended (`u64::MAX` until
    /// [`note_steady_end`](Self::note_steady_end)).
    #[cfg(feature = "alloc-count")]
    steady_alloc_end: AtomicU64,
}

/// Every `MARK_STRIDE`th [`HostProfiler::mark_sampled`] call takes a
/// real timestamp; the rest are one relaxed load + store. The whole
/// stride's wall time is charged to the phase of the sampling call, so
/// the per-phase attribution error is bounded by the duration of one
/// stride (~64 events, microseconds), while totals stay exact because
/// marks still partition the wall clock.
pub const MARK_STRIDE: u64 = 64;

impl HostProfiler {
    fn new(on: bool) -> HostProfiler {
        HostProfiler {
            on,
            origin: Instant::now(),
            last_ns: AtomicU64::new(0),
            mark_seq: AtomicU64::new(0),
            phases: Default::default(),
            counters: Default::default(),
            #[cfg(feature = "alloc-count")]
            alloc_base: alloc::allocations(),
            #[cfg(feature = "alloc-count")]
            steady_alloc_base: AtomicU64::new(u64::MAX),
            #[cfg(feature = "alloc-count")]
            steady_alloc_end: AtomicU64::new(u64::MAX),
        }
    }

    /// A profiler that records. Wall time is measured from this call.
    pub fn enabled() -> HostProfiler {
        HostProfiler::new(true)
    }

    /// A profiler whose `mark`/`bump` calls are a load-and-branch no-op
    /// — the "no subscriber attached" state the overhead bench
    /// certifies as free.
    pub fn disabled() -> HostProfiler {
        HostProfiler::new(false)
    }

    /// True when marks are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Charges the wall time since the previous mark (or construction)
    /// to `phase`.
    #[inline]
    pub fn mark(&self, phase: Phase) {
        if !self.on {
            return;
        }
        let now_ns = u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let prev = self.last_ns.swap(now_ns, Ordering::Relaxed);
        self.phases[phase as usize].fetch_add(now_ns.saturating_sub(prev), Ordering::Relaxed);
    }

    /// Stride-sampled [`mark`](Self::mark) for per-event hot paths:
    /// takes a real timestamp only every [`MARK_STRIDE`]th call, so an
    /// *enabled* profiler stops double-digit-percent-slowing the event
    /// loop. Marks are written by the single simulation thread, so the
    /// sequence counter is a relaxed load + store, not an RMW.
    #[inline]
    pub fn mark_sampled(&self, phase: Phase) {
        if !self.on {
            return;
        }
        let seq = self.mark_seq.load(Ordering::Relaxed).wrapping_add(1);
        self.mark_seq.store(seq, Ordering::Relaxed);
        if seq & (MARK_STRIDE - 1) == 0 {
            self.mark(phase);
        }
    }

    /// Opens a scoped span: when the returned guard drops, the wall
    /// time since the previous mark is charged to `phase`. Sugar over
    /// [`mark`](Self::mark) for straight-line code (setup, warmup,
    /// benches); the event loop calls `mark` directly to sidestep
    /// borrow interactions with `&mut self` methods.
    pub fn span(&self, phase: Phase) -> PhaseSpan<'_> {
        PhaseSpan {
            profiler: self,
            phase,
        }
    }

    /// Increments `counter` by one.
    #[inline]
    pub fn bump(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Increments `counter` by `n`. Counters are written by the single
    /// simulation thread (readers elsewhere only load), so this is a
    /// relaxed load + store rather than an atomic RMW.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if !self.on {
            return;
        }
        let c = &self.counters[counter as usize];
        c.store(c.load(Ordering::Relaxed).wrapping_add(n), Ordering::Relaxed);
    }

    /// Overwrites `counter` with an externally collected total (used
    /// for counts the devices maintain themselves).
    pub fn set(&self, counter: Counter, value: u64) {
        if !self.on {
            return;
        }
        self.counters[counter as usize].store(value, Ordering::Relaxed);
    }

    /// Wall time since construction.
    pub fn wall(&self) -> Duration {
        self.origin.elapsed()
    }

    /// Current value of `counter` (a live dashboard reads this mid-run).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Current accumulated time of `phase` (live-readable mid-run).
    pub fn phase(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.phases[phase as usize].load(Ordering::Relaxed))
    }

    /// Snapshot of every phase accumulator, in [`PHASES`] order.
    pub fn phase_snapshot(&self) -> [Duration; PHASES.len()] {
        let mut out = [Duration::ZERO; PHASES.len()];
        for (slot, acc) in out.iter_mut().zip(&self.phases) {
            *slot = Duration::from_nanos(acc.load(Ordering::Relaxed));
        }
        out
    }

    /// Closes the run: charges the tail since the last mark to
    /// [`Phase::Harness`] and summarizes everything into a
    /// [`HostReport`]. `sim_elapsed` is the run's simulated time,
    /// `clock_period` the memory-clock period (for simulated cycles),
    /// `instructions` the total instructions committed.
    pub fn report(&self, sim_elapsed: Dur, clock_period: Dur, instructions: u64) -> HostReport {
        self.mark(Phase::Harness);
        // Wall time is read back from the closing mark itself, so the
        // phase durations sum to the reported wall exactly.
        let wall = if self.on {
            Duration::from_nanos(self.last_ns.load(Ordering::Relaxed))
        } else {
            self.wall()
        };
        let phases = PHASES
            .iter()
            .map(|&(p, label)| (label, self.phase(p)))
            .collect();
        let counters = COUNTERS
            .iter()
            .map(|&(c, label)| (label, self.counter(c)))
            .collect();
        let sim_cycles = if clock_period.is_zero() {
            0
        } else {
            sim_elapsed.as_ps() / clock_period.as_ps()
        };
        HostReport {
            enabled: self.on,
            wall,
            phases,
            counters,
            sim_time: sim_elapsed,
            sim_cycles,
            instructions,
            peak_rss_bytes: peak_rss_bytes(),
            allocations: self.allocation_delta(),
            steady_allocations: self.steady_allocation_delta(),
            build: BuildInfo::default(),
        }
    }

    /// Marks the start of allocation steady state (called by the event
    /// loop once enough requests have retired that every pool and
    /// scratch buffer has reached its high-water mark). Idempotent; a
    /// no-op without the `alloc-count` feature.
    pub fn note_steady_start(&self) {
        #[cfg(feature = "alloc-count")]
        #[cfg(feature = "alloc-count")]
        let _ = self.steady_alloc_base.compare_exchange(
            u64::MAX,
            alloc::allocations(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Marks the end of the hot loop (before end-of-run stats
    /// collection, which legitimately allocates). Idempotent; a no-op
    /// without the `alloc-count` feature.
    pub fn note_steady_end(&self) {
        #[cfg(feature = "alloc-count")]
        #[cfg(feature = "alloc-count")]
        let _ = self.steady_alloc_end.compare_exchange(
            u64::MAX,
            alloc::allocations(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    #[cfg(feature = "alloc-count")]
    fn allocation_delta(&self) -> Option<u64> {
        Some(alloc::allocations().saturating_sub(self.alloc_base))
    }

    #[cfg(not(feature = "alloc-count"))]
    fn allocation_delta(&self) -> Option<u64> {
        None
    }

    #[cfg(feature = "alloc-count")]
    fn steady_allocation_delta(&self) -> Option<u64> {
        let base = self.steady_alloc_base.load(Ordering::Relaxed);
        if base == u64::MAX {
            return None;
        }
        let end = self.steady_alloc_end.load(Ordering::Relaxed);
        let end = if end == u64::MAX {
            alloc::allocations()
        } else {
            end
        };
        Some(end.saturating_sub(base))
    }

    #[cfg(not(feature = "alloc-count"))]
    fn steady_allocation_delta(&self) -> Option<u64> {
        None
    }
}

/// RAII guard from [`HostProfiler::span`]: charges the enclosed scope's
/// wall time to its phase on drop.
#[derive(Debug)]
pub struct PhaseSpan<'a> {
    profiler: &'a HostProfiler,
    phase: Phase,
}

impl Drop for PhaseSpan<'_> {
    fn drop(&mut self) {
        self.profiler.mark(self.phase);
    }
}

/// An optional shared [`HostProfiler`]: the simulator components hold
/// one of these and call straight through; when empty every call is a
/// branch on `None`.
#[derive(Clone, Debug, Default)]
pub struct HostHandle(Option<Arc<HostProfiler>>);

impl HostHandle {
    /// Wraps a shared profiler.
    pub fn new(profiler: Arc<HostProfiler>) -> HostHandle {
        HostHandle(Some(profiler))
    }

    /// A handle with no profiler attached (all calls no-ops).
    pub fn off() -> HostHandle {
        HostHandle(None)
    }

    /// The wrapped profiler, if any.
    pub fn profiler(&self) -> Option<&Arc<HostProfiler>> {
        self.0.as_ref()
    }

    /// See [`HostProfiler::mark`].
    #[inline]
    pub fn mark(&self, phase: Phase) {
        if let Some(p) = &self.0 {
            p.mark(phase);
        }
    }

    /// See [`HostProfiler::mark_sampled`].
    #[inline]
    pub fn mark_sampled(&self, phase: Phase) {
        if let Some(p) = &self.0 {
            p.mark_sampled(phase);
        }
    }

    /// See [`HostProfiler::note_steady_start`].
    pub fn note_steady_start(&self) {
        if let Some(p) = &self.0 {
            p.note_steady_start();
        }
    }

    /// See [`HostProfiler::note_steady_end`].
    pub fn note_steady_end(&self) {
        if let Some(p) = &self.0 {
            p.note_steady_end();
        }
    }

    /// See [`HostProfiler::bump`].
    #[inline]
    pub fn bump(&self, counter: Counter) {
        if let Some(p) = &self.0 {
            p.bump(counter);
        }
    }

    /// See [`HostProfiler::add`].
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(p) = &self.0 {
            p.add(counter, n);
        }
    }

    /// See [`HostProfiler::set`].
    pub fn set(&self, counter: Counter, value: u64) {
        if let Some(p) = &self.0 {
            p.set(counter, value);
        }
    }

    /// Builds the run's [`HostReport`]; a default (disabled) report
    /// when no profiler is attached.
    pub fn finish_report(
        &self,
        sim_elapsed: Dur,
        clock_period: Dur,
        instructions: u64,
    ) -> HostReport {
        match &self.0 {
            Some(p) => p.report(sim_elapsed, clock_period, instructions),
            None => HostReport::default(),
        }
    }
}

/// Build provenance baked into the binary: what produced a number, so
/// `BENCH_throughput.json` rows stay comparable PR-over-PR.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuildInfo {
    /// Crate version (`CARGO_PKG_VERSION`).
    pub version: String,
    /// Short git commit hash, `-dirty` suffixed; `unknown` outside a
    /// work tree.
    pub git_sha: String,
    /// `rustc --version` of the building toolchain.
    pub rustc: String,
    /// Cargo build profile (`debug`/`release`).
    pub profile: String,
}

impl Default for BuildInfo {
    fn default() -> Self {
        BuildInfo {
            version: "unknown".into(),
            git_sha: "unknown".into(),
            rustc: "unknown".into(),
            profile: "unknown".into(),
        }
    }
}

impl BuildInfo {
    /// The provenance as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::from(self.version.as_str())),
            ("git_sha".into(), Json::from(self.git_sha.as_str())),
            ("rustc".into(), Json::from(self.rustc.as_str())),
            ("profile".into(), Json::from(self.profile.as_str())),
        ])
    }
}

/// One run's host-side summary: wall time, phase breakdown, event
/// counters, throughput inputs and build provenance. Returned in
/// `RunResult.host` and serialized as the `host` object of every stats
/// JSON document.
#[derive(Clone, Debug)]
pub struct HostReport {
    /// False when the run carried no profiler (all timings zero).
    pub enabled: bool,
    /// Wall-clock duration from profiler construction to report.
    pub wall: Duration,
    /// Per-phase wall time, in [`PHASES`] order.
    pub phases: Vec<(&'static str, Duration)>,
    /// Monotonic event counters, in [`COUNTERS`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Simulated time the run covered.
    pub sim_time: Dur,
    /// Simulated memory-clock cycles (`sim_time / clock_period`).
    pub sim_cycles: u64,
    /// Total instructions committed across cores.
    pub instructions: u64,
    /// Peak resident set size (`VmHWM`), when the platform exposes it.
    pub peak_rss_bytes: Option<u64>,
    /// Global allocation count over the run (`alloc-count` builds only).
    pub allocations: Option<u64>,
    /// Allocations between the steady-state mark (~1k retired requests
    /// into the run) and the end of the hot loop — the number the
    /// "allocation-free steady state" gate asserts is zero
    /// (`alloc-count` builds only; `None` for runs too short to reach
    /// steady state).
    pub steady_allocations: Option<u64>,
    /// Build provenance (filled in by the embedding crate's
    /// `build_info()`; `unknown` fields otherwise).
    pub build: BuildInfo,
}

impl Default for HostReport {
    fn default() -> Self {
        HostReport {
            enabled: false,
            wall: Duration::ZERO,
            phases: PHASES.iter().map(|&(_, l)| (l, Duration::ZERO)).collect(),
            counters: COUNTERS.iter().map(|&(_, l)| (l, 0)).collect(),
            sim_time: Dur::ZERO,
            sim_cycles: 0,
            instructions: 0,
            peak_rss_bytes: None,
            allocations: None,
            steady_allocations: None,
            build: BuildInfo::default(),
        }
    }
}

impl HostReport {
    /// Simulated memory-clock cycles per wall-clock second (0 when no
    /// wall time was measured).
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.sim_cycles as f64 / secs
        } else {
            0.0
        }
    }

    /// Committed instructions per wall-clock second.
    pub fn instr_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.instructions as f64 / secs
        } else {
            0.0
        }
    }

    /// Sum of the per-phase wall-time fractions — ~1.0 by construction
    /// on a profiled run (the acceptance gate asserts ≥ 0.95).
    pub fn phase_fraction_sum(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            return 0.0;
        }
        self.phases
            .iter()
            .map(|(_, d)| d.as_secs_f64() / wall)
            .sum()
    }

    /// The `host` stats-JSON object: throughput, phase breakdown
    /// (seconds + fraction per phase), counters, peak RSS and build
    /// provenance.
    pub fn to_json(&self) -> Json {
        let wall = self.wall.as_secs_f64();
        let phases = self
            .phases
            .iter()
            .map(|(label, d)| {
                let secs = d.as_secs_f64();
                let frac = if wall > 0.0 { secs / wall } else { 0.0 };
                (
                    (*label).to_string(),
                    Json::Obj(vec![
                        ("seconds".into(), Json::from(secs)),
                        ("fraction".into(), Json::from(frac)),
                    ]),
                )
            })
            .collect();
        let mut counters: Vec<(String, Json)> = self
            .counters
            .iter()
            .map(|(label, n)| ((*label).to_string(), Json::from(*n)))
            .collect();
        if let Some(n) = self.allocations {
            counters.push(("allocations".into(), Json::from(n)));
        }
        if let Some(n) = self.steady_allocations {
            counters.push(("steady_allocations".into(), Json::from(n)));
        }
        let mut fields = vec![
            ("enabled".to_string(), Json::Bool(self.enabled)),
            ("wall_s".to_string(), Json::from(wall)),
            (
                "sim_time_ns".to_string(),
                Json::from(self.sim_time.as_ns_f64()),
            ),
            ("sim_cycles".to_string(), Json::from(self.sim_cycles)),
            ("instructions".to_string(), Json::from(self.instructions)),
            (
                "cycles_per_sec".to_string(),
                Json::from(self.cycles_per_sec()),
            ),
            (
                "instr_per_sec".to_string(),
                Json::from(self.instr_per_sec()),
            ),
            (
                "phase_fraction_sum".to_string(),
                Json::from(self.phase_fraction_sum()),
            ),
            ("phases".to_string(), Json::Obj(phases)),
            ("counters".to_string(), Json::Obj(counters)),
        ];
        if let Some(rss) = self.peak_rss_bytes {
            fields.push(("peak_rss_bytes".to_string(), Json::from(rss)));
        }
        fields.push(("build".to_string(), self.build.to_json()));
        Json::Obj(fields)
    }
}

/// Peak resident set size in bytes from `/proc/self/status` (`VmHWM`);
/// `None` where procfs is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Counting global allocator (behind the `alloc-count` feature): every
/// heap allocation on the request path — and everywhere else — bumps a
/// relaxed global counter the [`HostReport`] snapshots, which is how
/// the "allocation-free steady state" claim of the future event-driven
/// core becomes measurable.
///
/// Install it in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: fbd_telemetry::host::alloc::CountingAlloc =
///     fbd_telemetry::host::alloc::CountingAlloc;
/// ```
#[cfg(feature = "alloc-count")]
pub mod alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// Process-wide allocation count since start.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// A [`System`]-backed allocator that counts allocations.
    pub struct CountingAlloc;

    // SAFETY: delegates every operation to `System`; the counter has no
    // effect on the returned memory.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_types::time::DataRate;

    #[test]
    fn marks_partition_wall_time() {
        let prof = HostProfiler::enabled();
        std::thread::sleep(Duration::from_millis(2));
        prof.mark(Phase::Setup);
        std::thread::sleep(Duration::from_millis(2));
        prof.mark(Phase::Controller);
        let report = prof.report(Dur::from_ns(1000), DataRate::MTS667.clock_period(), 500);
        assert!(report.enabled);
        assert!(report.wall >= Duration::from_millis(4));
        // The deltas cover the whole run (report closes the tail).
        let sum = report.phase_fraction_sum();
        assert!(sum > 0.99 && sum < 1.01, "fractions sum to {sum}");
        assert!(report
            .phases
            .iter()
            .any(|(l, d)| *l == "setup" && !d.is_zero()));
        assert!(report.cycles_per_sec() > 0.0);
        assert!(report.instr_per_sec() > 0.0);
    }

    #[test]
    fn sampled_marks_keep_partition_invariant() {
        let prof = HostProfiler::enabled();
        prof.mark(Phase::Setup);
        // Far more calls than one stride: only every 64th takes a
        // timestamp, but the deltas must still partition wall time.
        for _ in 0..1000 {
            prof.mark_sampled(Phase::Cpu);
            prof.mark_sampled(Phase::Controller);
        }
        assert_eq!(prof.mark_seq.load(Ordering::Relaxed), 2000);
        let report = prof.report(Dur::from_ns(1000), DataRate::MTS667.clock_period(), 1);
        let sum = report.phase_fraction_sum();
        assert!(sum > 0.99 && sum < 1.01, "fractions sum to {sum}");
    }

    #[test]
    fn sampled_marks_on_disabled_profiler_are_inert() {
        let prof = HostProfiler::disabled();
        for _ in 0..(MARK_STRIDE * 2) {
            prof.mark_sampled(Phase::Cpu);
        }
        assert_eq!(prof.mark_seq.load(Ordering::Relaxed), 0);
        assert_eq!(prof.phase(Phase::Cpu), Duration::ZERO);
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let prof = HostProfiler::disabled();
        prof.mark(Phase::Cpu);
        prof.bump(Counter::Events);
        prof.set(Counter::DramCommands, 99);
        assert_eq!(prof.phase(Phase::Cpu), Duration::ZERO);
        assert_eq!(prof.counter(Counter::Events), 0);
        assert_eq!(prof.counter(Counter::DramCommands), 0);
        let report = prof.report(Dur::from_ns(1000), DataRate::MTS667.clock_period(), 500);
        assert!(!report.enabled);
        assert_eq!(report.phase_fraction_sum(), 0.0);
    }

    #[test]
    fn counters_accumulate_and_export() {
        let prof = HostProfiler::enabled();
        prof.bump(Counter::Events);
        prof.add(Counter::FramesSent, 3);
        prof.set(Counter::DramCommands, 42);
        assert_eq!(prof.counter(Counter::Events), 1);
        assert_eq!(prof.counter(Counter::FramesSent), 3);
        assert_eq!(prof.counter(Counter::DramCommands), 42);
        let report = prof.report(Dur::from_ns(2_000), DataRate::MTS667.clock_period(), 100);
        let doc = report.to_json();
        let counters = doc.get("counters").expect("counters object");
        assert_eq!(
            counters.get("frames_sent").and_then(Json::as_f64),
            Some(3.0)
        );
        assert!(doc.get("build").is_some());
        assert!(doc.get("phases").is_some());
        // MTS667 clock period is 3 ns -> 2000 ns is 666 full cycles.
        assert_eq!(doc.get("sim_cycles").and_then(Json::as_f64), Some(666.0));
    }

    #[test]
    fn handle_without_profiler_is_inert() {
        let h = HostHandle::off();
        h.mark(Phase::Cpu);
        h.bump(Counter::Events);
        let report = h.finish_report(Dur::from_ns(10), DataRate::MTS667.clock_period(), 1);
        assert!(!report.enabled);
        assert!(h.profiler().is_none());
        let h = HostHandle::new(Arc::new(HostProfiler::enabled()));
        h.bump(Counter::Events);
        assert_eq!(h.profiler().unwrap().counter(Counter::Events), 1);
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if let Some(rss) = peak_rss_bytes() {
            assert!(rss > 0);
        }
    }
}
