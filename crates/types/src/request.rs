//! Memory transactions exchanged between the CPU side and the memory
//! controller.
//!
//! A [`MemRequest`] is one cacheline-granular transaction (the L2 cache
//! has already filtered the access stream, so every request here is an L2
//! miss or a writeback). The controller answers reads with a
//! [`MemResponse`] carrying completion timing; writes are posted and do
//! not generate responses.

use core::fmt;

use crate::address::LineAddr;
use crate::time::Time;

/// Identifies a processor core in a multi-core configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u32);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Unique, monotonically increasing transaction identifier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// The kind of memory transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand read caused by an L2 load/store miss. The issuing core
    /// eventually stalls on the response.
    DemandRead,
    /// A read issued on behalf of a software prefetch instruction that
    /// missed the L2. Non-blocking for the core.
    SoftwarePrefetch,
    /// A read issued by the (optional) hardware stream prefetcher at the
    /// L2. Non-blocking for the core.
    HardwarePrefetch,
    /// A dirty-line writeback from the L2 (posted; no response).
    Write,
}

impl AccessKind {
    /// True for the read kinds (they return data on the northbound
    /// link / data bus; writes only consume command + write bandwidth).
    #[inline]
    pub const fn is_read(self) -> bool {
        !matches!(self, AccessKind::Write)
    }

    /// True for the non-blocking prefetch reads (software or hardware).
    #[inline]
    pub const fn is_prefetch(self) -> bool {
        matches!(
            self,
            AccessKind::SoftwarePrefetch | AccessKind::HardwarePrefetch
        )
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::DemandRead => "read",
            AccessKind::SoftwarePrefetch => "swpf",
            AccessKind::HardwarePrefetch => "hwpf",
            AccessKind::Write => "write",
        };
        f.write_str(s)
    }
}

/// One cacheline-granular memory transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRequest {
    /// Unique transaction id.
    pub id: RequestId,
    /// Issuing core (writes carry the core whose L2 eviction produced
    /// them; used only for accounting).
    pub core: CoreId,
    /// Transaction kind.
    pub kind: AccessKind,
    /// Target cacheline.
    pub line: LineAddr,
    /// Instant the request arrived at the memory controller queue.
    pub arrival: Time,
}

impl MemRequest {
    /// Convenience constructor.
    pub fn new(
        id: RequestId,
        core: CoreId,
        kind: AccessKind,
        line: LineAddr,
        arrival: Time,
    ) -> Self {
        MemRequest {
            id,
            core,
            kind,
            line,
            arrival,
        }
    }
}

impl fmt::Display for MemRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} by {} @{}",
            self.id, self.kind, self.line, self.core, self.arrival
        )
    }
}

/// How a read was ultimately served (for coverage/efficiency accounting
/// and the latency-decomposition experiments).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServiceKind {
    /// Served by DRAM bank access (ACT + CAS, close page) — the common
    /// path without prefetching.
    DramAccess,
    /// Served from the AMB prefetch buffer (paper: "prefetch hit").
    AmbCacheHit,
    /// Served by DRAM, and the access also triggered a K-line group
    /// prefetch into the AMB cache.
    DramAccessWithPrefetch,
    /// Row-buffer hit under open-page policy (no ACT needed).
    RowBufferHit,
}

impl ServiceKind {
    /// True if the demanded data came from the AMB prefetch buffer.
    #[inline]
    pub const fn is_amb_hit(self) -> bool {
        matches!(self, ServiceKind::AmbCacheHit)
    }
}

/// Completion record for a read transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemResponse {
    /// The transaction this answers.
    pub id: RequestId,
    /// Issuing core.
    pub core: CoreId,
    /// Target cacheline.
    pub line: LineAddr,
    /// Kind of the original request.
    pub kind: AccessKind,
    /// Instant the critical data reached the memory controller.
    pub completion: Time,
    /// How the read was served.
    pub service: ServiceKind,
}

impl MemResponse {
    /// Read latency as observed at the controller.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `completion` precedes `arrival`.
    pub fn latency(&self, arrival: Time) -> crate::time::Dur {
        debug_assert!(self.completion >= arrival);
        self.completion - arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn access_kind_read_classification() {
        assert!(AccessKind::DemandRead.is_read());
        assert!(AccessKind::SoftwarePrefetch.is_read());
        assert!(!AccessKind::Write.is_read());
    }

    #[test]
    fn response_latency_is_completion_minus_arrival() {
        let resp = MemResponse {
            id: RequestId(1),
            core: CoreId(0),
            line: LineAddr::new(5),
            kind: AccessKind::DemandRead,
            completion: Time::from_ns(100),
            service: ServiceKind::DramAccess,
        };
        assert_eq!(resp.latency(Time::from_ns(37)), Dur::from_ns(63));
    }

    #[test]
    fn service_kind_hit_classification() {
        assert!(ServiceKind::AmbCacheHit.is_amb_hit());
        assert!(!ServiceKind::DramAccess.is_amb_hit());
        assert!(!ServiceKind::DramAccessWithPrefetch.is_amb_hit());
        assert!(!ServiceKind::RowBufferHit.is_amb_hit());
    }

    #[test]
    fn request_display_mentions_all_parts() {
        let req = MemRequest::new(
            RequestId(7),
            CoreId(2),
            AccessKind::Write,
            LineAddr::new(9),
            Time::from_ns(1),
        );
        let s = format!("{req}");
        assert!(s.contains("req#7"));
        assert!(s.contains("write"));
        assert!(s.contains("core2"));
    }
}
