//! DDR2 DRAM device timing model.
//!
//! Models the memory devices behind one DIMM: logical banks with the full
//! Table 2 timing rule set, and the DDR2 data bus that connects them to
//! their driver (an AMB in FB-DIMM, the controller in the DDR2 baseline).
//! The DRAM chips themselves are untouched by the paper's proposal — this
//! crate is shared verbatim by every simulated configuration.
//!
//! # Examples
//!
//! Plan and commit a close-page read and observe Table 2 timing:
//!
//! ```
//! use fbd_dram::{BankArray, ColKind, ColumnOp, DataBus};
//! use fbd_types::config::DramTimings;
//! use fbd_types::time::{Dur, Time};
//!
//! let timings = DramTimings::ddr2_table2();
//! let clock = Dur::from_ns(3); // DDR2-667
//! let mut banks = BankArray::new(4, timings, clock);
//! let mut bus = DataBus::new(clock);
//!
//! let op = ColumnOp { kind: ColKind::Read, auto_precharge: true, burst: Dur::from_ns(6) };
//! let plan = banks.plan(0, 42, op, Time::ZERO, &bus);
//! assert_eq!(plan.cmd_at, Time::from_ns(15));      // tRCD after ACT
//! assert_eq!(plan.data_start, Time::from_ns(30));  // + tCL
//! banks.commit(&plan, &mut bus);
//! assert_eq!(banks.ops().act_pre, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bank;
pub mod bus;
pub mod command;

pub use bank::BankArray;
pub use bus::DataBus;
pub use command::{AccessPlan, ColKind, ColumnOp};

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use fbd_types::config::DramTimings;
    use fbd_types::time::{Dur, Time};
    use proptest::prelude::*;

    const CLK: Dur = Dur::from_ns(3);

    #[derive(Clone, Debug)]
    struct Cmd {
        bank: usize,
        row: u32,
        write: bool,
        auto_pre: bool,
        delay_clocks: u64,
    }

    fn cmd_strategy() -> impl Strategy<Value = Cmd> {
        (0usize..4, 0u32..8, any::<bool>(), any::<bool>(), 0u64..20).prop_map(
            |(bank, row, write, auto_pre, delay_clocks)| Cmd {
                bank,
                row,
                write,
                auto_pre,
                delay_clocks,
            },
        )
    }

    proptest! {
        /// Any command sequence yields non-overlapping data bursts,
        /// tRC-separated activates per bank, tRRD-separated activates
        /// across banks, and column commands at least tRCD after their
        /// activate.
        #[test]
        fn timing_invariants_hold(cmds in proptest::collection::vec(cmd_strategy(), 1..60)) {
            let t = DramTimings::ddr2_table2();
            let mut banks = BankArray::new(4, t, CLK);
            let mut bus = DataBus::new(CLK);
            let mut now = Time::ZERO;
            let mut windows: Vec<(Time, Time)> = Vec::new();
            let mut acts: Vec<(usize, Time)> = Vec::new();

            for c in cmds {
                now += CLK * c.delay_clocks;
                let op = ColumnOp {
                    kind: if c.write { ColKind::Write } else { ColKind::Read },
                    auto_precharge: c.auto_pre,
                    burst: Dur::from_ns(6),
                };
                let plan = banks.plan(c.bank, c.row, op, now, &bus);
                // Column at least tRCD after its own activate.
                if let Some(a) = plan.act_at {
                    prop_assert!(plan.cmd_at >= a + t.t_rcd);
                    acts.push((c.bank, a));
                }
                // Data window aligns with command + CAS/write latency.
                let lat = if c.write { t.t_wl } else { t.t_cl };
                prop_assert_eq!(plan.data_start, plan.cmd_at + lat);
                windows.push((plan.data_start, plan.data_end));
                banks.commit(&plan, &mut bus);
            }

            // Data bursts never overlap.
            let mut sorted = windows.clone();
            sorted.sort();
            for w in sorted.windows(2) {
                prop_assert!(w[1].0 >= w[0].1, "burst overlap: {:?} then {:?}", w[0], w[1]);
            }
            // ACT separations.
            for (i, &(b1, a1)) in acts.iter().enumerate() {
                for &(b2, a2) in &acts[i + 1..] {
                    let gap = if a2 >= a1 { a2 - a1 } else { a1 - a2 };
                    if b1 == b2 {
                        prop_assert!(gap >= t.t_rc, "tRC violated on bank {}", b1);
                    } else {
                        prop_assert!(gap >= t.t_rrd, "tRRD violated between banks {},{}", b1, b2);
                    }
                }
            }
        }

        /// Close-page mode (every access auto-precharges) never leaves a
        /// row open, and op counters balance: one ACT/PRE per access.
        #[test]
        fn close_page_counts_balance(cmds in proptest::collection::vec(cmd_strategy(), 1..40)) {
            let t = DramTimings::ddr2_table2();
            let mut banks = BankArray::new(4, t, CLK);
            let mut bus = DataBus::new(CLK);
            let mut now = Time::ZERO;
            let n = cmds.len() as u64;
            for c in cmds {
                now += CLK * c.delay_clocks;
                let op = ColumnOp {
                    kind: if c.write { ColKind::Write } else { ColKind::Read },
                    auto_precharge: true,
                    burst: Dur::from_ns(6),
                };
                let plan = banks.plan(c.bank, c.row, op, now, &bus);
                prop_assert!(plan.is_row_miss(), "close page must always activate");
                banks.commit(&plan, &mut bus);
            }
            prop_assert_eq!(banks.ops().act_pre, n);
            prop_assert_eq!(banks.ops().col_total(), n);
        }
    }
}
