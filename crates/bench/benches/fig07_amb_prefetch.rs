//! Figure 7: overall performance of AMB prefetching — SMT speedup of
//! FB-DIMM with (FBD-AP) and without (FBD) prefetching, per workload.
//!
//! Reference points: each program alone on single-core two-logical-
//! channel DDR2 (the default geometry). Expected shape (paper §5.2):
//! FBD-AP beats FBD on *every* workload, averaging +16.0% / +19.4% /
//! +16.3% / +15.0% on 1/2/4/8 cores, and FBD-AP also beats DDR2 on
//! single-core workloads (unlike plain FBD).

use fbd_bench::*;

fn main() {
    let exp = fbd_bench::experiment();
    banner("Figure 7", "FBD vs FBD-AP SMT speedup", &exp);

    let refs = references(Variant::Ddr2, &exp);
    let mut rows = vec![vec![
        "workload".to_string(),
        "FBD".to_string(),
        "FBD-AP".to_string(),
        "AP gain".to_string(),
    ]];
    let mut negative = Vec::new();
    let grouped = run_grouped(
        |cores| {
            vec![
                ("FBD".to_string(), system(Variant::Fbd, cores)),
                ("FBD-AP".to_string(), system(Variant::FbdAp, cores)),
            ]
        },
        &exp,
    );
    for (group, workloads, results) in grouped {
        let (mut base, mut ap) = (vec![], vec![]);
        for w in &workloads {
            let s_base = results
                .iter()
                .find(|((c, n), _)| c == "FBD" && n == w.name())
                .map(|(_, r)| speedup(w, r, &refs))
                .expect("run");
            let s_ap = results
                .iter()
                .find(|((c, n), _)| c == "FBD-AP" && n == w.name())
                .map(|(_, r)| speedup(w, r, &refs))
                .expect("run");
            if s_ap < s_base {
                negative.push(w.name().to_string());
            }
            base.push(s_base);
            ap.push(s_ap);
            rows.push(vec![
                w.name().to_string(),
                f3(s_base),
                f3(s_ap),
                pct(s_ap / s_base),
            ]);
        }
        rows.push(vec![
            format!("avg {group}"),
            f3(mean(&base)),
            f3(mean(&ap)),
            pct(mean(&ap) / mean(&base)),
        ]);
        rows.push(Vec::new());
    }
    emit_table("fig07_amb_prefetch", &rows);
    println!();
    println!("paper: average AP gains +16.0% / +19.4% / +16.3% / +15.0% (1/2/4/8 cores); no workload negative");
    if negative.is_empty() {
        println!("reproduced: no workload has negative speedup");
    } else {
        println!(
            "NOTE: negative speedups observed on: {}",
            negative.join(", ")
        );
    }
}
