//! Telemetry for the FB-DIMM simulator: metric registry, epoch
//! time-series sampler, and cycle-level Chrome-trace event tracer.
//!
//! The simulator's hot paths keep their plain accumulators; this crate
//! is the *observability* layer layered on top:
//!
//! - [`MetricRegistry`] — named counters / gauges / latency
//!   accumulators under hierarchical dot paths such as
//!   `chan0.dimm2.bank5.act_count` or `amb.prefetch.hits`.
//! - [`EpochSampler`] — snapshots every registered metric each epoch of
//!   simulated time into an in-memory time-series, exportable as CSV or
//!   JSON.
//! - [`Tracer`] — southbound/northbound frame slots, DRAM commands,
//!   AMB hits, and power-mode transitions as Chrome Trace Event Format
//!   JSON, loadable in Perfetto (one track per channel / DIMM lane).
//! - [`hist`] — log-bucketed latency histograms and the
//!   stage × request-class latency-attribution profile behind
//!   `fbdsim profile`, with folded-stack (flamegraph) and JSON
//!   exporters.
//! - [`json`] — the dependency-free JSON value/writer/parser the
//!   exporters are built on.
//!
//! Everything is opt-in: a [`Telemetry`] built from the default
//! [`TelemetryConfig`] allocates no sampler and no tracer, and the
//! simulator's only obligation is an `is_on()` branch at emission
//! sites.
//!
//! # Examples
//!
//! ```
//! use fbd_telemetry::{Telemetry, TelemetryConfig};
//! use fbd_types::time::{Dur, Time};
//!
//! let mut tel = Telemetry::new(&TelemetryConfig {
//!     sample_interval: Some(Dur::from_ns(1000)),
//!     trace: true,
//! });
//! let acts = tel.registry.counter("chan0.acts");
//! tel.registry.add(acts, 1);
//! if let Some(tracer) = tel.tracer.as_mut() {
//!     tracer.complete("ACT", "dram", 0, 10, Time::from_ns(5), Dur::from_ns(12), vec![]);
//! }
//! tel.finish(Time::from_ns(1500));
//! assert_eq!(tel.sampler.unwrap().rows().len(), 1);
//! ```

pub mod hist;
pub mod host;
pub mod json;
pub mod live;
pub mod registry;
pub mod sampler;
pub mod trace;

pub use hist::{LogHistogram, StageProfile};
pub use host::{BuildInfo, Counter, HostHandle, HostProfiler, HostReport, Phase};
pub use json::Json;
pub use registry::{MetricId, MetricKind, MetricRegistry, MetricValue};
pub use sampler::{EpochSampler, SampleRow};
pub use trace::{tid_bank, tid_dimm, tid_power, Tracer, PID_SYSTEM, TID_NORTH, TID_SOUTH};

use std::fmt;
use std::sync::Arc;

use fbd_types::time::{Dur, Time};

/// What to collect during a run. The default collects nothing beyond
/// the (always-on, near-free) metric registry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Snapshot all metrics every this much simulated time.
    pub sample_interval: Option<Dur>,
    /// Record cycle-level events for Chrome-trace export.
    pub trace: bool,
}

impl TelemetryConfig {
    /// True when any collector beyond the registry is enabled.
    pub fn any_enabled(&self) -> bool {
        self.sample_interval.is_some() || self.trace
    }
}

/// The callback type a [`SampleObserver`] wraps.
type SampleCallback = dyn Fn(&SampleRow, &MetricRegistry) + Send + Sync;

/// An optional callback invoked with each freshly taken
/// [`SampleRow`] (and the registry for name lookups) — how the live
/// dashboard watches a run in flight without the simulator knowing
/// anything about terminals. Cloning shares the same callback.
#[derive(Clone, Default)]
pub struct SampleObserver(Option<Arc<SampleCallback>>);

impl SampleObserver {
    /// Wraps a callback.
    pub fn new(f: impl Fn(&SampleRow, &MetricRegistry) + Send + Sync + 'static) -> SampleObserver {
        SampleObserver(Some(Arc::new(f)))
    }

    /// The default no-op observer.
    pub fn none() -> SampleObserver {
        SampleObserver(None)
    }

    /// True when a callback is attached.
    pub fn is_attached(&self) -> bool {
        self.0.is_some()
    }

    fn notify(&self, row: &SampleRow, registry: &MetricRegistry) {
        if let Some(f) = &self.0 {
            f(row, registry);
        }
    }
}

impl fmt::Debug for SampleObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SampleObserver")
            .field(&self.0.as_ref().map(|_| "..."))
            .finish()
    }
}

/// Per-run telemetry state: the registry plus optional collectors.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    pub registry: MetricRegistry,
    pub sampler: Option<EpochSampler>,
    pub tracer: Option<Tracer>,
    /// Notified after every epoch snapshot (see [`SampleObserver`]).
    pub observer: SampleObserver,
}

impl Telemetry {
    /// Builds telemetry for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.sample_interval` is `Some(Dur::ZERO)`
    /// (see [`EpochSampler::new`]).
    pub fn new(config: &TelemetryConfig) -> Telemetry {
        Telemetry {
            registry: MetricRegistry::new(),
            sampler: config.sample_interval.map(EpochSampler::new),
            tracer: config.trace.then(Tracer::new),
            observer: SampleObserver::none(),
        }
    }

    /// Telemetry that collects nothing beyond the registry.
    pub fn off() -> Telemetry {
        Telemetry::default()
    }

    /// True when the event tracer is active — emission sites branch on
    /// this before doing any formatting work.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// When the next epoch snapshot is due ([`Time::NEVER`] if sampling
    /// is off) — the event loop uses this to schedule sample events.
    pub fn next_sample_due(&self) -> Time {
        self.sampler
            .as_ref()
            .map_or(Time::NEVER, EpochSampler::next_due)
    }

    /// Takes an epoch snapshot if sampling is enabled, notifying the
    /// attached [`SampleObserver`] (if any) with the new row.
    pub fn sample(&mut self, now: Time) {
        if let Some(sampler) = self.sampler.as_mut() {
            sampler.sample(now, &self.registry);
            if let Some(row) = sampler.rows().last() {
                self.observer.notify(row, &self.registry);
            }
        }
    }

    /// Ends the run at `end`: flushes the final partial epoch and
    /// notifies the observer with the closing row.
    pub fn finish(&mut self, end: Time) {
        if let Some(sampler) = self.sampler.as_mut() {
            sampler.finish(end, &self.registry);
            if let Some(row) = sampler.rows().last() {
                self.observer.notify(row, &self.registry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_collects_nothing() {
        let tel = Telemetry::new(&TelemetryConfig::default());
        assert!(!TelemetryConfig::default().any_enabled());
        assert!(tel.sampler.is_none());
        assert!(tel.tracer.is_none());
        assert!(!tel.tracing());
        assert_eq!(tel.next_sample_due(), Time::NEVER);
    }

    #[test]
    fn sampling_lifecycle() {
        let mut tel = Telemetry::new(&TelemetryConfig {
            sample_interval: Some(Dur::from_ns(50)),
            trace: false,
        });
        let c = tel.registry.counter("reads");
        assert_eq!(tel.next_sample_due(), Time::from_ns(50));

        tel.registry.add(c, 2);
        tel.sample(Time::from_ns(50));
        tel.registry.add(c, 1);
        tel.finish(Time::from_ns(75));

        let rows = tel.sampler.as_ref().unwrap().rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].values, vec![3.0]);
    }

    #[test]
    fn observer_sees_every_row() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let mut tel = Telemetry::new(&TelemetryConfig {
            sample_interval: Some(Dur::from_ns(50)),
            trace: false,
        });
        assert!(!tel.observer.is_attached());
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        tel.observer = SampleObserver::new(move |_row, _reg| {
            seen2.fetch_add(1, Ordering::Relaxed);
        });
        assert!(tel.observer.is_attached());
        tel.registry.counter("reads");
        tel.sample(Time::from_ns(50));
        tel.sample(Time::from_ns(100));
        tel.finish(Time::from_ns(120));
        assert_eq!(seen.load(Ordering::Relaxed), 3);
    }
}
