//! Build-time provenance capture: git SHA, rustc version and cargo
//! profile are baked into the binary as env vars so every stats JSON
//! document (and `fbdsim version`) can say exactly what produced it.
//! Everything degrades to "unknown" — builds from a tarball or without
//! git must not fail.

use std::process::Command;

fn main() {
    let sha = git_sha().unwrap_or_else(|| "unknown".into());
    let rustc = rustc_version().unwrap_or_else(|| "unknown".into());
    let profile = std::env::var("PROFILE").unwrap_or_else(|_| "unknown".into());
    println!("cargo:rustc-env=FBD_GIT_SHA={sha}");
    println!("cargo:rustc-env=FBD_RUSTC={rustc}");
    println!("cargo:rustc-env=FBD_PROFILE={profile}");
    // Re-run when HEAD moves so the SHA stays honest across commits.
    for hint in [".git/HEAD", ".git/index"] {
        let p = std::path::Path::new("../..").join(hint);
        if p.exists() {
            println!("cargo:rerun-if-changed={}", p.display());
        }
    }
}

fn git_sha() -> Option<String> {
    let sha = run("git", &["rev-parse", "--short=12", "HEAD"])?;
    let dirty = run("git", &["status", "--porcelain"]).is_some_and(|s| !s.is_empty());
    Some(if dirty { format!("{sha}-dirty") } else { sha })
}

fn rustc_version() -> Option<String> {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".into());
    run(&rustc, &["--version"])
}

fn run(cmd: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let text = text.trim();
    if text.is_empty() {
        None
    } else {
        Some(text.to_string())
    }
}
