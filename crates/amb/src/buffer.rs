//! The AMB cache (prefetch buffer).
//!
//! A small SRAM attached to each AMB, holding prefetched cachelines
//! (paper §3.2). The *data* lives on the DIMM; the *tags* live in the
//! memory controller's prefetch information table — but both sides
//! describe the same content, so the simulator keeps one structure per
//! AMB and the controller consults it.
//!
//! Replacement is FIFO by default: "LRU is not suitable for AMB cache
//! because a hit block may be cached in the processor and will not be
//! accessed soon." LRU is implemented for the ablation study.

use std::collections::VecDeque;

use fbd_types::config::{AmbPrefetchConfig, Replacement};
use fbd_types::LineAddr;

/// Tag state of one AMB's prefetch buffer.
#[derive(Clone, Debug)]
pub struct PrefetchBuffer {
    /// Per-set queues ordered oldest-first (FIFO insertion order; LRU
    /// recency order when the ablation policy is active).
    sets: Vec<VecDeque<LineAddr>>,
    ways: usize,
    replacement: Replacement,
}

impl PrefetchBuffer {
    /// Builds a buffer from the prefetcher configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero entries, ways not
    /// dividing entries) — call [`AmbPrefetchConfig::validate`] first.
    pub fn new(cfg: &AmbPrefetchConfig) -> PrefetchBuffer {
        cfg.validate().expect("invalid AMB prefetch configuration");
        let entries = cfg.cache_lines as usize;
        let ways = cfg.associativity.ways(cfg.cache_lines) as usize;
        let num_sets = entries / ways;
        PrefetchBuffer {
            sets: vec![VecDeque::with_capacity(ways); num_sets],
            ways,
            replacement: cfg.replacement,
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.as_u64() % self.sets.len() as u64) as usize
    }

    /// True if `line` is present. No replacement-state side effects.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.sets[self.set_index(line)].contains(&line)
    }

    /// Records a demand hit on `line`; returns whether it was present.
    ///
    /// Under FIFO this is equivalent to [`contains`](Self::contains);
    /// under LRU the line is moved to most-recently-used.
    pub fn on_hit(&mut self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        match set.iter().position(|&l| l == line) {
            Some(pos) => {
                if self.replacement == Replacement::Lru {
                    set.remove(pos);
                    set.push_back(line);
                }
                true
            }
            None => false,
        }
    }

    /// Inserts `line`, evicting the set's oldest (FIFO) or
    /// least-recently-used (LRU) entry if the set is full. Returns the
    /// evicted line, if any. Inserting a line already present refreshes
    /// its queue position without duplicating it.
    pub fn insert(&mut self, line: LineAddr) -> Option<LineAddr> {
        let idx = self.set_index(line);
        let ways = self.ways;
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            set.push_back(line);
            return None;
        }
        let evicted = if set.len() == ways {
            set.pop_front()
        } else {
            None
        };
        set.push_back(line);
        evicted
    }

    /// Removes `line` (a processor write made the prefetched copy
    /// stale). Returns whether it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        match set.iter().position(|&l| l == line) {
            Some(pos) => {
                set.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Lines currently held.
    pub fn len(&self) -> usize {
        self.sets.iter().map(VecDeque::len).sum()
    }

    /// True if no lines are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity in lines.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_types::config::{Associativity, Replacement};

    fn cfg(entries: u32, assoc: Associativity, replacement: Replacement) -> AmbPrefetchConfig {
        AmbPrefetchConfig {
            cache_lines: entries,
            associativity: assoc,
            replacement,
            region_lines: 2,
            ..AmbPrefetchConfig::paper_default()
        }
    }

    fn full_fifo(entries: u32) -> PrefetchBuffer {
        PrefetchBuffer::new(&cfg(entries, Associativity::Full, Replacement::Fifo))
    }

    #[test]
    fn insert_then_hit() {
        let mut buf = full_fifo(4);
        assert!(!buf.contains(LineAddr::new(10)));
        assert_eq!(buf.insert(LineAddr::new(10)), None);
        assert!(buf.contains(LineAddr::new(10)));
        assert!(buf.on_hit(LineAddr::new(10)));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn fifo_evicts_oldest_regardless_of_hits() {
        let mut buf = full_fifo(2);
        buf.insert(LineAddr::new(1));
        buf.insert(LineAddr::new(2));
        // Hit on 1 must NOT protect it under FIFO.
        assert!(buf.on_hit(LineAddr::new(1)));
        let evicted = buf.insert(LineAddr::new(3));
        assert_eq!(evicted, Some(LineAddr::new(1)));
        assert!(buf.contains(LineAddr::new(2)));
        assert!(buf.contains(LineAddr::new(3)));
    }

    #[test]
    fn lru_hit_protects_entry() {
        let mut buf = PrefetchBuffer::new(&cfg(2, Associativity::Full, Replacement::Lru));
        buf.insert(LineAddr::new(1));
        buf.insert(LineAddr::new(2));
        assert!(buf.on_hit(LineAddr::new(1)));
        let evicted = buf.insert(LineAddr::new(3));
        assert_eq!(evicted, Some(LineAddr::new(2)));
        assert!(buf.contains(LineAddr::new(1)));
    }

    #[test]
    fn duplicate_insert_does_not_grow_or_evict() {
        let mut buf = full_fifo(2);
        buf.insert(LineAddr::new(1));
        buf.insert(LineAddr::new(2));
        assert_eq!(buf.insert(LineAddr::new(2)), None);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn direct_mapped_conflicts_within_set() {
        let mut buf = PrefetchBuffer::new(&cfg(4, Associativity::Direct, Replacement::Fifo));
        // Lines 0 and 4 collide in a 4-set direct-mapped buffer.
        buf.insert(LineAddr::new(0));
        assert_eq!(buf.insert(LineAddr::new(4)), Some(LineAddr::new(0)));
        // Lines 1..3 occupy other sets without conflict.
        assert_eq!(buf.insert(LineAddr::new(1)), None);
        assert_eq!(buf.insert(LineAddr::new(2)), None);
        assert_eq!(buf.insert(LineAddr::new(3)), None);
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.capacity(), 4);
    }

    #[test]
    fn set_associative_uses_way_capacity() {
        let mut buf = PrefetchBuffer::new(&cfg(4, Associativity::Ways(2), Replacement::Fifo));
        // 2 sets × 2 ways. Lines 0, 2, 4 map to set 0.
        buf.insert(LineAddr::new(0));
        buf.insert(LineAddr::new(2));
        assert_eq!(buf.insert(LineAddr::new(4)), Some(LineAddr::new(0)));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut buf = full_fifo(4);
        buf.insert(LineAddr::new(7));
        assert!(buf.invalidate(LineAddr::new(7)));
        assert!(!buf.contains(LineAddr::new(7)));
        assert!(!buf.invalidate(LineAddr::new(7)));
        assert!(buf.is_empty());
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut buf = full_fifo(8);
        for i in 0..100 {
            buf.insert(LineAddr::new(i));
            assert!(buf.len() <= 8);
        }
        assert_eq!(buf.len(), 8);
        // The survivors are the 8 most recent.
        for i in 92..100 {
            assert!(buf.contains(LineAddr::new(i)));
        }
    }

    #[test]
    #[should_panic(expected = "invalid AMB prefetch configuration")]
    fn invalid_config_rejected() {
        let _ = PrefetchBuffer::new(&cfg(3, Associativity::Full, Replacement::Fifo));
    }
}
