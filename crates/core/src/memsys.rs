//! The complete memory subsystem: controller policy wired to a datapath.
//!
//! One [`MemorySystem`] owns the transaction queue, scheduler, address
//! mapper and (when prefetching is on) the prefetch information table,
//! plus one datapath per logical channel:
//!
//! * **FB-DIMM**: southbound/northbound links ([`fbd_link::FbdChannel`])
//!   in front of per-DIMM AMB engines ([`fbd_amb::AmbDimm`]);
//! * **DDR2** baseline: a shared command bus and a shared data bus in
//!   front of per-DIMM bank arrays.
//!
//! The subsystem is driven by *decision events*: at each decision
//! instant for a channel the scheduler picks the best ready transaction
//! (hit-first, read-priority) and issues it, reserving link/bus/bank
//! time and computing the completion analytically. One decision issues
//! at most one transaction, and the next decision follows one command
//! slot later, so scheduling stays fine-grained.

use std::collections::VecDeque;

use fbd_amb::AmbDimm;
use fbd_ctrl::{AddressMapper, HitFirstScheduler, MappedAddr, PrefetchTable, QueueEntry, SchedClass, TransactionQueue};
use fbd_dram::{BankArray, ColKind, ColumnOp, DataBus};
use fbd_link::{Ddr2CommandBus, FbdChannel};
use fbd_types::config::{AmbPrefetchMode, MemoryConfig, MemoryTech, PagePolicy};
use fbd_types::request::{AccessKind, MemRequest, MemResponse, ServiceKind};
use fbd_types::stats::MemStats;
use fbd_types::time::{Dur, Time};
use fbd_types::CACHE_LINE_BYTES;

/// Reads in flight per logical channel before the controller stops
/// issuing and waits for completions. Bounds how far reservations run
/// ahead of service, keeping hit-first reordering effective.
const MAX_INFLIGHT_PER_CHANNEL: u32 = 16;

/// An issued transaction, as reported to the simulation engine.
#[derive(Clone, Copy, Debug)]
pub enum Issued {
    /// A read; `resp.completion` is when the critical line reaches the
    /// controller.
    Read {
        /// The completed response.
        resp: MemResponse,
    },
    /// A write; `done` is when its data finishes at the devices.
    Write {
        /// Completion instant (frees the in-flight slot).
        done: Time,
    },
}

/// Outcome of one scheduling decision.
///
/// A decision usually issues at most one transaction; on a shared-bus
/// (DDR2) channel a triggered write drain commits the whole batch in one
/// decision so the following reads' activates overlap the write burst.
#[derive(Clone, Debug, Default)]
pub struct DecideResult {
    /// The transactions issued (empty if none was ready).
    pub issued: Vec<Issued>,
    /// When this channel should next run a decision (None: wait for a
    /// new arrival or a completion).
    pub next_decision: Option<Time>,
}

enum ChannelPath {
    Fbd {
        link: FbdChannel,
        dimms: Vec<AmbDimm>,
    },
    Ddr2 {
        cmd: Ddr2CommandBus,
        bus: DataBus,
        dimms: Vec<BankArray>,
    },
}

struct Channel {
    path: ChannelPath,
    inflight: u32,
    /// Per-DIMM next refresh deadline (empty when refresh is disabled).
    refresh_due: Vec<Time>,
}

/// The full memory subsystem behind the processor complex.
pub struct MemorySystem {
    cfg: MemoryConfig,
    mapper: AddressMapper,
    queue: TransactionQueue,
    spill: VecDeque<(MemRequest, MappedAddr)>,
    /// One scheduler per logical channel (drain-mode state is
    /// per-channel).
    scheds: Vec<HitFirstScheduler>,
    table: Option<PrefetchTable>,
    channels: Vec<Channel>,
    stats: MemStats,
    /// DIMM-bus time of one line on a (ganged) DIMM.
    burst: Dur,
    clock: Dur,
}

impl std::fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySystem")
            .field("tech", &self.cfg.tech)
            .field("channels", &self.channels.len())
            .field("queued", &self.queue.len())
            .field("spilled", &self.spill.len())
            .finish_non_exhaustive()
    }
}

impl MemorySystem {
    /// Builds the subsystem for a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: &MemoryConfig) -> MemorySystem {
        cfg.validate().expect("invalid memory configuration");
        let clock = cfg.data_rate.clock_period();
        let lines_per_clock_bytes = 16 * u64::from(cfg.phys_per_logical);
        let burst_clocks = (CACHE_LINE_BYTES).div_ceil(lines_per_clock_bytes);
        let burst = clock * burst_clocks;
        let close_page = cfg.page_policy == PagePolicy::ClosePage;
        // Stagger initial refresh deadlines across DIMMs, as real
        // controllers do, so the whole subsystem never refreshes at once.
        let refresh_due = |cfg: &MemoryConfig| -> Vec<Time> {
            if !cfg.refresh.enabled {
                return Vec::new();
            }
            let n = u64::from(cfg.dimms_per_channel);
            (0..n)
                .map(|i| Time::ZERO + (cfg.refresh.t_refi / n) * (i + 1))
                .collect()
        };
        let channels: Vec<Channel> = (0..cfg.logical_channels)
            .map(|_| {
                let path = match cfg.tech {
                    MemoryTech::FbDimm { .. } => ChannelPath::Fbd {
                        link: FbdChannel::new(cfg),
                        dimms: (0..cfg.dimms_per_channel)
                            .map(|_| {
                                AmbDimm::with_ranks(
                                    cfg.ranks_per_dimm as usize,
                                    cfg.banks_per_dimm as usize,
                                    cfg.timings,
                                    clock,
                                    burst,
                                    close_page,
                                )
                            })
                            .collect(),
                    },
                    MemoryTech::Ddr2 => ChannelPath::Ddr2 {
                        cmd: Ddr2CommandBus::new(cfg),
                        bus: DataBus::new(clock),
                        dimms: (0..cfg.dimms_per_channel * cfg.ranks_per_dimm)
                            .map(|_| BankArray::new(cfg.banks_per_dimm as usize, cfg.timings, clock))
                            .collect(),
                    },
                };
                Channel {
                    path,
                    inflight: 0,
                    refresh_due: refresh_due(cfg),
                }
            })
            .collect();
        MemorySystem {
            mapper: AddressMapper::new(cfg),
            queue: TransactionQueue::new(cfg.queue_capacity as usize),
            spill: VecDeque::new(),
            scheds: vec![
                HitFirstScheduler::new(
                    cfg.write_drain_threshold as usize,
                    // Batch-drain writes only on the shared DDR2 bus,
                    // where every direction change costs tWTR.
                    cfg.tech == MemoryTech::Ddr2,
                );
                cfg.logical_channels as usize
            ],
            table: cfg.amb.is_enabled().then(|| PrefetchTable::new(cfg)),
            channels,
            stats: MemStats::default(),
            burst,
            clock,
            cfg: *cfg,
        }
    }

    /// Submits a request. Returns the instant it becomes schedulable
    /// (arrival plus the controller's fixed overhead) and its channel, so
    /// the engine can schedule a decision.
    pub fn submit(&mut self, req: MemRequest) -> (u32, Time) {
        let mapped = self.mapper.map(req.line);
        let ready = req.arrival + self.cfg.controller_overhead;
        if !self.queue.try_push(req, mapped) {
            self.spill.push_back((req, mapped));
        }
        (mapped.channel, ready)
    }

    fn drain_spill(&mut self) {
        while !self.queue.is_full() {
            match self.spill.pop_front() {
                Some((req, mapped)) => {
                    let ok = self.queue.try_push(req, mapped);
                    debug_assert!(ok, "queue had space");
                }
                None => break,
            }
        }
    }

    /// True if any transaction is queued (or spilled) for channel `ch`.
    pub fn has_work(&self, ch: u32) -> bool {
        self.queue.iter().any(|e| e.mapped.channel == ch)
            || self.spill.iter().any(|(_, m)| m.channel == ch)
    }

    /// A completion was observed on `ch`: release its in-flight slot.
    pub fn complete(&mut self, ch: u32) {
        let c = &mut self.channels[ch as usize];
        c.inflight = c.inflight.saturating_sub(1);
    }

    /// Issues any refresh whose deadline has passed on channel `ch`.
    fn run_refreshes(&mut self, ch: u32, now: Time) {
        let t_refi = self.cfg.refresh.t_refi;
        let t_rfc = self.cfg.refresh.t_rfc;
        let channel = &mut self.channels[ch as usize];
        for (dimm, due) in channel.refresh_due.iter_mut().enumerate() {
            while *due <= now {
                match &mut channel.path {
                    ChannelPath::Fbd { dimms, .. } => {
                        dimms[dimm].refresh(*due, t_rfc);
                    }
                    ChannelPath::Ddr2 { dimms, .. } => {
                        dimms[dimm].refresh_all(*due, t_rfc);
                    }
                }
                *due += t_refi;
            }
        }
    }

    /// Runs one scheduling decision for channel `ch` at `now`.
    pub fn decide(&mut self, ch: u32, now: Time) -> DecideResult {
        if self.cfg.refresh.enabled {
            self.run_refreshes(ch, now);
        }
        if self.channels[ch as usize].inflight >= MAX_INFLIGHT_PER_CHANNEL {
            return DecideResult::default();
        }
        let Some(id) = self.pick_for(ch, now) else {
            // Nothing ready now; maybe a queued transaction becomes
            // schedulable later (spilled ones re-enter via the queue).
            let overhead = self.cfg.controller_overhead;
            let next = self
                .queue
                .iter()
                .filter(|e| e.mapped.channel == ch)
                .map(|e| e.req.arrival + overhead)
                .filter(|t| *t > now)
                .min();
            return DecideResult {
                issued: Vec::new(),
                next_decision: next,
            };
        };
        let entry = self.queue.remove(id).expect("picked entry exists");
        self.drain_spill();
        let first_is_write = entry.req.kind == AccessKind::Write;
        let mut issued = vec![self.execute(entry, now)];
        self.channels[ch as usize].inflight += 1;
        // Burst the write drain on a shared-bus channel: commit the whole
        // batch in one decision so the next reads' ACT/tRCD pipeline
        // overlaps the write burst on the data bus (what a real
        // controller's command scheduler achieves).
        if first_is_write && self.cfg.tech == MemoryTech::Ddr2 {
            while self.channels[ch as usize].inflight < MAX_INFLIGHT_PER_CHANNEL {
                let Some(nid) = self.pick_for(ch, now) else { break };
                let next_entry = self.queue.remove(nid).expect("picked entry exists");
                if next_entry.req.kind != AccessKind::Write {
                    // Put it back; reads resume at the next decision.
                    self.queue.restore(next_entry);
                    break;
                }
                self.drain_spill();
                issued.push(self.execute(next_entry, now));
                self.channels[ch as usize].inflight += 1;
            }
        }
        DecideResult {
            issued,
            next_decision: Some(self.next_slot(ch, now)),
        }
    }

    /// Applies the hit-first policy to channel `ch`'s ready transactions.
    fn pick_for(&mut self, ch: u32, now: Time) -> Option<fbd_types::RequestId> {
        let overhead = self.cfg.controller_overhead;
        let ready = |e: &QueueEntry| e.mapped.channel == ch && e.req.arrival + overhead <= now;
        {
            let table = self.table.as_ref();
            let channels = &self.channels;
            // Bank-readiness window: a bank that can accept an ACT soon
            // keeps the data bus busy; one deep in its tRC/precharge
            // window would stall it.
            let slack = self.clock * 2;
            let classify = |e: &QueueEntry| -> SchedClass {
                if self.cfg.sched_policy == fbd_types::config::SchedPolicy::Fcfs {
                    // FCFS ablation: no reordering signal; age decides.
                    return SchedClass::Ready;
                }
                if e.req.kind.is_read() {
                    if let Some(t) = table {
                        if t.would_hit(ch, e.mapped.dimm, e.req.line) {
                            return SchedClass::Hit;
                        }
                    }
                }
                let ranks = self.cfg.ranks_per_dimm;
                let (row_open, act_at, wtr_until) = match &channels[ch as usize].path {
                    ChannelPath::Fbd { dimms, .. } => {
                        let d = &dimms[e.mapped.dimm as usize];
                        (
                            d.is_row_open_at(e.mapped.rank as usize, e.mapped.bank as usize, e.mapped.row),
                            d.earliest_act_at(e.mapped.rank as usize, e.mapped.bank as usize),
                            d.read_turnaround_until(e.mapped.rank as usize),
                        )
                    }
                    ChannelPath::Ddr2 { dimms, .. } => {
                        let d = &dimms[(e.mapped.dimm * ranks + e.mapped.rank) as usize];
                        (
                            d.is_row_open(e.mapped.bank as usize, e.mapped.row),
                            d.earliest_act(e.mapped.bank as usize),
                            d.read_turnaround_until(),
                        )
                    }
                };
                // A read into a rank still inside its write-to-read
                // turnaround would stall; prefer ranks past it.
                let wtr_blocked = e.req.kind.is_read() && wtr_until > now + slack;
                if row_open && !wtr_blocked {
                    SchedClass::Hit
                } else if act_at <= now + slack && !wtr_blocked {
                    SchedClass::Ready
                } else {
                    SchedClass::NotReady
                }
            };
            self.scheds[ch as usize].pick(self.queue.iter().filter(|e| ready(e)), classify)
        }
    }

    /// The earliest instant after `now` at which another command can be
    /// scheduled on this channel (one command slot later).
    fn next_slot(&self, _ch: u32, now: Time) -> Time {
        match self.cfg.tech {
            MemoryTech::FbDimm { .. } => now + (self.clock * 2) / 3,
            MemoryTech::Ddr2 => now + self.clock,
        }
    }

    fn execute(&mut self, entry: QueueEntry, now: Time) -> Issued {
        match entry.req.kind {
            AccessKind::Write => self.execute_write(entry, now),
            _ => self.execute_read(entry, now),
        }
    }

    fn execute_read(&mut self, entry: QueueEntry, now: Time) -> Issued {
        let m = entry.mapped;
        let req = entry.req;
        let demand = req.kind == AccessKind::DemandRead;
        match req.kind {
            AccessKind::DemandRead => self.stats.demand_reads += 1,
            AccessKind::SoftwarePrefetch => self.stats.sw_prefetch_reads += 1,
            AccessKind::HardwarePrefetch => self.stats.hw_prefetch_reads += 1,
            AccessKind::Write => unreachable!("writes take the write path"),
        }
        self.stats.data_bytes += CACHE_LINE_BYTES;

        let (completion, service) = match &mut self.channels[m.channel as usize].path {
            ChannelPath::Fbd { link, dimms } => {
                let cmd_at_amb = link.send_command(now);
                let dimm = &mut dimms[m.dimm as usize];
                let rank = m.rank as usize;
                let hit = self
                    .table
                    .as_mut()
                    .is_some_and(|t| t.lookup_hit(m.channel, m.dimm, req.line));
                if hit {
                    let data_ready = match self.cfg.amb.mode {
                        // FBD-APFL: charge the full DRAM latency without
                        // touching the bank (Figure 9's ablation).
                        AmbPrefetchMode::FullLatency => {
                            cmd_at_amb + self.cfg.timings.t_rcd + self.cfg.timings.t_cl
                        }
                        _ => cmd_at_amb,
                    };
                    self.stats.amb_hits += 1;
                    let completion = link.return_read_data(m.dimm, data_ready);
                    (completion, ServiceKind::AmbCacheHit)
                } else if let Some(table) = self.table.as_mut() {
                    // Group fetch: demanded line first, K−1 fills.
                    let k = self.cfg.amb.region_lines;
                    let out = dimm.fetch_group_at(rank, m.bank as usize, m.row, k, cmd_at_amb);
                    let region = req.line.region(u64::from(k));
                    let fills = region.lines(u64::from(k)).filter(|l| *l != req.line);
                    let inserted = table.fill(m.channel, m.dimm, fills);
                    self.stats.lines_prefetched += inserted;
                    let completion = link.return_read_data(m.dimm, out.demanded_ready);
                    (completion, ServiceKind::DramAccessWithPrefetch)
                } else {
                    let out = dimm.read_line_at(rank, m.bank as usize, m.row, cmd_at_amb);
                    if out.row_hit {
                        self.stats.row_hits += 1;
                    }
                    let completion = link.return_read_data(m.dimm, out.data_ready);
                    let service = if out.row_hit {
                        ServiceKind::RowBufferHit
                    } else {
                        ServiceKind::DramAccess
                    };
                    (completion, service)
                }
            }
            ChannelPath::Ddr2 { cmd, bus, dimms } => {
                // Close page needs ACT + CAS on the shared command bus;
                // an open-page hit needs one; a conflict needs three.
                let dimm = &mut dimms[(m.dimm * self.cfg.ranks_per_dimm + m.rank) as usize];
                let n_cmds = if dimm.is_row_open(m.bank as usize, m.row) {
                    1
                } else {
                    2
                };
                let slots = cmd.issue_many(now, n_cmds);
                let op = ColumnOp {
                    kind: ColKind::Read,
                    auto_precharge: self.cfg.page_policy == PagePolicy::ClosePage,
                    burst: self.burst,
                };
                let plan = dimm.plan(m.bank as usize, m.row, op, slots[0], bus);
                let row_hit = !plan.is_row_miss();
                if row_hit {
                    self.stats.row_hits += 1;
                }
                dimm.commit(&plan, bus);
                let service = if row_hit {
                    ServiceKind::RowBufferHit
                } else {
                    ServiceKind::DramAccess
                };
                (plan.data_end, service)
            }
        };
        if demand {
            self.stats.read_latency.record(completion - req.arrival);
            self.stats.read_latency_hist.record(completion - req.arrival);
        }
        self.stats.bandwidth_series.record(completion, CACHE_LINE_BYTES);
        Issued::Read {
            resp: MemResponse {
                id: req.id,
                core: req.core,
                line: req.line,
                kind: req.kind,
                completion,
                service,
            },
        }
    }

    fn execute_write(&mut self, entry: QueueEntry, now: Time) -> Issued {
        let m = entry.mapped;
        self.stats.writes += 1;
        self.stats.data_bytes += CACHE_LINE_BYTES;
        // A store makes any prefetched copy stale.
        if let Some(table) = self.table.as_mut() {
            table.invalidate(m.channel, m.dimm, entry.req.line);
        }
        let done = match &mut self.channels[m.channel as usize].path {
            ChannelPath::Fbd { link, dimms } => {
                let data_at_amb = link.send_write_data(now);
                dimms[m.dimm as usize].write_line_at(m.rank as usize, m.bank as usize, m.row, data_at_amb)
            }
            ChannelPath::Ddr2 { cmd, bus, dimms } => {
                let dimm = &mut dimms[(m.dimm * self.cfg.ranks_per_dimm + m.rank) as usize];
                let n_cmds = if dimm.is_row_open(m.bank as usize, m.row) {
                    1
                } else {
                    2
                };
                let slots = cmd.issue_many(now, n_cmds);
                let op = ColumnOp {
                    kind: ColKind::Write,
                    auto_precharge: self.cfg.page_policy == PagePolicy::ClosePage,
                    burst: self.burst,
                };
                let plan = dimm.plan(m.bank as usize, m.row, op, slots[0], bus);
                dimm.commit(&plan, bus);
                plan.data_end
            }
        };
        self.stats.bandwidth_series.record(done, CACHE_LINE_BYTES);
        Issued::Write { done }
    }

    /// Statistics accumulated so far, with DRAM operation counters folded
    /// in from every DIMM.
    pub fn stats(&self) -> MemStats {
        let mut s = self.stats.clone();
        for c in &self.channels {
            match &c.path {
                ChannelPath::Fbd { dimms, .. } => {
                    for d in dimms {
                        s.dram_ops.merge(&d.ops());
                        s.dram_active_time += d.active_time();
                    }
                }
                ChannelPath::Ddr2 { dimms, .. } => {
                    for d in dimms {
                        s.dram_ops.merge(d.ops());
                        s.dram_active_time += d.active_time();
                    }
                }
            }
        }
        s
    }

    /// The configuration this subsystem was built from.
    pub fn config(&self) -> &MemoryConfig {
        &self.cfg
    }
}
