//! End-to-end telemetry: a full simulated run with the registry, epoch
//! sampler, and event tracer enabled, cross-checked against the
//! simulator's own statistics.

use fbd_core::experiment::ExperimentConfig;
use fbd_core::System;
use fbd_telemetry::{json, MetricValue, TelemetryConfig};
use fbd_types::config::{MemoryConfig, SystemConfig};
use fbd_types::time::Dur;
use fbd_workloads::Workload;

fn fbd_ap(cores: u32) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(cores);
    cfg.mem = MemoryConfig::fbdimm_with_prefetch();
    cfg
}

fn run_with_telemetry(cfg: &SystemConfig, budget: u64) -> fbd_core::RunResult {
    let w = Workload::new("1C-swim", &["swim"]);
    let exp = ExperimentConfig {
        budget,
        ..ExperimentConfig::default()
    };
    let mut sys = System::new(cfg, w.traces(exp.seed), exp.budget);
    sys.enable_telemetry(&TelemetryConfig {
        sample_interval: Some(Dur::from_ns(2_000)),
        trace: true,
    });
    sys.run()
}

fn counter(r: &fbd_core::RunResult, path: &str) -> u64 {
    let tel = r.telemetry.as_ref().expect("telemetry enabled");
    let id = tel
        .registry
        .lookup(path)
        .unwrap_or_else(|| panic!("metric {path} missing"));
    match tel.registry.value(id) {
        MetricValue::Counter(n) => n,
        other => panic!("{path} is not a counter: {other:?}"),
    }
}

fn gauge(r: &fbd_core::RunResult, path: &str) -> f64 {
    let tel = r.telemetry.as_ref().expect("telemetry enabled");
    let id = tel
        .registry
        .lookup(path)
        .unwrap_or_else(|| panic!("metric {path} missing"));
    match tel.registry.value(id) {
        MetricValue::Gauge(v) => v,
        other => panic!("{path} is not a gauge: {other:?}"),
    }
}

#[test]
fn registry_agrees_with_simulator_statistics() {
    let cfg = fbd_ap(1);
    let r = run_with_telemetry(&cfg, 20_000);
    let tel = r.telemetry.as_ref().expect("telemetry enabled");

    // Channel counters mirror the always-on ones and the global stats.
    let nch = cfg.mem.logical_channels;
    let total_reads: u64 = (0..nch)
        .map(|c| counter(&r, &format!("chan{c}.reads")))
        .sum();
    let total_writes: u64 = (0..nch)
        .map(|c| counter(&r, &format!("chan{c}.writes")))
        .sum();
    let total_bytes: u64 = (0..nch)
        .map(|c| counter(&r, &format!("chan{c}.bytes")))
        .sum();
    let all_reads = r.mem.demand_reads + r.mem.sw_prefetch_reads + r.mem.hw_prefetch_reads;
    assert_eq!(total_reads, all_reads);
    assert_eq!(total_writes, r.mem.writes);
    assert_eq!(total_bytes, r.mem.data_bytes);
    for (c, counts) in r.channels.iter().enumerate() {
        assert_eq!(counts.reads, counter(&r, &format!("chan{c}.reads")));
        assert_eq!(counts.bytes, counter(&r, &format!("chan{c}.bytes")));
        assert_eq!(counts.amb_hits, counter(&r, &format!("chan{c}.amb_hits")));
    }

    // AMB prefetching observables.
    assert_eq!(counter(&r, "amb.prefetch.hits"), r.mem.amb_hits);
    assert!(r.mem.amb_hits > 0, "swim on fbd-ap must hit the AMB cache");
    assert_eq!(counter(&r, "amb.prefetch.fills"), r.mem.lines_prefetched);

    // The latency accumulator saw exactly the demand reads.
    let id = tel.registry.lookup("mem.read_latency").expect("registered");
    let MetricValue::Latency { count, mean, .. } = tel.registry.value(id) else {
        panic!("mem.read_latency is not a latency metric");
    };
    assert_eq!(count, r.mem.demand_reads);
    let mean_ns = mean.map_or(0.0, |d| d.as_ns_f64());
    assert!(
        (mean_ns - r.avg_read_latency_ns()).abs() < 1e-6,
        "registry mean {mean_ns} vs stats mean {}",
        r.avg_read_latency_ns()
    );

    // Power residency gauges tile the whole run on every DIMM.
    let elapsed_ns = r.elapsed.as_ns_f64();
    for c in 0..nch {
        for d in 0..cfg.mem.dimms_per_channel {
            let total = gauge(&r, &format!("chan{c}.dimm{d}.power.active_ns"))
                + gauge(&r, &format!("chan{c}.dimm{d}.power.standby_ns"))
                + gauge(&r, &format!("chan{c}.dimm{d}.power.powerdown_ns"));
            assert!(
                (total - elapsed_ns).abs() < 0.5,
                "chan{c}.dimm{d} residency {total} ns != elapsed {elapsed_ns} ns"
            );
        }
    }
}

#[test]
fn sampler_and_tracer_collect_over_the_run() {
    let r = run_with_telemetry(&fbd_ap(1), 20_000);
    let tel = r.telemetry.as_ref().expect("telemetry enabled");

    let sampler = tel.sampler.as_ref().expect("sampling enabled");
    assert!(
        sampler.rows().len() >= 2,
        "expected multiple epochs, got {}",
        sampler.rows().len()
    );
    // Rows are time-ordered and the final flush lands at run end.
    for pair in sampler.rows().windows(2) {
        assert!(pair[0].at < pair[1].at);
    }
    // Counters are cumulative: the last row's chan0.reads matches the final value.
    let csv = sampler.to_csv(&tel.registry);
    assert!(
        csv.starts_with("time_ns,"),
        "csv header missing: {}",
        &csv[..40.min(csv.len())]
    );
    assert!(csv.lines().count() == sampler.rows().len() + 1);

    let tracer = tel.tracer.as_ref().expect("tracing enabled");
    assert!(!tracer.is_empty());
    let doc = tracer.to_chrome_trace();
    // Round-trip through text to exercise the writer and parser.
    let parsed = json::parse(&doc.to_json()).expect("trace must be valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(
        events.len() > tracer.len(),
        "metadata events must be present"
    );
    // The run produced link, dram, amb and power events.
    for cat in ["link", "dram", "amb", "power", "ctrl"] {
        assert!(
            events
                .iter()
                .any(|e| e.get("cat").and_then(|c| c.as_str()) == Some(cat)),
            "no {cat} events in trace"
        );
    }
}

#[test]
fn telemetry_off_costs_nothing_and_returns_none() {
    let w = Workload::new("1C-swim", &["swim"]);
    let cfg = fbd_ap(1);
    let sys = System::new(&cfg, w.traces(42), 20_000);
    let r = sys.run();
    assert!(r.telemetry.is_none());
    // Always-on channel counters still work without telemetry.
    let bytes: u64 = r.channels.iter().map(|c| c.bytes).sum();
    assert_eq!(bytes, r.mem.data_bytes);
    assert!(r.channel_bandwidth_gbps().iter().sum::<f64>() > 0.0);
}

#[test]
fn telemetry_runs_are_deterministic() {
    let a = run_with_telemetry(&fbd_ap(1), 10_000);
    let b = run_with_telemetry(&fbd_ap(1), 10_000);
    let ta = a.telemetry.expect("telemetry enabled");
    let tb = b.telemetry.expect("telemetry enabled");
    assert_eq!(
        ta.registry.to_json().to_json(),
        tb.registry.to_json().to_json()
    );
    assert_eq!(
        ta.tracer.expect("tracing").to_chrome_trace().to_json(),
        tb.tracer.expect("tracing").to_chrome_trace().to_json()
    );
}
