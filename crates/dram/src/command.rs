//! Column operations and access plans.
//!
//! The controller/AMB side *plans* an access first (a pure computation
//! answering "when could this access happen, and what row operations does
//! it need?") and then *commits* the chosen plan, which mutates bank and
//! bus state. The plan/commit split lets the scheduler compare candidate
//! requests (hit-first policy) without side effects.

use fbd_types::time::{Dur, Time};

/// Direction of a column access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ColKind {
    /// Column read (CAS).
    Read,
    /// Column write (CAS-W).
    Write,
}

impl ColKind {
    /// True for reads.
    #[inline]
    pub const fn is_read(self) -> bool {
        matches!(self, ColKind::Read)
    }
}

/// One column access to be planned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColumnOp {
    /// Read or write.
    pub kind: ColKind,
    /// Issue auto-precharge with this column access (close-page mode, or
    /// the final access of a prefetch group fetch).
    pub auto_precharge: bool,
    /// Time the data burst occupies the DRAM data bus. With ganged
    /// channels each physical DIMM transfers 32 B of the 64 B line:
    /// 2 DRAM clocks at 16 B/clock.
    pub burst: Dur,
}

/// A fully resolved access: every DRAM command time and the data window.
///
/// Produced by [`BankArray::plan`](crate::bank::BankArray::plan); apply it
/// with [`BankArray::commit`](crate::bank::BankArray::commit).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessPlan {
    /// Target bank index within the DIMM.
    pub bank: usize,
    /// Target row.
    pub row: u32,
    /// Explicit precharge needed to close a conflicting open row
    /// (open-page mode only).
    pub pre_at: Option<Time>,
    /// Activate command time, if the row was not already open.
    pub act_at: Option<Time>,
    /// Column command time.
    pub cmd_at: Time,
    /// First data beat on the DRAM data bus.
    pub data_start: Time,
    /// End of the data burst.
    pub data_end: Time,
    /// The column operation this plan realizes.
    pub op: ColumnOp,
}

impl AccessPlan {
    /// True if this access needed a row activation (a "bank miss").
    pub fn is_row_miss(&self) -> bool {
        self.act_at.is_some()
    }

    /// Instant the first DRAM command of this plan issues: the
    /// precharge when a conflicting row must close, else the activate,
    /// else the column command. Time before this is queueing/bank wait,
    /// not DRAM service.
    pub fn first_cmd_at(&self) -> Time {
        self.pre_at.or(self.act_at).unwrap_or(self.cmd_at)
    }

    /// The DRAM commands this plan issues, in time order, as
    /// `(mnemonic, at)` pairs: an explicit `PRE` and/or `ACT` when the
    /// access needs them, then the column command — `RD`/`WR`, or
    /// `RDA`/`WRA` when it carries auto-precharge. Event tracers
    /// consume this instead of re-deriving command times from fields.
    pub fn commands(&self) -> impl Iterator<Item = (&'static str, Time)> {
        let col = match (self.op.kind, self.op.auto_precharge) {
            (ColKind::Read, false) => "RD",
            (ColKind::Read, true) => "RDA",
            (ColKind::Write, false) => "WR",
            (ColKind::Write, true) => "WRA",
        };
        self.pre_at
            .map(|t| ("PRE", t))
            .into_iter()
            .chain(self.act_at.map(|t| ("ACT", t)))
            .chain(core::iter::once((col, self.cmd_at)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn col_kind_classification() {
        assert!(ColKind::Read.is_read());
        assert!(!ColKind::Write.is_read());
    }

    #[test]
    fn plan_row_miss_detection() {
        let op = ColumnOp {
            kind: ColKind::Read,
            auto_precharge: true,
            burst: Dur::from_ns(6),
        };
        let mut plan = AccessPlan {
            bank: 0,
            row: 1,
            pre_at: None,
            act_at: Some(Time::from_ns(10)),
            cmd_at: Time::from_ns(25),
            data_start: Time::from_ns(40),
            data_end: Time::from_ns(46),
            op,
        };
        assert!(plan.is_row_miss());
        plan.act_at = None;
        assert!(!plan.is_row_miss());
    }

    #[test]
    fn commands_list_in_time_order() {
        let op = ColumnOp {
            kind: ColKind::Read,
            auto_precharge: true,
            burst: Dur::from_ns(6),
        };
        let mut plan = AccessPlan {
            bank: 0,
            row: 1,
            pre_at: Some(Time::from_ns(2)),
            act_at: Some(Time::from_ns(17)),
            cmd_at: Time::from_ns(32),
            data_start: Time::from_ns(47),
            data_end: Time::from_ns(53),
            op,
        };
        let cmds: Vec<_> = plan.commands().collect();
        assert_eq!(
            cmds,
            [
                ("PRE", Time::from_ns(2)),
                ("ACT", Time::from_ns(17)),
                ("RDA", Time::from_ns(32)),
            ]
        );

        plan.pre_at = None;
        plan.act_at = None;
        plan.op.auto_precharge = false;
        plan.op.kind = ColKind::Write;
        let cmds: Vec<_> = plan.commands().collect();
        assert_eq!(cmds, [("WR", Time::from_ns(32))]);
    }
}
