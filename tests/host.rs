//! Integration tests for host-side observability: the profiler's
//! phase-partition invariant on a real run, build provenance, the
//! `LogHistogram` merge algebra and fast-fidelity sampler monotonicity
//! that the live dashboard and throughput bench depend on.

use std::sync::Arc;

use fbd_core::{calibrate, RunSpec};
use fbd_telemetry::host::{Counter, HostProfiler, Phase};
use fbd_telemetry::{Json, LogHistogram, TelemetryConfig};
use fbd_types::time::Dur;

fn spec() -> RunSpec {
    RunSpec::paper_default(1).workload("1C-swim").budget(20_000)
}

#[test]
fn profiled_run_partitions_wall_time_and_counts_the_hot_loop() {
    let profiler = Arc::new(HostProfiler::enabled());
    let r = spec().host_profiler(Arc::clone(&profiler)).run();
    let h = &r.host;
    assert!(h.enabled);
    assert!(!h.wall.is_zero());
    // The acceptance invariant: the per-phase breakdown explains at
    // least 95% of measured wall time (by construction it is ~100%).
    let sum = h.phase_fraction_sum();
    assert!((0.95..=1.05).contains(&sum), "phase fractions sum to {sum}");
    assert!(h.cycles_per_sec() > 0.0 && h.cycles_per_sec().is_finite());
    assert!(h.instr_per_sec() > 0.0);
    assert_eq!(h.instructions, 20_000);
    assert!(h.sim_cycles > 0);
    // Hot-loop counters moved: events, scheduling decisions, retired
    // requests, DRAM commands and FBD link frames all fired; no faults
    // were injected, so no link retries.
    for c in [
        Counter::Events,
        Counter::Decisions,
        Counter::RequestsRetired,
        Counter::DramCommands,
        Counter::FramesSent,
    ] {
        assert!(profiler.counter(c) > 0, "counter {c:?} never moved");
    }
    assert_eq!(profiler.counter(Counter::Retries), 0);
    // DRAM commands reconcile with the device statistics.
    assert_eq!(
        profiler.counter(Counter::DramCommands),
        r.mem.dram_ops.act_pre * 2 + r.mem.dram_ops.col_total() + r.mem.dram_ops.refreshes
    );
    // The simulation phases dominate; setup/harness are overhead.
    let hot: f64 = [
        Phase::Cpu,
        Phase::Controller,
        Phase::Datapath,
        Phase::Warmup,
    ]
    .iter()
    .map(|&p| profiler.phase(p).as_secs_f64())
    .sum();
    assert!(
        hot > 0.5 * h.wall.as_secs_f64(),
        "simulation phases cover only {:.0}% of wall time",
        100.0 * hot / h.wall.as_secs_f64()
    );
}

#[test]
fn unprofiled_run_still_carries_build_provenance() {
    let r = spec().run();
    assert!(!r.host.enabled);
    assert_eq!(r.host.wall, std::time::Duration::ZERO);
    // Build provenance is compiled in, not measured, so it is present
    // on every result.
    assert_eq!(r.host.build.version, env!("CARGO_PKG_VERSION"));
    assert!(!r.host.build.git_sha.is_empty());
    assert!(!r.host.build.rustc.is_empty());
    assert!(!r.host.build.profile.is_empty());
    let doc = r.host.to_json();
    assert_eq!(doc.get("enabled"), Some(&Json::Bool(false)));
    assert!(doc.get("build").is_some());
}

#[test]
fn build_info_matches_compile_time_environment() {
    let b = fbd_core::build_info();
    assert_eq!(b.version, env!("CARGO_PKG_VERSION"));
    // `git_sha` is either a real short hash (12 hex chars, optional
    // `-dirty`) or the `unknown` fallback — never empty.
    assert!(
        b.git_sha == "unknown"
            || b.git_sha
                .trim_end_matches("-dirty")
                .chars()
                .all(|c| c.is_ascii_hexdigit()),
        "unexpected git sha {:?}",
        b.git_sha
    );
    assert!(b.rustc == "unknown" || b.rustc.starts_with("rustc"));
    assert!(["debug", "release", "unknown"].contains(&b.profile.as_str()));
}

/// `LogHistogram::merge` is associative (and commutative in effect):
/// the telemetry pipeline relies on this to fold per-epoch and
/// per-shard histograms in whatever order the runners finish.
#[test]
fn log_histogram_merge_is_associative() {
    let hist = |samples: &[u64]| {
        let mut h = LogHistogram::new();
        for &ns in samples {
            h.record(Dur::from_ns(ns));
        }
        h
    };
    let a = hist(&[3, 17, 17, 250]);
    let b = hist(&[1, 90_000, 4]);
    let c = hist(&[42, 42, 7_777_777]);

    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);

    let mut bc = b.clone();
    bc.merge(&c);
    let mut right = a.clone();
    right.merge(&bc);

    assert_eq!(left, right);
    assert_eq!(left.count(), 10);

    // The empty histogram is the identity on both sides.
    let mut with_empty = a.clone();
    with_empty.merge(&LogHistogram::new());
    assert_eq!(with_empty, a);
    let mut from_empty = LogHistogram::new();
    from_empty.merge(&a);
    assert_eq!(from_empty, a);
}

/// Fast-fidelity runs synthesize epoch sampler rows so downstream
/// consumers (CSV export, the live dashboard's observer) see the same
/// shape as an accurate run: rows strictly increasing in time, ending
/// at the predicted end of the run.
#[test]
fn fast_fidelity_sampler_rows_are_monotonic() {
    let interval = Dur::from_ns(500);
    let spec = spec().telemetry(TelemetryConfig {
        sample_interval: Some(interval),
        trace: false,
    });
    let cal = calibrate(&spec).unwrap();
    let r = spec.try_run_fast(&cal).unwrap();
    let tel = r.telemetry.as_ref().expect("telemetry attached");
    let sampler = tel.sampler.as_ref().expect("sampler attached");
    let rows = sampler.rows();
    assert!(
        rows.len() >= 2,
        "expected synthesized rows, got {}",
        rows.len()
    );
    for pair in rows.windows(2) {
        assert!(
            pair[0].at < pair[1].at,
            "sampler rows must be strictly increasing: {:?} then {:?}",
            pair[0].at,
            pair[1].at
        );
    }
    let last = rows.last().unwrap();
    assert!(
        last.at.as_ps() <= r.elapsed.as_ps(),
        "rows must not pass the end of the run"
    );
    // The fast path charges its wall time to the model phase.
    let profiled = Arc::new(HostProfiler::enabled());
    let r2 = spec
        .clone()
        .host_profiler(Arc::clone(&profiled))
        .try_run_fast(&cal)
        .unwrap();
    assert!(r2.host.enabled);
    assert!(!profiled.phase(Phase::Model).is_zero());
    assert!(r2.host.phase_fraction_sum() >= 0.95);
}
