//! The DDR2 data bus between a set of DRAM chips and whatever drives them
//! (an AMB in FB-DIMM, or the memory controller in the DDR2 baseline).
//!
//! The bus is bidirectional and time-multiplexed: one burst at a time,
//! with a one-clock turnaround bubble between bursts of different
//! directions. Burst windows are scheduled *out of order* — a later
//! request whose data is ready sooner may claim a gap left between two
//! already-scheduled bursts, which is what a real controller's
//! column-command scheduling achieves.
//!
//! The write-to-read `tWTR` constraint is *not* enforced here — it is a
//! rank-level rule and lives in [`crate::bank::BankArray`], so that on a
//! shared channel a read to one DIMM only pays the bus turnaround after
//! a write to another DIMM.
//!
//! In FB-DIMM every DIMM has a private bus (one `DataBus` per DIMM); in
//! the conventional DDR2 baseline all DIMMs on a channel share one bus
//! (one `DataBus` per channel). The scope is chosen by the caller, which
//! is exactly the bandwidth asymmetry the paper's AMB prefetching
//! exploits.

use std::collections::VecDeque;

use fbd_types::time::{Dur, Time};

use crate::command::ColKind;

/// How far behind the newest burst the bus keeps history; bursts this
/// old can no longer be displaced by new traffic.
const PRUNE_WINDOW: Dur = Dur::from_ps(5_000_000); // 5 µs

/// A bidirectional DRAM data bus with gap-filling (out-of-order) burst
/// scheduling and direction-turnaround modelling.
#[derive(Clone, Debug)]
pub struct DataBus {
    clock: Dur,
    /// Scheduled bursts `[start, end, dir)`, sorted and disjoint.
    bursts: VecDeque<(Time, Time, ColKind)>,
    /// Everything before this instant is permanently unavailable.
    horizon: Time,
    busy: Dur,
}

impl DataBus {
    /// Creates an idle bus with the given DRAM clock period.
    pub fn new(clock: Dur) -> DataBus {
        assert!(!clock.is_zero(), "clock period must be non-zero");
        // The pruning in `commit` bounds the deque to the bursts inside
        // one `PRUNE_WINDOW` (each at least a clock long, pairwise
        // disjoint) plus a short scheduled-ahead tail. Reserving that
        // bound up front keeps `commit` off the allocator for the whole
        // run (the steady-state allocation gate in `fig_throughput`).
        let cap = (PRUNE_WINDOW.as_ps() / clock.as_ps()) as usize + 256;
        DataBus {
            clock,
            bursts: VecDeque::with_capacity(cap),
            horizon: Time::ZERO,
            busy: Dur::ZERO,
        }
    }

    /// Gap the burst `[start, start+len)` of direction `dir` must keep
    /// from neighbour `n` (one clock when directions differ).
    fn bubble(&self, dir: ColKind, n: ColKind) -> Dur {
        if dir == n {
            Dur::ZERO
        } else {
            self.clock
        }
    }

    /// Earliest instant at or after `desired` where a burst of `len` in
    /// direction `dir` fits — possibly in a gap between already
    /// scheduled bursts.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn earliest_fit(&self, dir: ColKind, desired: Time, len: Dur) -> Time {
        assert!(!len.is_zero(), "burst length must be non-zero");
        let mut start = desired.max(self.horizon);
        for i in 0..self.bursts.len() {
            let (b_start, b_end, b_dir) = self.bursts[i];
            // Room before this burst (respecting its turnaround bubble)?
            if start + len + self.bubble(dir, b_dir) <= b_start {
                return start;
            }
            // Otherwise the candidate moves past this burst.
            let after = b_end + self.bubble(dir, b_dir);
            if after > start {
                start = after;
            }
        }
        start
    }

    /// Backwards-compatible probe: earliest start of a burst in `dir`
    /// wanting to start at `desired` (uses the following gap only, so a
    /// fit is guaranteed for any length at the returned time only if the
    /// caller re-validates with [`earliest_fit`](Self::earliest_fit)).
    pub fn earliest_start(&self, dir: ColKind, desired: Time) -> Time {
        self.earliest_fit(dir, desired, self.clock)
    }

    /// Records a committed burst occupying `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the burst overlaps another or violates
    /// a turnaround bubble — committing a plan computed against stale
    /// bus state is a caller bug.
    pub fn commit(&mut self, dir: ColKind, start: Time, end: Time) {
        debug_assert!(end > start, "empty data burst");
        debug_assert!(
            self.earliest_fit(dir, start, end - start) == start,
            "data burst overlaps another or violates turnaround"
        );
        let idx = self
            .bursts
            .iter()
            .position(|&(s, _, _)| s > start)
            .unwrap_or(self.bursts.len());
        self.bursts.insert(idx, (start, end, dir));
        self.busy += end - start;
        // Prune bursts too old to matter.
        let cutoff = Time::from_ps(start.as_ps().saturating_sub(PRUNE_WINDOW.as_ps()));
        while let Some(&(_, e, _)) = self.bursts.front() {
            if e <= cutoff {
                self.horizon = self.horizon.max(e);
                self.bursts.pop_front();
            } else {
                break;
            }
        }
    }

    /// Instant after which the bus is completely free.
    pub fn free_at(&self) -> Time {
        self.bursts.back().map_or(self.horizon, |&(_, e, _)| e)
    }

    /// Total time the bus has carried data (for utilization reporting).
    pub fn busy_time(&self) -> Dur {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> DataBus {
        DataBus::new(Dur::from_ns(3))
    }

    #[test]
    fn idle_bus_accepts_any_start() {
        let b = bus();
        assert_eq!(
            b.earliest_fit(ColKind::Read, Time::from_ns(5), Dur::from_ns(6)),
            Time::from_ns(5)
        );
    }

    #[test]
    fn same_direction_bursts_back_to_back() {
        let mut b = bus();
        b.commit(ColKind::Read, Time::from_ns(10), Time::from_ns(16));
        assert_eq!(
            b.earliest_fit(ColKind::Read, Time::ZERO, Dur::from_ns(6)),
            Time::ZERO,
            "a 6 ns burst fits in the gap before [10,16)"
        );
        assert_eq!(
            b.earliest_fit(ColKind::Read, Time::from_ns(12), Dur::from_ns(6)),
            Time::from_ns(16)
        );
    }

    #[test]
    fn direction_change_costs_one_clock() {
        let mut b = bus();
        b.commit(ColKind::Read, Time::from_ns(10), Time::from_ns(16));
        // A write wanting to start at 12 must clear [10,16) plus 3 ns.
        assert_eq!(
            b.earliest_fit(ColKind::Write, Time::from_ns(12), Dur::from_ns(6)),
            Time::from_ns(19)
        );
        // And a write before it needs to end 3 ns before 10.
        assert_eq!(
            b.earliest_fit(ColKind::Write, Time::ZERO, Dur::from_ns(6)),
            Time::ZERO,
            "[0,6) + 3 ns bubble + [10,16) read is legal"
        );
        assert_eq!(
            b.earliest_fit(ColKind::Write, Time::from_ns(2), Dur::from_ns(6)),
            Time::from_ns(19),
            "[2,8) would leave only 2 ns before the read"
        );
    }

    #[test]
    fn gap_filling_schedules_out_of_order() {
        let mut b = bus();
        b.commit(ColKind::Read, Time::from_ns(0), Time::from_ns(6));
        b.commit(ColKind::Read, Time::from_ns(30), Time::from_ns(36));
        // A later request claims the hole between them.
        let at = b.earliest_fit(ColKind::Read, Time::from_ns(6), Dur::from_ns(6));
        assert_eq!(at, Time::from_ns(6));
        b.commit(ColKind::Read, at, at + Dur::from_ns(6));
        // Next fit lands after 12 within the remaining hole.
        assert_eq!(
            b.earliest_fit(ColKind::Read, Time::ZERO, Dur::from_ns(6)),
            Time::from_ns(12)
        );
    }

    #[test]
    fn busy_time_accumulates() {
        let mut b = bus();
        b.commit(ColKind::Read, Time::from_ns(0), Time::from_ns(6));
        b.commit(ColKind::Read, Time::from_ns(6), Time::from_ns(12));
        assert_eq!(b.busy_time(), Dur::from_ns(12));
        assert_eq!(b.free_at(), Time::from_ns(12));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    #[cfg(debug_assertions)]
    fn overlapping_commit_panics_in_debug() {
        let mut b = bus();
        b.commit(ColKind::Read, Time::from_ns(0), Time::from_ns(6));
        b.commit(ColKind::Read, Time::from_ns(3), Time::from_ns(9));
    }

    #[test]
    fn pruning_keeps_the_burst_list_bounded() {
        let mut b = bus();
        for i in 0..10_000u64 {
            let t = Time::from_ns(i * 10);
            b.commit(ColKind::Read, t, t + Dur::from_ns(6));
        }
        assert!(b.bursts.len() < 1_000, "burst list grew unboundedly");
    }
}
