//! The full-system simulation engine.
//!
//! An event-driven loop couples the processor complex (`fbd-cpu`) to the
//! memory subsystem ([`crate::memsys::MemorySystem`]): cores emit
//! requests, channel decision events schedule them, completions flow
//! back and unblock commit. The run ends when any core commits its
//! instruction budget (the paper's stop condition).

use fbd_cpu::{CpuComplex, TraceSource};
use fbd_faults::FaultReport;
use fbd_power::EnergyReport;
use fbd_telemetry::host::{Counter, HostHandle, HostReport, Phase};
use fbd_telemetry::{MetricId, SampleObserver, StageProfile, Telemetry, TelemetryConfig};
use fbd_types::config::SystemConfig;
use fbd_types::request::AccessKind;
use fbd_types::stats::{CoreStats, MemStats};
use fbd_types::time::{Dur, Time};
use fbd_types::LineAddr;

use crate::compose::Composition;
use crate::events::EventQueue;
use crate::memsys::{ChannelCounters, Issued, MemorySystem};
use crate::trace_io::{MemoryTrace, TraceRecord};

/// Safety valve: abort runs that exceed this much simulated time
/// (indicates a deadlock bug, not a slow workload).
const MAX_SIM_TIME: Time = Time::from_ns(1_000_000_000); // 1 s

/// Retired requests after which the run is considered to be in
/// allocation steady state (every pool and scratch buffer has hit its
/// high-water mark); the `alloc-count` gate measures from here.
const STEADY_RETIRED: u64 = 1_000;

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// Run a scheduling decision for a logical channel.
    Decide(u32),
    /// A read completed at the controller; deliver to the cores and free
    /// the channel's in-flight slot. The flag marks a transfer whose
    /// northbound data was dropped under fault injection (the line is
    /// not cached).
    ReadDone(u32, LineAddr, bool),
    /// A write finished at the devices; free the in-flight slot.
    WriteDone(u32),
    /// A core's self-wake (ROB stall expiry or projected finish).
    CpuWake,
    /// Take a telemetry epoch snapshot.
    Sample,
}

/// Results of one simulation run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Simulated time at which the first core finished its budget.
    pub elapsed: Dur,
    /// Per-core execution statistics.
    pub cores: Vec<CoreStats>,
    /// Memory-subsystem statistics.
    pub mem: MemStats,
    /// Always-on per-channel traffic counters, indexed by channel.
    pub channels: Vec<ChannelCounters>,
    /// The run's energy breakdown (activation, burst, refresh,
    /// background, AMB) from the Micron energy model matching the
    /// substrate's data rate; the report names the IDD current set it
    /// used.
    pub energy: EnergyReport,
    /// The captured transaction trace, when capture was enabled.
    pub trace: Option<MemoryTrace>,
    /// The run's telemetry (registry, epoch time-series, event trace),
    /// when telemetry was enabled.
    pub telemetry: Option<Telemetry>,
    /// Stage × request-class latency attribution over every completed
    /// read and posted write (always collected; see
    /// [`MemorySystem::latency_profile`](crate::MemorySystem::latency_profile)).
    pub profile: StageProfile,
    /// Error/recovery summary when fault injection was configured
    /// (`None` on a no-fault run, so downstream exports stay identical).
    pub faults: Option<FaultReport>,
    /// Host-side profile of the run: wall-clock phase breakdown, event
    /// counters, and simulated-cycles/sec throughput (a disabled
    /// default report when no profiler was attached).
    pub host: HostReport,
}

impl RunResult {
    /// Utilized bandwidth in GB/s over the run.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.mem.utilized_bandwidth_gbps(self.elapsed)
    }

    /// Average demand-read latency in nanoseconds.
    pub fn avg_read_latency_ns(&self) -> f64 {
        self.mem.read_latency.mean().map_or(0.0, |d| d.as_ns_f64())
    }

    /// Per-core IPCs.
    pub fn ipcs(&self) -> Vec<f64> {
        self.cores.iter().map(CoreStats::ipc).collect()
    }

    /// Per-channel utilized bandwidth in GB/s over the run.
    pub fn channel_bandwidth_gbps(&self) -> Vec<f64> {
        let secs = self.elapsed.as_ns_f64() * 1e-9;
        self.channels
            .iter()
            .map(|c| {
                if secs > 0.0 {
                    c.bytes as f64 * 1e-9 / secs
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Demand-read latency percentile in nanoseconds (0 until reads
    /// complete).
    pub fn read_latency_percentile_ns(&self, q: f64) -> f64 {
        self.mem
            .read_latency_hist
            .percentile(q)
            .map_or(0.0, |d| d.as_ns_f64())
    }
}

/// A complete simulated system, ready to run.
#[derive(Debug)]
pub struct System {
    cpu: CpuComplex,
    mem: MemorySystem,
    events: EventQueue<Event>,
    now: Time,
    /// Scratch for requests drained from the cores each pump (reused so
    /// the steady-state loop never allocates).
    req_buf: Vec<fbd_types::request::MemRequest>,
    /// Scratch for transactions issued per decision (same reuse).
    issued_buf: Vec<Issued>,
    /// Requests retired so far (drives the steady-state allocation
    /// snapshot at [`STEADY_RETIRED`]).
    retired: u64,
    /// Earliest outstanding [`Event::CpuWake`], or a past time when
    /// none is queued. [`pump_cpu`](Self::pump_cpu) skips scheduling a
    /// wake at or after an already-outstanding one: the earlier wake
    /// re-pumps and re-schedules, so the skipped wake could only ever
    /// have been a no-op pump. Without this, every pump while the CPU
    /// is memory-stalled queued another wake for the same instant —
    /// dozens of identical events per bucket.
    cpu_wake_at: Time,
    capture: Option<MemoryTrace>,
    /// `(l2_mshr_occupancy, outstanding_misses)` gauge handles, set when
    /// telemetry is enabled.
    cpu_gauges: Option<(MetricId, MetricId)>,
    /// Host-side profiler handle (no-op unless a profiler is attached).
    host: HostHandle,
}

impl System {
    /// Builds a system from a validated configuration and one trace per
    /// core; the run ends when a core commits `budget` instructions.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the trace count does
    /// not match the core count.
    pub fn new(cfg: &SystemConfig, traces: Vec<Box<dyn TraceSource>>, budget: u64) -> System {
        cfg.validate().expect("invalid system configuration");
        System {
            cpu: CpuComplex::new(&cfg.cpu, traces, budget),
            mem: MemorySystem::new(&cfg.mem),
            events: EventQueue::from_env(),
            now: Time::ZERO,
            // Sized to the per-pump ceiling (every L2 MSHR missing at
            // once, each with a dirty writeback, plus prefetcher
            // suggestions) so steady state never grows them.
            req_buf: Vec::with_capacity(cfg.cpu.l2_mshrs as usize * 2 + 64),
            issued_buf: Vec::with_capacity(64),
            retired: 0,
            cpu_wake_at: Time::ZERO,
            capture: None,
            cpu_gauges: None,
            host: HostHandle::off(),
        }
    }

    /// Like [`new`](Self::new), but composes the memory subsystem from
    /// an explicit [`Composition`] of registry names.
    ///
    /// # Errors
    ///
    /// Returns a message naming the invalid configuration field or the
    /// unresolved registry name.
    ///
    /// # Panics
    ///
    /// Panics if the trace count does not match the core count.
    pub fn composed(
        cfg: &SystemConfig,
        traces: Vec<Box<dyn TraceSource>>,
        budget: u64,
        comp: &Composition,
    ) -> Result<System, String> {
        cfg.validate().map_err(|e| e.to_string())?;
        let mem = MemorySystem::compose(&cfg.mem, comp)?;
        Ok(System {
            cpu: CpuComplex::new(&cfg.cpu, traces, budget),
            mem,
            events: EventQueue::from_env(),
            now: Time::ZERO,
            // Sized to the per-pump ceiling (every L2 MSHR missing at
            // once, each with a dirty writeback, plus prefetcher
            // suggestions) so steady state never grows them.
            req_buf: Vec::with_capacity(cfg.cpu.l2_mshrs as usize * 2 + 64),
            issued_buf: Vec::with_capacity(64),
            retired: 0,
            cpu_wake_at: Time::ZERO,
            capture: None,
            cpu_gauges: None,
            host: HostHandle::off(),
        })
    }

    /// Attaches a host-side profiler: the event loop marks phase
    /// boundaries and bumps hot-loop counters into it, and
    /// [`RunResult::host`] carries its report. Without this call every
    /// instrumentation site is a no-op branch.
    pub fn set_host_profiler(&mut self, host: HostHandle) {
        self.mem.set_host_profiler(host.clone());
        self.host = host;
    }

    /// Attaches a [`SampleObserver`] notified with every epoch-sampler
    /// row — requires telemetry sampling to already be enabled (no-op
    /// otherwise).
    pub fn set_sample_observer(&mut self, observer: SampleObserver) {
        if let Some(tel) = self.mem.telemetry_mut() {
            tel.observer = observer;
        }
    }

    /// Records every transaction handed to the memory controller; the
    /// trace is returned in [`RunResult::trace`].
    pub fn enable_trace_capture(&mut self) {
        self.capture = Some(MemoryTrace::new());
    }

    /// Turns on telemetry for the run: the memory subsystem registers
    /// its metrics and tracks, the processor registers its occupancy
    /// gauges, and (when sampling is configured) the event loop
    /// schedules epoch snapshots. The collected [`Telemetry`] is
    /// returned in [`RunResult::telemetry`].
    ///
    /// # Panics
    ///
    /// Panics if `config.sample_interval` is `Some(Dur::ZERO)`.
    pub fn enable_telemetry(&mut self, config: &TelemetryConfig) {
        self.mem.enable_telemetry(config);
        let reg = &mut self.mem.telemetry_mut().expect("just enabled").registry;
        self.cpu_gauges = Some((
            reg.gauge("cpu.l2_mshr_occupancy"),
            reg.gauge("cpu.outstanding_misses"),
        ));
    }

    /// Like [`new`](Self::new), but first fast-forwards each trace
    /// through the L2 for `warmup_ops` operations per core so capacity
    /// evictions (writeback traffic) are present from the start.
    pub fn with_warmup(
        cfg: &SystemConfig,
        traces: Vec<Box<dyn TraceSource>>,
        budget: u64,
        warmup_ops: u64,
    ) -> System {
        let mut sys = System::new(cfg, traces, budget);
        sys.cpu.warm_l2(warmup_ops);
        sys
    }

    /// Fast-forwards the traces through the L2 for `ops_per_core`
    /// operations (see [`Self::with_warmup`]); usable on an already
    /// constructed system before `run`.
    pub fn warm(&mut self, ops_per_core: u64) {
        self.cpu.warm_l2(ops_per_core);
    }

    /// Snapshots the post-warm-up CPU state (L2 contents and trace
    /// positions); see [`fbd_cpu::CpuComplex::warm_snapshot`].
    pub fn warm_snapshot(&self) -> Option<fbd_cpu::WarmState> {
        self.cpu.warm_snapshot()
    }

    /// Restores a snapshot taken by [`Self::warm_snapshot`] —
    /// byte-identical to replaying the same warm-up. Returns `false`
    /// and leaves the system untouched if the snapshot does not fit.
    pub fn warm_restore(&mut self, state: &fbd_cpu::WarmState) -> bool {
        self.cpu.warm_restore(state)
    }

    fn push(&mut self, at: Time, ev: Event) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        // Decisions are the only event kind pushed redundantly (one per
        // submitted request / completion); the wheel collapses identical
        // same-instant entries into one multiplicity-counted entry.
        let dedup = matches!(ev, Event::Decide(_));
        self.events.push(at, ev, dedup);
    }

    /// Pulls new requests from the cores and schedules the resulting
    /// channel decisions and CPU wakes.
    fn pump_cpu(&mut self) {
        let mut reqs = std::mem::take(&mut self.req_buf);
        debug_assert!(reqs.is_empty());
        let next_wake = self.cpu.advance_into(self.now, &mut reqs);
        self.host.mark_sampled(Phase::Cpu);
        for req in reqs.drain(..) {
            if let Some(trace) = self.capture.as_mut() {
                trace.push(TraceRecord {
                    arrival: req.arrival,
                    kind: req.kind,
                    line: req.line,
                    core: req.core,
                });
            }
            let (ch, ready) = self.mem.submit(req);
            self.push(ready.max(self.now), Event::Decide(ch));
        }
        self.req_buf = reqs;
        if let Some(wake) = next_wake {
            // Schedule only if no earlier (or equal) wake is already
            // outstanding; that wake's own pump re-schedules the rest.
            if wake > self.now && (self.cpu_wake_at <= self.now || wake < self.cpu_wake_at) {
                self.push(wake, Event::CpuWake);
                self.cpu_wake_at = wake;
            }
        }
        self.host.mark_sampled(Phase::Controller);
    }

    fn run_decision(&mut self, ch: u32) {
        let mut issued = std::mem::take(&mut self.issued_buf);
        debug_assert!(issued.is_empty());
        let next_decision = self.mem.decide_into(ch, self.now, &mut issued);
        for issued in issued.drain(..) {
            match issued {
                Issued::Read { resp } => {
                    self.push(
                        resp.completion,
                        Event::ReadDone(ch, resp.line, resp.dropped),
                    );
                    // Software prefetches and demand reads both fill the
                    // L2; the complex routes waiters by line.
                    debug_assert!(resp.kind != AccessKind::Write);
                }
                Issued::Write { done } => {
                    self.push(done.max(self.now), Event::WriteDone(ch));
                }
            }
        }
        self.issued_buf = issued;
        if let Some(next) = next_decision {
            self.push(next.max(self.now), Event::Decide(ch));
        }
        self.host.mark_sampled(Phase::Controller);
        self.host.bump(Counter::Decisions);
    }

    /// Counts a retired request; at [`STEADY_RETIRED`] the allocation
    /// steady state begins and the `alloc-count` snapshot is taken.
    fn note_retired(&mut self) {
        self.host.bump(Counter::RequestsRetired);
        self.retired += 1;
        if self.retired == STEADY_RETIRED {
            self.host.note_steady_start();
        }
    }

    /// Runs the simulation to completion and returns the results.
    ///
    /// # Panics
    ///
    /// Panics if the system deadlocks (no events while no core can
    /// finish) or exceeds the safety time limit — both indicate bugs,
    /// not workload properties.
    pub fn run(mut self) -> RunResult {
        self.pump_cpu();
        let due = self.mem.next_sample_due();
        if due != Time::NEVER {
            self.push(due, Event::Sample);
        }
        'run: loop {
            let Some((at, ev, count)) = self.events.pop() else {
                panic!("simulation deadlock: no events pending and no core finished");
            };
            assert!(
                at <= MAX_SIM_TIME,
                "simulation exceeded the safety time limit"
            );
            self.now = self.now.max(at);
            // `count` > 1 only for deduped same-instant decisions; the
            // seed heap popped those back to back (equal keys cannot be
            // interleaved), so re-running the handler — with the finish
            // check between runs, which the handler cannot perturb —
            // reproduces it exactly.
            for _ in 0..count {
                self.host.bump(Counter::Events);
                match ev {
                    Event::Decide(ch) => {
                        self.run_decision(ch);
                    }
                    Event::ReadDone(ch, line, dropped) => {
                        self.mem.complete(ch);
                        let deliver = self.now + self.cpu.fill_latency();
                        if dropped {
                            self.cpu.complete_dropped(line, deliver);
                        } else {
                            self.cpu.complete(line, deliver);
                        }
                        self.pump_cpu();
                        if self.mem.has_work(ch) {
                            self.push(self.now, Event::Decide(ch));
                        }
                        self.note_retired();
                        self.host.mark_sampled(Phase::Controller);
                    }
                    Event::WriteDone(ch) => {
                        self.mem.complete(ch);
                        if self.mem.has_work(ch) {
                            self.push(self.now, Event::Decide(ch));
                        }
                        self.note_retired();
                        self.host.mark_sampled(Phase::Controller);
                    }
                    Event::CpuWake => {
                        self.pump_cpu();
                    }
                    Event::Sample => {
                        if let Some((mshr, outstanding)) = self.cpu_gauges {
                            let (lines, slots) = self.cpu.occupancy();
                            if let Some(tel) = self.mem.telemetry_mut() {
                                tel.registry.set(mshr, lines as f64);
                                tel.registry.set(outstanding, slots as f64);
                            }
                        }
                        self.mem.sample_telemetry(self.now);
                        // `sample` advances the next deadline strictly
                        // past `now`, so this cannot self-schedule a
                        // busy loop.
                        let due = self.mem.next_sample_due();
                        if due != Time::NEVER {
                            self.push(due, Event::Sample);
                        }
                        self.host.mark_sampled(Phase::Telemetry);
                    }
                }
                if self.cpu.any_done(self.now) {
                    break 'run;
                }
            }
        }
        // End of the hot loop: close the steady-state allocation window
        // before stats collection (which legitimately allocates).
        self.host.note_steady_end();
        let elapsed = self.now - Time::ZERO;
        let cores = self.cpu.finish(self.now);
        let telemetry = self.mem.finish_telemetry(self.now);
        let mem = self.mem.finish_stats();
        let ops = &mem.dram_ops;
        // ACT/PRE are counted as pairs; expand to individual commands.
        self.host.set(
            Counter::DramCommands,
            ops.act_pre * 2 + ops.col_total() + ops.refreshes,
        );
        let instructions: u64 = cores.iter().map(|c| c.instructions).sum();
        self.host.mark(Phase::Finish);
        let mut host = self.host.finish_report(
            elapsed,
            self.mem.config().data_rate.clock_period(),
            instructions,
        );
        host.build = crate::build_info();
        RunResult {
            elapsed,
            cores,
            mem,
            channels: self.mem.channel_counters().to_vec(),
            energy: self.mem.energy_report(self.now),
            profile: self.mem.latency_profile().clone(),
            faults: self.mem.fault_report(self.now),
            trace: self.capture,
            telemetry,
            host,
        }
    }
}
