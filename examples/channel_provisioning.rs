//! Channel-provisioning study: for a fixed 4-core consolidation, how
//! many FB-DIMM channels (and what data rate) does the workload need,
//! and how much provisioning does AMB prefetching save?
//!
//! FB-DIMM's pitch is pin efficiency: ~69 pins per channel vs ~240 for
//! DDR2, so a board can afford more channels. This example quantifies
//! the performance of each (channels × rate) point and shows that AMB
//! prefetching often buys back one provisioning step.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p fbd-core --example channel_provisioning
//! ```

use fbd_core::RunSpec;
use fbd_types::config::{MemoryConfig, SystemConfig};
use fbd_types::time::DataRate;
use fbd_workloads::four_core_workloads;

fn main() {
    let workload = four_core_workloads().remove(0); // 4C-1: four streaming codes
    let spec = RunSpec::paper_default(4)
        .with_workload(workload.clone())
        .seed(42)
        .budget(150_000);

    println!(
        "4-core workload {} across channel provisioning points:",
        workload.name()
    );
    println!();
    println!("channels  rate      FBD IPC-sum  FBD-AP IPC-sum  AP gain");
    for channels in [1u32, 2, 4] {
        for rate in [DataRate::MTS533, DataRate::MTS667, DataRate::MTS800] {
            let mut base_cfg = SystemConfig::paper_default(4);
            base_cfg.mem.logical_channels = channels;
            base_cfg.mem.data_rate = rate;
            let mut ap_cfg = base_cfg;
            ap_cfg.mem = MemoryConfig::fbdimm_with_prefetch();
            ap_cfg.mem.logical_channels = channels;
            ap_cfg.mem.data_rate = rate;

            let base = spec.clone().with_system(base_cfg).run();
            let ap = spec.clone().with_system(ap_cfg).run();
            let sum = |r: &fbd_core::RunResult| r.ipcs().iter().sum::<f64>();
            println!(
                "{channels:>8}  {rate}  {:>11.3}  {:>14.3}  {:>+6.1}%",
                sum(&base),
                sum(&ap),
                (sum(&ap) / sum(&base) - 1.0) * 100.0
            );
        }
    }
    println!();
    println!("Read across rows: if FBD-AP at N channels matches plain FBD at 2N,");
    println!("the prefetcher saved half the channel pins.");
}
