//! The processor-side timing model: out-of-order cores, the shared L2
//! cache, MSHR semantics and software prefetch handling.
//!
//! The paper drives its memory subsystem with M5 running SPEC2000 Alpha
//! binaries; this crate is the substitution described in DESIGN.md §4 —
//! a first-order OoO commit model (ROB-window stall-on-use with
//! memory-level parallelism) fed by deterministic synthetic traces from
//! `fbd-workloads`.
//!
//! # Examples
//!
//! Run a tiny strided workload through the complex and watch a miss
//! stream form:
//!
//! ```
//! use fbd_cpu::{CpuComplex, StridedTrace, TraceSource};
//! use fbd_types::config::CpuConfig;
//! use fbd_types::time::{Dur, Time};
//!
//! let trace: Box<dyn TraceSource> = Box::new(StridedTrace::new(8, 100, 10, Dur::from_ps(125)));
//! let mut cpx = CpuComplex::new(&CpuConfig::paper_default(1), vec![trace], 1_000_000);
//! let adv = cpx.advance(Time::ZERO);
//! assert_eq!(adv.requests.len(), 8); // all 8 distant lines miss the L2
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod complex;
pub mod core;
pub mod hw_prefetch;
pub mod trace;

pub use cache::{L2Cache, L2Outcome};
pub use complex::{Advance, CpuComplex, WarmState};
pub use core::OooCore;
pub use hw_prefetch::StreamPrefetcher;
pub use trace::{OpKind, StridedTrace, TraceOp, TraceSource};
